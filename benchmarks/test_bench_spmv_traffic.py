"""Figure 7 — SpMV off-chip memory accesses, HICAMP / conventional.

Paper shape: plotted as log2(ratio) against matrix size, most matrices
sit below 0 (HICAMP fewer accesses), with an average reduction around
20% for larger-than-cache matrices and extreme winners among
self-similar (patterned) matrices; a minority of unstructured matrices
sit slightly above 0.
"""

import math

from conftest import emit

from repro.analysis.experiments import run_figure7


def test_figure7_spmv_offchip_accesses(benchmark, scale, report_dir):
    result = benchmark.pedantic(lambda: run_figure7(scale), rounds=1,
                                iterations=1)
    emit(report_dir, "figure7_spmv_traffic", result.text)
    results = result.data["results"]

    ratios = [r for _, _, _, r in results]
    wins = sum(1 for r in ratios if r < 1.0)
    # Most matrices improve; the average improves by a paper-like margin.
    assert wins >= len(ratios) * 0.6
    # exclude the extreme patterned winners like the paper excluded its
    # 4000x matrix, then check the ~20% band (generously: 5%..50%)
    trimmed = [r for (spec, _, _, r) in results
               if spec.category != "patterned"]
    mean = sum(trimmed) / len(trimmed)
    assert 0.5 <= mean <= 0.98, "trimmed mean ratio %.3f" % mean
    # the patterned (self-similar) matrices are the extreme winners
    patterned = [r for (spec, _, _, r) in results
                 if spec.category == "patterned"]
    assert min(patterned) < 0.2
    # ratio correctness: both sides computed identical y (checked inside
    # spmv_comparison); log2 axis must be finite
    assert all(math.isfinite(math.log2(r)) for r in ratios)
