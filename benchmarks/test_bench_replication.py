"""Replication wire traffic — delta shipping vs naive value shipping.

The replication analogue of the paper's DRAM-traffic tables: a
content-addressed follower only needs lines it has never seen, so under
a skewed-overwrite workload (a hot key set rewritten from a small value
pool) the delta stream ships a fraction of what a naive protocol —
re-sending every committed key+value — would put on the wire. The bench
drives that workload through the full stack (memcached front, shard
router, replication leader, live follower) and compares actual leader
wire bytes against the naive baseline.
"""

import asyncio
import random

from conftest import emit

from repro.net.server import MemcachedServer
from repro.replication import ReplicationFollower, ReplicationLeader
from repro.segments import dag

#: per-op framing overhead a naive value-shipping protocol would add
#: (key length, value length, sequence number — 16 bytes is generous
#: toward the baseline, i.e. against us)
NAIVE_OVERHEAD = 16


def _workload(rng, ops):
    """Skewed overwrites: 20% of the keys take 80% of the writes."""
    keys = [b"bench-key-%03d" % i for i in range(50)]
    hot = keys[:10]
    pool = [bytes([33 + (i + j) % 90 for j in range(192)])
            for i in range(8)]
    for _ in range(ops):
        key = rng.choice(hot) if rng.random() < 0.8 else rng.choice(keys)
        yield key, rng.choice(pool)


async def _run(ops):
    server = MemcachedServer(port=0, shard_count=2)
    await server.start()
    leader = ReplicationLeader(server.router, heartbeat_interval=None)
    await leader.start()
    follower = ReplicationFollower("127.0.0.1", leader.port,
                                   reconnect_delay=0.01)
    await follower.start()

    naive_bytes = 0
    stored = 0
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    for key, value in _workload(random.Random(20120301), ops):
        writer.write(b"set %s 0 0 %d\r\n%s\r\n" % (key, len(value), value))
        naive_bytes += len(key) + len(value) + NAIVE_OVERHEAD
        stored += 1
    await writer.drain()
    acked = b""
    while acked.count(b"STORED\r\n") < stored:
        acked += await reader.read(1 << 16)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    await server.router.drain()

    deadline = asyncio.get_event_loop().time() + 30.0
    while asyncio.get_event_loop().time() < deadline:
        want = {s: dag.segment_fingerprint(leader.machine, v)
                for s, v in leader.streams().items()}
        if want == follower.fingerprints():
            break
        await asyncio.sleep(0.02)
    else:
        raise AssertionError("follower never converged")

    await follower.stop()
    await leader.stop()
    await server.shutdown()
    return naive_bytes, leader.metrics, follower.metrics


def run_replication_traffic(scale):
    ops = 300 * scale
    naive_bytes, leader_metrics, follower_metrics = asyncio.run(_run(ops))
    delta_bytes = leader_metrics.bytes_sent
    leader_metrics.logical_bytes = naive_bytes
    data = {
        "ops": ops,
        "naive_bytes": naive_bytes,
        "delta_wire_bytes": delta_bytes,
        "line_bytes_shipped": leader_metrics.line_bytes_shipped,
        "wire_ratio": delta_bytes / naive_bytes,
        "lines_shipped": leader_metrics.lines_shipped,
        "root_advances": follower_metrics.root_advances,
        "forgets": leader_metrics.forgets,
    }
    text = "\n".join([
        "Replication wire traffic (skewed overwrites, 192B values, "
        "8-value pool)",
        "  committed sets            %10d" % data["ops"],
        "  naive value shipping      %10d bytes" % naive_bytes,
        "  delta wire bytes          %10d bytes" % delta_bytes,
        "  ...of which line payload  %10d bytes"
        % data["line_bytes_shipped"],
        "  wire ratio                %10.3f (delta / naive)"
        % data["wire_ratio"],
        "  lines shipped             %10d" % data["lines_shipped"],
        "  forgets                   %10d" % data["forgets"],
    ])
    return text, data


def test_replication_delta_traffic(benchmark, report_dir, scale):
    text, data = benchmark.pedantic(run_replication_traffic, args=(scale,),
                                    rounds=1, iterations=1)
    emit(report_dir, "replication_traffic", text)
    assert data["root_advances"] > 0
    # the acceptance bar: total delta wire bytes — frames, roots,
    # forgets, everything — at most half of naive full-value shipping
    assert data["delta_wire_bytes"] <= 0.5 * data["naive_bytes"], text
