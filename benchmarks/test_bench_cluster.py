"""Cluster scaling: aggregate read throughput and recovery time.

The cluster tier's two headline numbers: snapshot reads scale with the
follower fleet (each follower serves from its own machine with zero
coordination — the fleet-capacity sum), and a killed leader is repaired
to a *verified-converged* fleet in well under a second. Writes the
tracked artifact ``benchmarks/out/cluster_scaling.json``.
"""

import json

from conftest import emit

from repro.analysis.reporting import format_table
from repro.cluster.bench import run_cluster_bench


def test_cluster_scaling(report_dir, scale):
    report = run_cluster_bench(scale=scale)
    (report_dir / "cluster_scaling.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    scaling = report["read_scaling"]
    recovery = report["recovery"]
    rows = [["single node (leader)", scaling["single_node_ops_s"]]]
    rows += [["aggregate, %s follower(s)" % n, rate]
             for n, rate in sorted(
                 scaling["aggregate_by_followers"].items(),
                 key=lambda kv: int(kv[0]))]
    rows.append(["recovery to convergence (s)",
                 recovery["seconds_to_convergence"]])
    emit(report_dir, "cluster_scaling", format_table(
        ["metric", "read ops/s"], rows,
        title="cluster read scaling + repair (scale %d)"
        % report["scale"]))

    # acceptance: the 4-follower aggregate at least doubles one node
    # (measured margins sit well above 3x)
    assert scaling["speedup_4"] >= 2.0
    by_count = scaling["aggregate_by_followers"]
    assert by_count["4"] > by_count["2"] > by_count["1"] > 0
    # the repair committed exactly one promotion, and only after the
    # new fleet verified fingerprint-converged
    assert recovery["promotions"] == 1
    assert recovery["epoch"] == 2
    assert 0 < recovery["seconds_to_convergence"] < 30.0
