"""Observability overhead: tracing must be (near) free when off.

Runs the same loadgen workload against an in-process server three ways —
no-op recorder (the default), a live :class:`TraceRecorder`, and the
no-op recorder again interleaved for fairness — and reports the ops/s
ratio. The acceptance bar: a live recorder costs at most a modest
fraction of throughput, and the no-op recorder is indistinguishable
from the pre-observability server (it is the pre-observability server:
every hot path guards on ``recorder.enabled``).
"""

import asyncio
import json

from conftest import emit

from repro.analysis.reporting import format_table
from repro.net.loadgen import run_loadgen
from repro.net.server import MemcachedServer
from repro.obs.trace import TraceRecorder


async def _run_once(recorder, scale: int) -> dict:
    server = MemcachedServer(port=0, shard_count=4, recorder=recorder)
    await server.start()
    try:
        report = await run_loadgen(
            "127.0.0.1", server.port, clients=4,
            ops_per_client=300 * scale, pipeline_depth=8, seed=9)
        assert report.consistent and report.errors == 0
        spans = len(recorder.spans) if recorder is not None else 0
        return {"ops_per_second": report.ops_per_second,
                "ops": report.ops, "spans": spans}
    finally:
        await server.shutdown()


def _measure(scale: int) -> dict:
    """Interleave disabled/enabled runs so drift hits both equally."""
    disabled, enabled = [], []
    spans = 0
    for _ in range(3):
        disabled.append(
            asyncio.run(_run_once(None, scale))["ops_per_second"])
        on = asyncio.run(_run_once(TraceRecorder(), scale))
        enabled.append(on["ops_per_second"])
        spans = on["spans"]
    return {
        "disabled_ops_per_second": round(max(disabled), 1),
        "enabled_ops_per_second": round(max(enabled), 1),
        "overhead_ratio": round(max(enabled) / max(disabled), 4),
        "spans_per_run": spans,
    }


def test_obs_overhead(benchmark, report_dir, scale):
    data = benchmark.pedantic(_measure, args=(scale,),
                              rounds=1, iterations=1)
    text = format_table(
        ["metric", "value"],
        [["ops/s, recorder disabled", data["disabled_ops_per_second"]],
         ["ops/s, recorder enabled", data["enabled_ops_per_second"]],
         ["enabled/disabled ratio", data["overhead_ratio"]],
         ["spans recorded per run", data["spans_per_run"]]],
        title="tracing overhead (loadgen against an in-process server)")
    emit(report_dir, "obs_overhead", text)
    (report_dir / "obs_overhead.json").write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n")

    assert data["spans_per_run"] > 0
    # the bar from the issue is a <=10% regression with recording on;
    # assert loosely (2x) so a noisy shared CI box cannot flake this —
    # the recorded ratio in benchmarks/out/ is the real deliverable
    assert data["overhead_ratio"] > 0.5
