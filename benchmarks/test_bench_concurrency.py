"""Section 5.1.1 — concurrent memcached performance analysis.

Paper numbers (8 processors, 200K cmd/s, 10:1 get:set, 50 ns DRAM):

* map update time, N = 10^6, LS = 16: 2 * 20 * 50 ns = 2 us;
* conflict probability: 2 us / 50 us = 0.04; N = 10^9 -> 0.06;
* merge-update latency ~= 4 * t_DRAM = 200 ns, "significantly smaller
  than the latency of original map update".

This bench reproduces the closed-form numbers, cross-checks the conflict
probability with a Monte Carlo simulation, and validates the
geometric-series merge-depth argument against the *actual* merge
machinery running on the simulated memory system.
"""

from conftest import emit

from repro.analysis.concurrent_model import ConcurrencyModel, simulate_conflicts
from repro.analysis.experiments import run_section511


def test_section511_concurrency_analysis(benchmark, report_dir):
    result = benchmark.pedantic(run_section511, rounds=1, iterations=1)
    emit(report_dir, "section511_concurrency", result.text)
    merge_depth = result.data["merge_depth"]
    total_levels = result.data["total_levels"]

    # Paper's headline numbers.
    base = ConcurrencyModel()
    assert abs(base.map_update_time_us - 2.0) < 0.01
    assert abs(base.conflict_probability - 0.04) < 0.002
    big = ConcurrencyModel(n_kvps=10**9)
    assert abs(big.conflict_probability - 0.06) < 0.002
    assert base.merge_latency_ns == 200.0
    # Monte Carlo agrees with the closed form (small-probability regime).
    sim = simulate_conflicts(base, n_sets=100_000)
    assert abs(sim - base.conflict_probability) < 0.01
    # The real merge machinery confirms the short-diverging-path claim:
    # average merge work well below a full-depth rebuild (paper: ~4
    # node visits vs 2*log2(N)).
    assert merge_depth < total_levels
    # Larger lines reduce levels proportionally (paper: "for longer
    # 32-byte or 64-byte lines ... decrease proportionally").
    assert (ConcurrencyModel(line_bytes=32).conflict_probability
            < base.conflict_probability)
    # The simulator's measured critical path validates the closed form:
    # 2*log2(N) DRAM accesses within ~25%.
    latency = result.data["latency"]
    assert 0.7 <= latency.ratio <= 1.35, latency
    # Empirical storm: merge-update resolves nearly every lost race
    # ("only aborting when the updates are logically conflicting, which
    # is expected to be rare"), and sharding reduces races further.
    storms = result.data["storms"]
    single, sharded = storms[0], storms[-1]
    assert single.cas_failures > 0
    assert single.true_conflicts <= single.cas_failures / 4
    assert sharded.failure_rate <= single.failure_rate
