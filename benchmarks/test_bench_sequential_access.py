"""Micro-validation — sequential access cost and map-update scaling.

Two quantitative claims from the paper, checked against the real
machinery:

* section 3.3: "sequential access to a segment representing a dense
  array is at most two times the number of lines of accessing the same
  segment stored in a conventional memory system" (the footnote prices
  this for 16-byte lines with 64-bit PLIDs; 32-bit PLIDs give 1.33x,
  and the overhead shrinks with line size);
* section 5.1.1: the cost of a key-value map update grows
  logarithmically with the number of KVPs (the 2*log(N) argument), so
  doubling N adds a constant, not a factor.
"""

import math

from conftest import emit

from repro import Machine, MachineConfig, MemoryConfig
from repro.analysis.reporting import format_table
from repro.params import CacheGeometry
from repro.segments import dag
from repro.structures.hmap import HMap


def machine_for(line_bytes: int, plid_bytes: int, cache_kb: int = 4) -> Machine:
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=line_bytes, num_buckets=1 << 14,
                            data_ways=12, overflow_lines=1 << 20,
                            plid_bytes=plid_bytes),
        # tiny cache: every distinct line access reaches DRAM
        cache=CacheGeometry(size_bytes=cache_kb * 1024, ways=4,
                            line_bytes=line_bytes),
    ))


def _sequential_rows():
    rows = []
    n_words = 8192
    words = [(i * 2654435761) % (1 << 62) | 1 for i in range(n_words)]
    for line_bytes in (16, 32, 64):
        for plid_bytes in (8, 4):
            machine = machine_for(line_bytes, plid_bytes)
            vsid = machine.create_segment(words)
            machine.drain()
            before = machine.dram.snapshot()
            with machine.snapshot(vsid) as snap:
                got = snap.read_range(0, n_words)
            assert got == words
            reads = machine.dram.delta(before).reads
            conventional_lines = n_words * 8 // line_bytes
            rows.append([line_bytes, plid_bytes, reads, conventional_lines,
                         reads / conventional_lines])
    return rows


def _map_scaling_rows():
    rows = []
    for n_items in (64, 256, 1024):
        machine = machine_for(16, 8, cache_kb=8)
        kvp = HMap.create(machine)
        for i in range(n_items):
            kvp.put(b"key-%06d" % i, b"v")
        machine.drain()
        before = machine.dram.snapshot()
        probes = 32
        for i in range(probes):
            kvp.put(b"key-%06d" % (i * (n_items // probes)), b"w%d" % i)
        machine.drain()
        per_update = machine.dram.delta(before).total() / probes
        rows.append([n_items, round(per_update, 1)])
    return rows


def test_sequential_access_overhead(benchmark, report_dir):
    rows = benchmark.pedantic(_sequential_rows, rounds=1, iterations=1)
    text = format_table(
        ["LS", "plid_bytes", "DAG line reads", "conventional lines",
         "overhead"],
        rows,
        title="Section 3.3 claim: sequential dense access, HICAMP line "
              "reads vs conventional")
    emit(report_dir, "sequential_access_overhead", text)
    for line_bytes, plid_bytes, reads, conv, overhead in rows:
        # the paper's bound: at most 2x (worst case: 16B lines, 64-bit
        # PLIDs); smaller for wider lines / narrower PLIDs
        assert overhead <= 2.05, (line_bytes, plid_bytes, overhead)
    worst = next(r for r in rows if r[0] == 16 and r[1] == 8)
    best = next(r for r in rows if r[0] == 64 and r[1] == 4)
    assert worst[4] > best[4]
    assert best[4] < 1.25


def test_map_update_scales_logarithmically(benchmark, report_dir):
    rows = benchmark.pedantic(_map_scaling_rows, rounds=1, iterations=1)
    text = format_table(
        ["N KVPs", "DRAM accesses per update"],
        rows,
        title="Section 5.1.1 claim: map update cost grows ~log(N)")
    emit(report_dir, "map_update_scaling", text)
    costs = {n: c for n, c in rows}
    # 16x more items should cost far less than 16x more accesses —
    # logarithmic, not linear, growth
    assert costs[1024] < costs[64] * 3.0
    assert costs[1024] > 0
