"""Commit-latency tails with epoch-deferred reclamation (ROADMAP 3).

Under the paper's immediate recursive dealloc, dropping a big root
walks the whole dead subtree on the commit path — the p99/p999 spikes
this bench records. The epoch reclaimer (repro.memory.reclaim) defers
the walk to bounded between-batch drains, so the drop is O(1) and the
tail collapses, while a final quiesce proves both kinds converge to
identical machine state.
"""

import json

from conftest import emit

from repro.analysis.reclaimbench import check_floor, render, \
    run_reclaim_bench


def test_reclaim_epoch_bounds_commit_tail(report_dir, scale):
    report = run_reclaim_bench(smoke=(scale <= 1))
    (report_dir / "reclaim.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    emit(report_dir, "reclaim", render(report))

    # 2.0 here is a soft regression floor; the CI gate runs the CLI's
    # --check 3.0 (the acceptance margin; measured ~10x on dev boxes)
    assert check_floor(report, 2.0) == []
    ratios = report["ratios_immediate_over_epoch"]
    assert ratios["p99_latency"] >= 2.0, ratios
    # the post-quiesce identity is the load-bearing claim: deferral
    # must be invisible once drained
    assert report["identical_state"]
    for kind in ("immediate", "epoch"):
        assert report[kind]["audits_ok"], report[kind]["audit_failures"]
    # the epoch run really deferred and really recycled slots
    reclaim = report["epoch"]["reclaim"]
    assert reclaim["deferred_total"] > 0
    assert reclaim["allocator"]["ways_reused"] \
        + reclaim["allocator"]["overflow_reused"] > 0
    # every big-root drop was O(1): even the worst is far under the
    # immediate kind's *median* drop
    assert report["epoch"]["drop_max_us"] \
        < report["immediate"]["drop_p50_us"]
