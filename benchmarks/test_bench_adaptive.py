"""Contention-adaptive serving under a phase-shifting load (ROADMAP 4).

A static commit mode is a bet on one traffic shape; the adaptive
controller re-bets per shard, online. This suite runs the smoke tier
of `repro bench adaptive` in-process (single rep — fast, but exposed
to host noise) and pins the *behavioural* claims: the controller must
react at every phase boundary, traverse bulk during the storm and cas
during the RMW tail, and every mode's run must pass the loadgen's
consistency oracle. The throughput floor itself (adaptive >= 1.1x the
best static end-to-end) is enforced by the CI gate through the CLI,
which runs each mode in its own subprocess and takes medians — the
right methodology for a wall-clock claim, and too slow for here.
"""

import json

from conftest import emit

from repro.analysis.adaptivebench import (MODES, check_floor, render,
                                          run_adaptive_bench)


def test_adaptive_controller_tracks_the_phase_shifts(report_dir, scale):
    report = run_adaptive_bench(smoke=(scale <= 1), isolate=False)
    (report_dir / "adaptive.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    emit(report_dir, "adaptive", render(report))

    # schema: one result per mode, one per-phase entry per phase
    assert set(report["modes"]) == set(MODES)
    for mode in MODES:
        result = report["modes"][mode]
        assert result["consistent"], mode
        assert result["errors"] == 0, mode
        assert [s["name"] for s in result["phases"]] \
            == ["read-heavy", "write-storm", "hot-key"]
    assert set(report["per_phase"]) \
        == {"read-heavy", "write-storm", "hot-key"}
    assert report["best_static"] in ("cas", "merge", "bulk")

    # the controller reacted at every boundary: storm onset into bulk,
    # then the RMW tail into cas
    assert all(count >= 1 for count in report["boundary_switches"])
    assert "bulk" in report["mode_sequence"]
    assert "cas" in report["mode_sequence"]
    switches = report["modes"]["adaptive"]["switches"]
    assert all(s["to"] != s["from"] for s in switches)
    assert report["modes"]["adaptive"]["controller"]["switches_total"] \
        == len(switches)

    # single-rep in-process numbers are too noisy for the 1.1x gate
    # (that's the CLI's job, with subprocess isolation + medians) —
    # but a *collapse* would still be a real regression
    assert report["end_to_end_ratio"] >= 0.75, report["end_to_end_ratio"]

    # check_floor's non-throughput criteria must hold even here
    problems = check_floor(report, 0.0)
    assert [p for p in problems if "switch" in p or "consistency" in p] \
        == [], problems
