"""Lookup-by-content at overflow scale: cuckoo index vs paper Fig. 2.

The legacy dedup directory degrades linearly once resident lines exceed
bucket capacity — every miss walks the full overflow chain. The cuckoo
index (repro.memory.index) bounds every lookup to two buckets plus a
stash, with adaptive fingerprints holding false-positive line reads
down. This bench pins the DRAM-traffic and tail-latency win at ~10x
capacity, and that the cuckoo table completed online resizes mid-run.
"""

import json

from conftest import emit

from repro.analysis.indexbench import render, run_index_bench


def test_dedup_index_cuckoo_beats_legacy(report_dir, scale):
    report = run_index_bench(smoke=(scale <= 1))
    (report_dir / "dedup_index.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    emit(report_dir, "dedup_index", render(report))

    ratios = report["ratios_legacy_over_cuckoo"]
    # structural margin: bounded two-bucket probes vs linear chain walk
    # at ~10x capacity is an order of magnitude in DRAM ops; 2.0 floor
    # leaves room for geometry changes without masking a regression
    assert ratios["mixed_dram_ops"] >= 2.0, ratios
    # wall-clock tail follows the DRAM traffic but is noisier
    assert ratios["p99_latency"] >= 1.2, ratios
    # the run starts from a tiny table on purpose: online resizes must
    # have completed while serving the populate/mixed phases
    assert report["cuckoo"]["index"]["resizes_completed"] >= 1
    # physical placement is index-independent: identical resident state
    assert report["legacy"]["resident_lines"] == \
        report["cuckoo"]["resident_lines"]
    # legacy saw the degradation the bench is about
    assert report["legacy"]["store"]["bucket_overflows"] > 0
