"""Table 2 + Figure 8 — sparse matrix memory footprint, HICAMP vs CSR.

Paper values (bytes in HICAMP per 100 bytes conventional — the paper's
"savings" column is this size ratio):

    All            62.7%   (std dev 36.5%)
    Non-symmetric  58.5%
    Symmetric      76.9%
    FEMs           70.7%
    LPs            43.0%

plus Figure 8's per-matrix ratio scatter. Expected shape: most matrices
same size or smaller on HICAMP; a few negligible increases; symmetric
matrices save *less* relative to their (already halved) symmetric-CSR
baseline; LPs save the most of the named categories; extreme
self-similar matrices compact by orders of magnitude.
"""

from conftest import emit

from repro.analysis.experiments import run_table2_figure8


def test_table2_figure8_matrix_footprint(benchmark, scale, report_dir):
    result = benchmark.pedantic(lambda: run_table2_figure8(scale),
                                rounds=1, iterations=1)
    emit(report_dir, "table2_figure8_matrix_footprint", result.text)
    per_matrix = result.data["per_matrix"]
    ratios = result.data["ratios"]

    # overall mean in the paper's neighbourhood (62.7 +- wide band)
    assert 35.0 <= ratios["All"] <= 85.0
    # ordering relations the paper reports
    assert ratios["LPs"] < ratios["All"], "LPs save the most"
    assert ratios["Symmetric"] > ratios["Non-symmetric"], \
        "symmetric matrices save less vs their halved baseline"
    # "Matrices are the same size or smaller in HICAMP except for a few
    # having negligible increases": at most a third exceed 1.0, none wildly
    over = [r for _, _, _, _, r in per_matrix if r > 1.0]
    assert len(over) <= len(per_matrix) / 3
    assert all(r < 1.9 for r in over)
    # the extreme self-similar matrix compacts by orders of magnitude
    assert min(r for _, _, _, _, r in per_matrix) < 0.05
