"""Table 1 — memcached data compaction by dataset class and line size.

Paper values (conventional bytes / HICAMP bytes):

    dataset                LS=16   LS=32   LS=64
    wikipedia (May'06)      1.71    1.50    1.29
    facebook pages          4.27    3.87    3.11
    facebook scripts        3.17    2.60    2.06
    facebook images         0.90    1.03    1.07

Expected shape: text compacts well and the factor falls with line size;
high-entropy images sit near 1.0 and rise slightly with line size (DAG
overhead shrinks).
"""

from conftest import emit

from repro.analysis.experiments import run_table1


def test_table1_memcached_compaction(benchmark, scale, report_dir):
    result = benchmark.pedantic(lambda: run_table1(scale), rounds=1,
                                iterations=1)
    emit(report_dir, "table1_memcached_compaction", result.text)
    by_dataset = result.data["by_dataset"]

    # Shape assertions against the paper.
    for dataset in ("wikipedia", "facebook", "scripts"):
        cells = by_dataset[dataset]
        assert cells[0] > 1.4, "%s should compact well at 16B" % dataset
        assert cells[0] >= cells[2], \
            "text compaction should fall with line size"
    images = by_dataset["images"]
    assert 0.8 <= images[0] <= 1.1, "images should not compact at 16B"
    assert images[2] >= images[0], \
        "image ratio should rise as DAG overhead shrinks"
    # Facebook pages compact hardest among the text classes (paper: 4.27
    # vs 1.71/3.17).
    assert by_dataset["facebook"][0] > by_dataset["wikipedia"][0]
