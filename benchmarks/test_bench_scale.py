"""Scale scenario bench — the serving stack at bulk, multi-process.

The smoke tier of ``repro bench scale``: worker processes each run a
full server (tenant-routing backends, bulk-commit router, real TCP
serve phase under Zipfian skew) over a shared-nothing slice of the
keyspace. CI runs this tier; the million-key tier is the same code via
``repro bench scale`` (no ``--smoke``), tracked in BENCH_scale.json.
"""

import json

from conftest import emit

from repro.net import scale as scale_bench


def run_smoke(scale_factor):
    cfg = scale_bench.smoke_config(keys=4000 * scale_factor,
                                   serve_ops=800 * scale_factor)
    return scale_bench.run_scale(cfg)


def test_scale_smoke(benchmark, report_dir, scale):
    result = benchmark.pedantic(run_smoke, args=(scale,),
                                rounds=1, iterations=1)
    emit(report_dir, "scale_smoke",
         scale_bench.render(result) + "\n\n"
         + json.dumps(result, indent=2, sort_keys=True))
    assert result["keys"] == 4000 * scale
    assert result["populate"]["ops_per_second"] > 0
    assert result["serve"]["ops_per_second"] > 0
    # the serve phase really ran against a fully-populated keyspace
    assert scale_bench.check_floor(result, floor=50.0) == []
    # the dedup store holds less than the logical bytes written
    assert result["footprint"]["dedup_ratio"] > 1.0
    # every worker saw all its tenants (default namespace included)
    assert result["tenants_per_worker"] == 9
