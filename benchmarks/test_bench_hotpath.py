"""Hot-path structural memoization: what content-uniqueness buys twice.

The paper's dedup argument makes a PLID *a pure function of content*;
the host exploits that a second time by memoizing canonical build,
three-way merge and content fingerprinting (:mod:`repro.memory.memo`).
This benchmark runs each hot path with the memo off and on (plus the
put_many bulk-ingest path against sequential commits) and asserts the
steady-state speedup the serving stack relies on.
"""

import json

from conftest import emit

from repro.analysis.hotpath import run_hotpath
from repro.analysis.reporting import format_table


def test_hotpath_speedup(report_dir, scale):
    report = run_hotpath(scale=scale)
    (report_dir / "hotpath_speedup.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    rows = [[name, report[name]["seconds_off"], report[name]["seconds_on"],
             "%.1fx" % report[name]["speedup"]]
            for name in ("build", "merge", "fingerprint")]
    bulk = report["bulk_ingest"]
    rows.append(["bulk ingest (%d items)" % bulk["items"],
                 bulk["seconds_sequential"], bulk["seconds_bulk"],
                 "%.1fx" % bulk["speedup"]])
    emit(report_dir, "hotpath_speedup", format_table(
        ["hot path", "seconds (plain)", "seconds (memo/bulk)", "speedup"],
        rows,
        title="structural memo + bulk ingest, steady state (scale %d)"
        % report["scale"]))

    # acceptance: memoized build/merge at least 1.5x the plain path
    # (measured steady-state margins are an order of magnitude higher)
    assert report["build"]["speedup"] >= 1.5
    assert report["merge"]["speedup"] >= 1.5
    assert report["fingerprint"]["speedup"] >= 1.5
    # the coalesced batch must beat one-commit-per-key
    assert bulk["speedup"] >= 1.2
