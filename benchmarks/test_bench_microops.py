"""Simulator micro-benchmarks (timed) and the DRAM row-locality check.

The timed benchmarks track the simulator's own operation throughput
(useful when hacking on the store/DAG layers); the row-buffer test
checks section 3.1's locality claim: every DRAM command of one
lookup-by-content targets the same DRAM row (the hash bucket), so
lookup-heavy phases keep a high open-row hit rate.
"""

import random

from conftest import emit

from repro import Machine, MachineConfig, MemoryConfig
from repro.analysis.reporting import format_table
from repro.memory.dedup_store import DedupStore
from repro.params import CacheGeometry
from repro.structures.hmap import HMap


def fast_machine(line_bytes: int = 16) -> Machine:
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=line_bytes, num_buckets=1 << 14,
                            data_ways=12, overflow_lines=1 << 20),
        cache=CacheGeometry(size_bytes=256 * 1024, ways=16,
                            line_bytes=line_bytes),
    ))


def test_micro_lookup_throughput(benchmark):
    store = DedupStore(MemoryConfig(line_bytes=16, num_buckets=1 << 14,
                                    data_ways=12, overflow_lines=1 << 20))
    rng = random.Random(0)
    contents = [(rng.getrandbits(62), rng.getrandbits(62))
                for _ in range(2000)]

    def run():
        for content in contents:
            store.lookup(content)

    benchmark(run)
    benchmark.extra_info["lookups_per_round"] = len(contents)


def test_micro_segment_build(benchmark):
    machine = fast_machine()
    words = [(i * 2654435761) % (1 << 62) | 1 for i in range(4096)]
    counter = [0]

    def run():
        counter[0] += 1
        vsid = machine.create_segment(words)
        machine.drop_segment(vsid)

    benchmark(run)


def test_micro_hmap_put_get(benchmark):
    machine = fast_machine()
    kvp = HMap.create(machine)
    for i in range(256):
        kvp.put(b"key-%04d" % i, b"value-%04d" % i)

    def run():
        kvp.put(b"key-0042", b"updated")
        kvp.get(b"key-0042")
        kvp.get(b"key-0200")

    benchmark(run)


def test_micro_cow_update(benchmark):
    machine = fast_machine()
    vsid = machine.create_segment(list(range(1, 8193)))
    rng = random.Random(1)

    def run():
        machine.write_word(vsid, rng.randrange(8192), rng.getrandbits(40))

    benchmark(run)


def test_row_buffer_locality(benchmark, report_dir):
    def run():
        # HICAMP: a lookup-dominated phase (bulk content installation)
        machine = fast_machine()
        rng = random.Random(2)
        for _ in range(300):
            machine.create_segment(
                [rng.getrandbits(62) | 1 for _ in range(64)])
        machine.drain()
        hicamp_rate = machine.mem.store.rows.hit_rate()
        hicamp_energy = machine.mem.store.rows.energy_nj()

        # conventional: the same content streamed through the hierarchy
        from repro.memory.conventional import Arena, ConventionalMemory
        from repro.params import ConventionalConfig
        conv = ConventionalMemory(ConventionalConfig())
        arena = Arena()
        for _ in range(300):
            addr = arena.alloc(64 * 8)
            conv.store(addr, 64 * 8)
        conv.drain()
        conv_rate = conv.rows.hit_rate()
        return hicamp_rate, hicamp_energy, conv_rate

    hicamp_rate, hicamp_energy, conv_rate = benchmark.pedantic(
        run, rounds=1, iterations=1)
    text = format_table(
        ["metric", "HICAMP lookup phase", "conventional stream"],
        [["row-buffer hit rate", round(hicamp_rate, 3), round(conv_rate, 3)]],
        title="Section 3.1 claim: lookup DRAM commands stay in one row "
              "(hash bucket = DRAM row)")
    text += ("\nHICAMP DRAM energy estimate for the phase: %.1f uJ"
             % (hicamp_energy / 1000))
    emit(report_dir, "row_buffer_locality", text)
    # each lookup bundles signature + data accesses in one row, so a
    # lookup-heavy phase must show substantial open-row locality
    assert hicamp_rate > 0.25
