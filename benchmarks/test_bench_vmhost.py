"""Figures 9 and 10 — VM-hosting memory consumption.

Paper shape (64-byte HICAMP lines): for every VMmark role, memory
consumption scales with VM count in the order

    allocated > ideal page sharing > HICAMP,

with HICAMP compacting individual-role groups by 1.86x-10.87x against
1.44x-5.21x for ideal page sharing (Figure 9), and whole tiles by more
than 3.55x against ~1.8x (Figure 10).
"""

from conftest import emit

from repro.analysis.experiments import run_figure9, run_figure10


def test_figure9_vm_memory_by_role(benchmark, report_dir):
    result = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    emit(report_dir, "figure9_vm_roles", result.text)
    measurements = result.data["measurements"]

    for role, series in measurements.items():
        last = series[-1]
        # ordering at 10 VMs: allocated > page sharing >= HICAMP bytes
        assert last.allocated_bytes > last.page_sharing_bytes
        assert last.hicamp_bytes <= last.page_sharing_bytes * 1.15, role
        # compaction grows with VM count
        assert last.hicamp_compaction > series[0].hicamp_compaction, role
    # the paper's per-role compaction range at full scale: 1.86x-10.87x
    # for HICAMP vs 1.44x-5.21x for page sharing; require the bands to
    # overlap ours
    hicamp_x = [series[-1].hicamp_compaction
                for series in measurements.values()]
    ps_x = [series[-1].page_sharing_compaction
            for series in measurements.values()]
    assert max(hicamp_x) > 4.0 and min(hicamp_x) > 1.5
    assert max(hicamp_x) > max(ps_x)


def test_figure10_vm_memory_by_tile(benchmark, report_dir):
    result = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    emit(report_dir, "figure10_vm_tiles", result.text)
    series = result.data["series"]

    last = series[-1]
    # paper: tiles compact > 3.55x under HICAMP vs ~1.8x page sharing
    assert last.hicamp_compaction > 3.0
    assert last.hicamp_compaction > last.page_sharing_compaction * 1.5
    # monotone growth of both compactions with tile count
    assert last.hicamp_compaction > series[0].hicamp_compaction
