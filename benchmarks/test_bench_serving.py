"""Serving layer — the memcached on a real socket, end to end.

Not a paper table: this bench closes the loop on §5.1.1 by measuring
the whole serving stack (asyncio TCP front end, streaming frame decoder,
shard router, per-shard commit queues with batched merge-commits) under
a pipelined multi-client load, and reports the counters the paper's
argument predicts: merge-commits absorbing lost CAS races with zero
application retries.
"""

from conftest import emit

from repro.analysis.experiments import run_serving


def test_serving_loadgen(benchmark, report_dir, scale):
    result = benchmark.pedantic(run_serving, args=(scale,),
                                rounds=1, iterations=1)
    emit(report_dir, "serving", result.text)
    assert result.data["ops"] > 0
    assert result.data["ops_per_second"] > 0
    # pipelining really happened end to end
    assert result.data["pipelined_requests"] > 0
    # lost CAS races were absorbed by merge-update, not client retries
    assert result.data["merge_commits"] > 0
    # and the observable values stayed oracle-consistent throughout
    assert result.data["oracle_mismatches"] == 0
    assert result.data["pending_at_shutdown"] == 0
