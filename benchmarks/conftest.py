"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
writes its rendered output under ``benchmarks/out/`` (and to stdout when
run with ``-s``). Set ``REPRO_SCALE=2`` (or higher) to enlarge workloads
toward the paper's sizes; the default keeps the whole suite laptop-fast.
"""

import os
import pathlib

import pytest

SCALE = int(os.environ.get("REPRO_SCALE", "1"))
OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def scale() -> int:
    """Workload scale multiplier (REPRO_SCALE env var)."""
    return SCALE


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    """Directory where rendered tables/figures land."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered experiment and persist it."""
    print()
    print(text)
    (report_dir / (name + ".txt")).write_text(text + "\n")
