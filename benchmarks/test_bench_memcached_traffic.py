"""Figure 6 — memcached DRAM accesses, conventional vs HICAMP, at
16/32/64-byte lines, split by category.

Paper shape: the conventional bars show Reads + Writes; the HICAMP bars
add Lookups, Deallocation and RC on top of smaller Reads/Writes, and the
HICAMP total is *comparable or smaller* at every line size, with the
margin growing at larger lines. Workload: preloaded Facebook-page-like
items, power-law request stream (scaled from the paper's 100K items /
15K requests; see EXPERIMENTS.md).
"""

from conftest import emit

from repro.analysis.experiments import FIGURE6_LINE_SIZES, run_figure6


def test_figure6_memcached_dram_accesses(benchmark, scale, report_dir):
    result = benchmark.pedantic(lambda: run_figure6(scale), rounds=1,
                                iterations=1)
    emit(report_dir, "figure6_memcached_traffic", result.text)
    results, ratios = result.data["results"], result.data["ratios"]

    for ls, ratio in ratios:
        # "the number of off-chip DRAM accesses for HICAMP is comparable
        # or smaller than for a conventional memory system"
        assert ratio <= 1.1, \
            "HICAMP should be comparable or smaller at LS=%d" % ls
    # conventional has no dedup machinery
    for ls in FIGURE6_LINE_SIZES:
        d = results[ls]["conventional"].dram
        assert d.lookups == d.dealloc == d.refcount == 0
        h = results[ls]["hicamp"].dram
        assert h.lookups > 0 and h.refcount > 0


def test_traffic_tracks_dedup_opportunity(benchmark, scale, report_dir):
    """Ablation: HICAMP's traffic advantage follows the workload's
    redundancy. The high-sharing corpus (facebook) should beat the
    high-entropy one (images) on the HICAMP/conventional ratio — the
    Table 1 compaction axis showing up in Figure 6's metric."""
    from repro.analysis.reporting import format_table
    from repro.apps.memcached.harness import figure6_row
    from repro.workloads.traces import generate_workload

    def run():
        out = {}
        for dataset in ("facebook", "images"):
            workload = generate_workload(dataset, n_requests=200 * scale,
                                         seed=5, n_items=40 * scale)
            row = figure6_row(workload, 32)
            conv = row["conventional"].dram.total()
            hic = row["hicamp"].dram.total()
            out[dataset] = (conv, hic, hic / max(1, conv))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, conv, hic, round(ratio, 2)]
            for name, (conv, hic, ratio) in results.items()]
    text = format_table(
        ["dataset", "conventional", "hicamp", "ratio"], rows,
        title="Ablation: memcached traffic ratio vs workload redundancy "
              "(LS=32)")
    from conftest import emit
    emit(report_dir, "ablation_traffic_by_dataset", text)

    assert results["facebook"][2] < results["images"][2], \
        "dedup-rich workloads should benefit more"
    # even on high-entropy data HICAMP stays in the same ballpark
    assert results["images"][2] < 1.6
