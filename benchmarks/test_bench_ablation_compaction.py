"""Ablation — path and data compaction (section 3.2).

Not a paper table, but the paper motivates both compactions as the
mechanisms that make sparse segments cheap ("in a segment that contains
a large number of zeroes, the interior nodes are compacted to provide an
efficient sparse representation"). This bench quantifies each flag's
contribution on three representative contents:

* a very sparse array (path compaction's regime);
* a dense array of small integers (data compaction's regime);
* a memcached text corpus (where neither dominates — dedup does).
"""

import random

from conftest import emit

from repro import Machine, MachineConfig, MemoryConfig
from repro.analysis.reporting import format_table
from repro.params import CacheGeometry
from repro.structures.anon import AnonSegment
from repro.workloads.text import corpus_for_dataset


def machine_with(path: bool, data: bool) -> Machine:
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=16, num_buckets=1 << 14,
                            data_ways=12, overflow_lines=1 << 20),
        cache=CacheGeometry(size_bytes=256 * 1024, ways=16, line_bytes=16),
        path_compaction=path, data_compaction=data,
    ))


def _sparse_words(rng):
    return {rng.randrange(1 << 20): rng.getrandbits(60) | 1
            for _ in range(64)}


def _run():
    rng = random.Random(0)
    sparse_updates = _sparse_words(rng)
    small_ints = [rng.randrange(1, 200) for _ in range(4096)]
    corpus = corpus_for_dataset("scripts", seed=0, n_items=20)

    rows = []
    for path in (True, False):
        for data in (True, False):
            machine = machine_with(path, data)
            v = machine.create_segment([])
            machine.write_words(v, sparse_updates)
            sparse_lines = machine.footprint_lines()

            machine2 = machine_with(path, data)
            machine2.create_segment(small_ints)
            dense_lines = machine2.footprint_lines()

            machine3 = machine_with(path, data)
            for key, value in corpus.items.items():
                AnonSegment.from_bytes(machine3.mem, key)
                AnonSegment.from_bytes(machine3.mem, value)
            text_lines = machine3.footprint_lines()

            rows.append([path, data, sparse_lines, dense_lines, text_lines])
    return rows


def test_ablation_compaction(benchmark, report_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = format_table(
        ["path_comp", "data_comp", "sparse64 lines", "smallint4k lines",
         "corpus lines"],
        rows,
        title="Ablation: path/data compaction contribution to footprint "
              "(16B lines)")
    emit(report_dir, "ablation_compaction", text)

    by_flags = {(r[0], r[1]): r for r in rows}
    both = by_flags[(True, True)]
    no_path = by_flags[(False, True)]
    no_data = by_flags[(True, False)]
    neither = by_flags[(False, False)]
    # path compaction dominates the sparse case
    assert both[2] < no_path[2]
    assert no_path[2] / max(1, both[2]) > 2.0
    # data compaction dominates the small-int case
    assert both[3] < no_data[3]
    # the text corpus barely cares about either (dedup does the work)
    assert neither[4] < both[4] * 1.3
