"""Seeded permutation properties: construction order cannot leak.

The HICAMP canonical-form argument (§3.2) says a structure's root is a
pure function of its logical contents. These properties pin that down
per structure: ``put_many`` and one-at-a-time puts, over seeded
shuffles of the same key set, must produce byte-identical roots and
machine fingerprints — and tearing any of them down must leave the
machine refcount-audit clean at its baseline footprint.
"""

import random

import pytest

from repro.core.machine import Machine
from repro.structures.hmap import HMap
from repro.structures.hmatrix import QuadTreeMatrix
from repro.structures.hordered import HOrderedCollection
from repro.structures.hsorted import HSortedMap
from repro.testing import audit_machine

ITEMS = [(b"key-%03d" % i, b"value-%d-" % (i % 5) * (1 + i % 4))
         for i in range(40)]


def shuffled(seed):
    rng = random.Random(seed)
    items = list(ITEMS)
    rng.shuffle(items)
    return items


def observe(build):
    """Build on a fresh machine; fingerprint, audit, tear down."""
    machine = Machine()
    baseline = (machine.footprint_lines(), machine.footprint_bytes())
    target, vsids = build(machine)
    machine.drain()
    fingerprints = tuple(machine.segment_fingerprint(v) for v in vsids)
    audit = audit_machine(machine, strict=True)
    assert audit.ok, audit.failures
    target.drop()
    machine.drain()
    assert (machine.footprint_lines(),
            machine.footprint_bytes()) == baseline
    assert audit_machine(machine, strict=True).ok
    return fingerprints


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_hmap_orders_and_bulk_agree(seed):
    def sequential(machine):
        hmap = HMap.create(machine)
        for key, value in shuffled(seed):
            hmap.put(key, value)
        return hmap, [hmap.vsid]

    def bulk(machine):
        hmap = HMap.create(machine)
        hmap.put_many(shuffled(seed * 101 + 7))
        return hmap, [hmap.vsid]

    def reference(machine):
        hmap = HMap.create(machine)
        for key, value in ITEMS:
            hmap.put(key, value)
        return hmap, [hmap.vsid]

    assert observe(sequential) == observe(bulk) == observe(reference)


@pytest.mark.parametrize("seed", [4, 5])
def test_hsorted_insertion_order_is_invisible(seed):
    def build(order):
        def inner(machine):
            smap = HSortedMap.create(machine)
            for key, value in order:
                smap.put(key, value)
            return smap, [smap.kvp.vsid, smap.index_vsid]
        return inner

    assert observe(build(shuffled(seed))) == observe(build(ITEMS))


@pytest.mark.parametrize("seed", [6, 7])
def test_hordered_insertion_order_is_invisible(seed):
    entries = [(1 + i * 17, b"payload-%d" % (i % 3)) for i in range(30)]

    def build(order):
        def inner(machine):
            coll = HOrderedCollection.create(machine)
            for ts, payload in order:
                coll.insert(ts, payload)
            return coll, [coll.vsid]
        return inner

    rng = random.Random(seed)
    permuted = list(entries)
    rng.shuffle(permuted)
    assert observe(build(permuted)) == observe(build(entries))


@pytest.mark.parametrize("seed", [8, 9])
def test_hmatrix_coo_order_is_invisible(seed):
    cells = random.Random(0).sample(
        [(row, col) for row in range(16) for col in range(16)], 24)
    triples = [(row, col, float(1 + i % 5))
               for i, (row, col) in enumerate(cells)]

    def build(order):
        def inner(machine):
            matrix = QuadTreeMatrix.from_coo(machine, 16, 16, order)
            return matrix, [matrix.vsid]
        return inner

    rng = random.Random(seed)
    permuted = list(triples)
    rng.shuffle(permuted)
    assert observe(build(permuted)) == observe(build(triples))


def test_delete_then_reinsert_restores_the_exact_root():
    # history independence across *mutation*, not just construction
    def pristine(machine):
        hmap = HMap.create(machine)
        hmap.put_many(ITEMS)
        return hmap, [hmap.vsid]

    def churned(machine):
        hmap = HMap.create(machine)
        hmap.put_many(ITEMS)
        for key, _ in ITEMS[::3]:
            hmap.delete(key)
        for key, value in reversed(ITEMS[::3]):
            hmap.put(key, value)
        return hmap, [hmap.vsid]

    assert observe(pristine) == observe(churned)
