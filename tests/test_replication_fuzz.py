"""The replication fuzz profile: fault-injected episodes must converge.

The harness drives a seeded write script at a leader while the
replication link suffers injected connection resets and read splits,
heals the link, and then requires exact per-stream fingerprint
convergence plus strict audits of both machines. Episode traces are a
pure function of the seed so failures replay exactly.
"""

from repro.replication.fuzz import (
    ReplicationEpisodeConfig,
    ReplicationEpisodeResult,
    ReplicationFuzzReport,
    run_episode,
    run_fuzz,
)


class TestReplicationEpisodes:
    def test_faulted_episodes_converge(self):
        cfg = ReplicationEpisodeConfig(ops=40, shards=2)
        report = run_fuzz(episodes=2, seed=7, cfg=cfg)
        assert report.ok, report.render(verbose=True)
        for result in report.episodes:
            assert "converged=yes" in result.trace
            assert "audits=ok" in result.trace

    def test_trace_is_pure_function_of_seed(self):
        cfg = ReplicationEpisodeConfig(ops=30, shards=2)
        first = run_episode(123, cfg)
        second = run_episode(123, cfg)
        assert first.trace == second.trace
        assert first.ok and second.ok

    def test_distinct_seeds_give_distinct_scripts(self):
        cfg = ReplicationEpisodeConfig(ops=30, shards=2)
        assert run_episode(1, cfg).trace != run_episode(2, cfg).trace


class TestReport:
    def test_failed_seed_names_reproduction_command(self):
        report = ReplicationFuzzReport(episodes=[ReplicationEpisodeResult(
            seed=41, ok=False, trace=["episode seed=41", "result=FAILED"],
            failures=["follower never converged"],
            leader_metrics={}, follower_metrics={})])
        rendered = report.render()
        assert not report.ok and report.failed_seeds == [41]
        assert "repro fuzz --profile replication --episodes 1 --seed 41" \
            in rendered
        assert "follower never converged" in rendered

    def test_passing_report_is_compact(self):
        cfg = ReplicationEpisodeConfig(ops=10, shards=1)
        report = run_fuzz(episodes=1, seed=5, cfg=cfg)
        assert report.ok
        assert "failed=0" in report.render()
