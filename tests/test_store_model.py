"""Model-based property tests of the deduplicating store and structures.

The store is checked against a reference multiset: after any sequence of
lookups and releases, the set of allocated lines must equal the set of
live contents, refcounts must match the model's counts, and the
footprint must equal the number of unique live contents.
"""

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.memory.dedup_store import DedupStore
from repro.params import MemoryConfig

SETTINGS = settings(
    max_examples=30,
    stateful_step_count=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

content_strategy = st.tuples(
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=7),
)


class StoreModel(RuleBasedStateMachine):
    """Lookup/release sequences vs a reference refcount map."""

    def __init__(self):
        super().__init__()
        self.store = DedupStore(MemoryConfig(
            line_bytes=16, num_buckets=64, data_ways=4,
            overflow_lines=4096))
        self.model = Counter()  # content -> live reference count
        self.plids = {}         # content -> plid

    @rule(content=content_strategy)
    def lookup(self, content):
        plid, created = self.store.lookup(content)
        if content == (0, 0):
            assert plid == 0 and not created
            return
        if self.model[content] == 0:
            assert created
        else:
            assert not created
            assert plid == self.plids[content]
        self.model[content] += 1
        self.plids[content] = plid

    @rule(content=content_strategy)
    def release(self, content):
        if self.model[content] == 0:
            return
        self.store.decref(self.plids[content])
        self.model[content] -= 1
        if self.model[content] == 0:
            del self.model[content]
            del self.plids[content]

    @invariant()
    def footprint_matches_model(self):
        live = {c for c, n in self.model.items() if n > 0}
        assert self.store.footprint_lines() == len(live)

    @invariant()
    def refcounts_match_model(self):
        for content, count in self.model.items():
            assert self.store.refcount(self.plids[content]) == count

    @invariant()
    def contents_readable(self):
        for content, plid in self.plids.items():
            assert self.store.peek(plid) == content


TestStoreModel = StoreModel.TestCase
TestStoreModel.settings = SETTINGS


class TestConcurrentStress:
    """Randomized scheduler stress: merged counter updates never lose."""

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n_tasks=st.integers(min_value=2, max_value=6),
           n_ops=st.integers(min_value=1, max_value=8))
    def test_counter_sums_exact(self, seed, n_tasks, n_ops):
        from repro import Machine, MachineConfig, MemoryConfig
        from repro.concurrency import Scheduler
        from repro.params import CacheGeometry
        from repro.structures import HCounterArray

        machine = Machine(MachineConfig(
            memory=MemoryConfig(line_bytes=16, num_buckets=1 << 12,
                                data_ways=12, overflow_lines=1 << 16),
            cache=CacheGeometry(size_bytes=64 * 1024, ways=8, line_bytes=16),
        ))
        counters = HCounterArray.create(machine, 4)

        def worker(wid):
            for i in range(n_ops):
                counters.add((wid + i) % 4, 1)
                yield

        sched = Scheduler(seed=seed)
        for w in range(n_tasks):
            sched.spawn("w%d" % w, worker(w))
        sched.run()
        assert sum(counters.snapshot_values()) == n_tasks * n_ops
