"""Property-based tests (hypothesis) on the core invariants:

* canonical form — any build path for the same content yields the same root;
* read-your-writes over arbitrary update sequences;
* full reclamation — releasing all roots returns the store to empty;
* merge-update — disjoint merges compose, counter merges sum;
* structure laws — HMap behaves like a dict, HQueue like a deque.
"""

from collections import deque

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Machine, MachineConfig, MemoryConfig
from repro.params import CacheGeometry
from repro.segments import dag
from repro.segments.merge import merge_roots
from repro.structures import HMap, HQueue

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fresh_machine(line_bytes=16):
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=line_bytes, num_buckets=1 << 12,
                            data_ways=12, overflow_lines=1 << 16),
        cache=CacheGeometry(size_bytes=64 * 1024, ways=8, line_bytes=line_bytes),
    ))


# Words biased toward interesting values: zeros, small ints (inline),
# 32-bit edge, large values.
word_values = st.one_of(
    st.just(0),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
)

word_lists = st.lists(word_values, min_size=0, max_size=80)


class TestCanonicalForm:
    @SETTINGS
    @given(words=word_lists, line_bytes=st.sampled_from([16, 32, 64]))
    def test_bulk_equals_incremental(self, words, line_bytes):
        machine = fresh_machine(line_bytes)
        bulk = machine.create_segment(words)
        incremental = machine.create_segment([0] * len(words))
        for i, w in enumerate(words):
            if w:
                machine.write_word(incremental, i, w)
        assert machine.segments_equal(bulk, incremental)

    @SETTINGS
    @given(words=word_lists)
    def test_roundtrip(self, words):
        machine = fresh_machine()
        vsid = machine.create_segment(words)
        assert machine.read_segment(vsid) == list(words)

    @SETTINGS
    @given(words=word_lists, updates=st.dictionaries(
        st.integers(min_value=0, max_value=100), word_values, max_size=10))
    def test_update_then_rebuild_matches(self, words, updates):
        machine = fresh_machine()
        vsid = machine.create_segment(words)
        machine.write_words(vsid, updates)
        expected = list(words) + [0] * (max(
            [len(words)] + [i + 1 for i in updates]) - len(words))
        for i, w in updates.items():
            expected[i] = w
        rebuilt = machine.create_segment(expected)
        assert machine.segments_equal(vsid, rebuilt)
        assert machine.read_segment(vsid) == expected


class TestReclamation:
    @SETTINGS
    @given(contents=st.lists(word_lists, min_size=1, max_size=6))
    def test_all_memory_reclaimed(self, contents):
        machine = fresh_machine()
        vsids = [machine.create_segment(words) for words in contents]
        for vsid in vsids:
            machine.drop_segment(vsid)
        assert machine.footprint_lines() == 0
        machine.mem.store.check_refcounts()

    @SETTINGS
    @given(words=word_lists,
           updates=st.lists(st.tuples(
               st.integers(min_value=0, max_value=60), word_values),
               max_size=12))
    def test_cow_chain_reclaims(self, words, updates):
        machine = fresh_machine()
        vsid = machine.create_segment(words)
        for offset, value in updates:
            machine.write_word(vsid, offset, value)
        machine.drop_segment(vsid)
        assert machine.footprint_lines() == 0


class TestMergeProperties:
    @SETTINGS
    @given(base=st.lists(st.integers(min_value=0, max_value=1 << 40),
                         min_size=1, max_size=40),
           mine_updates=st.dictionaries(
               st.integers(min_value=0, max_value=39),
               st.integers(min_value=0, max_value=1 << 40), max_size=6),
           theirs_updates=st.dictionaries(
               st.integers(min_value=0, max_value=39),
               st.integers(min_value=0, max_value=1 << 40), max_size=6))
    def test_counter_merge_is_sum_of_diffs(self, base, mine_updates,
                                           theirs_updates):
        machine = fresh_machine()
        mem = machine.mem
        n = len(base)
        mine = list(base)
        for i, v in mine_updates.items():
            if i < n:
                mine[i] = v
        theirs = list(base)
        for i, v in theirs_updates.items():
            if i < n:
                theirs[i] = v
        b, bh = dag.build_segment(mem, base)
        m, mh = dag.build_segment(mem, mine)
        t, th = dag.build_segment(mem, theirs)
        root, h = merge_roots(mem, (b, bh), (m, mh), (t, th))
        got = dag.gather_words(mem, root, h, 0, n)
        # The word-level rule is the spec (section 3.4, including the
        # identical-sub-DAG skip); this property checks the whole-tree
        # merge machinery against it.
        from repro.segments.merge import three_way_merge_word
        expected = [
            three_way_merge_word(base[i], mine[i], theirs[i]) for i in range(n)
        ]
        assert got == expected
        for e in (b, m, t, root):
            dag.release_entry(mem, e)
        assert mem.footprint_lines() == 0


class TestStructureLaws:
    @SETTINGS
    @given(ops=st.lists(st.tuples(
        st.sampled_from(["put", "get", "delete"]),
        st.binary(min_size=1, max_size=12),
        st.binary(max_size=20)), max_size=25))
    def test_hmap_matches_dict(self, ops):
        machine = fresh_machine()
        m = HMap.create(machine)
        model = {}
        for op, key, value in ops:
            if op == "put":
                m.put(key, value)
                model[key] = value
            elif op == "get":
                assert m.get(key) == model.get(key)
            else:
                assert m.delete(key) == (key in model)
                model.pop(key, None)
        assert len(m) == len(model)
        assert dict(m.items()) == model

    @SETTINGS
    @given(ops=st.lists(st.one_of(
        st.tuples(st.just("push"), st.binary(max_size=10)),
        st.tuples(st.just("pop"), st.just(b""))), max_size=30))
    def test_hqueue_matches_deque(self, ops):
        machine = fresh_machine()
        q = HQueue.create(machine)
        model = deque()
        for op, payload in ops:
            if op == "push":
                q.enqueue(payload)
                model.append(payload)
            else:
                expected = model.popleft() if model else None
                assert q.dequeue() == expected
