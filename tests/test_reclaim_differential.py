"""Cross-kind differentials: ``reclaim_kind`` must be invisible.

The epoch reclaimer changes *when* dead subtrees are walked, never
*what* the machine contains once quiesced. Each test here runs the
same deterministic workload under ``immediate`` and ``epoch``
reclamation and demands identical post-quiesce observables — segment
fingerprints, footprints, the refcount multiset — plus clean strict
audits, seed-identical fuzz traces, history-independence under the
epoch kind, and persistence images that exclude deferred-dead lines.
"""

import random

from repro.core.machine import Machine
from repro.core.persistence import machine_image, restore_machine
from repro.params import MachineConfig, MemoryConfig, WORD_MASK
from repro.structures import HMap
from repro.testing.auditors import audit_machine
from repro.testing.fuzz import EpisodeConfig, run_episode
from repro.testing.hi import HIConfig, verify_structure

KINDS = ("immediate", "epoch")


def _churn(machine, seed=7, rounds=200):
    """Deterministic mixed workload: map churn plus segment drops."""
    rng = random.Random(seed)
    kvp = HMap.create(machine)
    segments = []
    for i in range(rounds):
        roll = rng.random()
        if roll < 0.55:
            kvp.put(b"k%02d" % rng.randrange(12),
                    b"value-%06d" % rng.randrange(40))
        elif roll < 0.75:
            kvp.delete(b"k%02d" % rng.randrange(12))
        elif roll < 0.90 or not segments:
            tag = rng.randrange(1, 1 << 16)
            words = [((tag << 24) | w) & WORD_MASK
                     for w in range(rng.randrange(8, 120))]
            segments.append(machine.create_segment(words))
        else:
            machine.drop_segment(segments.pop(rng.randrange(len(segments))))
    for _ in range(len(segments) // 2):
        machine.drop_segment(segments.pop())
    if machine.mem.store.reclaimer is not None:
        # interleave a bounded drain like the router's batch boundary
        machine.mem.store.reclaim_advance(64)
    return kvp


def _observe(kind, seed=7):
    machine = Machine(MachineConfig(
        memory=MemoryConfig(reclaim_kind=kind)))
    kvp = _churn(machine, seed=seed)
    machine.drain()  # quiesces the reclaimer before any observation
    store = machine.mem.store
    return {
        "fingerprint": machine.segment_fingerprint(kvp.vsid).hex(),
        "footprint_lines": machine.footprint_lines(),
        "footprint_bytes": store.footprint_bytes(),
        "refcounts": sorted(store.refcount(p) for p in store.live_plids()),
        "audit": audit_machine(machine, strict=True),
        "pending": 0 if store.reclaimer is None
        else store.reclaimer.pending(),
    }


class TestPostQuiesceIdentity:
    def test_identical_observables_across_kinds(self):
        for seed in (7, 101):
            immediate = _observe("immediate", seed)
            epoch = _observe("epoch", seed)
            assert epoch["pending"] == 0  # drain really quiesced
            assert immediate["fingerprint"] == epoch["fingerprint"]
            assert immediate["footprint_lines"] == epoch["footprint_lines"]
            assert immediate["footprint_bytes"] == epoch["footprint_bytes"]
            assert immediate["refcounts"] == epoch["refcounts"]

    def test_strict_audits_clean_under_both_kinds(self):
        for kind in KINDS:
            report = _observe(kind)["audit"]
            assert report.ok, (kind, report.failures)


class TestFuzzTraceIndependence:
    def test_episode_traces_match_across_kinds(self):
        for seed in (3, 44):
            results = {
                kind: run_episode(seed, EpisodeConfig(reclaim_kind=kind))
                for kind in KINDS}
            for kind, result in results.items():
                assert result.ok, (kind, result.failures)
            assert results["immediate"].trace == results["epoch"].trace

    def test_epoch_episode_actually_deferred(self):
        result = run_episode(5, EpisodeConfig(reclaim_kind="epoch"))
        assert result.ok, result.failures
        assert result.reclaim["kind"] == "epoch"
        assert result.reclaim["deferred_total"] > 0


class TestHistoryIndependence:
    def test_hmap_hi_under_epoch_reclaim(self):
        cfg = HIConfig(schedules=6, ops=32, reclaim_kind="epoch")
        verdict = verify_structure(11, "hmap", cfg)
        assert verdict.ok, verdict.failures

    def test_fingerprints_reclaim_kind_independent(self):
        fps = {}
        for kind in KINDS:
            cfg = HIConfig(schedules=2, ops=32, reclaim_kind=kind)
            fps[kind] = verify_structure(11, "hmap", cfg).fingerprints
        assert fps["immediate"] == fps["epoch"]


class TestPersistence:
    def test_image_quiesces_and_roundtrips(self):
        machine = Machine(MachineConfig(
            memory=MemoryConfig(reclaim_kind="epoch")))
        kvp = _churn(machine, seed=23)
        store = machine.mem.store
        # park dead subtrees in the deferral queue, then image
        vsid = machine.create_segment([0xAB0000 | w for w in range(96)])
        machine.drop_segment(vsid)
        assert store.reclaimer.pending() > 0
        image = machine_image(machine)
        # imaging quiesced: deferred-dead lines never serialize
        assert store.reclaimer.pending() == 0
        assert len(image["lines"]) == machine.footprint_lines()
        assert image["config"]["reclaim_kind"] == "epoch"

        restored = restore_machine(image)
        rstore = restored.mem.store
        assert rstore.reclaimer is not None
        assert restored.footprint_lines() == machine.footprint_lines()
        assert restored.segment_fingerprint(kvp.vsid) \
            == machine.segment_fingerprint(kvp.vsid)
        assert audit_machine(restored, strict=True).ok
        # the recycled-overflow free list survives the roundtrip
        assert rstore.slots.free_overflow == store.slots.free_overflow

    def test_image_reclaim_kind_defaults_immediate(self):
        machine = Machine(MachineConfig())
        image = machine_image(machine)
        image["config"].pop("reclaim_kind")  # pre-reclaim image
        restored = restore_machine(image)
        assert restored.mem.store.reclaimer is None
