"""Unit tests for canonical segment DAGs, including compaction."""

import pytest

from repro.errors import SegmentRangeError
from repro.memory.line import Inline, PlidRef
from repro.segments import dag


def build(mem, words):
    return dag.build_segment(mem, words)


class TestBuildAndRead:
    def test_roundtrip_dense(self, mem):
        words = list(range(1000, 1100))
        root, height = build(mem, words)
        got = dag.gather_words(mem, root, height, 0, len(words))
        assert got == words

    def test_single_word(self, mem):
        root, height = build(mem, [12345678901234])
        assert height == 0
        assert dag.read_word(mem, root, height, 0) == 12345678901234

    def test_empty_is_zero(self, mem):
        root, height = build(mem, [])
        assert root == 0

    def test_all_zero_collapses(self, mem):
        root, height = build(mem, [0] * 500)
        assert root == 0
        assert mem.footprint_lines() == 0

    def test_trailing_zeros_free(self, mem):
        dense, _ = build(mem, [1, 2, 3])
        lines_before = mem.footprint_lines()
        padded, _ = build(mem, [1, 2, 3] + [0] * 1000)
        # the padded version adds no leaf lines, only (possibly) nothing
        assert mem.footprint_lines() == lines_before

    def test_out_of_range_read_raises(self, mem):
        root, height = build(mem, [1, 2])
        with pytest.raises(SegmentRangeError):
            dag.read_word(mem, root, height,
                          dag.entry_capacity(mem, height))


class TestContentUniqueness:
    def test_same_content_same_root(self, mem):
        r1, h1 = build(mem, [5, 6, 7, 8, 9])
        r2, h2 = build(mem, [5, 6, 7, 8, 9])
        assert dag.entry_key(r1) == dag.entry_key(r2)
        assert h1 == h2

    def test_different_content_different_root(self, mem):
        r1, _ = build(mem, [5, 6, 7, 8, 9])
        r2, _ = build(mem, [5, 6, 7, 8, 10])
        assert dag.entry_key(r1) != dag.entry_key(r2)

    def test_incremental_matches_bulk(self, mem):
        words = [0, 7, 0, 0, 255, 1 << 40, 0, 3, 0, 0, 0, 9]
        bulk, bh = build(mem, words)
        root, height = build(mem, [0] * len(words))
        for i, w in enumerate(words):
            if w:
                root = dag.write_words_bulk(mem, root, height, {i: w})
        assert dag.entry_key(root) == dag.entry_key(bulk)

    def test_write_then_erase_restores_root(self, mem):
        words = [1, 2, 3, 4, 5, 6, 7]
        r1, h = build(mem, words)
        r2 = dag.write_words_bulk(mem, dag.retain_entry(mem, r1) and r1, h, {3: 99})
        # note: retain above keeps r1 alive through the functional update
        r3 = dag.write_words_bulk(mem, r2, h, {3: 4})
        assert dag.entry_key(r3) == dag.entry_key(r1)


class TestSharing:
    def test_shared_suffix_shares_lines(self, mem):
        # Figure 1: a string and an aligned substring share lines.
        long_words = list(range(100, 100 + 64))
        sub_words = long_words[:32]
        r1, _ = build(mem, long_words)
        before = mem.footprint_lines()
        r2, _ = build(mem, sub_words)
        added = mem.footprint_lines() - before
        # the prefix's leaves already exist; only interior glue may differ
        assert added <= 2

    def test_repeated_blocks_dedup(self, mem):
        block = [11, 22, 33, 44, 55, 66, 77, 88]
        r1, _ = build(mem, block * 16)
        w = mem.words_per_line
        # unique leaf lines: only the distinct blocks
        assert mem.footprint_lines() < 16 * len(block) // w


class TestPathCompaction:
    def test_single_value_deep_is_one_line(self, mem):
        root, height = build(mem, [0] * 4095 + [1 << 50])
        assert isinstance(root, PlidRef)
        assert root.path  # compacted path to the single leaf
        assert mem.footprint_lines() == 1

    def test_path_read_hits_and_misses(self, mem):
        root, height = build(mem, [0] * 100 + [1 << 50] + [0] * 27)
        assert dag.read_word(mem, root, height, 100) == 1 << 50
        assert dag.read_word(mem, root, height, 99) == 0
        assert dag.read_word(mem, root, height, 101) == 0


class TestDataCompaction:
    def test_small_ints_inline(self, mem):
        root, height = build(mem, [1, 2, 3, 4])
        assert isinstance(root, Inline)
        assert mem.footprint_lines() == 0  # fully inlined, no lines at all

    def test_two_32bit_values_pack(self, mem):
        root, _ = build(mem, [0xAAAA_BBBB, 0xCCCC_DDDD])
        assert isinstance(root, Inline)
        assert root.width == 4

    def test_wide_values_do_not_inline(self, mem):
        root, _ = build(mem, [1 << 40, 1 << 40])
        assert isinstance(root, PlidRef)

    def test_inline_reads_back(self, mem):
        words = [9, 8, 7, 6, 5, 0, 0, 1]
        root, height = build(mem, words)
        assert dag.gather_words(mem, root, height, 0, 8) == words


class TestGrow:
    def test_grow_preserves_content(self, mem):
        words = list(range(50, 70))
        root, height = build(mem, words)
        grown = dag.grow_entry(mem, root, height, height + 3)
        got = dag.gather_words(mem, grown, height + 3, 0, len(words))
        assert got == words

    def test_grow_is_canonical(self, mem):
        words = list(range(50, 70))
        r1, h = build(mem, words)
        grown = dag.grow_entry(mem, r1, h, h + 2)
        r2 = dag.build_entry(mem, words, h + 2)
        assert dag.entry_key(grown) == dag.entry_key(r2)


class TestIterNonzero:
    def test_sparse_iteration(self, mem):
        updates = {3: 30, 77: 70, 500: 5, 1023: 11}
        root, height = build(mem, [0] * 1024)
        height = dag.height_for(mem, 1024)
        root = dag.write_words_bulk(mem, 0, height, updates)
        found = list(dag.iter_nonzero(mem, root, height))
        assert found == sorted(updates.items())

    def test_start_and_stop(self, mem):
        root, height = build(mem, list(range(1, 33)))
        found = list(dag.iter_nonzero(mem, root, height, start=10, stop=13))
        assert found == [(10, 11), (11, 12), (12, 13)]

    def test_zero_segment_yields_nothing(self, mem):
        assert list(dag.iter_nonzero(mem, 0, 3)) == []


class TestRefcountHygiene:
    def test_release_reclaims_everything(self, mem):
        root, _ = build(mem, list(range(1000, 1300)))
        dag.release_entry(mem, root)
        assert mem.footprint_lines() == 0

    def test_cow_update_shares_then_reclaims(self, mem):
        words = list(range(2000, 2128))
        r1, h = build(mem, words)
        dag.retain_entry(mem, r1)
        r2 = dag.write_words_bulk(mem, r1, h, {0: 1})
        # both versions alive, mostly shared
        total = mem.footprint_lines()
        dag.release_entry(mem, r2)
        dag.release_entry(mem, r1)
        assert mem.footprint_lines() == 0
        mem.store.check_refcounts()

    def test_leaf_refs_keep_subobjects_alive(self, mem):
        value, _ = build(mem, list(range(3000, 3040)))
        holder = dag.write_words_bulk(mem, 0, 2, {1: value})
        # stored words are borrowed: the holder's leaf took its own
        # reference, so the creator releases its handle ...
        dag.release_entry(mem, value)
        assert mem.footprint_lines() > 0  # value kept alive by holder
        # ... and dropping the holder reclaims the value transitively.
        dag.release_entry(mem, holder)
        assert mem.footprint_lines() == 0
