"""Unit tests for the Machine facade."""

import pytest

from repro import Machine, IteratorStateError
from repro.errors import ReadOnlyError


class TestSegments:
    def test_create_read_roundtrip(self, machine):
        vsid = machine.create_segment([3, 1, 4, 1, 5])
        assert machine.read_segment(vsid) == [3, 1, 4, 1, 5]
        assert machine.segment_length(vsid) == 5

    def test_equality_is_content_based(self, machine):
        a = machine.create_segment([1, 2, 3])
        b = machine.create_segment([1, 2, 3])
        c = machine.create_segment([1, 2, 4])
        assert machine.segments_equal(a, b)
        assert not machine.segments_equal(a, c)

    def test_equality_distinguishes_lengths(self, machine):
        a = machine.create_segment([1, 2])
        b = machine.create_segment([1, 2, 0])
        assert not machine.segments_equal(a, b)

    def test_write_word_cow(self, machine):
        a = machine.create_segment([1, 2, 3])
        b = machine.create_segment([1, 2, 3])
        machine.write_word(a, 0, 9)
        assert machine.read_segment(a) == [9, 2, 3]
        assert machine.read_segment(b) == [1, 2, 3]

    def test_append_grows(self, machine):
        a = machine.create_segment(list(range(10)))
        machine.append_words(a, [100, 101])
        assert machine.segment_length(a) == 12
        assert machine.read_word(a, 11) == 101

    def test_read_past_length_is_zero(self, machine):
        a = machine.create_segment([1])
        assert machine.read_word(a, 5) == 0

    def test_drop_reclaims(self, machine):
        a = machine.create_segment(list(range(1000)))
        machine.drop_segment(a)
        assert machine.footprint_lines() == 0

    def test_dedup_across_segments(self, machine):
        machine.create_segment(list(range(500, 628)))
        lines = machine.footprint_lines()
        machine.create_segment(list(range(500, 628)))
        assert machine.footprint_lines() == lines


class TestSnapshotApi:
    def test_snapshot_is_stable(self, machine):
        vsid = machine.create_segment([1, 2, 3])
        with machine.snapshot(vsid) as snap:
            machine.write_word(vsid, 0, 9)
            assert snap.read(0) == 1
            assert snap.words() == [1, 2, 3]
        assert machine.read_word(vsid, 0) == 9

    def test_snapshot_key_compares_content(self, machine):
        a = machine.create_segment([5, 6])
        b = machine.create_segment([5, 6])
        with machine.snapshot(a) as sa, machine.snapshot(b) as sb:
            assert sa.key() == sb.key()

    def test_snapshot_release_idempotent(self, machine):
        vsid = machine.create_segment([1])
        snap = machine.snapshot(vsid)
        snap.release()
        snap.release()

    def test_read_range(self, machine):
        vsid = machine.create_segment(list(range(40)))
        with machine.snapshot(vsid) as snap:
            assert snap.read_range(10, 5) == [10, 11, 12, 13, 14]
            assert snap.read_range(38, 10) == [38, 39]

    def test_iter_nonzero(self, machine):
        vsid = machine.create_segment([0, 5, 0, 0, 7])
        with machine.snapshot(vsid) as snap:
            assert list(snap.iter_nonzero()) == [(1, 5), (4, 7)]


class TestIteratorPool:
    def test_registers_are_finite(self, machine):
        held = [machine.iterator() for _ in range(
            machine.config.iterator_registers)]
        with pytest.raises(IteratorStateError):
            machine.iterator()
        for it in held:
            machine.release_iterator(it)
        machine.iterator()  # works again

    def test_release_resets(self, machine):
        vsid = machine.create_segment([1, 2])
        it = machine.iterator(vsid)
        machine.release_iterator(it)
        assert it.vsid is None


class TestReadOnlySharing:
    def test_share_read_only_blocks_writes(self, machine):
        vsid = machine.create_segment([1, 2, 3])
        ro = machine.share_read_only(vsid)
        with pytest.raises(ReadOnlyError):
            machine.write_word(ro, 0, 9)
        assert machine.read_segment(ro) == [1, 2, 3]


class TestAtomicUpdate:
    def test_applies_update(self, machine):
        vsid = machine.create_segment([10, 20])

        def bump(it):
            it.put(it.get(0) + 1, offset=0)

        machine.atomic_update(vsid, bump)
        assert machine.read_word(vsid, 0) == 11

    def test_retries_on_interference(self, machine):
        vsid = machine.create_segment([10, 20])
        poked = []

        def bump(it):
            if not poked:
                # simulate interference after the snapshot was taken
                machine.write_word(vsid, 1, 99)
                poked.append(True)
            it.put(it.get(0) + 1, offset=0)

        machine.atomic_update(vsid, bump)
        assert machine.read_segment(vsid) == [11, 99]
