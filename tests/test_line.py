"""Unit tests for the tagged-word line model."""

import pytest

from repro.memory.line import (
    Inline,
    PlidRef,
    encode_line,
    encode_word,
    is_zero_line,
    line_child_plids,
    make_leaf,
    pack_words,
    unpack_words,
    zero_line,
)


class TestZeroLine:
    def test_zero_line_width(self):
        assert zero_line(2) == (0, 0)
        assert zero_line(8) == (0,) * 8

    def test_is_zero_line(self):
        assert is_zero_line((0, 0))
        assert not is_zero_line((0, 1))
        assert not is_zero_line((PlidRef(3), 0))


class TestMakeLeaf:
    def test_pads_right(self):
        assert make_leaf([1, 2], 4) == (1, 2, 0, 0)

    def test_full(self):
        assert make_leaf([1, 2, 3, 4], 4) == (1, 2, 3, 4)

    def test_too_many_words_rejected(self):
        with pytest.raises(ValueError):
            make_leaf([1, 2, 3], 2)


class TestPlidRef:
    def test_default_empty_path(self):
        assert PlidRef(7).path == ()

    def test_hashable_and_equal(self):
        assert PlidRef(7, (1,)) == PlidRef(7, (1,))
        assert PlidRef(7, (1,)) != PlidRef(7, (2,))
        assert hash(PlidRef(7)) == hash(PlidRef(7))

    def test_not_equal_to_int(self):
        assert PlidRef(7) != 7
        assert not PlidRef(7) == 0


class TestInline:
    def test_expand_pads_span(self):
        inline = Inline(width=1, values=(5, 6), span=4)
        assert inline.expand() == (5, 6, 0, 0)

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            Inline(width=3, values=(1,), span=1)

    def test_overflow_pack_rejected(self):
        with pytest.raises(ValueError):
            Inline(width=4, values=(1, 2, 3), span=3)  # 12 bytes > 8

    def test_value_range_checked(self):
        with pytest.raises(ValueError):
            Inline(width=1, values=(256,), span=1)


class TestChildPlids:
    def test_empty_for_data_line(self):
        assert list(line_child_plids((1, 2, 3, 4))) == []

    def test_yields_refs_skipping_zero(self):
        line = (PlidRef(3), 0, PlidRef(0), PlidRef(9, (1, 0)))
        assert list(line_child_plids(line)) == [3, 9]


class TestEncoding:
    def test_data_vs_plid_distinct(self):
        # The same numeric value as data and as a reference must encode
        # differently (the tag is part of content identity).
        assert encode_word(7) != encode_word(PlidRef(7))

    def test_path_part_of_identity(self):
        assert encode_word(PlidRef(7)) != encode_word(PlidRef(7, (0,)))

    def test_inline_identity_includes_width(self):
        a = Inline(width=1, values=(1,), span=1)
        b = Inline(width=2, values=(1,), span=1)
        assert encode_word(a) != encode_word(b)

    def test_line_encoding_concatenates(self):
        line = (1, PlidRef(2))
        assert encode_line(line) == encode_word(1) + encode_word(PlidRef(2))

    def test_distinct_lines_distinct_encodings(self):
        assert encode_line((1, 2)) != encode_line((2, 1))


class TestBytePacking:
    def test_roundtrip_exact_multiple(self):
        data = bytes(range(16))
        assert unpack_words(pack_words(data), 16) == data

    def test_roundtrip_with_padding(self):
        data = b"hello"
        words = pack_words(data)
        assert len(words) == 1
        assert unpack_words(words, 5) == data

    def test_empty(self):
        assert pack_words(b"") == ()
        assert unpack_words((), 0) == b""

    def test_big_endian_layout(self):
        words = pack_words(b"\x01" + b"\x00" * 7)
        assert words == (0x0100000000000000,)
