"""Tests for the command-line interface."""

import io
import json
import sys

import pytest

from repro.cli.main import build_parser, main


class TestExperimentsCommand:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure10" in out

    def test_unknown_name_rejected(self, capsys):
        assert main(["experiments", "nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_one(self, capsys):
        assert main(["experiments", "section511"]) == 0
        out = capsys.readouterr().out
        assert "Section 5.1.1" in out
        assert "0.04" in out

    def test_out_directory(self, tmp_path, capsys):
        assert main(["experiments", "section511",
                     "--out", str(tmp_path)]) == 0
        written = (tmp_path / "section511.txt").read_text()
        assert "merge latency" in written


class TestDemoCommand:
    def test_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "root compare: True" in out
        assert "snapshot" in out


class TestBenchCommand:
    def test_hotpath_writes_report_and_passes_floor(self, tmp_path,
                                                    capsys):
        out = tmp_path / "hotpath.json"
        assert main(["bench", "hotpath", "--out", str(out),
                     "--check", "1.2"]) == 0
        import json
        report = json.loads(out.read_text())
        assert report["min_memo_speedup"] >= 1.2
        assert set(report) >= {"build", "merge", "fingerprint",
                               "bulk_ingest"}
        assert "structural memo" in capsys.readouterr().out

    def test_unreachable_floor_fails(self, tmp_path, capsys):
        assert main(["bench", "hotpath", "--json",
                     "--check", "1e9"]) == 1
        assert "below" in capsys.readouterr().err

    def test_parser_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "nonsense"])


class TestMemcachedCommand:
    def test_protocol_session(self, capsys, monkeypatch):
        script = "set k 0 0 5\nhello\nget k\ndelete k\nget k\n"
        monkeypatch.setattr(sys, "stdin", io.StringIO(script))
        assert main(["memcached"]) == 0
        out = capsys.readouterr().out
        assert "STORED" in out
        assert "VALUE k 0 5" in out
        assert "hello" in out
        assert "DELETED" in out

    def test_quota_flag(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "stdin", io.StringIO("get x\n"))
        assert main(["memcached", "--quota", "4096"]) == 0
        assert "END" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestJsonMetrics:
    def test_json_output(self, capsys):
        assert main(["experiments", "section511", "--json"]) == 0
        import json
        payload = json.loads(capsys.readouterr().out)
        assert "section511" in payload
        assert "map_update_critical_ns" in payload["section511"]

    def test_metrics_file_written(self, tmp_path, capsys):
        assert main(["experiments", "section511", "--out",
                     str(tmp_path)]) == 0
        import json
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["section511"]["total_dag_levels"] > 0


class TestCheckpointCommand:
    def test_save_then_load_roundtrip(self, tmp_path, capsys):
        path = str(tmp_path / "machine.json.gz")
        assert main(["checkpoint", "save", path]) == 0
        assert "saved %s" % path in capsys.readouterr().out
        assert main(["checkpoint", "load", path]) == 0
        out = capsys.readouterr().out
        assert "audit ok" in out

    def test_save_copies_a_source_checkpoint(self, tmp_path, capsys):
        from repro import Machine
        from repro.core.persistence import save_machine_file
        src = str(tmp_path / "src.json")
        dst = str(tmp_path / "dst.json.gz")
        machine = Machine()
        machine.create_segment(list(range(64)))
        save_machine_file(machine, src,
                          extra={"replication_streams": {"0": 1}})
        assert main(["checkpoint", "save", dst, "--source", src]) == 0
        capsys.readouterr()
        assert main(["checkpoint", "load", dst]) == 0
        out = capsys.readouterr().out
        assert "audit ok" in out and "replication streams" in out

    def test_load_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["checkpoint", "load",
                     str(tmp_path / "absent.json")]) == 1
        assert "cannot load" in capsys.readouterr().err


class TestMetricsCommand:
    def _server(self):
        import asyncio
        import threading

        from repro.net.server import MemcachedServer

        started = threading.Event()
        box = {}

        def run():
            async def go():
                server = MemcachedServer(port=0, shard_count=1)
                await server.start()
                box["port"] = server.port
                box["stop"] = asyncio.Event()
                box["loop"] = asyncio.get_running_loop()
                started.set()
                await box["stop"].wait()
                await server.shutdown()

            asyncio.run(go())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        started.wait(5)
        return box, thread

    def test_scrapes_prometheus_exposition(self, capsys):
        from repro.obs.registry import parse_exposition, sample

        box, thread = self._server()
        try:
            assert main(["metrics", "--port", str(box["port"])]) == 0
            out = capsys.readouterr().out
            parsed = parse_exposition(out)
            assert sample(parsed, "repro_server_shards") == 1
            assert ("repro_dram_accesses_total",
                    (("category", "lookups"),)) in parsed
        finally:
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(5)

    def test_json_format(self, capsys):
        import json

        box, thread = self._server()
        try:
            assert main(["metrics", "--port", str(box["port"]),
                         "--format", "json"]) == 0
            snap = json.loads(capsys.readouterr().out)
            assert snap["shards"] == 1
        finally:
            box["loop"].call_soon_threadsafe(box["stop"].set)
            thread.join(5)

    def test_unreachable_server_fails_cleanly(self, capsys):
        # a port from the ephemeral range with nothing listening
        assert main(["metrics", "--port", "1", "--timeout", "0.5"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestTraceCommand:
    def _trace_file(self, tmp_path):
        from repro.obs.trace import StepClock, TraceRecorder

        rec = TraceRecorder(clock=StepClock())
        a = rec.begin("request", conn=1, command="set")
        b = rec.begin("commit_batch", parent=a, shard=0)
        rec.end(b)
        rec.end(a)
        path = tmp_path / "trace.jsonl"
        rec.write_jsonl(path)
        return str(path)

    def test_renders_span_tree(self, tmp_path, capsys):
        assert main(["trace", self._trace_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "request" in out and "commit_batch" in out

    def test_chrome_export(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "chrome.json"
        assert main(["trace", self._trace_file(tmp_path),
                     "--chrome", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert len(doc["traceEvents"]) == 2

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot load" in capsys.readouterr().err


class TestFuzzProfiles:
    def test_parser_accepts_both_profiles(self):
        parser = build_parser()
        assert parser.parse_args(["fuzz"]).profile == "serving"
        args = parser.parse_args(["fuzz", "--profile", "replication"])
        assert args.profile == "replication"

    def test_parser_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--profile", "bogus"])

    def test_replication_profile_runs_an_episode(self, capsys):
        assert main(["fuzz", "--profile", "replication", "--episodes", "1",
                     "--seed", "0", "--ops", "15"]) == 0
        out = capsys.readouterr().out
        assert "replication fuzz episodes=1 ok=1 failed=0" in out


class TestHiAndScaleCli:
    def test_parser_accepts_new_profiles_and_target(self):
        parser = build_parser()
        assert parser.parse_args(["fuzz", "--profile", "hi"]).profile \
            == "hi"
        args = parser.parse_args(["fuzz", "--profile", "expiry"])
        assert args.profile == "expiry"
        args = parser.parse_args(["bench", "scale", "--smoke",
                                  "--check", "200"])
        assert args.target == "scale"
        assert args.smoke and args.check == 200.0

    def test_hi_profile_runs_an_episode(self, capsys):
        assert main(["fuzz", "--profile", "hi", "--episodes", "1",
                     "--seed", "0", "--schedules", "3"]) == 0
        out = capsys.readouterr().out
        assert "hi episodes=1 ok=1 failed=0" in out

    def test_expiry_profile_runs_an_episode(self, capsys):
        assert main(["fuzz", "--profile", "expiry", "--episodes", "1",
                     "--seed", "0", "--ops", "12"]) == 0
        out = capsys.readouterr().out
        assert "fuzz episodes=1 ok=1 failed=0" in out

    def test_bench_scale_writes_report_and_checks_floor(self, tmp_path,
                                                        capsys):
        out = tmp_path / "scale.json"
        assert main(["bench", "scale", "--smoke", "--keys", "2000",
                     "--workers", "2", "--check", "10",
                     "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["keys"] == 2000
        assert report["footprint"]["dedup_ratio"] > 0
        assert "populate" in capsys.readouterr().out
