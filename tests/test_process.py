"""Tests for the protected-reference process model."""

import pytest

from repro.core.process import Process, ProtectionError
from repro.errors import ReadOnlyError


@pytest.fixture
def procs(machine):
    return Process(machine, "server"), Process(machine, "client")


class TestProtection:
    def test_creator_can_access(self, procs):
        server, _ = procs
        vsid = server.create_segment([1, 2, 3])
        assert server.read_segment(vsid) == [1, 2, 3]

    def test_ungranted_access_faults(self, procs):
        server, client = procs
        vsid = server.create_segment([1, 2, 3])
        with pytest.raises(ProtectionError):
            client.read_word(vsid, 0)
        with pytest.raises(ProtectionError):
            client.write_word(vsid, 0, 9)
        with pytest.raises(ProtectionError):
            client.snapshot(vsid)

    def test_guessed_vsid_faults(self, procs):
        _, client = procs
        with pytest.raises(ProtectionError):
            client.read_word(424242, 0)

    def test_grant_shares_without_copy(self, machine, procs):
        server, client = procs
        vsid = server.create_segment(list(range(200)))
        lines = machine.footprint_lines()
        server.grant(client, vsid)
        assert machine.footprint_lines() == lines  # zero-copy sharing
        assert client.read_word(vsid, 150) == 150
        client.write_word(vsid, 0, 99)
        assert server.read_word(vsid, 0) == 99  # genuinely shared state

    def test_read_only_grant(self, procs):
        server, client = procs
        vsid = server.create_segment([1, 2])
        ro = server.grant_read_only(client, vsid)
        assert client.read_segment(ro) == [1, 2]
        with pytest.raises(ReadOnlyError):
            client.write_word(ro, 0, 5)
        # and the client still has no right to the writable VSID
        with pytest.raises(ProtectionError):
            client.write_word(vsid, 0, 5)

    def test_revoke(self, procs):
        server, client = procs
        vsid = server.create_segment([1])
        server.grant(client, vsid)
        client.revoke(vsid)
        with pytest.raises(ProtectionError):
            client.read_word(vsid, 0)
        assert server.read_word(vsid, 0) == 1

    def test_atomic_update_checked(self, procs):
        server, client = procs
        vsid = server.create_segment([10])
        with pytest.raises(ProtectionError):
            client.atomic_update(vsid, lambda it: None)
        server.atomic_update(vsid, lambda it: it.put(it.get(0) + 1, offset=0))
        assert server.read_word(vsid, 0) == 11

    def test_grant_requires_possession(self, machine, procs):
        server, client = procs
        third = Process(machine, "third")
        vsid = server.create_segment([1])
        with pytest.raises(ProtectionError):
            client.grant(third, vsid)  # cannot grant what you don't hold
