"""Cross-geometry tests: every behaviour must hold at each of the
paper's line sizes (16/32/64 B) and both PLID widths."""

import pytest

from repro import Machine, MachineConfig, MemoryConfig
from repro.params import CacheGeometry
from repro.structures import HMap, HQueue, HString


def machine_geo(line_bytes: int, plid_bytes: int) -> Machine:
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=line_bytes, num_buckets=1 << 12,
                            data_ways=12, overflow_lines=1 << 16,
                            plid_bytes=plid_bytes),
        cache=CacheGeometry(size_bytes=64 * 1024, ways=8,
                            line_bytes=line_bytes),
    ))


@pytest.fixture(params=[(16, 4), (16, 8), (32, 4), (32, 8), (64, 4), (64, 8)],
                ids=lambda p: "ls%d-plid%d" % p)
def geo_machine(request):
    return machine_geo(*request.param)


class TestGeometries:
    def test_fanout_derived(self, geo_machine):
        mem = geo_machine.mem
        assert mem.fanout == mem.line_bytes // mem.config.memory.plid_bytes
        assert mem.words_per_line == mem.line_bytes // 8

    def test_segment_roundtrip(self, geo_machine):
        words = [i * 1234567 + 1 for i in range(300)]
        vsid = geo_machine.create_segment(words)
        assert geo_machine.read_segment(vsid) == words

    def test_dedup_and_equality(self, geo_machine):
        a = geo_machine.create_segment(list(range(500, 628)))
        lines = geo_machine.footprint_lines()
        b = geo_machine.create_segment(list(range(500, 628)))
        assert geo_machine.footprint_lines() == lines
        assert geo_machine.segments_equal(a, b)

    def test_sparse_write_and_iterate(self, geo_machine):
        vsid = geo_machine.create_segment([0] * 64)
        geo_machine.write_words(vsid, {5: 50, 4000: 9})
        with geo_machine.snapshot(vsid) as snap:
            assert list(snap.iter_nonzero()) == [(5, 50), (4000, 9)]

    def test_reclamation(self, geo_machine):
        vsid = geo_machine.create_segment(list(range(1000)))
        geo_machine.write_word(vsid, 3, 999)
        geo_machine.drop_segment(vsid)
        assert geo_machine.footprint_lines() == 0
        geo_machine.mem.store.check_refcounts()

    def test_hmap_works(self, geo_machine):
        m = HMap.create(geo_machine)
        m.put(b"alpha", b"1" * 40)
        m.put(b"beta", b"2")
        assert m.get(b"alpha") == b"1" * 40
        assert m.get(b"beta") == b"2"
        assert m.delete(b"alpha")
        assert dict(m.items()) == {b"beta": b"2"}

    def test_hqueue_works(self, geo_machine):
        q = HQueue.create(geo_machine)
        for i in range(5):
            q.enqueue(b"item-%d" % i)
        assert [q.dequeue() for _ in range(5)] == \
            [b"item-%d" % i for i in range(5)]

    def test_hstring_works(self, geo_machine):
        s = HString.create(geo_machine, bytes(range(200)))
        assert s.to_bytes() == bytes(range(200))

    def test_atomic_update_with_merge(self, geo_machine):
        vsid = geo_machine.create_segment([100])

        def bump(it):
            if not getattr(bump, "poked", False):
                bump.poked = True
                geo_machine.write_word(vsid, 0, 107)
            it.put(it.get(0) + 3, offset=0)

        geo_machine.atomic_update(vsid, bump, merge=True)
        assert geo_machine.read_word(vsid, 0) == 110


class TestDagOverheadByGeometry:
    def test_dense_overhead_matches_fanout(self):
        # dense interior overhead ~ 1/(fanout-1) leaf lines
        n_words = 4096
        words = [(i * 2654435761) % (1 << 62) | 1 for i in range(n_words)]
        for line_bytes, plid_bytes in ((16, 8), (16, 4), (64, 4)):
            machine = machine_geo(line_bytes, plid_bytes)
            machine.create_segment(words)
            leaves = n_words * 8 // line_bytes
            fanout = line_bytes // plid_bytes
            expected = leaves * fanout / (fanout - 1)
            assert machine.footprint_lines() == pytest.approx(expected,
                                                              rel=0.05)
