"""Unit tests for the deterministic scheduler and the concurrency
semantics it exercises (snapshot isolation, CAS races, merge-update)."""

import pytest

from repro.concurrency import Scheduler
from repro.structures import HCounterArray, HMap, HQueue


class TestScheduler:
    def test_round_robin_interleaves(self):
        log = []

        def task(name, n):
            for i in range(n):
                log.append((name, i))
                yield

        sched = Scheduler()
        sched.spawn("a", task("a", 3))
        sched.spawn("b", task("b", 3))
        sched.run()
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_seeded_interleaving_reproducible(self):
        def task(name, log):
            for i in range(5):
                log.append(name)
                yield

        log1, log2 = [], []
        for log in (log1, log2):
            sched = Scheduler(seed=99)
            sched.spawn("a", task("a", log))
            sched.spawn("b", task("b", log))
            sched.run()
        assert log1 == log2

    def test_results_collected(self):
        def producer():
            yield
            return 42

        sched = Scheduler()
        sched.spawn("p", producer())
        sched.run()
        assert sched.results() == {"p": 42}

    def test_errors_surface(self):
        def boom():
            yield
            raise ValueError("boom")

        sched = Scheduler()
        sched.spawn("b", boom())
        with pytest.raises(ValueError):
            sched.run()

    def test_step_budget_enforced(self):
        def forever():
            while True:
                yield

        sched = Scheduler()
        sched.spawn("f", forever())
        with pytest.raises(RuntimeError):
            sched.run(max_steps=10)


class TestConcurrencySemantics:
    def test_reader_isolated_from_writer(self, machine):
        vsid = machine.create_segment(list(range(100)))
        seen = []

        def reader():
            snap = machine.snapshot(vsid)
            yield
            seen.append(snap.words())
            snap.release()

        def writer():
            yield
            for i in range(100):
                machine.write_word(vsid, i, 0)
            yield

        sched = Scheduler()
        sched.spawn("r", reader())
        sched.spawn("w", writer())
        sched.run()
        assert seen[0] == list(range(100))  # untouched by the writer

    def test_concurrent_counters_sum(self, machine):
        counters = HCounterArray.create(machine, 1)

        def adder(n):
            for _ in range(n):
                counters.add(0, 1)
                yield

        sched = Scheduler(seed=4)
        for t in range(4):
            sched.spawn("t%d" % t, adder(10))
        sched.run()
        assert counters.get(0) == 40

    def test_concurrent_map_inserts_all_land(self, machine):
        m = HMap.create(machine)

        def inserter(tag, n):
            for i in range(n):
                m.put(b"%s-%d" % (tag, i), b"v")
                yield

        sched = Scheduler(seed=11)
        sched.spawn("a", inserter(b"a", 8))
        sched.spawn("b", inserter(b"b", 8))
        sched.run()
        assert len(m) == 16
        for i in range(8):
            assert m.get(b"a-%d" % i) == b"v"
            assert m.get(b"b-%d" % i) == b"v"

    def test_concurrent_queue_producers(self, machine):
        q = HQueue.create(machine)

        def producer(tag, n):
            for i in range(n):
                q.enqueue(b"%s%d" % (tag, i))
                yield

        sched = Scheduler(seed=2)
        sched.spawn("p1", producer(b"x", 6))
        sched.spawn("p2", producer(b"y", 6))
        sched.run()
        items = set()
        while True:
            item = q.dequeue()
            if item is None:
                break
            items.add(item)
        assert items == {b"x%d" % i for i in range(6)} | {b"y%d" % i for i in range(6)}

    def test_failed_client_leaves_map_consistent(self, machine):
        # The fault-isolation story of section 4.4: a client halted at an
        # arbitrary point before its commit leaves no trace.
        m = HMap.create(machine)
        m.put(b"stable", b"1")

        def crashing_client():
            it = machine.iterator(m.vsid)
            it.put(12345, offset=7)  # scribbles into transient space
            yield
            raise RuntimeError("client crash before commit")

        sched = Scheduler()
        sched.spawn("c", crashing_client())
        with pytest.raises(RuntimeError):
            sched.run()
        assert m.get(b"stable") == b"1"
        assert machine.read_word(m.vsid, 7) == 0
