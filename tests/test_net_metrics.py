"""Deterministic ServerMetrics via an injected monotonic clock."""

import asyncio

from repro.net.metrics import ServerMetrics
from repro.net.router import ShardRouter
from repro.net.server import MemcachedServer


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, start: float = 100.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestInjectedClock:
    def test_uptime_and_rate_are_exact(self):
        clock = FakeClock()
        metrics = ServerMetrics(clock=clock)
        clock.advance(10.0)
        assert metrics.uptime_seconds == 10.0
        for _ in range(50):
            metrics.observe_request(b"get", 0.001, 8)
        assert metrics.ops_per_second == 5.0

    def test_now_is_the_injected_source(self):
        clock = FakeClock(start=7.0)
        metrics = ServerMetrics(clock=clock)
        assert metrics.now() == 7.0
        clock.advance(1.5)
        assert metrics.now() == 8.5

    def test_latency_percentiles_are_deterministic(self):
        clock = FakeClock()
        metrics = ServerMetrics(clock=clock)
        for ms in (1, 2, 3, 4, 100):
            started = metrics.now()
            clock.advance(ms / 1000.0)
            metrics.observe_request(b"get", metrics.now() - started, 8)
        latency = metrics.snapshot()["latency"]
        # exact percentile values, reproducible on every run
        a = metrics.snapshot()["latency"]
        assert a == latency
        assert latency["p50_ms"] <= latency["p99_ms"]
        assert latency["max_ms"] >= 99.9

    def test_default_clock_is_wall_time(self):
        # without injection the metrics still work off time.monotonic
        metrics = ServerMetrics()
        assert metrics.uptime_seconds > 0

    def test_two_runs_same_clock_script_same_snapshot(self):
        def run():
            clock = FakeClock()
            metrics = ServerMetrics(clock=clock)
            for i in range(20):
                started = metrics.now()
                clock.advance((i % 5 + 1) / 1000.0)
                metrics.observe_request(b"set", metrics.now() - started,
                                        16)
            clock.advance(1.0)
            return metrics.snapshot()

        assert run() == run()


class TestServerTimesThroughMetrics:
    def test_request_latencies_come_from_injected_clock(self):
        """End to end: with a frozen injected clock, every recorded
        request latency is exactly zero — the server timestamps through
        ``metrics.now()``, not wall time."""

        async def go():
            metrics = ServerMetrics(clock=FakeClock())
            router = ShardRouter(shard_count=2, metrics=metrics)
            server = MemcachedServer(port=0, router=router)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b"set k 0 0 5\r\nhello\r\nget k\r\n")
            await writer.drain()
            out = b""
            while b"END\r\n" not in out:
                out += await reader.read(1 << 16)
            writer.write(b"quit\r\n")
            await writer.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            await server.shutdown()
            return metrics, out

        metrics, out = asyncio.run(go())
        assert out.startswith(b"STORED\r\n")
        assert metrics.ops_total >= 2
        assert metrics.latency_ms() == [0.0] * metrics.ops_total


class TestPerSegmentCommitCounters:
    def test_observe_commit_accumulates_by_vsid(self):
        metrics = ServerMetrics(clock=FakeClock())
        for vsid in (3, 3, 7):
            metrics.observe_commit(vsid)
        assert metrics.commits_by_vsid == {3: 2, 7: 1}
        snap = metrics.snapshot()
        # JSON-safe: keys are strings in the snapshot
        assert snap["commits_by_vsid"] == {"3": 2, "7": 1}
        # the human `stats` listing stays flat — the per-segment map is
        # only in the structured snapshot
        assert not any(b"commits_by_vsid" in line
                       for line in metrics.stats_lines())

    def test_router_attributes_commits_to_the_shard_segment(self):
        async def go():
            metrics = ServerMetrics(clock=FakeClock())
            router = ShardRouter(shard_count=2, metrics=metrics)
            server = MemcachedServer(port=0, router=router)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            for i in range(8):
                writer.write(b"set key-%d 0 0 2\r\nhi\r\n" % i)
            await writer.drain()
            out = b""
            while out.count(b"STORED\r\n") < 8:
                out += await reader.read(1 << 16)
            await router.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            await server.shutdown()
            return metrics, router

        metrics, router = asyncio.run(go())
        assert sum(metrics.commits_by_vsid.values()) == 8
        # every counted vsid is a real shard segment
        shard_vsids = {s.kvp.vsid for s in router.servers}
        assert set(metrics.commits_by_vsid) <= shard_vsids
