"""Bulk ingest: write_words_bulk edges, put_many, the bulk commit mode.

One batch, one bottom-up rebuild, one root swap — and exactly the same
canonical structure N sequential updates would have produced. The tests
here pin the equivalence at every layer: raw DAG bulk writes, HMap /
ShardedHMap ``put_many``, and the router's ``commit_mode="bulk"``.
"""

import asyncio

from repro import Machine
from repro.memory.line import Inline, PlidRef
from repro.net.framing import FrameDecoder
from repro.net.router import ConnectionState, ShardRouter
from repro.segments import dag
from repro.structures.hmap import HMap
from repro.structures.hmap_sharded import ShardedHMap
from repro.testing.auditors import audit_machine
from tests.conftest import small_config


class TestWriteWordsBulkEdges:
    def test_sparse_bulk_equals_fresh_build(self, mem):
        height = 3
        cap = dag.entry_capacity(mem, height)
        updates = {0: 11, 1: 12, 17: 13, cap // 2: 14, cap - 1: 15}
        root = dag.write_words_bulk(mem, 0, height, updates)
        words = [0] * cap
        for index, value in updates.items():
            words[index] = value
        fresh = dag.build_entry(mem, words, height)
        assert dag.entry_key(root) == dag.entry_key(fresh)
        dag.release_entry(mem, root)
        dag.release_entry(mem, fresh)

    def test_inline_to_plidref_promotion_and_back(self, mem):
        height = 2
        # a single word at height 2 compacts to an inline (pathless) root
        sparse = dag.write_words_bulk(mem, 0, height, {0: 7})
        assert not isinstance(sparse, PlidRef) or sparse.path
        # bulk-fill full-width words (too wide to inline-compact) across
        # the whole capacity, so every child is real (no path compaction)
        big = 1 << 60
        fill = {i: big + i
                for i in range(1, dag.entry_capacity(mem, height))}
        dense = dag.write_words_bulk(mem, sparse, height, fill)
        assert isinstance(dense, PlidRef) and not dense.path
        # bulk-zero everything back across the demotion boundary: the
        # canonical form must be identical to the original sparse entry
        again = dag.write_words_bulk(mem, dense, height,
                                     {i: 0 for i in fill})
        expect = dag.write_words_bulk(mem, 0, height, {0: 7})
        assert dag.entry_key(again) == dag.entry_key(expect)
        dag.release_entry(mem, again)
        dag.release_entry(mem, expect)

    def test_updates_at_trimmed_tail(self, mem):
        height = 2
        cap = dag.entry_capacity(mem, height)
        root = dag.write_words_bulk(mem, 0, height, {0: 1, 1: 2, 2: 3})
        # write into the all-zero (trimmed) tail region, then read back
        root = dag.write_words_bulk(mem, root, height,
                                    {cap - 1: 9, cap - 2: 8})
        got = dag.gather_words(mem, root, height, 0, cap)
        assert got[:3] == [1, 2, 3]
        assert got[cap - 2:] == [8, 9]
        assert all(w == 0 for w in got[3:cap - 2])
        # zeroing the tail again restores the exact original entry
        trimmed = dag.write_words_bulk(mem, root, height,
                                       {cap - 1: 0, cap - 2: 0})
        expect = dag.write_words_bulk(mem, 0, height, {0: 1, 1: 2, 2: 3})
        assert dag.entry_key(trimmed) == dag.entry_key(expect)
        dag.release_entry(mem, trimmed)
        dag.release_entry(mem, expect)


ITEMS = [(b"key-%03d" % i, b"value-%03d-" % i * 3) for i in range(24)]


class TestHMapPutMany:
    def test_put_many_equals_sequential_puts(self):
        seq_machine, bulk_machine = (Machine(small_config())
                                     for _ in range(2))
        seq = HMap.create(seq_machine)
        for key, value in ITEMS:
            seq.put(key, value)
        bulk = HMap.create(bulk_machine)
        flags = bulk.put_many(ITEMS)
        assert flags == [True] * len(ITEMS)
        assert len(bulk) == len(seq) == len(ITEMS)
        # same canonical map content, machine-independently
        assert dag.segment_fingerprint(bulk_machine, bulk.vsid) \
            == dag.segment_fingerprint(seq_machine, seq.vsid)
        for key, value in ITEMS:
            assert bulk.get(key) == value
        assert audit_machine(bulk_machine).ok

    def test_was_new_flags_and_updates(self, machine):
        kvp = HMap.create(machine)
        kvp.put(b"key-000", b"old")
        flags = kvp.put_many(ITEMS[:4])
        assert flags == [False, True, True, True]
        assert kvp.get(b"key-000") == ITEMS[0][1]  # updated in the batch

    def test_duplicate_key_within_batch(self, machine):
        kvp = HMap.create(machine)
        flags = kvp.put_many([(b"dup", b"first"), (b"other", b"x"),
                              (b"dup", b"second")])
        # counted as new once; the later stage sees the earlier transient
        assert flags == [True, True, False]
        assert kvp.get(b"dup") == b"second"  # last write wins
        assert len(kvp) == 2

    def test_empty_batch(self, machine):
        kvp = HMap.create(machine)
        assert kvp.put_many([]) == []
        assert len(kvp) == 0


class TestShardedPutMany:
    def test_put_many_scatters_and_reads_back(self, machine):
        smap = ShardedHMap.create(machine, shard_bits=2)
        flags = smap.put_many(ITEMS)
        assert flags == [True] * len(ITEMS)
        assert len(smap) == len(ITEMS)
        for key, value in ITEMS:
            assert smap.get(key) == value
        # routing stayed consistent: every key's shard owns it
        for key, _ in ITEMS:
            assert smap.shard_for(key).contains(key)
        # a second batch over the same keys updates, order preserved
        flags = smap.put_many([(k, v + b"!") for k, v in ITEMS])
        assert flags == [False] * len(ITEMS)
        assert smap.get(ITEMS[7][0]) == ITEMS[7][1] + b"!"
        assert audit_machine(machine).ok


def _run_session(router: ShardRouter, raw: bytes):
    async def go():
        await router.start()
        conn = ConnectionState()
        awaitables = [await router.dispatch(frame, conn)
                      for frame in FrameDecoder().feed(raw)]
        responses = [await a for a in awaitables]
        await router.stop()
        return responses

    return asyncio.run(go())


class TestRouterBulkCommit:
    RAW = b"".join(b"set bk%02d 0 0 5\r\nval%02d\r\n" % (i, i)
                   for i in range(8))

    def test_bulk_mode_stores_without_merge_commits(self):
        router = ShardRouter(shard_count=1, batch_limit=16,
                             commit_mode="bulk")
        responses = _run_session(router, self.RAW)
        assert responses == [b"STORED\r\n"] * 8
        assert router.servers[0].item_count() == 8
        assert router.servers[0].stats.sets == 8
        # a coalesced batch is one commit: nothing lost a CAS
        assert router.metrics.merge_commits == 0
        assert router.metrics.cas_retries == 0
        assert audit_machine(router.machine).ok

    def test_bulk_and_merge_modes_agree_on_content(self):
        content = {}
        for mode in ("merge", "bulk"):
            router = ShardRouter(shard_count=2, batch_limit=16,
                                 commit_mode=mode)
            _run_session(router, self.RAW)
            content[mode] = {
                key: router.servers[router.shard_index(key)].get(key)
                for key in (b"bk%02d" % i for i in range(8))}
        assert content["merge"] == content["bulk"]
        assert all(v is not None for v in content["bulk"].values())

    def test_invalid_commit_mode_rejected(self):
        try:
            ShardRouter(shard_count=1, commit_mode="nope")
        except ValueError:
            pass
        else:
            raise AssertionError("commit_mode='nope' was accepted")
