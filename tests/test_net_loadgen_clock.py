"""Loadgen clock injection: RTT measurement without wall time."""

import asyncio

from repro.net.loadgen import LoadgenClient, run_loadgen
from repro.net.server import MemcachedServer
from repro.obs.trace import StepClock


def test_loadgen_client_uses_injected_clock():
    async def scenario():
        async with MemcachedServer(port=0, shard_count=1) as server:
            client = LoadgenClient(
                0, "127.0.0.1", server.port, ops=8, pipeline_depth=4,
                get_ratio=0.5, key_space=4, value_bytes=16, seed=2,
                clock=StepClock(step=0.25))
            return await client.run()

    report = asyncio.run(scenario())
    assert report.consistent
    # two batches of four ops, each RTT exactly one 250ms step (a
    # binary-exact step keeps the arithmetic bit-for-bit)
    assert report.batch_rtts_ms == [250.0, 250.0]


def test_run_loadgen_wall_seconds_from_injected_clock():
    async def scenario():
        async with MemcachedServer(port=0, shard_count=1) as server:
            return await run_loadgen(
                "127.0.0.1", server.port, clients=2, ops_per_client=8,
                pipeline_depth=4, seed=3, clock=StepClock(step=0.5))

    report = asyncio.run(scenario())
    assert report.consistent
    # the fleet clock ticks once at start and once at the end; each
    # client RTT reading advances it twice more -> deterministic wall
    ticks = 2 + 2 * len(report.batch_rtts_ms)
    assert report.wall_seconds == 0.5 * (ticks - 1)
    assert report.ops_per_second == report.ops / report.wall_seconds


def test_default_clock_still_measures_real_time():
    async def scenario():
        async with MemcachedServer(port=0, shard_count=1) as server:
            return await run_loadgen("127.0.0.1", server.port, clients=1,
                                     ops_per_client=4, seed=4)

    report = asyncio.run(scenario())
    assert report.consistent
    assert report.wall_seconds > 0
