"""Tests for the sharded map (section 5.1.1 contention splitting)."""

import pytest

from repro.concurrency import Scheduler
from repro.structures import HMap, ShardedHMap


@pytest.fixture
def smap(machine):
    return ShardedHMap.create(machine, shard_bits=2)


class TestShardedBasics:
    def test_put_get_delete(self, smap):
        for i in range(24):
            smap.put(b"key-%02d" % i, b"v%d" % i)
        assert len(smap) == 24
        for i in range(24):
            assert smap.get(b"key-%02d" % i) == b"v%d" % i
        assert smap.delete(b"key-00")
        assert smap.get(b"key-00") is None
        assert len(smap) == 23

    def test_keys_spread_across_shards(self, smap):
        for i in range(40):
            smap.put(b"key-%03d" % i, b"v")
        occupied = [len(s) for s in smap.shards]
        assert sum(occupied) == 40
        assert sum(1 for n in occupied if n > 0) >= 3  # spread, not one shard

    def test_items_cover_everything(self, smap):
        data = {b"k%d" % i: b"v%d" % i for i in range(12)}
        for k, v in data.items():
            smap.put(k, v)
        assert dict(smap.items()) == data

    def test_contains(self, smap):
        smap.put(b"here", b"1")
        assert smap.contains(b"here")
        assert not smap.contains(b"gone")

    def test_shard_choice_stable_across_ops(self, smap):
        # delete + reinsert must land in a consistent shard
        smap.put(b"stable", b"1")
        smap.delete(b"stable")
        smap.put(b"stable", b"2")
        assert smap.get(b"stable") == b"2"
        assert len(smap) == 1

    def test_drop_reclaims(self, machine):
        smap = ShardedHMap.create(machine, shard_bits=1)
        smap.put(b"k", bytes(range(100)))
        smap.drop()
        assert machine.footprint_lines() == 0

    def test_shard_bits_bounds(self, machine):
        with pytest.raises(ValueError):
            ShardedHMap.create(machine, shard_bits=9)


class TestContentionReduction:
    def _run_storm(self, machine, kvp, n_workers=6, n_ops=6, seed=5):
        before = machine.segmap.cas_failures

        def worker(wid):
            for i in range(n_ops):
                kvp.put(b"w%d-i%d" % (wid, i), b"x")
                yield

        sched = Scheduler(seed=seed)
        for w in range(n_workers):
            sched.spawn("w%d" % w, worker(w))
        sched.run()
        return machine.segmap.cas_failures - before

    def test_sharding_reduces_cas_failures(self, machine):
        single = HMap.create(machine)
        failures_single = self._run_storm(machine, single)
        sharded = ShardedHMap.create(machine, shard_bits=3)
        failures_sharded = self._run_storm(machine, sharded)
        # disjoint shards -> fewer (or equal) lost CAS races
        assert failures_sharded <= failures_single
        # all data landed either way
        assert len(sharded) == 36


class TestShardedPutSteps:
    def test_shard_for_matches_routing(self, smap):
        smap.put(b"somekey", b"v")
        shard = smap.shard_for(b"somekey")
        assert shard.get(b"somekey") == b"v"
        assert smap.shard_for(b"somekey") is shard  # stable

    def test_put_steps_through_sharded_map(self, smap):
        gen = smap.put_steps(b"k", b"v")
        retries = None
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            retries = stop.value
        assert retries == 0
        assert smap.get(b"k") == b"v"

    def test_contended_cross_shard_updates_merge_without_retries(
            self, machine):
        """Satellite: interleaved distinct-key updates under a
        deterministic scheduler are absorbed by merge-update — the CAS
        races are real (segmap counts them) but no worker ever retries.
        """
        smap = ShardedHMap.create(machine, shard_bits=1)
        failures_before = machine.segmap.cas_failures
        retry_counts = []

        def worker(wid):
            for i in range(5):
                retries = yield from smap.put_steps(
                    b"w%d-i%d" % (wid, i), b"value-%d-%d" % (wid, i))
                retry_counts.append(retries)

        sched = Scheduler(seed=11)
        for w in range(6):
            sched.spawn("w%d" % w, worker(w))
        sched.run()

        # every update landed, and none needed an application retry:
        # distinct keys can only lose the root CAS, never conflict
        assert len(smap) == 30
        assert retry_counts == [0] * 30
        for w in range(6):
            for i in range(5):
                assert smap.get(b"w%d-i%d" % (w, i)) == \
                    b"value-%d-%d" % (w, i)
        # ... but the interleaving did produce lost CAS races that
        # merge-update absorbed (otherwise this test proves nothing)
        assert machine.segmap.cas_failures > failures_before


class TestConflictStorm:
    def test_storm_counts_and_correctness(self, machine):
        from repro.analysis.conflict_sim import run_conflict_storm
        m = run_conflict_storm(shard_bits=0, n_clients=4, ops_per_client=6,
                               get_ratio=0.5, seed=7)
        assert m.n_ops == 24
        assert m.cas_attempts > 0
        assert 0.0 <= m.failure_rate <= 1.0

    def test_put_steps_equivalent_to_put(self, machine):
        from repro.structures import HMap
        kvp = HMap.create(machine)
        gen = kvp.put_steps(b"k", b"v")
        for _ in gen:
            pass
        assert kvp.get(b"k") == b"v"

    def test_put_steps_merges_disjoint_race(self, machine):
        from repro.structures import HMap
        kvp = HMap.create(machine)
        gen = kvp.put_steps(b"a", b"1")
        next(gen)                      # snapshot taken, window open
        kvp.put(b"b", b"2")            # another client commits
        for _ in gen:                  # our commit merges
            pass
        assert kvp.get(b"a") == b"1" and kvp.get(b"b") == b"2"
        assert len(kvp) == 2

    def test_put_steps_true_conflict_retries(self, machine):
        from repro.structures import HMap
        kvp = HMap.create(machine)
        kvp.put(b"k", b"base")
        gen = kvp.put_steps(b"k", b"mine")
        next(gen)
        kvp.put(b"k", b"theirs")       # same key, different value
        retries = None
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            retries = stop.value
        assert retries == 1            # one application-level retry
        assert kvp.get(b"k") == b"mine"  # the retry won in the end
