"""Unit tests for the synthetic workload generators."""

import random

import pytest

from repro.workloads.matrices import (
    fem_2d,
    graph_symmetric,
    lp_block,
    matrix_suite,
    patterned_block,
    random_sparse,
)
from repro.workloads.text import DATASETS, corpus_for_dataset
from repro.workloads.traces import generate_workload, zipf_sample
from repro.workloads.vm_images import (
    PAGE,
    ROLE_PROFILES,
    TILE_ROLES,
    _Pools,
    scale_vms,
    vmmark_tile,
)


class TestTextCorpora:
    def test_deterministic(self):
        a = corpus_for_dataset("facebook", seed=5)
        b = corpus_for_dataset("facebook", seed=5)
        assert a.items == b.items

    def test_seeds_differ(self):
        a = corpus_for_dataset("facebook", seed=5)
        b = corpus_for_dataset("facebook", seed=6)
        assert a.items != b.items

    def test_item_counts(self):
        for name, spec in DATASETS.items():
            corpus = corpus_for_dataset(name)
            assert len(corpus.items) == spec.n_items

    def test_text_has_cross_item_sharing(self):
        corpus = corpus_for_dataset("facebook", seed=1)
        chunks = set()
        shared = 0
        for item in corpus.items.values():
            for at in range(0, len(item) - 64, 64):
                chunk = item[at:at + 64]
                if chunk in chunks:
                    shared += 1
                chunks.add(chunk)
        assert shared > 100  # boilerplate repeats across items

    def test_images_high_entropy(self):
        corpus = corpus_for_dataset("images", seed=1)
        blob = next(iter(corpus.items.values()))
        # compressibility check: a random blob has ~256 distinct bytes
        assert len(set(blob)) > 200

    def test_n_items_override(self):
        corpus = corpus_for_dataset("scripts", seed=0, n_items=10)
        assert len(corpus.items) == 10


class TestZipf:
    def test_in_range_and_skewed(self):
        rng = random.Random(0)
        samples = [zipf_sample(rng, 100) for _ in range(5000)]
        assert all(0 <= s < 100 for s in samples)
        head = sum(1 for s in samples if s < 10)
        assert head > len(samples) * 0.4  # top-10 dominate

    def test_deterministic(self):
        assert ([zipf_sample(random.Random(1), 50) for _ in range(20)]
                == [zipf_sample(random.Random(1), 50) for _ in range(20)])


class TestMemcachedWorkload:
    def test_mix_ratios(self):
        wl = generate_workload("facebook", n_requests=2000, seed=0,
                               n_items=40)
        assert 0.85 <= wl.get_fraction <= 0.95
        assert len(wl.requests) == 2000
        sets = [r for r in wl.requests if r.op == "set"]
        assert all(r.value is not None for r in sets)

    def test_keys_reference_preload(self):
        wl = generate_workload("scripts", n_requests=300, seed=1, n_items=20)
        known = set(wl.preload)
        gets = [r for r in wl.requests if r.op == "get"]
        assert all(r.key in known for r in gets)

    def test_deterministic(self):
        a = generate_workload("facebook", n_requests=100, seed=2, n_items=10)
        b = generate_workload("facebook", n_requests=100, seed=2, n_items=10)
        assert [(r.op, r.key) for r in a.requests] == \
            [(r.op, r.key) for r in b.requests]


class TestMatrixSuite:
    def test_suite_covers_categories(self):
        cats = {spec.category for spec in matrix_suite()}
        assert cats == {"fem", "lp", "graph", "patterned", "random"}

    def test_entries_in_bounds(self):
        for spec in matrix_suite():
            for r, c, v in spec.entries:
                assert 0 <= r < spec.n and 0 <= c < spec.m
                assert v != 0.0

    def test_symmetric_flags_accurate(self):
        for spec in matrix_suite():
            if spec.symmetric:
                index = {(r, c): v for r, c, v in spec.entries}
                for (r, c), v in index.items():
                    assert index.get((c, r)) == v, spec.name

    def test_csr_bytes_formula(self):
        spec = random_sparse(100, 500, "t", symmetric=False)
        assert spec.csr_bytes() == 8 * int(1.5 * spec.nnz + 0.5 * 100)

    def test_symmetric_csr_smaller(self):
        sym = graph_symmetric(128, 6, "s", seed=0)
        full = 8 * int(1.5 * sym.nnz + 0.5 * sym.n)
        assert sym.csr_bytes() < full

    def test_fem_is_laplacian_like(self):
        spec = fem_2d(8, "t")
        diag = {r: v for r, c, v in spec.entries if r == c}
        assert len(diag) == 64  # full diagonal
        assert all(v > 0 for v in diag.values())

    def test_patterned_repeats(self):
        spec = patterned_block(64, "t", tile=8)
        block0 = sorted((r, c, v) for r, c, v in spec.entries if r < 8)
        block1 = sorted((r - 8, c - 8, v) for r, c, v in spec.entries
                        if 8 <= r < 16)
        assert block0 == block1

    def test_lp_not_symmetric(self):
        spec = lp_block(64, 48, "t")
        assert not spec.symmetric
        assert spec.n == 48 and spec.m == 64

    def test_deterministic(self):
        assert ([s.entries for s in matrix_suite(seed=3)]
                == [s.entries for s in matrix_suite(seed=3)])


class TestVmImages:
    def test_page_sizes(self):
        for vm in vmmark_tile(0):
            assert all(len(p) == PAGE for p in vm.pages)
            assert vm.allocated_bytes == len(vm.pages) * PAGE

    def test_tile_contains_all_roles(self):
        roles = [vm.role for vm in vmmark_tile(0)]
        assert roles == list(TILE_ROLES)

    def test_profiles_fractions_sane(self):
        for role, prof in ROLE_PROFILES.items():
            total = (prof["zero"] + prof["os"] + prof["role"]
                     + prof["patched"] + prof["vocab"])
            assert total <= 1.0, role

    def test_vms_share_pool_pages(self):
        vms = scale_vms("database", 4, seed=1)
        zero = b"\x00" * PAGE
        pages = [set(vm.pages) - {zero} for vm in vms]
        shared = pages[0] & pages[1]
        assert len(shared) >= 2  # OS/role pool pages recur across VMs

    def test_zero_pages_present(self):
        vms = scale_vms("standby", 3, seed=1)
        zero = b"\x00" * PAGE
        assert any(zero in vm.pages for vm in vms)

    def test_deterministic(self):
        a = scale_vms("database", 2, seed=9)
        b = scale_vms("database", 2, seed=9)
        assert [vm.pages for vm in a] == [vm.pages for vm in b]

    def test_shared_pools_cross_tiles(self):
        pools = _Pools(0)
        t1 = vmmark_tile(0, pools)
        t2 = vmmark_tile(1, pools)
        shared = set(t1[0].pages) & set(t2[0].pages)
        assert shared  # same OS/app pools across tiles
