"""Epoch-deferred reclamation: allocator, deferral, drain, quiesce,
resurrection, and resize-aware RC-cache coverage
(repro.memory.reclaim + MemoryConfig.reclaim_kind)."""

import pytest

from repro.core.machine import Machine
from repro.errors import BadPlidError
from repro.memory.dedup_store import DedupStore
from repro.memory.reclaim import EpochReclaimer, SlotAllocator
from repro.params import MachineConfig, MemoryConfig, WORD_MASK
from repro.structures import HMap


def small_store(reclaim_kind="immediate", num_buckets=256, data_ways=4,
                overflow=1024, **kwargs):
    return DedupStore(MemoryConfig(num_buckets=num_buckets,
                                   data_ways=data_ways,
                                   overflow_lines=overflow,
                                   reclaim_kind=reclaim_kind), **kwargs)


def epoch_machine(**mem_kwargs):
    return Machine(MachineConfig(
        memory=MemoryConfig(reclaim_kind="epoch", **mem_kwargs)))


def _segment_words(tag, count):
    """Unique leaf words (no dedup against other segments)."""
    return [((tag << 32) | (i + 1)) & WORD_MASK for i in range(count)]


# ----------------------------------------------------------------------
# SlotAllocator unit behaviour


class TestSlotAllocator:
    # data ways are 1-based: signatures[0] is the bucket's signature way

    def test_claims_lowest_free_way(self):
        alloc = SlotAllocator(data_ways=4)
        signatures = [0, 0, 7, 0, 9]  # ways 2 and 4 occupied
        assert alloc.claim_way(0, signatures) == 1
        assert alloc.claim_way(0, signatures) == 3
        assert alloc.claim_way(0, signatures) is None

    def test_release_reopens_way_and_keeps_lowest_first(self):
        alloc = SlotAllocator(data_ways=4)
        signatures = [0, 1, 2, 3, 4]
        assert alloc.claim_way(0, signatures) is None
        alloc.release_way(0, 3)
        alloc.release_way(0, 1)
        # lowest-numbered freed way wins, matching the legacy scan
        assert alloc.claim_way(0, signatures) == 1
        assert alloc.claim_way(0, signatures) == 3
        assert alloc.claim_way(0, signatures) is None

    def test_mask_parity_with_signature_scan(self):
        # the lazily-built mask must agree with a fresh signature scan
        # in every occupancy pattern of a 4-way bucket
        for pattern in range(16):
            alloc = SlotAllocator(data_ways=4)
            signatures = [0] + [1 if pattern & (1 << w) else 0
                                for w in range(4)]
            legacy = next((w for w in range(1, 5) if not signatures[w]),
                          None)
            assert alloc.claim_way(7, signatures) == legacy

    def test_overflow_lifo_reuse(self):
        alloc = SlotAllocator(data_ways=4)
        assert alloc.claim_overflow() is None  # empty free list: grow
        alloc.release_overflow(5000)
        alloc.release_overflow(5001)
        assert alloc.claim_overflow() == 5001  # LIFO, like the legacy pop
        assert alloc.claim_overflow() == 5000
        assert alloc.claim_overflow() is None
        assert alloc.stats.overflow_reused == 2

    def test_free_slots_accounting(self):
        alloc = SlotAllocator(data_ways=4)
        alloc.claim_way(0, [0, 0, 0, 0, 0])  # builds mask: 3 ways left
        alloc.release_overflow(9000)
        assert alloc.free_slots() == 4
        snap = alloc.snapshot()
        assert snap["free_ways"] == 3
        assert snap["free_overflow"] == 1


# ----------------------------------------------------------------------
# immediate kind: byte-identical legacy behaviour, schema-safe snapshot


class TestImmediateKind:
    def test_no_reclaimer_and_inline_free(self):
        store = small_store()
        assert store.reclaimer is None
        plid, _ = store.lookup((1, 2))
        store.decref(plid)
        assert store.footprint_lines() == 0
        assert store.counters.deallocations == 1

    def test_advance_and_quiesce_are_noops(self):
        store = small_store()
        assert store.reclaim_advance(16) == 0
        assert store.reclaim_quiesce() == 0

    def test_snapshot_schema_matches_epoch_kind(self):
        immediate = small_store().reclaim_snapshot()
        epoch = small_store(reclaim_kind="epoch").reclaim_snapshot()
        assert immediate["kind"] == "immediate"
        assert epoch["kind"] == "epoch"
        # stats-json consumers must never see a kind-dependent schema
        assert set(immediate) == set(epoch)
        assert set(immediate["allocator"]) == set(epoch["allocator"])


# ----------------------------------------------------------------------
# epoch kind: O(1) defer, resurrection, stale entries, underflow


class TestEpochDefer:
    def test_release_to_zero_defers_instead_of_freeing(self):
        store = small_store(reclaim_kind="epoch")
        plid, _ = store.lookup((1, 2))
        store.decref(plid)
        assert store.refcount(plid) == 0
        assert plid in store._lines  # resident, resurrectable
        assert store.reclaimer.pending() == 1
        assert store.counters.deallocations == 0
        assert store.footprint_lines() == 1  # not reclaimed yet

    def test_content_lookup_resurrects_deferred_line(self):
        store = small_store(reclaim_kind="epoch")
        plid, _ = store.lookup((1, 2))
        store.decref(plid)
        again, created = store.lookup((1, 2))
        assert again == plid and not created  # same physical line
        assert store.refcount(plid) == 1
        # the queue entry is now moot: drain must skip it
        assert store.reclaim_quiesce() == 0
        assert store.reclaimer.stats.drained_resurrected == 1
        assert plid in store._lines

    def test_stale_queue_entry_after_refree(self):
        store = small_store(reclaim_kind="epoch")
        plid, _ = store.lookup((1, 2))
        store.decref(plid)          # entry 1
        store.lookup((1, 2))        # resurrect
        store.decref(plid)          # entry 2, same plid
        assert store.reclaimer.pending() == 2
        store.reclaim_quiesce()
        stats = store.reclaimer.stats
        assert stats.drained_freed == 1
        assert stats.drained_stale == 1  # second entry found the line gone
        assert plid not in store._lines

    def test_decref_of_deferred_line_underflows(self):
        store = small_store(reclaim_kind="epoch")
        plid, _ = store.lookup((1, 2))
        store.decref(plid)
        with pytest.raises(BadPlidError):
            store.decref(plid)

    def test_epoch_counter_advances(self):
        store = small_store(reclaim_kind="epoch")
        before = store.reclaimer.epoch
        store.reclaim_advance(8)
        store.reclaim_advance(8)
        assert store.reclaimer.epoch == before + 2
        assert store.reclaimer.stats.epochs_advanced == 2


class TestEpochDrain:
    def test_big_root_drop_is_one_deferral(self):
        machine = epoch_machine()
        store = machine.mem.store
        vsid = machine.create_segment(_segment_words(1, 512))
        deallocs_before = store.counters.deallocations
        machine.drop_segment(vsid)
        # O(1) hot path: one queue entry, zero lines walked or freed
        assert store.reclaimer.pending() == 1
        assert store.counters.deallocations == deallocs_before

    def test_bounded_drain_progresses_incrementally(self):
        machine = epoch_machine()
        store = machine.mem.store
        baseline = machine.footprint_lines()
        vsid = machine.create_segment(_segment_words(1, 512))
        machine.drop_segment(vsid)
        freed_first = store.reclaim_advance(10)
        assert freed_first <= 10
        # interior children re-defer as the walk descends: still pending
        assert store.reclaimer.pending() > 0
        rounds = 0
        while store.reclaimer.pending():
            assert store.reclaim_advance(10) > 0, "drain stalled"
            rounds += 1
            assert rounds < 1000
        assert rounds > 2  # genuinely incremental, not one big walk
        assert machine.footprint_lines() == baseline

    def test_quiesce_restores_baseline_footprint(self):
        machine = epoch_machine()
        store = machine.mem.store
        baseline = machine.footprint_lines()
        for tag in range(1, 4):
            vsid = machine.create_segment(_segment_words(tag, 256))
            machine.drop_segment(vsid)
        assert store.reclaimer.pending() == 3
        freed = store.reclaim_quiesce()
        assert freed > 3  # whole subtrees, not just the roots
        assert store.reclaimer.pending() == 0
        assert machine.footprint_lines() == baseline

    def test_dealloc_listeners_fire_at_drain_not_release(self):
        machine = epoch_machine()
        store = machine.mem.store
        vsid = machine.create_segment(_segment_words(1, 64))
        seen = []
        store.dealloc_listeners.append(seen.append)
        machine.drop_segment(vsid)
        assert seen == []  # release-to-zero is silent
        freed = store.reclaim_quiesce()
        assert len(seen) == freed  # every actual free announced

    def test_memory_system_drain_quiesces(self):
        machine = epoch_machine()
        store = machine.mem.store
        vsid = machine.create_segment(_segment_words(1, 128))
        machine.drop_segment(vsid)
        assert store.reclaimer.pending() == 1
        machine.drain()
        assert store.reclaimer.pending() == 0

    def test_plid_space_stays_bounded_under_churn(self):
        # a tiny bucket array forces overflow allocation; without the
        # free list every churn round would grow _next_overflow forever
        store = small_store(reclaim_kind="epoch", num_buckets=4,
                            data_ways=2, overflow=1 << 16)
        for i in range(64):
            plid, _ = store.lookup((i + 1, (i * 2654435761) & WORD_MASK))
            store.decref(plid)
            if i % 8 == 7:
                store.reclaim_advance(64)
        store.reclaim_quiesce()
        high_water = store._next_overflow
        for i in range(64, 256):
            plid, _ = store.lookup((i + 1, (i * 2654435761) & WORD_MASK))
            store.decref(plid)
            if i % 8 == 7:
                store.reclaim_advance(64)
        # dozens of these allocations land in overflow; without the
        # free list the space would grow by that much. A couple slots
        # of slack covers peak-occupancy jitter between drain points.
        assert store._next_overflow - high_water <= 2
        stats = store.slots.stats
        assert stats.ways_reused + stats.overflow_reused > 200
        assert stats.overflow_reused > 0


# ----------------------------------------------------------------------
# satellite: resize-aware RC-cache sizing


class TestRcCacheResize:
    def _resized_store(self):
        store = DedupStore(
            MemoryConfig(index_kind="cuckoo", index_buckets=8),
            rc_cache_entries=32)
        plids = []
        for i in range(400):
            plid, _ = store.lookup((i + 1, (i * 2654435761) & WORD_MASK))
            plids.append(plid)
        assert store.index.stats.resizes_completed >= 1
        return store, plids

    def test_capacity_tracks_index_buckets(self):
        store, _ = self._resized_store()
        expected = max(store._rc_base_entries,
                       store.index.num_buckets * store.index.slots)
        assert store._rc_cache.capacity == expected
        assert store._rc_cache.capacity > 32  # actually grew

    def test_post_resize_hit_rate(self):
        store, plids = self._resized_store()
        # warm once, then measure: with capacity scaled past the live
        # population every touch must hit; the un-resized 32-entry
        # cache would thrash at ~8% hits on this working set
        for plid in plids:
            store.incref(plid)
        cache = store._rc_cache
        hits_before, touches = cache.hits, 0
        for plid in plids:
            store.incref(plid)
            store.decref(plid)
            touches += 2
        hit_rate = (cache.hits - hits_before) / touches
        assert hit_rate > 0.95, hit_rate

    def test_reindex_reregisters_resize_listener(self):
        store, _ = self._resized_store()
        before = store._rc_cache.capacity
        store.reindex()
        assert store._on_index_resize in store._index.resize_listeners
        # grow the population until the rebuilt index resizes again
        for i in range(1000, 3000):
            store.lookup((i + 1, (i * 40503) & WORD_MASK))
            if store._rc_cache.capacity > before:
                break
        assert store._rc_cache.capacity > before


# ----------------------------------------------------------------------
# config validation


class TestConfig:
    def test_unknown_reclaim_kind_rejected(self):
        with pytest.raises(ValueError):
            MemoryConfig(reclaim_kind="deferred")

    def test_router_serving_stack_defaults_to_epoch(self):
        from repro.net.router import ShardRouter
        router = ShardRouter(shard_count=2)
        store = router.machine.mem.store
        assert isinstance(store.reclaimer, EpochReclaimer)

    def test_hmap_workload_quiesces_clean(self):
        machine = epoch_machine()
        kvp = HMap.create(machine)
        for i in range(64):
            kvp.put(b"k%02d" % (i % 8), b"v%04d" % i)
        machine.drain()
        assert machine.mem.store.reclaimer.pending() == 0
        from repro.testing.auditors import audit_machine
        assert audit_machine(machine, strict=True).ok
