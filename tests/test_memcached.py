"""Unit and integration tests for the memcached implementations."""

import pytest

from repro.apps.memcached import ConventionalMemcached, HicampMemcached
from repro.apps.memcached.compaction import measure_compaction
from repro.apps.memcached.harness import figure6_row, run_conventional, run_hicamp
from repro.concurrency import Scheduler
from repro.core.machine import Machine
from repro.workloads.text import corpus_for_dataset
from repro.workloads.traces import generate_workload


@pytest.fixture
def server(machine):
    return HicampMemcached(machine)


class TestHicampServer:
    def test_set_get(self, server):
        server.set(b"k", b"v")
        assert server.get(b"k") == b"v"
        assert server.get(b"missing") is None

    def test_delete(self, server):
        server.set(b"k", b"v")
        assert server.delete(b"k")
        assert server.get(b"k") is None
        assert not server.delete(b"k")

    def test_add_only_when_absent(self, server):
        assert server.add(b"k", b"1")
        assert not server.add(b"k", b"2")
        assert server.get(b"k") == b"1"

    def test_replace_only_when_present(self, server):
        assert not server.replace(b"k", b"1")
        server.set(b"k", b"0")
        assert server.replace(b"k", b"1")
        assert server.get(b"k") == b"1"

    def test_incr_decr(self, server):
        server.set(b"n", b"10")
        assert server.incr(b"n", 5) == 15
        assert server.decr(b"n", 3) == 12
        assert server.decr(b"n", 100) == 0  # floored like memcached
        assert server.incr(b"missing") is None

    def test_gets_cas(self, server):
        server.set(b"k", b"v1")
        value, token = server.gets(b"k")
        assert value == b"v1"
        assert server.cas(b"k", b"v2", token)
        assert not server.cas(b"k", b"v3", token)  # token now stale
        assert server.get(b"k") == b"v2"

    def test_stats_track_operations(self, server):
        server.set(b"a", b"1")
        server.get(b"a")
        server.get(b"b")
        assert server.stats.gets == 2
        assert server.stats.get_hits == 1
        assert server.stats.sets == 1

    def test_item_count(self, server):
        for i in range(5):
            server.set(b"k%d" % i, b"v")
        server.delete(b"k0")
        assert server.item_count() == 4

    def test_equal_values_stored_once(self, machine, server):
        blob = bytes(range(256)) * 4
        server.set(b"a", blob)
        lines = machine.footprint_lines()
        server.set(b"b", blob)
        # the second copy adds only map-slot lines, not value lines
        assert machine.footprint_lines() - lines < 10

    def test_reader_isolated_from_concurrent_set(self, machine, server):
        server.set(b"page", b"version-1")
        results = []

        def reader():
            snap = machine.snapshot(server.kvp.vsid)
            yield
            # read through the private snapshot after the writer moved on
            results.append(server.kvp.get(b"page"))
            snap.release()

        def writer():
            yield
            server.set(b"page", b"version-2")
            yield

        sched = Scheduler()
        sched.spawn("r", reader())
        sched.spawn("w", writer())
        sched.run()
        # the live map shows the new version
        assert server.get(b"page") == b"version-2"


class TestConventionalModel:
    def test_set_get_roundtrip_shape(self):
        server = ConventionalMemcached()
        server.set(b"k", b"value-bytes")
        got = server.get(b"k")
        assert got is not None and len(got) == len(b"value-bytes")
        assert server.get(b"missing") is None

    def test_delete(self):
        server = ConventionalMemcached()
        server.set(b"k", b"v")
        assert server.delete(b"k")
        assert server.get(b"k") is None
        assert not server.delete(b"k")

    def test_traffic_generated(self):
        server = ConventionalMemcached()
        server.set(b"k", b"x" * 4096)
        server.mem.drain()
        assert server.mem.dram.total() > 0

    def test_get_copies_cost_more_than_value_size(self):
        server = ConventionalMemcached()
        value = b"x" * 8192
        server.set(b"k", value)
        server.mem.drain()
        before = server.mem.dram.total()
        server.get(b"k")
        server.mem.drain()
        delta = server.mem.dram.total() - before
        # value read + socket write + client read/write paths
        assert delta * server.mem.config.line_bytes > len(value)

    def test_footprint_includes_overheads(self):
        server = ConventionalMemcached()
        base = server.footprint_bytes()
        server.set(b"key", b"v" * 100)
        assert server.footprint_bytes() - base >= 100 + 48


class TestHarness:
    def test_both_sides_serve_same_workload(self):
        wl = generate_workload("scripts", n_requests=60, seed=4, n_items=12)
        hic = run_hicamp(wl, 32)
        conv = run_conventional(wl, 32)
        # the same trace must produce the same hit behaviour
        assert abs(hic.get_hit_rate - conv.get_hit_rate) < 1e-9
        assert hic.dram.total() > 0 and conv.dram.total() > 0

    def test_figure6_categories(self):
        wl = generate_workload("scripts", n_requests=40, seed=4, n_items=10)
        row = figure6_row(wl, 16)
        conv, hic = row["conventional"].dram, row["hicamp"].dram
        assert conv.lookups == conv.dealloc == conv.refcount == 0
        assert hic.lookups > 0

    def test_compaction_measures_all_items(self):
        corpus = corpus_for_dataset("scripts", seed=0, n_items=8)
        result = measure_compaction(corpus, 16)
        assert result.n_items == 8
        assert result.conventional_bytes == sum(
            len(k) + len(v) for k, v in corpus.items.items())
        assert result.hicamp_bytes > 0


class TestDesignatedUpdaterDeployment:
    def test_clients_queue_updates_for_updater_thread(self, machine):
        """Section 4.4's alternative deployment: untrusted clients hold
        read-only references and queue update requests; one designated
        updater thread holds the read-write reference and applies them."""
        from repro.structures import HQueue

        server = HicampMemcached(machine)
        server.set(b"seed", b"0")
        requests = HQueue.create(machine)

        def client(cid):
            # clients never touch the map read-write reference
            for i in range(3):
                requests.enqueue(b"set c%d-%d=%d" % (cid, i, i))
                yield
                assert server.get(b"seed") == b"0"  # reads need no updater

        def updater():
            applied = 0
            while applied < 6:
                request = requests.dequeue()
                if request is None:
                    yield
                    continue
                body = request[len(b"set "):]
                key, value = body.split(b"=")
                server.set(key, value)
                applied += 1
                yield

        sched = Scheduler(seed=6)
        sched.spawn("c0", client(0))
        sched.spawn("c1", client(1))
        sched.spawn("updater", updater())
        sched.run()
        for cid in range(2):
            for i in range(3):
                assert server.get(b"c%d-%d" % (cid, i)) == b"%d" % i
