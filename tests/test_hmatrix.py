"""Unit tests for quad-tree (QTS) and non-zero-dense (NZD) matrices."""

import random

import numpy as np
import pytest

from repro.structures import NzdMatrix, QuadTreeMatrix
from repro.structures.hmatrix import (
    float_to_word,
    pad_dimension,
    sz_coords,
    sz_index,
    word_to_float,
)


class TestFloatWords:
    def test_roundtrip(self):
        for v in (0.0, 1.0, -1.5, 3.14159, 1e300, -1e-300):
            assert word_to_float(float_to_word(v)) == v

    def test_zero_is_zero_word(self):
        assert float_to_word(0.0) == 0


class TestSzOrder:
    def test_pad_dimension(self):
        assert pad_dimension(1) == 1
        assert pad_dimension(5) == 8
        assert pad_dimension(64) == 64

    def test_bijection(self):
        for size in (2, 4, 8, 32):
            seen = set()
            for r in range(size):
                for c in range(size):
                    idx = sz_index(r, c, size)
                    assert 0 <= idx < size * size
                    assert idx not in seen
                    seen.add(idx)
                    assert sz_coords(idx, size) == (r, c)

    def test_quadrants_are_contiguous(self):
        size = 16
        quad = (size // 2) ** 2
        # A11 occupies [0, quad), A22 [quad, 2*quad), etc.
        for r in range(size // 2):
            for c in range(size // 2):
                assert sz_index(r, c, size) < quad
                assert quad <= sz_index(r + 8, c + 8, size) < 2 * quad

    def test_symmetric_elements_share_index_block(self):
        # For r < half <= c, element (r, c) in A12 and its mirror (c, r)
        # in A21 map to the same in-block offset — the QTS sharing trick.
        size = 16
        quad = (size // 2) ** 2
        for r in range(size // 2):
            for c in range(size // 2, size):
                a12 = sz_index(r, c, size)
                a21 = sz_index(c, r, size)
                assert a12 - 2 * quad == a21 - 3 * quad


class TestQuadTreeMatrix:
    def test_roundtrip_dense(self, machine):
        rng = np.random.RandomState(5)
        dense = np.round(rng.rand(7, 9) * (rng.rand(7, 9) > 0.6), 3)
        qt = QuadTreeMatrix.from_dense(machine, dense)
        assert np.allclose(qt.to_dense(), dense)

    def test_get_element(self, machine):
        qt = QuadTreeMatrix.from_coo(machine, 5, 5, [(1, 2, 3.5)])
        assert qt.get(1, 2) == 3.5
        assert qt.get(2, 1) == 0.0

    def test_spmv_matches_numpy(self, machine):
        rng = np.random.RandomState(6)
        dense = np.round(rng.rand(12, 12) * (rng.rand(12, 12) > 0.7), 3)
        qt = QuadTreeMatrix.from_dense(machine, dense)
        x = rng.rand(12)
        assert np.allclose(qt.spmv(x), dense @ x)

    def test_zero_matrix_is_free(self, machine):
        qt = QuadTreeMatrix.from_coo(machine, 64, 64, [])
        assert qt.footprint_lines() == 0
        assert np.allclose(qt.spmv(np.ones(64)), 0)

    def test_structural_equality(self, machine):
        entries = [(0, 0, 1.0), (3, 2, -2.0)]
        a = QuadTreeMatrix.from_coo(machine, 8, 8, entries)
        b = QuadTreeMatrix.from_coo(machine, 8, 8, entries)
        assert a.equals(b)

    def test_symmetric_halves_offdiag_storage(self, machine):
        rng = random.Random(1)
        n = 64
        sym, asym = [], []
        for _ in range(250):
            i, j = rng.randrange(n), rng.randrange(n)
            v = round(rng.random(), 3)
            sym += [(i, j, v), (j, i, v)]
            asym += [(i, j, round(rng.random(), 3)),
                     (j, i, round(rng.random(), 3))]
        from repro import Machine
        from tests.conftest import small_config
        m1, m2 = Machine(small_config()), Machine(small_config())
        qs = QuadTreeMatrix.from_coo(m1, n, n, sym)
        qa = QuadTreeMatrix.from_coo(m2, n, n, asym)
        assert qs.footprint_lines() < qa.footprint_lines()

    def test_repeated_blocks_collapse(self, machine):
        # identical diagonal tiles share one sub-DAG
        tile = [(i, j, float(i * 4 + j + 1)) for i in range(4)
                for j in range(4)]
        entries = []
        for b in range(8):
            entries += [(b * 4 + i, b * 4 + j, v) for i, j, v in tile]
        qt = QuadTreeMatrix.from_coo(machine, 32, 32, entries)
        single = QuadTreeMatrix.from_coo(machine, 32, 32,
                                         [(i, j, v) for i, j, v in tile])
        # eight copies cost barely more than one (path/interior glue)
        assert qt.footprint_lines() <= single.footprint_lines() + 6

    def test_drop_reclaims(self, machine):
        qt = QuadTreeMatrix.from_coo(machine, 16, 16,
                                     [(i, i, 1.5 + i) for i in range(16)])
        qt.drop()
        assert machine.footprint_lines() == 0


class TestNzdMatrix:
    def test_roundtrip(self, machine):
        rng = np.random.RandomState(7)
        dense = np.round(rng.rand(10, 10) * (rng.rand(10, 10) > 0.5), 3)
        nz = NzdMatrix.from_coo(
            machine, 10, 10,
            [(int(r), int(c), float(dense[r, c]))
             for r, c in zip(*np.nonzero(dense))])
        assert np.allclose(nz.to_dense(), dense)

    def test_spmv_matches_numpy(self, machine):
        rng = np.random.RandomState(8)
        dense = np.round(rng.rand(9, 9) * (rng.rand(9, 9) > 0.6), 3)
        nz = NzdMatrix.from_coo(
            machine, 9, 9,
            [(int(r), int(c), float(dense[r, c]))
             for r, c in zip(*np.nonzero(dense))])
        x = rng.rand(9)
        assert np.allclose(nz.spmv(x), dense @ x)

    def test_pattern_dedup_beats_qts_for_unique_values(self):
        # same pattern, unique values: NZD's pattern tree dedups while
        # QTS's value-bearing leaves cannot
        from repro import Machine
        from tests.conftest import small_config
        rng = random.Random(3)
        entries = []
        stencil = [(i, j) for i in range(8) for j in range(8)
                   if (i + j) % 3 == 0]
        for b in range(16):
            for i, j in stencil:
                entries.append((b * 8 + i, b * 8 + j,
                                round(rng.random() + 0.01, 6)))
        m1, m2 = Machine(small_config()), Machine(small_config())
        qts = QuadTreeMatrix.from_coo(m1, 128, 128, entries)
        nzd = NzdMatrix.from_coo(m2, 128, 128, entries)
        assert nzd.footprint_bytes() < qts.footprint_bytes()

    def test_drop_reclaims(self, machine):
        nz = NzdMatrix.from_coo(machine, 8, 8, [(1, 1, 2.0), (5, 3, 4.0)])
        nz.drop()
        assert machine.footprint_lines() == 0
