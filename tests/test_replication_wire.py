"""Unit tests for the replication wire format."""

import pytest

from repro.errors import ReplicationError
from repro.memory.line import Inline, PlidRef
from repro.replication import wire


class TestWordCodec:
    def test_data_word_roundtrip(self):
        for value in (0, 1, 0xDEAD, (1 << 64) - 1):
            blob = wire.encode_wire_word(value)
            word, pos = wire.decode_wire_word(blob, 0)
            assert word == value and pos == len(blob)

    def test_reference_word_roundtrip(self):
        ref = PlidRef(12345, (1, 0, 3))
        blob = wire.encode_wire_word(ref)
        word, pos = wire.decode_wire_word(blob, 0)
        assert word == ref and pos == len(blob)

    def test_pathless_reference_roundtrip(self):
        blob = wire.encode_wire_word(PlidRef(7))
        word, _ = wire.decode_wire_word(blob, 0)
        assert word == PlidRef(7) and word.path == ()

    def test_inline_word_roundtrip(self):
        inline = Inline(width=2, values=(1, 2, 3), span=2)
        blob = wire.encode_wire_word(inline)
        word, pos = wire.decode_wire_word(blob, 0)
        assert word == inline and pos == len(blob)

    def test_truncated_word_rejected(self):
        blob = wire.encode_wire_word(PlidRef(9, (1, 2)))
        with pytest.raises(ReplicationError):
            wire.decode_wire_word(blob[:-1], 0)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ReplicationError):
            wire.decode_wire_word(b"X" + b"\x00" * 8, 0)


class TestPayloads:
    def test_line_roundtrip(self):
        line = (PlidRef(4), 0, Inline(width=8, values=(9,), span=1), 77)
        payload = wire.encode_line_payload(31, line)
        plid, decoded = wire.decode_line_payload(payload)
        assert plid == 31 and decoded == line

    def test_line_trailing_bytes_rejected(self):
        payload = wire.encode_line_payload(1, (0, 0)) + b"x"
        with pytest.raises(ReplicationError):
            wire.decode_line_payload(payload)

    def test_seed_roundtrip(self):
        payload = wire.encode_seed_payload(3, [10, 20, 30])
        assert wire.decode_seed_payload(payload) == (3, [10, 20, 30])

    def test_advance_roundtrip_plidref_root(self):
        payload = wire.encode_advance_payload(
            2, 99, 7, PlidRef(55, (1,)), 4, 1 << 130)
        stream, seq, vsid, height, length, root = \
            wire.decode_advance_payload(payload)
        assert (stream, seq, vsid, height) == (2, 99, 7, 4)
        # sparse segments legitimately index past 2**64
        assert length == 1 << 130
        assert root == PlidRef(55, (1,))

    def test_advance_roundtrip_zero_root(self):
        payload = wire.encode_advance_payload(0, 0, 1, 0, 0, 0)
        assert wire.decode_advance_payload(payload)[5] == 0

    def test_ack_and_forget_roundtrip(self):
        assert wire.decode_ack_payload(
            wire.encode_ack_payload(5, 1234)) == (5, 1234)
        assert wire.decode_forget_payload(
            wire.encode_forget_payload(321)) == 321

    def test_truncated_payloads_rejected(self):
        for decode in (wire.decode_line_payload, wire.decode_seed_payload,
                       wire.decode_advance_payload, wire.decode_ack_payload,
                       wire.decode_forget_payload):
            with pytest.raises(ReplicationError):
                decode(b"\x01")


class TestFraming:
    def test_frames_reassemble_across_arbitrary_splits(self):
        stream = b"".join([
            wire.encode_frame(wire.LINE, wire.encode_line_payload(
                1, (PlidRef(2), 0))),
            wire.encode_frame(wire.HEARTBEAT,
                              wire.encode_json_payload({"t": 1})),
            wire.encode_frame(wire.ACK, wire.encode_ack_payload(0, 7)),
        ])
        for chunk in (1, 2, 3, 5, len(stream)):
            decoder = wire.LengthPrefixedDecoder()
            frames = []
            for i in range(0, len(stream), chunk):
                frames.extend(decoder.feed(stream[i:i + chunk]))
            assert [f[0] for f in frames] == [wire.LINE, wire.HEARTBEAT,
                                              wire.ACK]
            assert decoder.pending_bytes == 0

    def test_oversized_frame_rejected(self):
        decoder = wire.LengthPrefixedDecoder(max_payload=16)
        with pytest.raises(wire.FrameTooLargeError):
            decoder.feed(wire.encode_frame(wire.LINE, b"x" * 17))

    def test_json_control_payloads(self):
        doc = {"version": 1, "streams": {"0": "aa"}}
        assert wire.decode_json_payload(wire.encode_json_payload(doc)) == doc
        with pytest.raises(ReplicationError):
            wire.decode_json_payload(b"not json")
        with pytest.raises(ReplicationError):
            wire.decode_json_payload(b"[1, 2]")


class TestHandshake:
    def test_accepts_matching_geometry(self):
        doc = wire.hello_doc(32, 4, {0: b"\x00" * 16})
        wire.check_handshake(doc, 32, 4)
        assert doc["streams"]["0"] == "00" * 16

    def test_rejects_version_mismatch(self):
        doc = wire.welcome_doc(32, 4, {0: 1})
        doc["version"] = 999
        with pytest.raises(ReplicationError, match="version"):
            wire.check_handshake(doc, 32, 4)

    def test_rejects_geometry_mismatch(self):
        doc = wire.hello_doc(16, 2, {})
        with pytest.raises(ReplicationError, match="geometry"):
            wire.check_handshake(doc, 32, 4)
