"""Tests for the multi-processor machine model."""

import pytest

from repro import Machine, MachineConfig, MemoryConfig
from repro.errors import IteratorStateError
from repro.params import CacheGeometry


def machine_with_processors(n):
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=16, num_buckets=1 << 12,
                            data_ways=12, overflow_lines=1 << 16),
        cache=CacheGeometry(size_bytes=64 * 1024, ways=8, line_bytes=16),
        n_processors=n, iterator_registers=4,
    ))


class TestProcessors:
    def test_processor_count(self):
        machine = machine_with_processors(8)
        assert len(machine.processors) == 8
        assert [p.pid for p in machine.processors] == list(range(8))

    def test_register_files_are_private(self):
        machine = machine_with_processors(2)
        vsid = machine.create_segment([1, 2, 3])
        # exhaust processor 0's registers
        held = [machine.processors[0].iterator(vsid) for _ in range(4)]
        with pytest.raises(IteratorStateError):
            machine.processors[0].iterator(vsid)
        # processor 1 is unaffected
        it = machine.processors[1].iterator(vsid)
        assert it.get(0) == 1
        machine.processors[1].release_iterator(it)
        for it in held:
            machine.processors[0].release_iterator(it)

    def test_transient_regions_are_private(self):
        machine = machine_with_processors(2)
        vsid = machine.create_segment([0] * 8)
        it0 = machine.processors[0].iterator(vsid)
        it1 = machine.processors[1].iterator(vsid)
        it0.put(1, offset=0)
        # transient lines are per-core (footnote 7): each register's
        # region tracked its own writes
        assert machine.processors[0].transient.live_words() == 1
        assert machine.processors[1].transient.live_words() == 0
        # and the other processor's snapshot does not see the store
        assert it1.get(0) == 0
        machine.processors[0].release_iterator(it0)
        machine.processors[1].release_iterator(it1)

    def test_memory_and_map_are_shared(self):
        machine = machine_with_processors(4)
        vsid = machine.create_segment([10])
        it = machine.processors[3].iterator(vsid)
        it.put(99, offset=0)
        assert it.try_commit()
        machine.processors[3].release_iterator(it)
        # any processor reads the committed version
        it0 = machine.processors[0].iterator(vsid)
        assert it0.get(0) == 99
        machine.processors[0].release_iterator(it0)

    def test_cross_processor_cas_race(self):
        machine = machine_with_processors(2)
        vsid = machine.create_segment([1, 2])
        it_a = machine.processors[0].iterator(vsid)
        it_b = machine.processors[1].iterator(vsid)
        it_a.put(10, offset=0)
        it_b.put(20, offset=1)
        assert it_a.try_commit()
        assert not it_b.try_commit()  # shared segment map arbitrates
        machine.processors[0].release_iterator(it_a)
        machine.processors[1].release_iterator(it_b)

    def test_machine_shorthand_is_processor_zero(self):
        machine = machine_with_processors(2)
        vsid = machine.create_segment([5])
        it = machine.iterator(vsid)
        assert it in machine.processors[0]._registers
        machine.release_iterator(it)
        assert machine.transient is machine.processors[0].transient
