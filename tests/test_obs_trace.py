"""Trace recorder: spans, determinism, DRAM attribution, exports."""

import json

from repro.memory.stats import CATEGORIES, DramStats
from repro.obs.trace import (
    NULL_RECORDER,
    DramProbe,
    NullRecorder,
    StepClock,
    TraceRecorder,
    load_jsonl,
    render_spans,
    to_chrome_trace,
)


# ----------------------------------------------------------------------
# clocks


def test_step_clock_advances_deterministically():
    clock = StepClock(step=0.5)
    assert clock() == 0.5
    assert clock() == 1.0
    assert clock() == 1.5


# ----------------------------------------------------------------------
# recording


def test_begin_end_records_one_span():
    rec = TraceRecorder(clock=StepClock())
    sid = rec.begin("request", conn=1)
    rec.end(sid, response_bytes=8)
    (span,) = rec.spans
    assert span.name == "request"
    assert span.attrs == {"conn": 1, "response_bytes": 8}
    assert span.end is not None and span.end > span.start
    assert span.duration > 0


def test_parent_links_are_explicit():
    rec = TraceRecorder(clock=StepClock())
    parent = rec.begin("commit_batch")
    child = rec.begin("merge_update", parent=parent)
    rec.end(child)
    rec.end(parent)
    assert [s.span_id for s in rec.children(parent)] == [child]
    assert rec.find("merge_update")[0].parent_id == parent


def test_end_is_idempotent_and_tolerates_none():
    rec = TraceRecorder(clock=StepClock())
    sid = rec.begin("x")
    rec.end(sid)
    first_end = rec.spans[0].end
    rec.end(sid)          # second end must not move the timestamp
    rec.end(None)         # the disabled-path sentinel
    rec.end(999)          # unknown id
    assert rec.spans[0].end == first_end


def test_attach_adds_attrs_without_closing():
    rec = TraceRecorder(clock=StepClock())
    sid = rec.begin("batch")
    rec.attach(sid, vsid=3)
    assert rec.spans[0].end is None
    assert rec.spans[0].attrs == {"vsid": 3}
    rec.attach(None)  # no-op


def test_span_context_manager_closes_on_exception():
    rec = TraceRecorder(clock=StepClock())
    try:
        with rec.span("op"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert rec.spans[0].end is not None


# ----------------------------------------------------------------------
# the null recorder


def test_null_recorder_is_disabled_and_inert():
    assert NULL_RECORDER.enabled is False
    assert isinstance(NULL_RECORDER, NullRecorder)
    assert NULL_RECORDER.begin("x", conn=1) is None
    NULL_RECORDER.end(None)
    NULL_RECORDER.attach(None, a=1)
    with NULL_RECORDER.span("x") as sid:
        assert sid is None


# ----------------------------------------------------------------------
# DRAM attribution


def test_dram_probe_captures_delta():
    dram = DramStats(reads=10)
    with DramProbe(dram) as probe:
        dram.reads += 5
        dram.lookups += 2
    assert probe.delta.reads == 5
    assert probe.delta.lookups == 2
    assert probe.attrs() == {("dram_" + c): getattr(probe.delta, c)
                             for c in CATEGORIES}


def test_span_with_dram_attaches_categories():
    rec = TraceRecorder(clock=StepClock())
    dram = DramStats()
    with rec.span("commit", dram=dram):
        dram.writes += 3
    assert rec.spans[0].attrs["dram_writes"] == 3
    assert rec.spans[0].attrs["dram_reads"] == 0


# ----------------------------------------------------------------------
# exports


def _small_trace() -> TraceRecorder:
    rec = TraceRecorder(clock=StepClock())
    a = rec.begin("request", conn=1, command="set")
    b = rec.begin("commit_batch", parent=a, shard=0)
    rec.end(b, writes=1)
    rec.end(a, response_bytes=8)
    return rec


def test_jsonl_export_is_byte_reproducible():
    assert _small_trace().export_jsonl() == _small_trace().export_jsonl()


def test_jsonl_round_trip(tmp_path):
    rec = _small_trace()
    path = tmp_path / "trace.jsonl"
    rec.write_jsonl(path)
    spans = load_jsonl(path)
    assert [s["name"] for s in spans] == ["request", "commit_batch"]
    assert spans[1]["parent"] == spans[0]["id"]
    assert spans[0]["attrs"]["command"] == "set"
    # the file really is one JSON document per line
    lines = path.read_text().splitlines()
    assert all(json.loads(line) for line in lines)


def test_chrome_export_shape(tmp_path):
    rec = _small_trace()
    doc = rec.to_chrome()
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert len(events) == 2
    assert all(e["ph"] == "X" for e in events)
    request = events[0]
    assert request["name"] == "request"
    assert request["tid"] == 1          # conn attr -> thread lane
    assert request["dur"] > 0           # µs duration
    # open spans export with zero duration rather than crashing
    rec2 = TraceRecorder(clock=StepClock())
    rec2.begin("open")
    assert to_chrome_trace(
        [s.to_dict() for s in rec2.spans])["traceEvents"][0]["dur"] == 0


def test_render_spans_indents_children_and_limits():
    rec = _small_trace()
    text = render_spans([s.to_dict() for s in rec.spans])
    lines = text.splitlines()
    assert "request" in lines[1]
    assert "  commit_batch" in lines[2]   # child indented under parent
    limited = render_spans([s.to_dict() for s in rec.spans], limit=1)
    assert "1 more span(s)" in limited
