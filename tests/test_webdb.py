"""Tests for the in-memory database application."""

import pytest

from repro.apps.webdb import Database
from repro.apps.webdb.db import decode_row, encode_row
from repro.concurrency import Scheduler


@pytest.fixture
def db(machine):
    d = Database(machine)
    users = d.create_table("users", ["name", "city", "balance"])
    users.insert(b"u1", {"name": b"ada", "city": b"london", "balance": b"100"})
    users.insert(b"u2", {"name": b"bob", "city": b"paris", "balance": b"50"})
    users.insert(b"u3", {"name": b"cyd", "city": b"london", "balance": b"75"})
    return d


class TestRowEncoding:
    def test_roundtrip(self):
        schema = ["a", "b", "c"]
        row = {"a": b"x", "b": b"", "c": b"long" * 50}
        assert decode_row(schema, encode_row(schema, row)) == row

    def test_missing_fields_default_empty(self):
        schema = ["a", "b"]
        assert decode_row(schema, encode_row(schema, {"a": b"1"})) == \
            {"a": b"1", "b": b""}

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            encode_row(["a"], {"zzz": b"1"})


class TestTable:
    def test_insert_get_delete(self, db):
        users = db.table("users")
        assert users.get(b"u1")["name"] == b"ada"
        assert users.get(b"nobody") is None
        assert users.delete(b"u2")
        assert users.get(b"u2") is None
        assert len(users) == 2

    def test_replace(self, db):
        users = db.table("users")
        users.insert(b"u1", {"name": b"ada", "city": b"rome",
                             "balance": b"1"})
        assert users.get(b"u1")["city"] == b"rome"
        assert len(users) == 3

    def test_rows_iteration(self, db):
        keys = {k for k, _ in db.table("users").rows()}
        assert keys == {b"u1", b"u2", b"u3"}

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(ValueError):
            db.create_table("users", ["x"])


class TestQueryViews:
    def test_filter_query(self, db):
        view = db.query("users", lambda k, r: r["city"] == b"london")
        got = {k: r["name"] for k, r in view.rows()}
        assert got == {b"u1": b"ada", b"u3": b"cyd"}
        assert len(view) == 2

    def test_view_references_not_copies(self, db):
        view = db.query("users", lambda k, r: True)
        # 4 words of references per row, regardless of row size
        assert view.footprint_words() == 4 * 3

    def test_view_survives_deletes(self, db):
        view = db.query("users", lambda k, r: r["city"] == b"london")
        db.table("users").delete(b"u1")
        db.table("users").delete(b"u3")
        got = {k for k, _ in view.rows()}
        assert got == {b"u1", b"u3"}  # the view pinned those versions

    def test_query_is_snapshot_consistent(self, db, machine):
        seen = []

        def reader():
            view = db.query("users", lambda k, r: True)
            yield
            seen.append({k: r["balance"] for k, r in view.rows()})

        def writer():
            yield
            db.table("users").insert(
                b"u1", {"name": b"ada", "city": b"london", "balance": b"0"})
            yield

        sched = Scheduler()
        sched.spawn("r", reader())
        sched.spawn("w", writer())
        sched.run()
        assert seen[0][b"u1"] == b"100"  # pre-update value

    def test_empty_result(self, db):
        view = db.query("users", lambda k, r: False)
        assert len(view) == 0
        assert list(view.rows()) == []


class TestTransactions:
    def test_multi_table_commit(self, db):
        orders = db.create_table("orders", ["user", "total"])
        txn = db.begin()
        txn.insert("orders", b"o1", {"user": b"u1", "total": b"30"})
        txn.insert("users", b"u1", {"name": b"ada", "city": b"london",
                                    "balance": b"70"})
        # nothing visible yet
        assert orders.get(b"o1") is None
        assert db.table("users").get(b"u1")["balance"] == b"100"
        assert txn.commit()
        assert orders.get(b"o1")["total"] == b"30"
        assert db.table("users").get(b"u1")["balance"] == b"70"

    def test_conflicting_transaction_aborts_whole(self, db):
        orders = db.create_table("orders", ["user", "total"])
        txn = db.begin()
        txn.insert("orders", b"o1", {"user": b"u1", "total": b"30"})
        txn.insert("users", b"u1", {"name": b"ada", "city": b"london",
                                    "balance": b"70"})
        # interference on an enrolled table
        db.table("users").insert(b"u9", {"name": b"eve", "city": b"x",
                                         "balance": b"1"})
        assert not txn.commit()
        assert orders.get(b"o1") is None  # all-or-nothing
        assert db.table("users").get(b"u1")["balance"] == b"100"

    def test_transaction_delete(self, db):
        txn = db.begin()
        txn.delete("users", b"u2")
        assert txn.commit()
        assert db.table("users").get(b"u2") is None
        assert len(db.table("users")) == 2

    def test_abort(self, db, machine):
        txn = db.begin()
        txn.insert("users", b"u4", {"name": b"dan", "city": b"oslo",
                                    "balance": b"5"})
        txn.abort()
        assert db.table("users").get(b"u4") is None
        machine.mem.store.check_refcounts()
