"""The history-independence verifier itself (repro.testing.hi).

A canonical-form store makes history independence *checkable*: every
schedule of one workload must land on byte-identical roots. These tests
run the differential verifier end to end over all five structures and —
just as important — prove the verifier can *fail*: an injected
order-dependent bug must be caught, shrunk to a minimal op list, and
reported with a replayable seed.
"""

import pytest

from repro.testing import hi
from repro.testing.hi import (
    HIConfig,
    generate_workload,
    interleave,
    run_hi,
    run_hi_episode,
    verify_structure,
)

FAST = HIConfig(schedules=6, keys=8, ops=24)


def test_workloads_are_seed_pure():
    for structure in hi.STRUCTURES:
        first = generate_workload(9, structure, FAST)
        again = generate_workload(9, structure, FAST)
        assert first == again
        assert first != generate_workload(10, structure, FAST)


def test_interleave_preserves_per_key_order():
    ops = generate_workload(3, "hmap", FAST)
    for index in range(1, 8):
        schedule = interleave(ops, 3, index)
        assert sorted(map(repr, schedule)) == sorted(map(repr, ops))
        for key in {op[1] for op in ops}:
            stream = [op for op in ops if op[1] == key]
            assert [op for op in schedule if op[1] == key] == stream
    assert interleave(ops, 3, 0) == list(ops)
    # schedules genuinely differ (or the verifier checks nothing)
    assert any(interleave(ops, 3, i) != list(ops) for i in range(1, 8))


@pytest.mark.parametrize("structure", hi.STRUCTURES)
def test_structure_is_history_independent(structure):
    verdict = verify_structure(17, structure, FAST)
    assert verdict.ok, "\n".join(verdict.failures)
    assert verdict.fingerprints


def test_full_episode_at_default_schedule_depth():
    # the acceptance bar: >= 20 permuted schedules per workload spec
    cfg = HIConfig(keys=8, ops=24)
    assert cfg.schedules >= 20
    result = run_hi_episode(1, cfg)
    assert result.ok, "\n".join(result.failures)


def test_injected_order_dependence_is_caught_and_shrunk(monkeypatch):
    # sabotage one schedule: silently drop the deletes
    original = hi.interleave

    def sabotaged(ops, seed, index):
        schedule = original(ops, seed, index)
        if index == 2:
            schedule = [op for op in schedule if op[0] != "delete"]
        return schedule

    monkeypatch.setattr(hi, "interleave", sabotaged)
    verdict = verify_structure(11, "hmap", HIConfig(schedules=4))
    assert not verdict.ok
    assert any("schedule 2" in failure for failure in verdict.failures)
    # the shrinker produced a strictly smaller, still-diverging repro
    assert verdict.minimal_ops is not None
    assert 0 < len(verdict.minimal_ops) \
        < len(generate_workload(11, "hmap", HIConfig(schedules=4)))


def test_report_renders_replay_seed(monkeypatch):
    original = hi.interleave

    def sabotaged(ops, seed, index):
        schedule = original(ops, seed, index)
        if index == 1:
            schedule = [op for op in schedule if op[0] != "delete"]
        return schedule

    monkeypatch.setattr(hi, "interleave", sabotaged)
    report = run_hi(episodes=1, seed=23,
                    cfg=HIConfig(schedules=2, structures=("hmap",)))
    assert not report.ok
    assert report.failed_seeds == [23]
    rendered = report.render()
    assert "repro fuzz --profile hi --episodes 1 --seed 23" in rendered
    assert "DIVERGED" in rendered


def test_report_render_green_path():
    report = run_hi(episodes=2, seed=4,
                    cfg=HIConfig(schedules=3, keys=6, ops=12,
                                 structures=("hmap", "hordered")))
    assert report.ok
    assert report.failed_seeds == []
    assert "episodes=2 ok=2 failed=0" in report.render()
