"""CommitController hysteresis, pinned with deterministic streams.

Every test drives the controller directly with hand-built
:class:`BatchSample` streams and a :class:`StepClock`, so the decision
sequence is a pure function of the stream — no server, no sockets, no
wall clock. What's pinned: threshold-hovering streams cannot oscillate
(enter/exit gap + dwell), the storm-onset fast path, the hop_reads
gate (controller-entered bulk only), the ``commit_mode_switch`` trace
span contract, reclaim-budget retuning, capability degradation, and
the observer posture when adaptation is off.
"""

import pytest

from repro.net.adaptive import (AdaptiveConfig, BatchSample,
                                CommitController, COMMIT_MODES)
from repro.obs.trace import StepClock, TraceRecorder


def controller(window=2, dwell=1, adaptive=True, **kwargs):
    cfg_kwargs = {k: kwargs.pop(k) for k in list(kwargs)
                  if hasattr(AdaptiveConfig, k)}
    return CommitController(
        1, kwargs.pop("mode", "merge"), adaptive=adaptive,
        clock=StepClock(),
        config=AdaptiveConfig(window=window, dwell_epochs=dwell,
                              **cfg_kwargs),
        **kwargs)


def feed(ctl, writes=10, reads=0, sets=None, dups=0, depth=0,
         retries=0, merges=0, rtt=0.001, shard=0):
    """One batch: ``reads`` inline ticks then one BatchSample."""
    for _ in range(reads):
        ctl.note_read(shard)
    ctl.observe_batch(shard, BatchSample(
        writes=writes, sets=writes if sets is None else sets,
        dup_sets=dups, cas_retries=retries, merge_commits=merges,
        queue_depth=depth, rtt_s=rtt))


def feed_window(ctl, **kwargs):
    for _ in range(ctl.config.window):
        feed(ctl, **kwargs)


class TestHysteresis:
    def test_stream_hovering_between_thresholds_never_oscillates(self):
        # write_frac 0.45 sits inside the (exit 0.35, enter 0.55) gap:
        # whatever mode the shard holds, it keeps it — forever
        for start, expected in (("merge", "merge"), ("bulk", "bulk")):
            ctl = controller(mode=start)
            for _ in range(20):
                feed(ctl, writes=9, reads=11)  # write_frac = 0.45
            assert ctl.mode(0) == expected
            assert ctl.switch_log == []

    def test_enter_and_exit_use_different_thresholds(self):
        ctl = controller(dwell=0)
        feed_window(ctl, writes=11, reads=9)   # 0.55 >= enter -> bulk
        assert ctl.mode(0) == "bulk"
        feed_window(ctl, writes=7, reads=13)   # 0.35 == exit -> stays
        assert ctl.mode(0) == "bulk"
        feed_window(ctl, writes=6, reads=14)   # 0.30 < exit -> leaves
        assert ctl.mode(0) == "merge"

    def test_dwell_blocks_switching_for_configured_epochs(self):
        ctl = controller(window=1, dwell=2)
        feed(ctl, writes=10)                   # -> bulk, dwell starts
        assert ctl.mode(0) == "bulk"
        feed(ctl, writes=0, reads=10)          # dwell epoch 1: held
        feed(ctl, writes=0, reads=10)          # dwell epoch 2: held
        assert ctl.mode(0) == "bulk"
        feed(ctl, writes=0, reads=10)          # dwell over: may leave
        assert ctl.mode(0) == "merge"

    def test_rmw_stream_enters_cas_and_needs_recovery_to_leave(self):
        ctl = controller(dwell=0)
        # sets are 30% of writes: read-modify-write dominated
        feed_window(ctl, writes=10, sets=3)
        assert ctl.mode(0) == "cas"
        # recovery to 50% is still below the 0.55 exit: stays cas
        feed_window(ctl, writes=10, sets=5)
        assert ctl.mode(0) == "cas"
        feed_window(ctl, writes=10, sets=10)
        assert ctl.mode(0) != "cas"

    def test_duplicate_heavy_sets_prefer_bulk_over_merge(self):
        ctl = controller(dwell=0)
        # balanced write_frac (0.5, below bulk enter) but every third
        # set repeats a key: merge staging would split at each repeat
        feed_window(ctl, writes=10, reads=10, dups=4)
        assert ctl.mode(0) == "bulk"
        assert ctl.switch_log[-1]["signals"]["dup_frac"] >= 0.30

    def test_switch_log_stamped_by_injected_clock(self):
        ctl = controller(window=1, dwell=0)
        feed(ctl, writes=10)
        feed(ctl, writes=0, reads=10)
        stamps = [s["t"] for s in ctl.switch_log]
        assert len(stamps) == 2 and stamps[0] < stamps[1]
        assert stamps[-1] < 1.0  # StepClock time, not wall time


class TestStormOnset:
    def test_full_set_batch_with_backlog_enters_bulk_immediately(self):
        ctl = controller(window=8, dwell=2)  # window would take 8
        feed(ctl, writes=16, depth=5)        # one full all-set batch
        assert ctl.mode(0) == "bulk"
        assert ctl.switch_log[-1]["reason"] == "storm-onset"

    def test_onset_needs_backlog_and_a_full_batch(self):
        ctl = controller(window=8)
        feed(ctl, writes=16, depth=0)        # no backlog behind it
        assert ctl.mode(0) == "merge"
        feed(ctl, writes=3, depth=5)         # backlog but tiny batch
        assert ctl.mode(0) == "merge"

    def test_onset_respects_mixed_writes(self):
        ctl = controller(window=8)
        feed(ctl, writes=16, sets=6, depth=5)  # sets < 60% of writes
        assert ctl.mode(0) == "merge"


class TestKnobs:
    def test_bulk_mode_raises_batch_limit_and_back(self):
        ctl = controller(window=1, dwell=0, storm_batch_limit=48)
        assert ctl.batch_limit(0) == 16
        feed(ctl, writes=10)
        assert ctl.batch_limit(0) == 48
        feed(ctl, writes=0, reads=10)
        assert ctl.mode(0) == "merge" and ctl.batch_limit(0) == 16

    def test_idle_windows_raise_the_reclaim_budget(self):
        ctl = controller(window=1, dwell=0, idle_reclaim_budget=4096)
        assert ctl.reclaim_budget(0) == 512
        feed(ctl, writes=0, reads=10, depth=0)   # idle: catch up
        assert ctl.reclaim_budget(0) == 4096
        feed(ctl, writes=5, reads=5)             # busy again: base rate
        assert ctl.reclaim_budget(0) == 512

    def test_storm_budget_clamps_only_below_base(self):
        # the default storm budget equals the base rate (no deferral);
        # an explicit lower value defers during bulk windows
        ctl = controller(window=1, dwell=0, storm_reclaim_budget=16)
        feed(ctl, writes=10)
        assert ctl.mode(0) == "bulk" and ctl.reclaim_budget(0) == 16

    def test_hop_reads_requires_controller_entered_bulk(self):
        ctl = controller(window=1, dwell=0)
        assert not ctl.hop_reads(0)              # merge: strict FIFO
        feed(ctl, writes=10)
        assert ctl.mode(0) == "bulk" and ctl.hop_reads(0)
        static = controller(adaptive=False, mode="bulk")
        assert static.mode(0) == "bulk" and not static.hop_reads(0)
        gated = controller(window=1, dwell=0, hop_reads=False)
        feed(gated, writes=10)
        assert gated.mode(0) == "bulk" and not gated.hop_reads(0)


class TestSpans:
    def test_switch_emits_span_with_before_and_after_knobs(self):
        recorder = TraceRecorder(clock=StepClock())
        ctl = CommitController(
            1, "merge", adaptive=True, recorder=recorder,
            clock=StepClock(),
            config=AdaptiveConfig(window=1, dwell_epochs=0))
        feed(ctl, writes=10)
        spans = recorder.find("commit_mode_switch")
        assert len(spans) == 1
        attrs = spans[0].attrs
        assert attrs["from_mode"] == "merge"
        assert attrs["to_mode"] == "bulk"
        assert attrs["batch_limit"] == 16           # before
        assert attrs["new_batch_limit"] == 48       # after
        assert attrs["write_frac"] == 1.0           # the justification
        assert spans[0].end is not None

    def test_unchanged_target_emits_no_span(self):
        recorder = TraceRecorder(clock=StepClock())
        ctl = CommitController(
            1, "merge", adaptive=True, recorder=recorder,
            clock=StepClock(),
            config=AdaptiveConfig(window=1, dwell_epochs=0))
        feed(ctl, writes=5, reads=5)
        assert recorder.find("commit_mode_switch") == []


class TestObserverPosture:
    def test_disabled_controller_never_switches_but_still_samples(self):
        ctl = controller(adaptive=False, window=1)
        for _ in range(6):
            feed(ctl, writes=10, reads=2, rtt=0.004)
        assert ctl.mode(0) == "merge"
        assert ctl.switch_log == [] and ctl.switches_total() == 0
        snap = ctl.snapshot()
        assert snap["enabled"] is False
        assert snap["shards"][0]["writes"] == 60
        assert snap["shards"][0]["reads"] == 12
        # the raw-input exports the adapter reads are live regardless
        assert ctl.per_shard("queue_depth") == {"0": 0}
        assert sum(ctl.rtt_bucket_counts().values()) > 0
        assert ctl.mode_counts()[("0", "merge")] == 1

    def test_rotation_hook_cycles_available_modes(self):
        ctl = controller(window=8, dwell=5, rotate_every=2)
        seen = []
        for _ in range(6):
            feed(ctl, writes=1, reads=9)
            seen.append(ctl.mode(0))
        # merge -> bulk -> cas -> merge, one hop every second batch
        assert seen == ["merge", "bulk", "bulk", "cas", "cas", "merge"]
        assert all(s["reason"] == "rotate" for s in ctl.switch_log)

    def test_capability_degrade_bounds_policy_targets(self):
        no_bulk = CommitController(
            1, "merge", adaptive=True, bulk_ok=False,
            clock=StepClock(),
            config=AdaptiveConfig(window=1, dwell_epochs=0))
        feed(no_bulk, writes=10)       # storm, but bulk unavailable
        assert no_bulk.mode(0) == "merge"
        cas_only = CommitController(
            1, "cas", adaptive=True, merge_ok=False, bulk_ok=False,
            clock=StepClock(),
            config=AdaptiveConfig(window=1, dwell_epochs=0))
        feed(cas_only, writes=0, reads=10)
        assert cas_only.mode(0) == "cas"
        cas_only.force_mode(0, "bulk")  # degrades bulk -> merge -> cas
        assert cas_only.mode(0) == "cas"

    def test_config_validation_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(enter_bulk_write_frac=0.3,
                           exit_bulk_write_frac=0.5).validate()
        with pytest.raises(ValueError):
            AdaptiveConfig(enter_cas_set_frac=0.6,
                           exit_cas_set_frac=0.4).validate()
        with pytest.raises(ValueError):
            AdaptiveConfig(window=0).validate()
        with pytest.raises(ValueError):
            CommitController(1, "sideways")

    def test_force_mode_logs_like_a_policy_switch(self):
        ctl = controller()
        ctl.force_mode(0, "bulk")
        assert ctl.mode(0) == "bulk"
        entry = ctl.switch_log[-1]
        assert entry["reason"] == "forced"
        assert entry["from"] == "merge" and entry["to"] == "bulk"
        assert COMMIT_MODES == ("cas", "merge", "bulk")
