"""Unit and integration tests for the SpMV study."""

import numpy as np
import pytest

from repro.apps.spmv import CsrMatrix, csr_spmv_traffic, spmv_comparison
from repro.apps.spmv.kernels import (
    best_hicamp_footprint,
    csr_result,
    hicamp_spmv_traffic,
    spmv_conventional_config,
)
from repro.workloads.matrices import (
    fem_2d,
    lp_block,
    patterned_block,
    random_sparse,
)


def to_dense(spec):
    dense = np.zeros((spec.n, spec.m))
    for r, c, v in spec.entries:
        dense[r, c] = v
    return dense


class TestCsr:
    def test_multiply_matches_numpy(self):
        spec = lp_block(32, 24, "t", seed=1)
        csr = CsrMatrix.from_spec(spec)
        x = np.linspace(1, 2, spec.m)
        assert np.allclose(csr.multiply(x), to_dense(spec) @ x)

    def test_symmetric_storage_halves_offdiag(self):
        spec = fem_2d(8, "t")
        full = CsrMatrix.from_spec(spec, use_symmetric=False)
        half = CsrMatrix.from_spec(spec, use_symmetric=True)
        assert half.nnz_stored < full.nnz_stored

    def test_symmetric_multiply_matches_full(self):
        spec = fem_2d(8, "t")
        full = CsrMatrix.from_spec(spec, use_symmetric=False)
        half = CsrMatrix.from_spec(spec, use_symmetric=True)
        x = np.arange(spec.m, dtype=float) + 0.5
        assert np.allclose(half.multiply(x), full.multiply(x))

    def test_traffic_positive_and_scales(self):
        small = CsrMatrix.from_spec(random_sparse(64, 512, "s", seed=2))
        large = CsrMatrix.from_spec(random_sparse(256, 8192, "l", seed=2))
        cfg = spmv_conventional_config(32)
        t_small = csr_spmv_traffic(small, cfg).total()
        t_large = csr_spmv_traffic(large, cfg).total()
        assert 0 < t_small < t_large

    def test_storage_bytes(self):
        spec = random_sparse(64, 512, "s", seed=3)
        csr = CsrMatrix.from_spec(spec)
        assert csr.storage_bytes() == (4 * (spec.n + 1) + 12 * spec.nnz)


class TestHicampKernels:
    def test_qts_and_nzd_agree_with_csr(self):
        spec = fem_2d(8, "t", seed=4)
        qts = hicamp_spmv_traffic(spec, fmt="qts")
        nzd = hicamp_spmv_traffic(spec, fmt="nzd")
        conv = csr_result(spec)
        assert qts.y_checksum == pytest.approx(conv.y_checksum)
        assert nzd.y_checksum == pytest.approx(conv.y_checksum)

    def test_comparison_picks_best_format(self):
        patterned = patterned_block(128, "p", seed=0)
        fmt, _ = best_hicamp_footprint(patterned)
        assert fmt == "qts"  # repeated values: value tree collapses
        unique_vals = lp_block(128, 96, "l", seed=0)
        fmt2, _ = best_hicamp_footprint(unique_vals)
        assert fmt2 == "nzd"  # unique values, repeated pattern

    def test_self_similar_matrix_wins_big(self):
        spec = patterned_block(128, "p", seed=1)
        hicamp, conv = spmv_comparison(spec)
        assert hicamp.footprint_bytes < conv.footprint_bytes / 4
        assert hicamp.dram_accesses < conv.dram_accesses

    def test_traffic_measured_after_build(self):
        spec = fem_2d(8, "t", seed=5)
        res = hicamp_spmv_traffic(spec, fmt="qts")
        assert res.dram_accesses > 0

    def test_mismatch_detection(self, monkeypatch):
        # the harness cross-checks numerics between representations
        spec = fem_2d(4, "t", seed=6)
        import repro.apps.spmv.kernels as kernels

        real = kernels.csr_result

        def broken(spec, line_bytes=32):
            res = real(spec, line_bytes)
            res.y_checksum += 1.0
            return res

        monkeypatch.setattr(kernels, "csr_result", broken)
        with pytest.raises(AssertionError):
            kernels.spmv_comparison(spec)
