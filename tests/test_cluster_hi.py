"""History independence across *topologies* (satellite of the HI PR).

The single-machine verifier proves op order can't leak into canonical
form. This test lifts that to the cluster: one workload executed
against a healthy single-leader fleet, and again against a fleet that
loses its leader mid-workload and promotes a follower, must end with
**identical per-stream segment fingerprints** — failover is just
another schedule, and the replicated DAG must not remember it.
"""

import asyncio

from repro.cluster import (
    Cluster,
    ClusterClient,
    ClusterConfig,
    TopologyManager,
)

KEYS = [(b"hi-key-%03d" % i, b"hi-value-%d" % (i % 7)) for i in range(40)]


async def write(client, items):
    for key, value in items:
        line = await client.set(key, value)
        assert line.strip() == b"STORED", line


async def wait_epoch(cluster, above, timeout=30.0):
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if cluster.topology.epoch > above:
            return True
        await asyncio.sleep(0.02)
    return False


def config():
    return ClusterConfig(leaders=1, followers=2, shards=2, seed=11)


async def healthy_run():
    """The whole workload against an undisturbed 1-leader fleet."""
    client = ClusterClient(max_retries=100, retry_delay=0.02)
    async with Cluster(config()) as cluster:
        client.topology = cluster.topology
        await write(client, KEYS)
        assert await cluster.wait_converged("lead-0")
        fleet = cluster.fleet_fingerprints("lead-0")
        await client.close()
        return cluster.leader_fingerprints("lead-0"), fleet


async def failover_run():
    """Same workload, but the leader dies halfway and a follower is
    promoted; the rest of the workload lands on the new leader."""
    client = ClusterClient(max_retries=200, retry_delay=0.02)
    cluster = Cluster(config())
    manager = TopologyManager(cluster, probe_interval=0.05,
                              failure_threshold=2)
    async with cluster:
        client.topology = cluster.topology
        half = len(KEYS) // 2
        await write(client, KEYS[:half])
        assert await cluster.wait_converged("lead-0")
        epoch = cluster.topology.epoch
        await manager.start()
        await cluster.kill("lead-0")
        assert await wait_epoch(cluster, epoch)
        promoted = cluster.topology.leader_ids()
        assert len(promoted) == 1 and promoted[0] != "lead-0"
        await client.refresh()
        await write(client, KEYS[half:])
        assert await cluster.wait_converged(promoted[0])
        fleet = cluster.fleet_fingerprints(promoted[0])
        leader = cluster.leader_fingerprints(promoted[0])
        await client.close()
        await manager.stop()
        return leader, fleet


class TestClusterHistoryIndependence:
    def test_failover_is_invisible_in_the_fingerprints(self):
        async def go():
            healthy_leader, healthy_fleet = await healthy_run()
            failover_leader, failover_fleet = await failover_run()

            # the leaders' per-stream canonical roots are identical —
            # the failover never happened, as far as the DAG can tell
            assert failover_leader == healthy_leader

            # and every fleet member in both runs agrees with them
            for fleet in (healthy_fleet, failover_fleet):
                for node_id, streams in fleet.items():
                    assert streams == healthy_leader, node_id

        asyncio.run(go())
