"""Index-kind invariance: the lookup-by-content index must be a pure
implementation detail. Seeded churn lands on bit-identical store state
under ``legacy`` and ``cuckoo``, and the history-independence harness
produces identical fingerprints under either kind — including while the
cuckoo table resizes online mid-schedule."""

import random

import pytest

from repro.memory.dedup_store import DedupStore
from repro.memory.line import make_leaf
from repro.params import MemoryConfig
from repro.testing.hi import HIConfig, verify_structure


def _cfg(kind):
    return MemoryConfig(num_buckets=1 << 6, index_kind=kind,
                        index_buckets=8)


def _churn(store: DedupStore, seed: int, steps: int = 2500):
    """Seeded install/dup/dealloc churn; trace depends only on seed."""
    rng = random.Random(seed)
    held = []
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.55 or not held:
            i = rng.randrange(600)  # small pool -> frequent dedup hits
            line = make_leaf((i + 1, (i * 2654435761 + 7)
                              & ((1 << 64) - 1)), 2)
            plid, _created = store.lookup(line)
            held.append(plid)
        else:
            store.decref(held.pop(rng.randrange(len(held))))
    return held


@pytest.mark.parametrize("seed", [11, 4242])
def test_seeded_churn_identical_store_state_across_kinds(seed):
    legacy = DedupStore(_cfg("legacy"))
    cuckoo = DedupStore(_cfg("cuckoo"))
    held_l = _churn(legacy, seed)
    held_c = _churn(cuckoo, seed)
    assert held_l == held_c, "PLID assignment depends on index kind"
    assert legacy._lines == cuckoo._lines
    assert legacy._refcounts == cuckoo._refcounts
    assert legacy.footprint_bytes() == cuckoo.footprint_bytes()
    assert legacy.index_failures() == []
    assert cuckoo.index_failures() == []
    # the tiny initial table must have resized under this much churn
    assert cuckoo.index.stats.resizes_completed >= 1
    # drain to zero on both: reclamation is index-independent too
    for plid in held_l:
        legacy.decref(plid)
    for plid in held_c:
        cuckoo.decref(plid)
    assert legacy.footprint_lines() == cuckoo.footprint_lines() == 0
    assert len(cuckoo.index) == 0
    assert cuckoo.index_failures() == []


@pytest.mark.parametrize("structure", ["hmap", "hsorted"])
def test_hi_fingerprints_identical_across_index_kinds(structure):
    """The HI harness observes canonical roots/fingerprints only — they
    must match between index kinds, with the cuckoo machines resizing
    online from a deliberately tiny table during the schedules."""
    seed = 20260808
    base = dict(schedules=6, keys=10, ops=28)
    legacy = verify_structure(seed, structure,
                              HIConfig(index_kind="legacy", **base))
    cuckoo = verify_structure(seed, structure,
                              HIConfig(index_kind="cuckoo",
                                       index_buckets=8, **base))
    assert legacy.ok, legacy.failures
    assert cuckoo.ok, cuckoo.failures
    assert legacy.fingerprints == cuckoo.fingerprints
    assert legacy.schedules == cuckoo.schedules
