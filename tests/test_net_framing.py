"""Tests for the streaming frame decoder (split and pipelined frames)."""

import pytest

from repro.apps.memcached.protocol import (
    IncompleteRequestError,
    ProtocolError,
    parse_frame,
    parse_request,
)
from repro.net.framing import MAX_LINE_BYTES, Frame, FrameDecoder


class TestParseFrameRegression:
    """Satellite: short data blocks are rejected, never truncated."""

    def test_short_data_block_is_incomplete_not_truncated(self):
        # declared 10 bytes, only 5 present: must NOT come back as b"short"
        with pytest.raises(IncompleteRequestError):
            parse_request(b"set k 0 0 10\r\nshort\r\n")

    def test_unterminated_line_is_incomplete(self):
        with pytest.raises(IncompleteRequestError):
            parse_request(b"get key")

    def test_missing_payload_terminator_is_malformed(self):
        # declared count shorter than the actual block: permanent error
        with pytest.raises(ProtocolError) as exc:
            parse_request(b"set k 0 0 3\r\nhello\r\n")
        assert not isinstance(exc.value, IncompleteRequestError)

    def test_negative_byte_count_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b"set k 0 0 -1\r\n\r\n")

    def test_oversized_byte_count_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request(b"set k 0 0 99999999\r\n")
        assert not isinstance(exc.value, IncompleteRequestError)

    def test_consumed_covers_whole_storage_frame(self):
        raw = b"set k 0 0 5\r\nhello\r\n"
        command, args, payload, consumed = parse_frame(raw + b"get x\r\n")
        assert command == b"set" and payload == b"hello"
        assert consumed == len(raw)


class TestFrameDecoder:
    def test_single_complete_frame(self):
        frames = FrameDecoder().feed(b"get alpha\r\n")
        assert [f.command for f in frames] == [b"get"]
        assert frames[0].args == [b"alpha"]
        assert frames[0].error is None

    def test_pipelined_frames_in_one_read(self):
        data = (b"set a 0 0 1\r\nx\r\n"
                b"get a\r\n"
                b"delete a\r\n")
        frames = FrameDecoder().feed(data)
        assert [f.command for f in frames] == [b"set", b"get", b"delete"]
        assert frames[0].payload == b"x"

    def test_byte_by_byte_feed(self):
        decoder = FrameDecoder()
        request = b"set key 0 0 5\r\nhello\r\n"
        collected = []
        for i, byte in enumerate(request):
            frames = decoder.feed(bytes([byte]))
            if i < len(request) - 1:
                assert frames == []
            collected.extend(frames)
        assert len(collected) == 1
        assert collected[0].payload == b"hello"
        assert decoder.pending_bytes == 0

    def test_split_inside_payload(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"set k 0 0 6\r\nab") == []
        frames = decoder.feed(b"c\r\nd\r\nget k\r\n")
        assert frames[0].payload == b"ab" + b"c\r\nd"[:4]
        assert frames[0].payload == b"abc\r\nd"[:6]
        assert frames[1].command == b"get"

    def test_binary_payload_with_crlf_inside(self):
        value = b"a\r\nb\r\nc"
        decoder = FrameDecoder()
        frames = decoder.feed(b"set k 0 0 %d\r\n%s\r\n" % (len(value), value))
        assert frames[0].payload == value

    def test_malformed_count_yields_error_frame_and_resyncs(self):
        decoder = FrameDecoder()
        frames = decoder.feed(b"set k 0 0 zz\r\nget ok\r\n")
        assert frames[0].error is not None
        assert frames[1].command == b"get" and frames[1].args == [b"ok"]

    def test_short_declared_count_consumes_whole_bad_request(self):
        decoder = FrameDecoder()
        frames = decoder.feed(b"set k 0 0 3\r\nhello\r\n")
        # the malformed request — line AND its data block — is consumed
        # as one error frame; the payload is never misread as a command
        assert len(frames) == 1 and frames[0].error is not None
        assert decoder.pending_bytes == 0

    def test_malformed_then_pipelined_valid_frame_same_read(self):
        # Satellite regression: a malformed storage frame followed
        # immediately by a pipelined valid request in the SAME read must
        # resync onto the valid request, not onto the orphaned payload
        decoder = FrameDecoder()
        frames = decoder.feed(b"set k 0 0 4\r\nhello\r\nget a\r\n")
        assert len(frames) == 2
        assert frames[0].error is not None
        assert frames[1].command == b"get" and frames[1].args == [b"a"]
        assert decoder.pending_bytes == 0

    def test_malformed_then_valid_split_across_reads(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"set k 0 0 4\r\nhel") == []
        frames = decoder.feed(b"lo\r\nget a\r\n")
        assert [f.error is None for f in frames] == [False, True]
        assert frames[1].command == b"get"

    def test_resync_error_frame_covers_line_and_payload(self):
        bad = b"set k 0 0 4\r\nhello\r\n"
        frames = FrameDecoder().feed(bad + b"get a\r\n")
        assert frames[0].raw == bad
        assert frames[1].command == b"get"

    def test_resync_bytes_attached_by_parser(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request(b"set k 0 0 4\r\nhello\r\nget a\r\n")
        assert exc.value.resync_bytes == len(b"set k 0 0 4\r\nhello\r\n")

    def test_runaway_line_is_dropped(self):
        decoder = FrameDecoder()
        frames = decoder.feed(b"x" * (MAX_LINE_BYTES + 1))
        assert len(frames) == 1 and frames[0].error is not None
        assert decoder.pending_bytes == 0

    def test_empty_line_is_error_frame(self):
        frames = FrameDecoder().feed(b"\r\nget k\r\n")
        assert frames[0].error is not None
        assert frames[1].command == b"get"

    def test_frame_key_helper(self):
        frame = Frame(raw=b"", command=b"get", args=[b"k1", b"k2"])
        assert frame.key == b"k1"
        assert Frame(raw=b"", command=b"stats").key is None

    def test_fuzzed_stream_never_loses_sync(self):
        import random
        rng = random.Random(7)
        requests = []
        for i in range(50):
            if rng.random() < 0.5:
                value = bytes(rng.randrange(256)
                              for _ in range(rng.randrange(20)))
                requests.append(b"set k%d 0 0 %d\r\n%s\r\n"
                                % (i, len(value), value))
            else:
                requests.append(b"get k%d\r\n" % i)
        stream = b"".join(requests)
        decoder = FrameDecoder()
        frames = []
        position = 0
        while position < len(stream):
            step = rng.randrange(1, 9)
            frames.extend(decoder.feed(stream[position:position + step]))
            position += step
        assert len(frames) == len(requests)
        assert all(f.error is None for f in frames)
