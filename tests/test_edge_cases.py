"""Edge-case and failure-path coverage across the stack."""

import pytest

from repro import (
    BadVsidError,
    HicampError,
    Machine,
    MachineConfig,
    MemoryConfig,
    MemoryExhaustedError,
    SegmentRangeError,
)
from repro.errors import (
    BadPlidError,
    CasFailedError,
    IntegrityError,
    IteratorStateError,
    MergeConflictError,
    ReadOnlyError,
)
from repro.params import CacheGeometry, ConventionalConfig
from repro.structures import HArray, HString


class TestErrorHierarchy:
    def test_all_derive_from_hicamp_error(self):
        for exc in (BadPlidError, BadVsidError, ReadOnlyError,
                    CasFailedError, MergeConflictError, IteratorStateError,
                    SegmentRangeError, MemoryExhaustedError, IntegrityError):
            assert issubclass(exc, HicampError)


class TestConfigValidation:
    def test_line_must_hold_two_words(self):
        with pytest.raises(ValueError):
            MemoryConfig(line_bytes=8)

    def test_line_must_be_word_multiple(self):
        with pytest.raises(ValueError):
            MemoryConfig(line_bytes=20)

    def test_plid_bytes_restricted(self):
        with pytest.raises(ValueError):
            MemoryConfig(plid_bytes=5)

    def test_cache_geometry_divisibility(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, ways=3, line_bytes=16)

    def test_cache_line_must_match_memory_line(self):
        with pytest.raises(ValueError):
            MachineConfig(
                memory=MemoryConfig(line_bytes=32),
                cache=CacheGeometry(size_bytes=1024, ways=2, line_bytes=16))

    def test_conventional_line_sizes_consistent(self):
        with pytest.raises(ValueError):
            ConventionalConfig(
                line_bytes=32,
                l1=CacheGeometry(size_bytes=1024, ways=2, line_bytes=16),
                l2=CacheGeometry(size_bytes=4096, ways=2, line_bytes=32))

    def test_with_line_size_helpers(self):
        mc = MachineConfig.with_line_size(64)
        assert mc.memory.line_bytes == 64 and mc.cache.line_bytes == 64
        cc = ConventionalConfig.with_line_size(32)
        assert cc.l1.line_bytes == 32 and cc.l2.line_bytes == 32


class TestEmptyAndBoundary:
    def test_empty_segment(self, machine):
        vsid = machine.create_segment([])
        assert machine.segment_length(vsid) == 0
        assert machine.read_segment(vsid) == []
        assert machine.read_word(vsid, 0) == 0

    def test_empty_string(self, machine):
        s = HString.create(machine, b"")
        assert s.to_bytes() == b""
        assert len(s) == 0

    def test_empty_array_iteration(self, machine):
        a = HArray.create(machine)
        assert list(a.iter_nonzero()) == []

    def test_snapshot_of_empty(self, machine):
        vsid = machine.create_segment([])
        with machine.snapshot(vsid) as snap:
            assert snap.words() == []
            assert snap.read(100) == 0
            assert snap.read_range(5, 10) == []

    def test_write_words_empty_updates(self, machine):
        vsid = machine.create_segment([1])
        machine.write_words(vsid, {})
        assert machine.read_segment(vsid) == [1]

    def test_max_word_value(self, machine):
        top = (1 << 64) - 1
        vsid = machine.create_segment([top, 0, top])
        assert machine.read_segment(vsid) == [top, 0, top]

    def test_single_zero_word_segment(self, machine):
        vsid = machine.create_segment([0])
        assert machine.segment_length(vsid) == 1
        assert machine.footprint_lines() == 0  # all-zero content is free

    def test_negative_seek_rejected(self, machine):
        vsid = machine.create_segment([1])
        it = machine.iterator(vsid)
        with pytest.raises(SegmentRangeError):
            it.seek(-1)
        machine.release_iterator(it)

    def test_iterator_put_negative_rejected(self, machine):
        vsid = machine.create_segment([1])
        it = machine.iterator(vsid)
        with pytest.raises(SegmentRangeError):
            it.put(5, offset=-2)
        machine.release_iterator(it)


class TestExhaustion:
    def test_memory_exhaustion_surfaces(self):
        machine = Machine(MachineConfig(
            memory=MemoryConfig(line_bytes=16, num_buckets=2, data_ways=2,
                                overflow_lines=8),
            cache=CacheGeometry(size_bytes=512, ways=2, line_bytes=16)))
        with pytest.raises(MemoryExhaustedError):
            for i in range(1, 200):
                # wide values: not inline-compactable, so lines allocate
                machine.create_segment([i << 40, (i + 1) << 40])

    def test_cas_retry_exhaustion(self, machine):
        vsid = machine.create_segment([1])

        def always_interfered(it):
            machine.write_word(vsid, 0, it.get(0) + 1)  # poison every try
            it.put(99, offset=0)

        with pytest.raises(CasFailedError):
            machine.atomic_update(vsid, always_interfered, max_retries=3)


class TestDoubleOperations:
    def test_drop_twice_raises(self, machine):
        vsid = machine.create_segment([1])
        machine.drop_segment(vsid)
        with pytest.raises(BadVsidError):
            machine.drop_segment(vsid)

    def test_read_after_drop_raises(self, machine):
        vsid = machine.create_segment([1])
        machine.drop_segment(vsid)
        with pytest.raises(BadVsidError):
            machine.read_word(vsid, 0)

    def test_commit_without_changes_succeeds(self, machine):
        vsid = machine.create_segment([1, 2])
        it = machine.iterator(vsid)
        assert it.try_commit()  # validates the snapshot is current
        machine.release_iterator(it)

    def test_abort_then_commit(self, machine):
        vsid = machine.create_segment([1, 2])
        it = machine.iterator(vsid)
        it.put(9, offset=0)
        it.abort()
        assert it.try_commit()
        assert machine.read_segment(vsid) == [1, 2]
        machine.release_iterator(it)


class TestMixedGeometrySafety:
    def test_same_value_different_tags_do_not_collide(self, machine):
        # data word 5 and a reference to PLID 5 must never dedup together
        from repro.memory.line import PlidRef
        mem = machine.mem
        p1, _ = mem.store.lookup((5, 0))
        p2, _ = mem.store.lookup((PlidRef(p1), 0))
        assert mem.store.peek(p2)[0] == PlidRef(p1)
        p3, _ = mem.store.lookup((p1, 0))  # the PLID *value* as data
        assert p3 != p2

    def test_deep_segment_many_levels(self, machine):
        # force a tall DAG: single element at a gigantic index
        vsid = machine.create_segment([])
        machine.write_word(vsid, 10**15, 7)
        assert machine.read_word(vsid, 10**15) == 7
        assert machine.read_word(vsid, 10**15 - 1) == 0
        machine.drop_segment(vsid)
        assert machine.footprint_lines() == 0
