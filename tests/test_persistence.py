"""Tests for machine checkpoint/restore."""

import gzip
import json

import pytest

from repro.core.persistence import (
    load_machine,
    load_machine_file,
    machine_image,
    restore_machine,
    save_machine,
    save_machine_file,
)
from repro.errors import PersistenceError
from repro.structures import HMap
from tests.conftest import small_config
from repro import Machine


@pytest.fixture
def populated(machine):
    a = machine.create_segment([1, 2, 3])
    b = machine.create_segment([0] * 64)
    machine.write_words(b, {5: 50, 40: 9})
    kvp = HMap.create(machine)
    kvp.put(b"alpha", b"value-1")
    kvp.put(b"beta", bytes(range(200)))
    return machine, a, b, kvp


class TestRoundtrip:
    def test_segments_survive(self, populated, tmp_path):
        machine, a, b, kvp = populated
        path = str(tmp_path / "image.json")
        save_machine(machine, path)
        restored = load_machine(path)
        assert restored.read_segment(a) == [1, 2, 3]
        assert restored.read_word(b, 5) == 50
        assert restored.read_word(b, 40) == 9

    def test_map_survives_with_working_dedup_indexes(self, populated,
                                                     tmp_path):
        machine, a, b, kvp = populated
        path = str(tmp_path / "image.json")
        save_machine(machine, path)
        restored = load_machine(path)
        restored_map = HMap(restored, kvp.vsid)
        # gets rebuild key segments: dedup must find the restored lines
        assert restored_map.get(b"alpha") == b"value-1"
        assert restored_map.get(b"beta") == bytes(range(200))
        # and updates keep working
        restored_map.put(b"gamma", b"new")
        assert restored_map.get(b"gamma") == b"new"
        assert len(restored_map) == 3

    def test_footprint_identical(self, populated, tmp_path):
        machine, *_ = populated
        path = str(tmp_path / "image.json")
        save_machine(machine, path)
        restored = load_machine(path)
        assert restored.footprint_lines() == machine.footprint_lines()
        assert restored.footprint_bytes() == machine.footprint_bytes()

    def test_refcounts_identical(self, populated, tmp_path):
        machine, *_ = populated
        restored = restore_machine(machine_image(machine))
        for plid in machine.mem.store.live_plids():
            assert (restored.mem.store.refcount(plid)
                    == machine.mem.store.refcount(plid))
        restored.mem.store.check_refcounts()

    def test_dedup_continues_across_restore(self, populated, tmp_path):
        machine, a, *_ = populated
        restored = restore_machine(machine_image(machine))
        lines = restored.footprint_lines()
        c = restored.create_segment([1, 2, 3])  # same content as segment a
        assert restored.footprint_lines() == lines
        assert restored.segments_equal(a, c)

    def test_drop_after_restore_reclaims(self, tmp_path):
        machine = Machine(small_config())
        vsid = machine.create_segment(list(range(500)))
        restored = restore_machine(machine_image(machine))
        restored.drop_segment(vsid)
        assert restored.footprint_lines() == 0

    def test_reclaimed_state_roundtrips(self, tmp_path):
        machine = Machine(small_config())
        vsid = machine.create_segment(list(range(100)))
        machine.drop_segment(vsid)
        restored = restore_machine(machine_image(machine))
        assert restored.footprint_lines() == 0
        restored.create_segment([7])  # allocator still sane

    def test_bad_format_rejected(self):
        with pytest.raises(PersistenceError, match="format 999"):
            restore_machine({"format": 999})

    def test_missing_format_rejected(self):
        with pytest.raises(PersistenceError):
            restore_machine({"lines": {}})

    def test_malformed_image_rejected(self):
        with pytest.raises(PersistenceError, match="malformed"):
            restore_machine({"format": 1, "config": {}})

    def test_save_machine_file_plain_and_gzip(self, populated, tmp_path):
        machine, a, *_ = populated
        for name in ("image.json", "image.json.gz"):
            path = str(tmp_path / name)
            save_machine_file(machine, path)
            restored, extra = load_machine_file(path)
            assert restored.read_segment(a) == [1, 2, 3]
            assert extra == {}
        # the .gz file really is gzip-compressed JSON
        with gzip.open(str(tmp_path / "image.json.gz"), "rb") as f:
            assert json.loads(f.read())["format"] == 1

    def test_save_machine_file_extra_metadata(self, populated, tmp_path):
        machine, *_ = populated
        path = str(tmp_path / "image.json")
        save_machine_file(machine, path,
                          extra={"replication_streams": {"0": 1}})
        _, extra = load_machine_file(path)
        assert extra == {"replication_streams": {"0": 1}}

    def test_load_machine_file_garbage_rejected(self, tmp_path):
        bad = tmp_path / "bad.gz"
        bad.write_bytes(b"this is not gzip")
        with pytest.raises(PersistenceError):
            load_machine_file(str(bad))
        missing = str(tmp_path / "missing.json")
        with pytest.raises(FileNotFoundError):
            load_machine_file(missing)

    def test_overflow_lines_roundtrip(self, tmp_path):
        from repro import MachineConfig, MemoryConfig
        from repro.params import CacheGeometry
        machine = Machine(MachineConfig(
            memory=MemoryConfig(line_bytes=16, num_buckets=1, data_ways=2,
                                overflow_lines=64),
            cache=CacheGeometry(size_bytes=1024, ways=2, line_bytes=16)))
        vsids = [machine.create_segment([i + 1, 0]) for i in range(6)]
        restored = restore_machine(machine_image(machine))
        for i, vsid in enumerate(vsids):
            assert restored.read_segment(vsid) == [i + 1, 0]
