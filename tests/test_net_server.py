"""End-to-end tests: the asyncio server on a real TCP socket.

The acceptance test drives a live server with four concurrent pipelined
loadgen clients and checks the three ISSUE criteria: oracle-consistent
committed values, nonzero pipelined-request and merge-commit counters,
and a graceful shutdown with no pending commits.
"""

import asyncio
import json

from repro.net.loadgen import (
    LoadgenClient,
    read_line_response,
    run_loadgen,
)
from repro.net.server import MemcachedServer


async def request(port, payload, terminators=(b"END\r\n",), lines=None):
    """One raw TCP exchange; reads until a terminator (or N lines)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    if lines is not None:
        out = b"".join([await reader.readline() for _ in range(lines)])
    else:
        out = b""
        while not any(out.endswith(t) for t in terminators):
            chunk = await reader.read(1 << 16)
            if not chunk:
                break
            out += chunk
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    return out


class TestServerEndToEnd:
    def test_acceptance_concurrent_pipelined_loadgen(self):
        """The ISSUE acceptance test, over real TCP."""

        async def go():
            async with MemcachedServer(port=0, shard_count=4) as server:
                report = await run_loadgen(
                    "127.0.0.1", server.port, clients=4, ops_per_client=60,
                    pipeline_depth=8, get_ratio=0.5, seed=1)
                body = await request(server.port, b"stats json\r\n")
                snapshot = json.loads(body.split(b"\r\n")[0])
                return server, report, snapshot

        server, report, snapshot = asyncio.run(go())
        # (1) every committed value consistent with the sequential oracle
        assert report.errors == 0
        assert report.oracle_checked > 0 and report.oracle_mismatches == 0
        assert report.shared_checked > 0 and report.shared_mismatches == 0
        assert report.consistent
        # (2) stats show pipelining and merge-commit absorption happened
        assert snapshot["pipelined_requests"] > 0
        assert snapshot["merge_commits"] > 0
        assert snapshot["ops_total"] >= 4 * 60
        # (3) graceful shutdown flushed every pending commit
        assert server.metrics.pending_at_shutdown == 0
        assert server.router.pending_commits() == 0

    def test_set_get_over_socket(self):
        async def go():
            async with MemcachedServer(port=0, shard_count=2) as server:
                out = await request(
                    server.port,
                    b"set hello 0 0 5\r\nworld\r\nget hello\r\n")
                return out

        out = asyncio.run(go())
        assert out.startswith(b"STORED\r\n")
        assert b"VALUE hello 0 5\r\nworld\r\n" in out

    def test_stats_command_over_socket(self):
        async def go():
            async with MemcachedServer(port=0, shard_count=3) as server:
                return await request(
                    server.port, b"set k 0 0 1\r\nv\r\nstats\r\n")

        out = asyncio.run(go())
        assert b"STAT shards 3" in out
        assert b"STAT curr_items 1" in out
        assert b"STAT merge_commits" in out
        assert out.endswith(b"END\r\n")

    def test_malformed_frame_connection_survives(self):
        async def go():
            async with MemcachedServer(port=0, shard_count=1) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"set k 0 0 banana\r\n")
                await writer.drain()
                first = await reader.readline()
                # same connection keeps working after the error
                writer.write(b"set k 0 0 2\r\nok\r\nget k\r\n")
                await writer.drain()
                second = await read_line_response(reader)
                value = b""
                while not value.endswith(b"END\r\n"):
                    value += await reader.readline()
                writer.close()
                await writer.wait_closed()
                return first, second, value

        first, second, value = asyncio.run(go())
        assert first.startswith(b"CLIENT_ERROR")
        assert second == b"STORED\r\n"
        assert b"ok" in value

    def test_read_timeout_drops_idle_connection(self):
        async def go():
            async with MemcachedServer(port=0, shard_count=1,
                                       read_timeout=0.05) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                # idle past the timeout: server must close on us
                eof = await asyncio.wait_for(reader.read(), timeout=2.0)
                writer.close()
                await writer.wait_closed()
                return eof, server.metrics.read_timeouts

        eof, timeouts = asyncio.run(go())
        assert eof == b""
        assert timeouts == 1

    def test_quit_closes_connection(self):
        async def go():
            async with MemcachedServer(port=0, shard_count=1) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"set k 0 0 1\r\nx\r\nquit\r\n")
                await writer.drain()
                out = await asyncio.wait_for(reader.read(), timeout=2.0)
                writer.close()
                await writer.wait_closed()
                return out

        out = asyncio.run(go())
        # the pipelined set is answered before the close
        assert out == b"STORED\r\n"

    def test_shutdown_commits_enqueued_writes(self):
        """Writes accepted before shutdown land even if the client never
        reads the responses."""

        async def go():
            server = MemcachedServer(port=0, shard_count=2)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            raw = b"".join(b"set k%d 0 0 2\r\nv%d\r\n" % (i, i)
                           for i in range(10))
            writer.write(raw + b"quit\r\n")
            await writer.drain()
            await asyncio.wait_for(reader.read(), timeout=2.0)
            await server.shutdown()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return server

        server = asyncio.run(go())
        assert server.metrics.pending_at_shutdown == 0
        assert sum(s.item_count() for s in server.router.servers) == 10

    def test_single_client_pipelined_cas_flow(self):
        async def go():
            async with MemcachedServer(port=0, shard_count=2) as server:
                client = LoadgenClient(
                    0, "127.0.0.1", server.port, ops=40,
                    pipeline_depth=6, get_ratio=0.4, key_space=8,
                    value_bytes=16, seed=9)
                report = await client.run()
                return report

        report = asyncio.run(go())
        assert report.ops >= 40
        assert report.errors == 0
        assert report.oracle_mismatches == 0
