"""TTL expiry in the linearizability spec: dead keys stay dead.

The managed backend expires stores lazily against its logical clock, so
under injected commit stalls a delayed commit could, if the code were
wrong, re-surface a value whose TTL already fired — invisible to the
plain register spec (the miss just linearizes *before* the set). The
TTL-aware spec models expirable registers with a **one-way**
spontaneous transition to empty: a miss after an expirable set is
legal, but any later read observing the dead value again has no valid
linearization and must be flagged.
"""

from repro.testing import COMMIT_STALL, expiry_config, run_fuzz
from repro.testing.history import Operation, check_history


def op(client, seq, kind, key=b"k", value=None, expect=None, ttl=0,
       invoked=0, completed=0, result=None):
    return Operation(client=client, seq=seq, kind=kind, key=key,
                     value=value, expect=expect, ttl=ttl,
                     invoked=invoked, completed=completed,
                     result=result)


class TestExpirySpec:
    def test_miss_after_expirable_set_is_legal(self):
        history = [
            op(0, 0, "set", value=b"v", ttl=1, invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "get", invoked=2, completed=3, result=("miss",)),
        ]
        assert check_history(history).ok

    def test_miss_after_permanent_set_is_a_violation(self):
        history = [
            op(0, 0, "set", value=b"v", invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "get", invoked=2, completed=3, result=("miss",)),
        ]
        report = check_history(history)
        assert not report.ok
        assert report.violations

    def test_expired_key_must_not_resurrect(self):
        # set(ttl) -> observed miss (expired) -> the dead value returns
        history = [
            op(0, 0, "set", value=b"v", ttl=1, invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "get", invoked=2, completed=3, result=("miss",)),
            op(0, 2, "get", invoked=4, completed=5,
               result=("value", b"v")),
        ]
        report = check_history(history)
        assert not report.ok
        assert any(violation.key == b"k"
                   for violation in report.violations)

    def test_fresh_store_after_expiry_is_legal(self):
        # resurrection via a *recorded* set is exactly what is allowed
        history = [
            op(0, 0, "set", value=b"v", ttl=1, invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "get", invoked=2, completed=3, result=("miss",)),
            op(0, 2, "set", value=b"v", invoked=4, completed=5,
               result=("stored",)),
            op(0, 3, "get", invoked=6, completed=7,
               result=("value", b"v")),
        ]
        assert check_history(history).ok

    def test_add_succeeds_into_an_expired_slot(self):
        history = [
            op(0, 0, "set", value=b"old", ttl=1, invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "add", value=b"new", invoked=2, completed=3,
               result=("stored",)),
            op(0, 2, "get", invoked=4, completed=5,
               result=("value", b"new")),
        ]
        assert check_history(history).ok

    def test_add_against_a_permanent_value_must_fail(self):
        history = [
            op(0, 0, "set", value=b"old", invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "add", value=b"new", invoked=2, completed=3,
               result=("stored",)),
        ]
        assert not check_history(history).ok

    def test_expiry_does_not_excuse_wrong_values(self):
        history = [
            op(0, 0, "set", value=b"v1", ttl=1, invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "get", invoked=2, completed=3,
               result=("value", b"other")),
        ]
        assert not check_history(history).ok


class TestExpiryProfile:
    def test_config_raises_stall_pressure_on_a_managed_backend(self):
        from repro.apps.memcached.eviction import ManagedMemcached

        cfg = expiry_config()
        assert cfg.ttl_rate > 0
        assert cfg.backend is ManagedMemcached
        assert cfg.rates[COMMIT_STALL] > 0

    def test_profile_actually_plans_ttl_stores(self):
        from repro.testing.fuzz import _build_script

        cfg = expiry_config()
        batches = _build_script(7, 0, cfg)
        kinds = [kind for batch in batches for kind, _ in batch]
        assert any(kind.startswith("setx") for kind in kinds)

    def test_seeded_episodes_pass_the_ttl_checker(self):
        report = run_fuzz(episodes=2, seed=7, cfg=expiry_config())
        assert report.ok, report.render(verbose=True)
