"""Unit tests for the timestamp-ordered collection (section 4.1)."""

import pytest

from repro.concurrency import Scheduler
from repro.structures import HOrderedCollection


@pytest.fixture
def coll(machine):
    return HOrderedCollection.create(machine)


class TestBasics:
    def test_insert_get(self, coll):
        coll.insert(1_000_000, b"event-a")
        assert coll.get(1_000_000) == b"event-a"
        assert coll.get(1_000_001) is None

    def test_replace(self, coll):
        coll.insert(5, b"v1")
        coll.insert(5, b"v2")
        assert coll.get(5) == b"v2"

    def test_delete(self, coll):
        coll.insert(7, b"x")
        assert coll.delete(7)
        assert coll.get(7) is None
        assert not coll.delete(7)

    def test_empty_payload(self, coll):
        coll.insert(3, b"")
        assert coll.get(3) == b""
        assert list(coll.scan()) == [(3, b"")]


class TestOrderedScan:
    def test_in_timestamp_order(self, coll):
        stamps = [900, 17, 44_000_000_000, 3, 512]
        for ts in stamps:
            coll.insert(ts, b"t%d" % ts)
        assert [ts for ts, _ in coll.scan()] == sorted(stamps)

    def test_range_scan(self, coll):
        for ts in (10, 20, 30, 40):
            coll.insert(ts, b"p")
        assert [ts for ts, _ in coll.scan(start=15, stop=40)] == [20, 30]

    def test_first_at_or_after(self, coll):
        coll.insert(100, b"a")
        coll.insert(200, b"b")
        assert coll.first_at_or_after(0) == (100, b"a")
        assert coll.first_at_or_after(101) == (200, b"b")
        assert coll.first_at_or_after(201) is None

    def test_scan_is_snapshot_stable(self, machine, coll):
        for ts in range(0, 100, 10):
            coll.insert(ts, b"v")
        seen = []

        def scanner():
            it = coll.scan()
            for i, (ts, _) in enumerate(it):
                seen.append(ts)
                if i % 2 == 0:
                    yield

        def deleter():
            yield
            for ts in range(0, 100, 10):
                coll.delete(ts)
            yield

        sched = Scheduler()
        sched.spawn("scan", scanner())
        sched.spawn("del", deleter())
        sched.run()
        assert seen == list(range(0, 100, 10))  # scan saw its snapshot


class TestSparsity:
    def test_huge_timestamps_cheap(self, machine, coll):
        # one element at a 2^60-scale timestamp costs a handful of lines
        coll.insert(1 << 60, b"far future")
        assert machine.footprint_lines() < 12
        assert coll.get(1 << 60) == b"far future"

    def test_concurrent_inserts_merge(self, machine, coll):
        def writer(base):
            for i in range(5):
                coll.insert(base + i * 1000, b"w")
                yield

        sched = Scheduler(seed=3)
        sched.spawn("a", writer(1))
        sched.spawn("b", writer(2))
        sched.run()
        assert len(list(coll.scan())) == 10
