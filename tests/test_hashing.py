"""Unit tests for content hashing and signatures."""

from repro.memory import hashing
from repro.memory.line import encode_line


class TestBucketHash:
    def test_deterministic(self):
        enc = encode_line((1, 2, 3, 4))
        assert hashing.bucket_hash(enc, 1024) == hashing.bucket_hash(enc, 1024)

    def test_in_range(self):
        for i in range(200):
            enc = encode_line((i, i * 7, 0, 1))
            assert 0 <= hashing.bucket_hash(enc, 64) < 64

    def test_spreads_content(self):
        buckets = {
            hashing.bucket_hash(encode_line((i, 0)), 1 << 16) for i in range(500)
        }
        # 500 distinct single-word lines should land in many buckets.
        assert len(buckets) > 400


class TestSignature:
    def test_non_zero(self):
        # Zero signatures mark empty ways, so content signatures fold to 1..255.
        for i in range(2000):
            assert hashing.signature(encode_line((i, i ^ 0xFF))) != 0

    def test_deterministic(self):
        enc = encode_line((42, 43))
        assert hashing.signature(enc) == hashing.signature(enc)

    def test_signatures_spread(self):
        # The 8-bit signature should cover most of its 1..255 range so
        # that same-bucket contents rarely share a signature (the false
        # positive argument of section 3.1).
        sigs = {hashing.signature(encode_line((i, 1))) for i in range(1000)}
        assert len(sigs) > 200

    def test_pairwise_collision_rate_low(self):
        # With ~12 lines per bucket (the paper's geometry) the chance of
        # a stray signature match should be small (< 5 % per the paper).
        import itertools
        sigs = [hashing.signature(encode_line((i, 1))) for i in range(120)]
        pairs = list(itertools.combinations(sigs, 2))
        collisions = sum(1 for a, b in pairs if a == b)
        assert collisions / len(pairs) < 0.05


class TestLineHashes:
    def test_triple(self):
        bucket, sig, enc = hashing.line_hashes((5, 6), 128)
        assert enc == encode_line((5, 6))
        assert bucket == hashing.bucket_hash(enc, 128)
        assert sig == hashing.signature(enc)
