"""Shared fixtures: small machine configurations that keep tests fast."""

import pytest

from repro import Machine, MachineConfig, MemoryConfig
from repro.params import CacheGeometry

# the testing harness's fixtures (machine_audit, audited_machine,
# fault_injector, history_recorder, ...)
pytest_plugins = ["repro.testing.fixtures"]


def small_config(line_bytes: int = 16, cache_kb: int = 64) -> MachineConfig:
    """A small machine: fewer buckets, small cache — fast to simulate."""
    return MachineConfig(
        memory=MemoryConfig(line_bytes=line_bytes, num_buckets=1 << 12,
                            data_ways=12, overflow_lines=1 << 16),
        cache=CacheGeometry(size_bytes=cache_kb * 1024, ways=8,
                            line_bytes=line_bytes),
    )


@pytest.fixture
def machine():
    """A small 16-byte-line machine."""
    return Machine(small_config())


@pytest.fixture(params=[16, 32, 64])
def machine_all_lines(request):
    """The same machine at each of the paper's line sizes."""
    return Machine(small_config(line_bytes=request.param))


@pytest.fixture
def mem(machine):
    """The memory system of the small machine."""
    return machine.mem
