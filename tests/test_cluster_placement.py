"""Placement layer: the seeded ring and the versioned topology.

Everything here is pure — no sockets. The properties the cluster tier
leans on: the ring is a deterministic function of (slots, vnodes, seed);
a promotion rebinds a slot without moving a single key; the topology
round-trips through its JSON wire form.
"""

import pytest

from repro.cluster.placement import (
    FOLLOWER,
    LEADER,
    ClusterTopology,
    HashRing,
    NodeInfo,
    initial_topology,
    key_point,
)

KEYS = [b"key-%03d" % i for i in range(400)]


def make_topology(leaders=2, followers=2):
    leader_infos = [NodeInfo("lead-%d" % i, "127.0.0.1", 11000 + i,
                             role=LEADER, repl_port=12000 + i)
                    for i in range(leaders)]
    follower_infos = [
        NodeInfo("lead-%d-f%d" % (i, j), "127.0.0.1",
                 13000 + i * 10 + j, role=FOLLOWER,
                 leader_id="lead-%d" % i)
        for i in range(leaders) for j in range(followers)]
    return initial_topology(leader_infos, follower_infos, vnodes=16)


class TestHashRing:
    def test_deterministic_in_parameters(self):
        a = HashRing(["slot-0", "slot-1", "slot-2"], vnodes=16, seed=7)
        b = HashRing(["slot-2", "slot-0", "slot-1"], vnodes=16, seed=7)
        assert [a.slot_for(k) for k in KEYS] == \
            [b.slot_for(k) for k in KEYS]

    def test_seed_redeals_the_slots(self):
        a = HashRing(["slot-0", "slot-1"], vnodes=16, seed=0)
        b = HashRing(["slot-0", "slot-1"], vnodes=16, seed=1)
        assert [a.slot_for(k) for k in KEYS] != \
            [b.slot_for(k) for k in KEYS]
        # ... while the key hash itself is seed-independent content
        assert key_point(b"k") == key_point(b"k")

    def test_every_slot_gets_keys(self):
        ring = HashRing(["slot-%d" % i for i in range(4)], vnodes=32)
        spread = ring.spread(KEYS)
        assert sum(spread.values()) == len(KEYS)
        assert all(count > 0 for count in spread.values())

    def test_adding_a_slot_only_steals_keys(self):
        """Consistent hashing: growing the ring never shuffles keys
        between pre-existing slots, it only moves some to the newcomer."""
        small = HashRing(["slot-0", "slot-1"], vnodes=32)
        grown = HashRing(["slot-0", "slot-1", "slot-2"], vnodes=32)
        moved = 0
        for key in KEYS:
            before, after = small.slot_for(key), grown.slot_for(key)
            if before != after:
                assert after == "slot-2"
                moved += 1
        assert 0 < moved < len(KEYS)

    def test_round_trip(self):
        ring = HashRing(["slot-0", "slot-1"], vnodes=8, seed=3)
        clone = HashRing.from_doc(ring.to_doc())
        assert [ring.slot_for(k) for k in KEYS] == \
            [clone.slot_for(k) for k in KEYS]

    def test_rejects_degenerate_rings(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["slot-0"], vnodes=0)


class TestClusterTopology:
    def test_owner_routing_and_directory(self):
        topology = make_topology()
        assert topology.leader_ids() == ["lead-0", "lead-1"]
        assert topology.followers_of("lead-0") == \
            ["lead-0-f0", "lead-0-f1"]
        owners = {topology.owner_of(k) for k in KEYS}
        assert owners == {"lead-0", "lead-1"}
        assert topology.slot_of("lead-1") is not None
        assert topology.slot_of("lead-0-f0") is None

    def test_round_trip_preserves_routing(self):
        topology = make_topology()
        clone = ClusterTopology.from_doc(topology.to_doc())
        assert clone.epoch == topology.epoch
        assert [clone.owner_of(k) for k in KEYS] == \
            [topology.owner_of(k) for k in KEYS]
        assert clone.node("lead-0-f1").leader_id == "lead-0"

    def test_promotion_rebinds_the_slot_without_moving_keys(self):
        topology = make_topology()
        successor = topology.with_promotion("lead-0", "lead-0-f0",
                                            repl_port=12050)
        assert successor.epoch == topology.epoch + 1
        assert "lead-0" not in successor.nodes
        promoted = successor.node("lead-0-f0")
        assert promoted.role == LEADER
        assert promoted.repl_port == 12050
        # the sibling re-parents; the other fleet is untouched
        assert successor.node("lead-0-f1").leader_id == "lead-0-f0"
        assert successor.followers_of("lead-1") == \
            ["lead-1-f0", "lead-1-f1"]
        # key movement: every key lead-0 owned is now lead-0-f0's, and
        # not one key changed hands between surviving keyspaces
        for key in KEYS:
            before = topology.owner_of(key)
            after = successor.owner_of(key)
            assert after == ("lead-0-f0" if before == "lead-0" else before)

    def test_promotion_is_not_in_place(self):
        topology = make_topology()
        topology.with_promotion("lead-0", "lead-0-f0", repl_port=1)
        assert topology.epoch == 1
        assert topology.node("lead-0") is not None
        assert topology.node("lead-0-f0").role == FOLLOWER
