"""Unit tests for the VM-hosting dedup study."""

from repro.apps.vmhost import (
    ideal_page_sharing_bytes,
    load_images_into_hicamp,
    measure_images,
)
from repro.workloads.vm_images import PAGE, VmImage, scale_vms


def image(role, vm_id, pages):
    return VmImage(role=role, vm_id=vm_id, pages=pages)


class TestIdealPageSharing:
    def test_duplicates_counted_once(self):
        page_a = b"\x01" * PAGE
        page_b = b"\x02" * PAGE
        vms = [image("web", 0, [page_a, page_b]),
               image("web", 1, [page_a, page_a])]
        assert ideal_page_sharing_bytes(vms) == 2 * PAGE

    def test_zero_pages_free(self):
        vms = [image("web", 0, [b"\x00" * PAGE, b"\x07" * PAGE])]
        assert ideal_page_sharing_bytes(vms) == PAGE


class TestHicampLoading:
    def test_identical_images_share_everything(self):
        page = bytes(range(256)) * (PAGE // 256)
        vms = [image("web", i, [page, page]) for i in range(3)]
        machine = load_images_into_hicamp(vms)
        # 2 identical pages x 3 identical VMs: one page worth of lines
        assert machine.footprint_bytes() < 2 * PAGE

    def test_patched_page_shares_most_lines(self):
        base = bytes(range(256)) * (PAGE // 256)
        patched = bytearray(base)
        patched[0:64] = b"\xff" * 64  # one dirty 64-byte line
        vms = [image("web", 0, [base]), image("web", 1, [bytes(patched)])]
        machine = load_images_into_hicamp(vms)
        # page sharing keeps both full pages; HICAMP shares all but ~1 line
        assert ideal_page_sharing_bytes(vms) == 2 * PAGE
        assert machine.footprint_bytes() < PAGE + PAGE // 4

    def test_measurement_fields(self):
        vms = scale_vms("standby", 2, seed=0)
        m = measure_images("standby", vms)
        assert m.n_vms == 2
        assert m.allocated_bytes == sum(vm.allocated_bytes for vm in vms)
        assert 0 < m.hicamp_bytes <= m.allocated_bytes
        assert m.hicamp_compaction >= 1.0

    def test_hicamp_at_least_page_sharing_on_real_roles(self):
        vms = scale_vms("database", 6, seed=1)
        m = measure_images("database", vms)
        # line dedup subsumes page dedup up to DAG overhead
        assert m.hicamp_bytes < m.page_sharing_bytes * 1.25

    def test_compaction_grows_with_vm_count(self):
        one = measure_images("java", scale_vms("java", 1, seed=3))
        ten = measure_images("java", scale_vms("java", 10, seed=3))
        assert ten.hicamp_compaction > one.hicamp_compaction
