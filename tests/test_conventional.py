"""Unit tests for the conventional cache-hierarchy baseline."""

from repro.memory.conventional import Arena, CacheLevel, ConventionalMemory
from repro.params import CacheGeometry, ConventionalConfig


def small_config(line_bytes=16):
    return ConventionalConfig(
        line_bytes=line_bytes,
        l1=CacheGeometry(size_bytes=1024, ways=2, line_bytes=line_bytes),
        l2=CacheGeometry(size_bytes=8192, ways=4, line_bytes=line_bytes),
    )


class TestCacheLevel:
    def test_hit_after_miss(self):
        level = CacheLevel(CacheGeometry(size_bytes=256, ways=2, line_bytes=16))
        missed, _ = level.access(0, False)
        assert missed
        missed, _ = level.access(0, False)
        assert not missed

    def test_lru_eviction(self):
        level = CacheLevel(CacheGeometry(size_bytes=64, ways=2, line_bytes=16))
        # two sets; lines 0, 32, 64 map to set 0 (line 16*2k)
        level.access(0, False)
        level.access(32, False)
        level.access(64, False)  # evicts line 0 (LRU)
        missed, _ = level.access(0, False)
        assert missed

    def test_dirty_writeback_address(self):
        level = CacheLevel(CacheGeometry(size_bytes=64, ways=2, line_bytes=16))
        level.access(0, True)
        level.access(32, False)
        _, wb = level.access(64, False)
        assert wb == 0  # the dirty victim's address

    def test_flush_reports_dirty(self):
        level = CacheLevel(CacheGeometry(size_bytes=64, ways=2, line_bytes=16))
        level.access(0, True)
        level.access(16, False)
        assert level.flush() == [0]


class TestConventionalMemory:
    def test_first_touch_reads_dram(self):
        mem = ConventionalMemory(small_config())
        mem.load(0, 8)
        assert mem.dram.reads == 1

    def test_cached_access_free(self):
        mem = ConventionalMemory(small_config())
        mem.load(0, 8)
        mem.load(4, 4)
        assert mem.dram.reads == 1

    def test_spanning_access_touches_lines(self):
        mem = ConventionalMemory(small_config())
        mem.load(8, 16)  # crosses one 16B line boundary
        assert mem.dram.reads == 2

    def test_writeback_on_drain(self):
        mem = ConventionalMemory(small_config())
        mem.store(0, 8)
        assert mem.dram.writes == 0
        mem.drain()
        assert mem.dram.writes == 1

    def test_capacity_thrash_produces_traffic(self):
        mem = ConventionalMemory(small_config())
        span = 64 * 1024  # far beyond L2
        for addr in range(0, span, 16):
            mem.store(addr, 8)
        for addr in range(0, span, 16):
            mem.load(addr, 8)
        assert mem.dram.reads >= span // 16  # second pass misses again
        assert mem.dram.writes > 0

    def test_l1_hit_does_not_touch_l2(self):
        mem = ConventionalMemory(small_config())
        mem.load(0, 8)
        l2_before = mem.l2.traffic.misses + mem.l2.traffic.hits
        mem.load(0, 8)
        assert mem.l2.traffic.misses + mem.l2.traffic.hits == l2_before

    def test_zero_size_access_is_noop(self):
        mem = ConventionalMemory(small_config())
        mem.load(0, 0)
        assert mem.dram.reads == 0


class TestArena:
    def test_alignment(self):
        arena = Arena(base=0, align=16)
        a = arena.alloc(10)
        b = arena.alloc(10)
        assert a == 0 and b == 16
        assert arena.used == 32

    def test_distinct_regions(self):
        arena = Arena()
        a = arena.alloc(100)
        b = arena.alloc(100)
        assert b >= a + 100
