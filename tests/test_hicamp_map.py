"""Unit tests for the segment-backed segment map (section 2.3)."""

import pytest

from repro.errors import BadVsidError
from repro.segments import dag
from repro.segments.hicamp_map import HicampSegmentMap


@pytest.fixture
def hmap(machine):
    return HicampSegmentMap(machine.mem)


def build(mem, words):
    return dag.build_segment(mem, words)


class TestBasics:
    def test_create_and_read(self, machine, hmap):
        root, h = build(machine.mem, [1, 2, 3])
        vsid = hmap.create(root, h, 3)
        assert hmap.read_segment(vsid) == [1, 2, 3]
        view = hmap.entry(vsid)
        assert view.height == h and view.length == 3

    def test_unknown_vsid(self, hmap):
        with pytest.raises(BadVsidError):
            hmap.entry(12345)

    def test_drop_unmaps_and_reclaims(self, machine, hmap):
        root, h = build(machine.mem, list(range(100, 200)))
        vsid = hmap.create(root, h, 100)
        lines_before = machine.footprint_lines()
        hmap.drop(vsid)
        with pytest.raises(BadVsidError):
            hmap.entry(vsid)
        assert machine.footprint_lines() < lines_before

    def test_map_owns_content(self, machine, hmap):
        root, h = build(machine.mem, list(range(300, 340)))
        vsid = hmap.create(root, h, 40)
        # only the map's references keep the content alive now
        assert hmap.read_segment(vsid) == list(range(300, 340))
        machine.mem.store.check_refcounts()


class TestAtomicMultiSegmentCommit:
    def test_all_or_nothing_visibility(self, machine, hmap):
        mem = machine.mem
        ra, ha = build(mem, [1])
        rb, hb = build(mem, [2])
        a, b = hmap.create(ra, ha, 1), hmap.create(rb, hb, 1)
        txn = hmap.begin()
        na, nha = build(mem, [10])
        nb, nhb = build(mem, [20])
        txn.set_root(a, na, nha, 1)
        txn.set_root(b, nb, nhb, 1)
        # nothing visible before the commit of the revised map
        assert hmap.read_segment(a) == [1]
        assert hmap.read_segment(b) == [2]
        assert txn.commit()
        assert hmap.read_segment(a) == [10]
        assert hmap.read_segment(b) == [20]

    def test_disjoint_transactions_merge(self, machine, hmap):
        mem = machine.mem
        ra, ha = build(mem, [1])
        rb, hb = build(mem, [2])
        a, b = hmap.create(ra, ha, 1), hmap.create(rb, hb, 1)
        # both transactions start from the same map version
        t1, t2 = hmap.begin(), hmap.begin()
        na, nha = build(mem, [10])
        nb, nhb = build(mem, [20])
        t1.set_root(a, na, nha, 1)
        t2.set_root(b, nb, nhb, 1)
        assert t1.commit()
        assert t2.commit()  # merged, not aborted
        assert hmap.read_segment(a) == [10]
        assert hmap.read_segment(b) == [20]

    def test_same_vsid_race_is_a_conflict(self, machine, hmap):
        mem = machine.mem
        ra, ha = build(mem, [1])
        a = hmap.create(ra, ha, 1)
        t1, t2 = hmap.begin(), hmap.begin()
        n1, nh1 = build(mem, [10])
        n2, nh2 = build(mem, [20])
        t1.set_root(a, n1, nh1, 1)
        t2.set_root(a, n2, nh2, 1)
        assert t1.commit()
        assert not t2.commit()  # true write-write conflict on one VSID
        assert hmap.read_segment(a) == [10]

    def test_abort_leaves_map_untouched(self, machine, hmap):
        mem = machine.mem
        ra, ha = build(mem, [1])
        a = hmap.create(ra, ha, 1)
        txn = hmap.begin()
        nr, nh = build(mem, list(range(500, 600)))
        txn.set_root(a, nr, nh, 100)
        txn.abort()
        assert hmap.read_segment(a) == [1]
        mem.store.check_refcounts()

    def test_clear_in_transaction(self, machine, hmap):
        mem = machine.mem
        ra, ha = build(mem, [1])
        rb, hb = build(mem, [2])
        a, b = hmap.create(ra, ha, 1), hmap.create(rb, hb, 1)
        txn = hmap.begin()
        txn.clear(a)
        nb, nhb = build(mem, [22])
        txn.set_root(b, nb, nhb, 1)
        assert txn.commit()
        with pytest.raises(BadVsidError):
            hmap.entry(a)
        assert hmap.read_segment(b) == [22]


class TestEntryFlags:
    def test_flags_roundtrip_through_slots(self, machine, hmap):
        from repro.segments.segment_map import SegmentFlags
        root, h = build(machine.mem, [1, 2])
        vsid = hmap.allocate_vsid()
        txn = hmap.begin()
        txn.set_root(vsid, root, h, 2, SegmentFlags.MERGE_UPDATE)
        assert txn.commit()
        view = hmap.entry(vsid)
        assert view.flags & SegmentFlags.MERGE_UPDATE
        assert view.length == 2 and view.height == h

    def test_map_itself_merges_disjoint_creates(self, machine, hmap):
        # two begin()s from the same map version, touching different
        # fresh VSIDs, both commit (the merge on the anchor)
        ra, ha = build(machine.mem, [11])
        rb, hb = build(machine.mem, [22])
        va, vb = hmap.allocate_vsid(), hmap.allocate_vsid()
        t1, t2 = hmap.begin(), hmap.begin()
        t1.set_root(va, ra, ha, 1)
        t2.set_root(vb, rb, hb, 1)
        assert t1.commit() and t2.commit()
        assert hmap.read_segment(va) == [11]
        assert hmap.read_segment(vb) == [22]
