"""Tests for the shard router: fan-out, commit queues, merge batching."""

import asyncio
import json

from repro.net.framing import FrameDecoder
from repro.net.router import ConnectionState, ShardRouter


def frames_of(raw: bytes):
    return FrameDecoder().feed(raw)


def run_session(router: ShardRouter, raw: bytes):
    """Dispatch a pipelined byte stream as one connection; return responses."""

    async def go():
        await router.start()
        conn = ConnectionState()
        awaitables = [await router.dispatch(frame, conn)
                      for frame in frames_of(raw)]
        responses = [await a for a in awaitables]
        await router.stop()
        return responses

    return asyncio.run(go())


class TestRouting:
    def test_shard_index_stable_and_spread(self):
        router = ShardRouter(shard_count=4)
        keys = [b"key-%03d" % i for i in range(64)]
        first = [router.shard_index(k) for k in keys]
        assert first == [router.shard_index(k) for k in keys]
        assert len(set(first)) > 1

    def test_set_get_roundtrip_across_shards(self):
        router = ShardRouter(shard_count=4)
        raw = b"".join(b"set k%02d 0 0 4\r\nv%02d.\r\n" % (i, i)
                       for i in range(12))
        raw += b"".join(b"get k%02d\r\n" % i for i in range(12))
        responses = run_session(router, raw)
        assert responses[:12] == [b"STORED\r\n"] * 12
        for i, response in enumerate(responses[12:]):
            assert b"v%02d." % i in response
        # data really landed across different backends
        occupied = [s.item_count() for s in router.servers]
        assert sum(occupied) == 12 and sum(1 for n in occupied if n) > 1

    def test_pipelined_read_after_write_same_key(self):
        # set, get, set, get on one key in a single pipelined burst:
        # each read must observe exactly the preceding write
        router = ShardRouter(shard_count=2)
        raw = (b"set k 0 0 2\r\nv1\r\n" b"get k\r\n"
               b"set k 0 0 2\r\nv2\r\n" b"get k\r\n")
        responses = run_session(router, raw)
        assert b"v1" in responses[1] and b"v2" not in responses[1]
        assert b"v2" in responses[3]

    def test_multi_key_get_spans_shards(self):
        router = ShardRouter(shard_count=4)
        raw = (b"set a 0 0 1\r\n1\r\n" b"set b 0 0 1\r\n2\r\n"
               b"get a b missing\r\n")
        responses = run_session(router, raw)
        assert responses[2].count(b"VALUE") == 2
        assert responses[2].endswith(b"END\r\n")

    def test_batched_sets_merge_commit(self):
        # distinct keys, same shard, enqueued before the worker runs: the
        # batch stages against one snapshot and merges — zero retries
        router = ShardRouter(shard_count=1, batch_limit=16)
        raw = b"".join(b"set key%d 0 0 2\r\nv%d\r\n" % (i, i)
                       for i in range(8))
        responses = run_session(router, raw)
        assert responses == [b"STORED\r\n"] * 8
        assert router.metrics.merge_commits > 0
        assert router.metrics.cas_retries == 0
        assert router.servers[0].item_count() == 8

    def test_flush_all_broadcasts(self):
        router = ShardRouter(shard_count=4)
        raw = b"".join(b"set k%02d 0 0 1\r\nx\r\n" % i for i in range(12))
        raw += b"flush_all\r\n" + b"get k00\r\n"
        responses = run_session(router, raw)
        assert responses[12] == b"OK\r\n"
        assert responses[13] == b"END\r\n"
        assert sum(s.item_count() for s in router.servers) == 0

    def test_error_frame_maps_to_client_error(self):
        router = ShardRouter(shard_count=1)
        responses = run_session(router, b"set k 0 0 zz\r\n")
        assert responses[0].startswith(b"CLIENT_ERROR")
        assert router.metrics.protocol_errors == 1

    def test_unknown_command_is_error(self):
        router = ShardRouter(shard_count=1)
        assert run_session(router, b"bogus\r\n") == [b"ERROR\r\n"]

    def test_version_and_stats(self):
        router = ShardRouter(shard_count=2)
        responses = run_session(
            router, b"set k 0 0 1\r\nv\r\nversion\r\nstats\r\n")
        assert responses[1].startswith(b"VERSION ")
        assert b"STAT curr_items 1" in responses[2]
        assert b"STAT shards 2" in responses[2]
        assert b"STAT merge_commits" in responses[2]

    def test_stats_json_snapshot(self):
        router = ShardRouter(shard_count=2)
        responses = run_session(router,
                                b"set k 0 0 1\r\nv\r\nstats json\r\n")
        body = responses[1].split(b"\r\n")[0]
        snapshot = json.loads(body)
        assert snapshot["shards"] == 2
        assert snapshot["server"]["curr_items"] == 1
        assert "merge_commits" in snapshot

    def test_drain_leaves_no_pending(self):
        router = ShardRouter(shard_count=2)

        async def go():
            await router.start()
            conn = ConnectionState()
            raw = b"".join(b"set k%d 0 0 1\r\nx\r\n" % i for i in range(10))
            pending = [await router.dispatch(frame, conn)
                       for frame in frames_of(raw)]
            await router.drain()
            assert router.pending_commits() == 0
            assert all(f.done() for f in pending)
            await router.stop()

        asyncio.run(go())

    def test_cas_through_router(self):
        router = ShardRouter(shard_count=2)
        responses = run_session(router,
                                b"set k 0 0 2\r\nv1\r\n" b"gets k\r\n")
        token = responses[1].split(b"\r\n")[0].split()[-1]
        responses = run_session(
            router, b"cas k 0 0 2 %s\r\nv2\r\n" % token + b"get k\r\n")
        assert responses[0] == b"STORED\r\n"
        assert b"v2" in responses[1]
