"""Graceful-drain edge cases and fences under injected commit stalls.

Satellites: shutdown with non-empty commit queues, in-flight fences at
shutdown, a client still connected when the drain starts, and the
ShardRouter read-after-write fence under forced commit-queue stalls.
"""

import asyncio

from repro.net.framing import FrameDecoder
from repro.net.router import ConnectionState, ShardRouter
from repro.net.server import MemcachedServer
from repro.testing.faults import COMMIT_STALL, FaultInjector, FaultPlan

STALL_EVERY_BATCH = {COMMIT_STALL: 1.0}


def frame(wire: bytes):
    """Decode exactly one frame from raw wire bytes."""
    frames = FrameDecoder().feed(wire)
    assert len(frames) == 1
    return frames[0]


def stalling_injector(seed=0, max_stall=20):
    return FaultInjector(FaultPlan(seed, STALL_EVERY_BATCH,
                                   max_stall=max_stall))


class TestRouterFenceUnderStall:
    def test_read_after_write_sees_value_despite_stall(self):
        """Satellite: a pipelined get behind a set of the same key must
        return the new value even when every commit batch is stalled."""

        async def go():
            injector = stalling_injector()
            router = ShardRouter(shard_count=2, injector=injector)
            await router.start()
            conn = ConnectionState()
            set_future = await router.dispatch(
                frame(b"set k 0 0 2\r\nhi\r\n"), conn)
            # the write is enqueued, not applied: the worker has not run
            assert router.pending_commits() > 0
            get_future = await router.dispatch(frame(b"get k\r\n"), conn)
            response = await get_future
            assert await set_future == b"STORED\r\n"
            await router.stop()
            return injector, response

        injector, response = asyncio.run(go())
        assert b"VALUE k 0 2\r\nhi\r\n" in response
        assert injector.fired[COMMIT_STALL] > 0

    def test_unrelated_connection_reads_stay_inline(self):
        """Another connection's read takes the no-fence snapshot path —
        it may run before the stalled commit lands (and must not hang)."""

        async def go():
            router = ShardRouter(shard_count=2,
                                 injector=stalling_injector(max_stall=50))
            await router.start()
            writer_conn, reader_conn = ConnectionState(), ConnectionState()
            set_future = await router.dispatch(
                frame(b"set k 0 0 2\r\nhi\r\n"), writer_conn)
            early = await (await router.dispatch(frame(b"get k\r\n"),
                                                 reader_conn))
            await set_future
            late = await (await router.dispatch(frame(b"get k\r\n"),
                                                reader_conn))
            await router.stop()
            return early, late

        early, late = asyncio.run(go())
        assert early == b"END\r\n"  # snapshot read before the commit
        assert b"VALUE k 0 2\r\nhi\r\n" in late


class TestGracefulDrain:
    def test_shutdown_with_nonempty_commit_queues(self):
        """Shutdown must commit every enqueued write before stopping."""

        async def go():
            server = MemcachedServer(port=0, shard_count=2,
                                     injector=stalling_injector(max_stall=40))
            await server.start()
            conn = ConnectionState()
            futures = []
            for i in range(8):
                futures.append(await server.router.dispatch(
                    frame(b"set k%02d 0 0 2\r\nv%d\r\n" % (i, i)), conn))
            # nothing has been applied yet: the queues are non-empty at
            # the moment the drain starts
            assert server.router.pending_commits() > 0
            await asyncio.wait_for(server.shutdown(), timeout=10)
            return server, futures

        server, futures = asyncio.run(go())
        assert server.metrics.pending_at_shutdown == 0
        assert all(f.done() and f.result() == b"STORED\r\n"
                   for f in futures)
        # the committed values are really in the cache
        for i in range(8):
            key = b"k%02d" % i
            backend = server.router.servers[server.router.shard_index(key)]
            assert backend.get(key) == b"v%d" % i

    def test_shutdown_resolves_inflight_fences(self):
        """A fenced read in flight when shutdown starts must resolve
        (with the fenced write's value), not deadlock the drain."""

        async def go():
            server = MemcachedServer(port=0, shard_count=2,
                                     injector=stalling_injector(max_stall=40))
            await server.start()
            conn = ConnectionState()
            set_future = await server.router.dispatch(
                frame(b"set k 0 0 2\r\nhi\r\n"), conn)
            get_future = await server.router.dispatch(
                frame(b"get k\r\n"), conn)
            await asyncio.wait_for(server.shutdown(), timeout=10)
            return await set_future, await get_future

        set_response, get_response = asyncio.run(go())
        assert set_response == b"STORED\r\n"
        assert b"VALUE k 0 2\r\nhi\r\n" in get_response

    def test_client_connected_mid_drain(self):
        """An idle connected client must not stall shutdown, and its
        socket is closed by the drain."""

        async def go():
            server = MemcachedServer(port=0, shard_count=2)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write(b"set a 0 0 1\r\nx\r\n")
            await writer.drain()
            await asyncio.wait_for(server.shutdown(), timeout=10)
            # the server closed its side; the client reads EOF
            eof = await asyncio.wait_for(reader.read(), timeout=5)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            # new connections are refused once the drain has finished
            refused = False
            try:
                await asyncio.open_connection("127.0.0.1", server.port)
            except OSError:
                refused = True
            return server, eof, refused

        server, eof, refused = asyncio.run(go())
        assert server.metrics.pending_at_shutdown == 0
        assert eof.endswith(b"") and refused

    def test_shutdown_is_idempotent_after_quiet_run(self):
        async def go():
            server = MemcachedServer(port=0, shard_count=2)
            await server.start()
            await server.shutdown()
            return server

        server = asyncio.run(go())
        assert server.router.pending_commits() == 0
