"""Unit tests for merge-update and mCAS (section 3.4)."""

import pytest

from repro.errors import MergeConflictError
from repro.memory.line import PlidRef
from repro.segments import dag
from repro.segments.merge import (
    MergeStats,
    merge_entries,
    merge_roots,
    three_way_merge_word,
)


class TestWordRule:
    def test_untouched_side_takes_other(self):
        assert three_way_merge_word(1, 1, 5) == 5
        assert three_way_merge_word(1, 5, 1) == 5

    def test_identical_data_updates_sum_their_diffs(self):
        # both sides applied +4 to base 1: the diffs compose to +8
        # (two concurrent "+1"s must not collapse into one)
        assert three_way_merge_word(1, 5, 5) == 9

    def test_identical_reference_updates_coalesce(self):
        assert three_way_merge_word(0, PlidRef(3), PlidRef(3)) == PlidRef(3)

    def test_counter_difference_sums(self):
        # base 10, mine +3, theirs +4 -> 17
        assert three_way_merge_word(10, 13, 14) == 17

    def test_wraps_modulo_word(self):
        top = (1 << 64) - 1
        assert three_way_merge_word(top, 0, top) == 0  # +1 wraps

    def test_reference_conflict_raises(self):
        with pytest.raises(MergeConflictError):
            three_way_merge_word(0, PlidRef(1), PlidRef(2))

    def test_reference_matching_side_ok(self):
        assert three_way_merge_word(0, PlidRef(1), 0) == PlidRef(1)
        assert three_way_merge_word(PlidRef(1), 0, PlidRef(1)) == 0

    def test_mixed_tag_conflict_raises(self):
        with pytest.raises(MergeConflictError):
            three_way_merge_word(0, PlidRef(1), 7)


def merged_words(mem, base, mine, theirs):
    b, bh = dag.build_segment(mem, base)
    m, mh = dag.build_segment(mem, mine)
    t, th = dag.build_segment(mem, theirs)
    root, h = merge_roots(mem, (b, bh), (m, mh), (t, th))
    out = dag.gather_words(mem, root, h, 0, max(len(base), len(mine), len(theirs)))
    for e in (b, m, t, root):
        dag.release_entry(mem, e)
    return out


class TestSegmentMerge:
    def test_disjoint_updates_compose(self, mem):
        base = [0] * 40
        mine = list(base); mine[3] = 33
        theirs = list(base); theirs[30] = 77
        assert merged_words(mem, base, mine, theirs)[3] == 33
        assert merged_words(mem, base, mine, theirs)[30] == 77

    def test_counter_semantics_at_scale(self, mem):
        base = [100] * 20
        mine = [101] * 20    # +1 each
        theirs = [105] * 20  # +5 each
        assert merged_words(mem, base, mine, theirs) == [106] * 20

    def test_identical_subtrees_skipped(self, mem):
        stats = MergeStats()
        base = list(range(1000, 1256))
        mine = list(base); mine[0] = 1
        theirs = list(base); theirs[255] = 2
        b, bh = dag.build_segment(mem, base)
        m, mh = dag.build_segment(mem, mine)
        t, th = dag.build_segment(mem, theirs)
        root, h = merge_roots(mem, (b, bh), (m, mh), (t, th), stats=stats)
        assert stats.subtrees_skipped > 0
        # only the two diverging paths were leaf-merged
        assert stats.leaf_merges <= 4
        for e in (b, m, t, root):
            dag.release_entry(mem, e)

    def test_different_heights_merge(self, mem):
        base = [1, 2]
        mine = [1, 2] + [0] * 30 + [9]  # grew the segment
        theirs = [5, 2]
        out = merged_words(mem, base, mine, theirs)
        assert out[0] == 5 and out[32] == 9

    def test_merge_conflict_propagates(self, mem):
        w = mem.words_per_line
        value_a, _ = dag.build_segment(mem, list(range(70, 90)))
        value_b, _ = dag.build_segment(mem, list(range(90, 110)))
        base = [0] * (w * 2)
        b, bh = dag.build_segment(mem, base)
        m = dag.write_words_bulk(mem, dag.retain_entry(mem, b), bh, {0: value_a})
        t = dag.write_words_bulk(mem, dag.retain_entry(mem, b), bh, {0: value_b})
        with pytest.raises(MergeConflictError):
            root, _ = merge_roots(mem, (b, bh), (m, bh), (t, bh))
        for e in (b, m, t, value_a, value_b):
            dag.release_entry(mem, e)
        mem.store.check_refcounts()

    def test_merge_releases_cleanly(self, mem):
        base = list(range(1, 65))
        mine = list(base); mine[5] += 1
        theirs = list(base); theirs[60] += 2
        b, bh = dag.build_segment(mem, base)
        m, mh = dag.build_segment(mem, mine)
        t, th = dag.build_segment(mem, theirs)
        root, h = merge_roots(mem, (b, bh), (m, mh), (t, th))
        for e in (b, m, t, root):
            dag.release_entry(mem, e)
        assert mem.footprint_lines() == 0


class TestMixedHeightMerge:
    """merge_roots across trees of different heights (replication
    followers promote short snapshots against grown leader roots)."""

    def test_theirs_grows_the_segment(self, mem):
        base = [1, 2]
        mine = [5, 2]
        theirs = [1, 2] + [0] * 30 + [9]
        out = merged_words(mem, base, mine, theirs)
        assert out[0] == 5 and out[32] == 9

    def test_both_sides_grow_to_different_heights(self, mem):
        base = [1, 2]
        mine = [1, 2] + [0] * 14 + [7]            # one extra level
        theirs = [1, 2] + [0] * 300 + [8]         # several extra levels
        out = merged_words(mem, base, mine, theirs)
        assert out[16] == 7 and out[302] == 8
        assert out[0] == 1 and out[1] == 2

    def test_counter_semantics_survive_height_promotion(self, mem):
        base = [10, 2]
        mine = [13, 2] + [0] * 30 + [9]  # +3 on word 0, and grew
        theirs = [14, 2]                 # +4 on word 0
        out = merged_words(mem, base, mine, theirs)
        assert out[0] == 17 and out[32] == 9

    def test_mixed_height_merge_releases_cleanly(self, mem):
        base = list(range(1, 9))
        mine = list(base) + [0] * 120 + [4]
        theirs = list(base); theirs[0] += 2
        b, bh = dag.build_segment(mem, base)
        m, mh = dag.build_segment(mem, mine)
        t, th = dag.build_segment(mem, theirs)
        assert mh > bh == th
        root, h = merge_roots(mem, (b, bh), (m, mh), (t, th))
        assert h == mh
        for e in (b, m, t, root):
            dag.release_entry(mem, e)
        assert mem.footprint_lines() == 0
        mem.store.check_refcounts()
