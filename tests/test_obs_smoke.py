"""Smoke test: live server + loadgen, then cross-check the registry's
Prometheus exposition against the legacy ``stats json`` snapshot.

``stats prom\\r\\nstats json\\r\\n`` is pipelined in one write, so both
documents are computed in the same dispatch window and must agree on
every stable counter — the registry really is a view over the same live
silos, not a parallel set of books.
"""

import asyncio
import json

from repro.net.loadgen import run_loadgen
from repro.net.server import MemcachedServer
from repro.obs import adapters
from repro.obs.registry import parse_exposition, sample

CRLF = b"\r\n"

#: stats-json key -> (exposition metric name, labels); only counters
#: that cannot move between the two stats computations are compared —
#: uptime/ops-per-second read the clock and are checked for presence only.
STABLE_KEYS = {
    "ops_total": "repro_server_ops_total",
    "bytes_in": "repro_server_bytes_in",
    "frames_decoded": "repro_server_frames_decoded",
    "pipelined_requests": "repro_server_pipelined_requests",
    "max_pipeline_depth": "repro_server_max_pipeline_depth",
    "protocol_errors": "repro_server_protocol_errors",
    "server_errors": "repro_server_server_errors",
    "commit_batches": "repro_server_commit_batches",
    "merge_commits": "repro_server_merge_commits",
    "cas_retries": "repro_server_cas_retries",
    "queue_high_watermark": "repro_server_queue_high_watermark",
    "shards": "repro_server_shards",
    "pending_commits": "repro_server_pending_commits",
    "footprint_bytes": "repro_machine_footprint_bytes",
}


async def _scrape_both(port: int):
    """One pipelined request for both stats documents."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"stats prom\r\nstats json\r\n")
    await writer.drain()
    buf = b""
    while buf.count(b"END" + CRLF) < 2:
        chunk = await reader.read(1 << 16)
        if not chunk:
            break
        buf += chunk
    writer.write(b"quit\r\n")
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    prom_raw, rest = buf.split(b"END" + CRLF, 1)
    json_raw = rest.split(b"END" + CRLF, 1)[0]
    return prom_raw.decode(), json.loads(json_raw)


def test_exposition_agrees_with_stats_json_under_load():
    async def scenario():
        async with MemcachedServer(port=0, shard_count=2) as server:
            report = await run_loadgen(
                "127.0.0.1", server.port, clients=3, ops_per_client=40,
                pipeline_depth=6, seed=5)
            assert report.consistent and report.errors == 0
            return await _scrape_both(server.port)

    prom_text, snap = asyncio.run(scenario())
    parsed = parse_exposition(prom_text)

    # the exposition parses and both documents agree on every stable key
    for key, metric in STABLE_KEYS.items():
        assert sample(parsed, metric) == snap[key], key

    # labeled series line up with the json breakdowns
    for command, count in snap["ops_by_command"].items():
        assert sample(parsed, "repro_server_ops_by_command",
                      command=command) == count
    for vsid, count in snap["commits_by_vsid"].items():
        assert sample(parsed, "repro_server_commits_by_vsid",
                      vsid=vsid) == count
    for category, count in snap["server"].items():
        if category == "curr_items":
            assert sample(parsed, "repro_cache_curr_items") == count
        else:
            assert sample(parsed, "repro_cache_ops_total",
                          op=category) == count
    for quantile, value in snap["latency"].items():
        assert sample(parsed, "repro_server_latency_ms",
                      quantile=quantile) == value

    # DRAM categories are present (Figure 6's counters, live)
    assert sample(parsed, adapters.DRAM_METRIC, category="lookups") > 0

    # clock-derived values exist in both but are not compared
    assert ("repro_server_uptime_seconds", ()) in parsed
    assert "uptime_seconds" in snap


def test_legacy_stats_json_keys_unchanged():
    """The pre-registry ``stats json`` schema, frozen: existing
    dashboards keep working."""

    async def scenario():
        async with MemcachedServer(port=0, shard_count=2) as server:
            await run_loadgen("127.0.0.1", server.port, clients=1,
                              ops_per_client=10, seed=1)
            _, snap = await _scrape_both(server.port)
            expected = server.router.snapshot()
            return snap, expected

    snap, expected = asyncio.run(scenario())
    assert set(snap) == set(expected)
    assert set(snap["latency"]) == {"p50_ms", "p90_ms", "p99_ms", "max_ms"}
    for key in ("shards", "pending_commits", "footprint_bytes", "server"):
        assert key in snap
