"""Tests for memcached TTL expiry and quota/LRU eviction."""

import pytest

from repro.apps.memcached.eviction import ManagedMemcached


@pytest.fixture
def server(machine):
    return ManagedMemcached(machine)


class TestExpiry:
    def test_no_ttl_never_expires(self, server):
        server.set(b"k", b"v")
        server.tick(10_000)
        assert server.get(b"k") == b"v"

    def test_expires_after_ttl(self, server):
        server.set(b"k", b"v", exptime=5)
        assert server.get(b"k") == b"v"
        server.tick(10)
        assert server.get(b"k") is None
        assert server.eviction.expired == 1

    def test_expired_item_reclaimed(self, machine, server):
        server.set(b"k", bytes(range(250)), exptime=1)
        server.tick(5)
        assert server.get(b"k") is None
        # the value's lines were reclaimed by refcounting
        lines_after = machine.footprint_lines()
        server.set(b"other", b"x")
        assert machine.footprint_lines() >= lines_after  # sanity

    def test_add_treats_expired_as_absent(self, server):
        server.set(b"k", b"old", exptime=1)
        server.tick(5)
        assert server.add(b"k", b"new")
        assert server.get(b"k") == b"new"

    def test_replace_requires_alive(self, server):
        server.set(b"k", b"old", exptime=1)
        server.tick(5)
        assert not server.replace(b"k", b"new")

    def test_set_refreshes_ttl(self, server):
        server.set(b"k", b"v1", exptime=3)
        server.tick(2)
        server.set(b"k", b"v2", exptime=50)
        server.tick(10)
        assert server.get(b"k") == b"v2"

    def test_incr_on_managed_values(self, server):
        server.set(b"n", b"41")
        assert server.incr(b"n") == 42
        assert server.get(b"n") == b"42"


def unique_blob(i, size=1024):
    """High-entropy per-item value: deduplication cannot share these,
    so the quota actually fills (shared values would be nearly free)."""
    import random
    return random.Random("blob-%d" % i).getrandbits(8 * size).to_bytes(size, "big")


class TestQuotaEviction:
    def test_quota_evicts_lru(self, machine):
        server = ManagedMemcached(machine, quota_bytes=24 * 1024)
        for i in range(40):
            server.set(b"item-%02d" % i, unique_blob(i))
        assert server.eviction.evicted > 0
        assert machine.footprint_bytes() <= 24 * 1024
        # the most recently set item survived
        assert server.get(b"item-39") is not None

    def test_gets_protect_from_eviction(self, machine):
        server = ManagedMemcached(machine, quota_bytes=20 * 1024)
        server.set(b"precious", unique_blob(999))
        for i in range(40):
            server.get(b"precious")  # keep it hot
            server.set(b"filler-%02d" % i, unique_blob(i))
        assert server.get(b"precious") is not None

    def test_dedup_shared_values_stay_under_quota(self, machine):
        # the HICAMP twist: 40 copies of the same value cost one value,
        # so no eviction triggers despite the nominal volume
        server = ManagedMemcached(machine, quota_bytes=24 * 1024)
        shared = unique_blob(0, size=2048)
        for i in range(40):
            server.set(b"dup-%02d" % i, shared)
        assert server.eviction.evicted == 0
        assert server.live_items() == 40

    def test_no_quota_no_eviction(self, machine):
        server = ManagedMemcached(machine)
        for i in range(30):
            server.set(b"k%d" % i, unique_blob(i, size=256))
        assert server.eviction.evicted == 0

    def test_eviction_stats(self, machine):
        server = ManagedMemcached(machine, quota_bytes=12 * 1024)
        for i in range(30):
            server.set(b"k%02d" % i, unique_blob(i, size=512))
        assert server.eviction.eviction_passes > 0
        assert server.live_items() < 30
