"""Span propagation through the live stack, end to end.

request → commit-queue batch → merge-update on the serving side;
ship_delta → root_advance on the leader and advance_apply (with DRAM
attribution) on the follower; plus the reproducibility contract: a
traced fuzz episode is byte-identical across runs of the same seed.
"""

import asyncio

import pytest

from repro.net.server import MemcachedServer
from repro.obs.trace import StepClock, TraceRecorder
from repro.replication import (
    FollowerServer,
    ReplicationFollower,
    ReplicationLeader,
)
from repro.testing.fuzz import EpisodeConfig, run_episode

CRLF = b"\r\n"


async def _pipelined(port: int, request: bytes, responses: int) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(request)
    await writer.drain()
    out = b""
    for _ in range(responses):
        out += await reader.readline()
    writer.write(b"quit\r\n")
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    return out


def test_request_to_commit_batch_to_merge_update_links():
    async def scenario():
        rec = TraceRecorder(clock=StepClock())
        async with MemcachedServer(port=0, shard_count=1,
                                   recorder=rec) as server:
            # one pipelined burst of writes to one shard: the commit
            # queue batches them and the batch merge-commits
            burst = b"".join(b"set k%d 0 0 2\r\nv%d\r\n" % (i, i)
                             for i in range(6))
            await _pipelined(server.port, burst, 6)
            await server.router.drain()
        return rec

    rec = asyncio.run(scenario())
    requests = {s.span_id: s for s in rec.find("request")}
    batches = rec.find("commit_batch")
    assert len(requests) == 6
    assert batches, "writes must produce commit_batch spans"
    # every batch lists the request spans whose writes it carried
    carried = [r for b in batches for r in b.attrs["requests"]]
    assert sorted(carried) == sorted(requests)
    assert sum(b.attrs["writes"] for b in batches) == 6
    # merged batches hang a merge_update span off the batch span
    merged = [b for b in batches if b.attrs["writes"] > 1]
    assert merged, "a pipelined burst to one shard must merge"
    for batch in merged:
        names = [c.name for c in rec.children(batch.span_id)]
        assert "merge_update" in names
    # DRAM attribution landed on the batch spans
    assert all("dram_lookups" in b.attrs for b in batches)
    assert sum(b.attrs["dram_lookups"] for b in batches) > 0
    # every span closed
    assert all(s.end is not None for s in rec.spans)


def test_disabled_recorder_leaves_no_spans_and_serves_fine():
    async def scenario():
        async with MemcachedServer(port=0, shard_count=1) as server:
            out = await _pipelined(server.port,
                                   b"set a 0 0 2\r\nhi\r\n", 1)
            assert out == b"STORED" + CRLF
            assert server.recorder.enabled is False

    asyncio.run(scenario())


def test_replication_spans_link_leader_and_follower():
    async def scenario():
        rec = TraceRecorder(clock=StepClock())
        frec = TraceRecorder(clock=StepClock())
        async with MemcachedServer(port=0, shard_count=1,
                                   recorder=rec) as server:
            leader = ReplicationLeader(server.router, port=0)
            await leader.start()
            follower = ReplicationFollower("127.0.0.1", leader.port,
                                           recorder=frec)
            await follower.start()
            try:
                burst = b"".join(b"set r%d 0 0 2\r\nv%d\r\n" % (i, i)
                                 for i in range(4))
                await _pipelined(server.port, burst, 4)
                await server.router.drain()
                for _ in range(300):
                    if follower.metrics.root_advances \
                            and follower.metrics.max_lag == 0:
                        break
                    await asyncio.sleep(0.01)
            finally:
                await follower.stop()
                await leader.stop()
        return rec, frec, follower

    rec, frec, follower = asyncio.run(scenario())
    ships = {s.span_id: s for s in rec.find("ship_delta")}
    advances = rec.find("root_advance")
    assert ships and advances
    # every shipped advance parents back to its delta and carries the
    # (vsid, seq) pair that correlates with commit_batch spans
    for span in advances:
        assert span.parent_id in ships
        assert {"stream", "seq", "vsid"} <= set(span.attrs)
    applies = frec.find("advance_apply")
    assert len(applies) == follower.metrics.root_advances
    for span in applies:
        assert span.end is not None
        assert "dram_lookups" in span.attrs  # attribution on apply


def test_follower_front_end_exposes_replication_metrics():
    async def scenario():
        async with MemcachedServer(port=0, shard_count=1) as server:
            leader = ReplicationLeader(server.router, port=0)
            await leader.start()
            follower = ReplicationFollower("127.0.0.1", leader.port)
            await follower.start()
            front = FollowerServer(follower, "127.0.0.1", server.port,
                                   port=0)
            await front.start()
            try:
                await _pipelined(server.port,
                                 b"set s0 0 0 2\r\nhi\r\n", 1)
                await server.router.drain()
                for _ in range(300):
                    if follower.metrics.root_advances \
                            and follower.metrics.max_lag == 0:
                        break
                    await asyncio.sleep(0.01)
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", front.port)
                writer.write(b"stats\r\n")
                await writer.drain()
                buf = b""
                while not buf.endswith(b"END" + CRLF):
                    chunk = await reader.read(1 << 16)
                    if not chunk:
                        break
                    buf += chunk
                writer.close()
            finally:
                await front.stop()
                await follower.stop()
                await leader.stop()
        return buf, follower.metrics.snapshot()

    buf, snap = asyncio.run(scenario())
    stats = {}
    for line in buf.decode().splitlines():
        if line.startswith("STAT "):
            _, name, value = line.split(" ", 2)
            stats[name] = value
    # the full ReplicationMetrics snapshot rides the stats command
    snap.pop("lag_by_stream")
    for name, value in snap.items():
        assert stats["replication_" + name] == str(value)
    # the pre-registry keys survive unchanged
    assert "replication_dedup_on_arrival" in stats
    assert "replication_dedup_ratio" in stats
    assert "footprint_bytes" in stats
    assert int(stats["replication_root_advances"]) >= 1


@pytest.mark.parametrize("seed", [3, 11])
def test_fuzz_episode_trace_is_byte_identical(seed):
    """The reproducibility contract extended to traces: same seed, same
    bytes. One client keeps the interleaving fully sequential."""

    def capture() -> str:
        rec = TraceRecorder(clock=StepClock())
        cfg = EpisodeConfig(clients=1, ops_per_client=24)
        result = run_episode(seed, cfg, trace_recorder=rec)
        assert result.ok, result.failures
        return rec.export_jsonl()

    first, second = capture(), capture()
    assert first == second
    assert '"name":"request"' in first
