"""Cross-mode differentials: the commit strategy must be invisible.

History independence is what makes online strategy switching safe:
every commit mode lands the same canonical DAG, so a mid-stream switch
at a batch boundary cannot show up in state. These tests replay one
deterministic pipelined workload — dup-key sets the bulk path
coalesces last-wins, deletes and counters the storm-staging posture
commutes around staged runs, read fences the hop resolves early —
through every static mode and through an adaptive run that is forced
to switch strategies mid-stream, and demand identical responses plus
identical post-quiesce observables: per-shard segment fingerprints,
unique-line footprints, and the refcount multiset. A final section
pins seed-identical fuzz traces across commit modes.
"""

import asyncio
import random

from repro.net.framing import FrameDecoder
from repro.net.router import ConnectionState, ShardRouter
from repro.testing.auditors import audit_machine
from repro.testing.fuzz import EpisodeConfig, run_episode

STATIC_MODES = ("cas", "merge", "bulk")


def _chunks(seed):
    """Three deterministic request chunks (raw protocol bytes): a mixed
    warmup, a dup/delete-churning storm, then a counter-RMW tail. Gets
    ride along in every chunk so fences land inside batched runs."""
    rng = random.Random(seed)
    keys = [b"k%02d" % i for i in range(10)]

    def put(key, tag):
        value = b"v%05d" % tag
        return b"set %s 0 0 %d\r\n%s\r\n" % (key, len(value), value)

    warm = b"".join(put(k, i) for i, k in enumerate(keys))
    warm += b"set ctr 0 0 3\r\n100\r\n"
    warm += b"".join(b"get %s\r\n" % rng.choice(keys) for _ in range(4))

    storm = b""
    for i in range(60):
        roll = rng.random()
        key = rng.choice(keys)
        if roll < 0.55:
            storm += put(key, 1000 + rng.randrange(40))  # dup-heavy
        elif roll < 0.75:
            storm += b"delete %s\r\n" % key
        elif roll < 0.9:
            storm += b"get %s\r\n" % key
        else:
            storm += put(b"fresh%02d" % i, 2000 + i)

    tail = b""
    for _ in range(20):
        roll = rng.random()
        if roll < 0.4:
            tail += b"incr ctr %d\r\n" % rng.randrange(1, 9)
        elif roll < 0.6:
            tail += b"decr ctr %d\r\n" % rng.randrange(1, 5)
        elif roll < 0.8:
            tail += b"gets %s\r\n" % rng.choice(keys)
        else:
            tail += put(rng.choice(keys), 3000 + rng.randrange(20))
    return [warm, storm, tail]


async def _replay(mode, chunks, switches=None):
    """Dispatch each chunk as one pipelined burst on a single
    connection; ``switches`` forces a strategy handoff before a chunk
    (mid-stream, with that chunk's frames about to pile into the same
    shard queues the previous strategy just drained)."""
    router = ShardRouter(shard_count=3, batch_limit=8, commit_mode=mode)
    await router.start()
    conn = ConnectionState()
    responses = []
    for idx, chunk in enumerate(chunks):
        if switches and idx in switches:
            for shard in range(3):
                router.controller.force_mode(shard, switches[idx])
        futures = [await router.dispatch(frame, conn)
                   for frame in FrameDecoder().feed(chunk)]
        responses.extend([await f for f in futures])
    await router.drain()
    machine = router.machine
    machine.drain()  # quiesce deferred reclaim before observing
    store = machine.mem.store
    observed = {
        "fingerprints": [
            machine.segment_fingerprint(s.kvp.vsid).hex()
            for s in router.servers],
        "footprint_lines": machine.footprint_lines(),
        "footprint_bytes": store.footprint_bytes(),
        "refcounts": sorted(store.refcount(p)
                            for p in store.live_plids()),
        "audit": audit_machine(machine, strict=True).ok,
        "items": sum(s.item_count() for s in router.servers),
    }
    if mode == "adaptive":
        observed["switches"] = len(router.controller.switch_log)
    await router.stop()
    return responses, observed


def _run(mode, chunks, switches=None):
    return asyncio.run(_replay(mode, chunks, switches=switches))


class TestCrossModeIdentity:
    def test_static_modes_agree_on_responses_and_state(self):
        for seed in (3, 77):
            chunks = _chunks(seed)
            baseline = _run("merge", chunks)
            for mode in ("cas", "bulk"):
                responses, observed = _run(mode, chunks)
                assert responses == baseline[0], mode
                assert observed == baseline[1], mode
            assert baseline[1]["audit"] and baseline[1]["items"] > 0

    def test_mid_stream_switches_are_invisible_to_state(self):
        # the storm chunk lands under forced bulk (storm-staging hop
        # active: commuted deletes, early fences, last-wins dedupe),
        # the counter tail under forced cas — responses and quiesced
        # state must still match every static mode bit for bit
        chunks = _chunks(11)
        baseline = _run("merge", chunks)
        responses, observed = _run(
            "adaptive", chunks, switches={1: "bulk", 2: "cas"})
        switch_count = observed.pop("switches")
        assert switch_count >= 2
        assert responses == baseline[0]
        assert observed == baseline[1]

    def test_every_forced_mode_agrees_under_the_storm_chunk(self):
        chunks = _chunks(29)
        results = {mode: _run("adaptive", chunks, switches={1: mode})
                   for mode in STATIC_MODES}
        first = results["cas"]
        for mode in ("merge", "bulk"):
            responses, observed = results[mode]
            observed.pop("switches")
            first[1].pop("switches", None)
            assert responses == first[0], mode
            assert observed == first[1], mode


class TestFuzzTraceIdentity:
    def test_seed_traces_identical_across_commit_modes(self):
        # the episode trace (scripts, fault plan, linearizability
        # verdict, readback) is commit-mode-independent by construction
        traces = {}
        for mode in STATIC_MODES + ("adaptive",):
            result = run_episode(
                41, EpisodeConfig(commit_mode=mode))
            assert result.failures == [], mode
            traces[mode] = result.trace
        assert len({tuple(t) for t in traces.values()}) == 1
