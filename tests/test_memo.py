"""Structural memo: differential correctness, invalidation, bounds.

The memo (:mod:`repro.memory.memo`) may change *how fast* a canonical
structure is found, never *which* structure — every test here compares a
memo-enabled machine against an identically-configured plain one, or
proves the refcount books still balance with memo hits in the mix.
"""

import pytest

from repro import Machine
from repro.memory.line import PlidRef
from repro.memory.memo import MISS, StructuralMemo
from repro.obs import adapters
from repro.obs.registry import MetricsRegistry
from repro.segments import dag
from repro.segments.merge import merge_roots
from repro.structures.anon import AnonSegment
from repro.structures.hmap import HMap
from repro.testing.auditors import audit_machine
from tests.conftest import small_config


def _pair():
    """Two identical machines: plain, and memo-enabled."""
    plain = Machine(small_config())
    memoized = Machine(small_config())
    memoized.mem.memo.enable()
    return plain, memoized


PAYLOADS = [b"payload-%03d-" % i * 9 for i in range(12)]
# repeats drive memo hits on the memoized machine
WORKLOAD = PAYLOADS + PAYLOADS[::2] + PAYLOADS + PAYLOADS[3:7]


class TestDifferentialBuild:
    def test_same_roots_same_footprint_as_unmemoized(self):
        plain, memoized = _pair()
        kept = {plain: [], memoized: []}
        for machine in (plain, memoized):
            for payload in WORKLOAD:
                kept[machine].append(
                    AnonSegment.from_bytes(machine.mem, payload))
        # identical canonical identities, in order
        assert [s.key() for s in kept[plain]] \
            == [s.key() for s in kept[memoized]]
        # identical dedup outcome: same unique-line footprint
        assert plain.footprint_lines() == memoized.footprint_lines()
        assert memoized.mem.memo.stats["segment"].hits > 0
        # refcount exactness: releasing every handle reclaims everything
        # on both machines — a memo hit took exactly the references a
        # full rebuild would have netted
        for machine in (plain, memoized):
            for seg in kept[machine]:
                seg.release()
        assert plain.footprint_lines() == 0
        assert memoized.footprint_lines() == 0
        # and deallocation invalidated the now-stale memo entries
        assert memoized.mem.memo.sizes() == {
            "line": 0, "segment": 0, "merge": 0, "digest": 0}

    def test_contents_roundtrip_through_memo_hits(self):
        _, memoized = _pair()
        pins = [AnonSegment.from_bytes(memoized.mem, p) for p in PAYLOADS]
        for payload in PAYLOADS:  # second pass: memo hits
            seg = AnonSegment.from_bytes(memoized.mem, payload)
            assert seg.to_bytes(len(payload)) == payload
            seg.release()
        assert memoized.mem.memo.stats["segment"].hits >= len(PAYLOADS)
        for seg in pins:
            seg.release()


class TestDifferentialMerge:
    def _merge_twice(self, machine):
        mem = machine.mem
        base, h = dag.build_segment(mem, list(range(1, 40)))
        mine = dag.write_words_bulk(mem, dag.retain_entry(mem, base), h,
                                    {0: 101, 5: 105})
        theirs = dag.write_words_bulk(mem, dag.retain_entry(mem, base), h,
                                      {30: 202, 38: 203})
        outs, roots = [], []
        # pin each result until the end: releasing a result deallocs its
        # lines, which (correctly) invalidates the memo entry — the
        # serving path keeps committed results alive via the segment map
        for _ in range(2):  # the second fold hits the merge memo
            root, height = merge_roots(mem, (base, h), (mine, h),
                                       (theirs, h))
            outs.append(dag.gather_words(mem, root, height, 0, 39))
            roots.append(root)
        for e in (base, mine, theirs, *roots):
            dag.release_entry(mem, e)
        return outs

    def test_memoized_merge_matches_plain(self):
        plain, memoized = _pair()
        plain_outs = self._merge_twice(plain)
        memo_outs = self._merge_twice(memoized)
        assert plain_outs == memo_outs
        assert plain_outs[0] == plain_outs[1]
        assert memoized.mem.memo.stats["merge"].hits > 0
        assert audit_machine(memoized).ok

    def test_map_merge_commits_audit_clean_with_memo(self):
        _, memoized = _pair()
        kvp = HMap.create(memoized)
        # repeated interleaved rounds over the same key pairs: the same
        # divergence is folded again and again, exercising memo hits
        for round_ in range(4):
            for a, b in ((b"k0", b"k1"), (b"k2", b"k3"), (b"k0", b"k2")):
                left = kvp.put_steps(a, b"round-%d" % round_)
                right = kvp.put_steps(b, b"round-%d" % round_)
                next(left)
                next(right)  # both staged: second commit must merge
                for gen in (left, right):
                    for _ in gen:
                        pass
        assert len(kvp) == 4
        assert memoized.segmap.cas_failures > 0  # merges happened
        assert audit_machine(memoized).ok


class TestFingerprintMemo:
    def test_digest_stable_and_machine_independent(self):
        plain, memoized = _pair()
        words = list(range(5000, 5200))
        vp = plain.create_segment(words)
        vm = memoized.create_segment(words)
        expected = dag.segment_fingerprint(plain, vp)
        first = dag.segment_fingerprint(memoized, vm)
        second = dag.segment_fingerprint(memoized, vm)  # digest-cache hit
        assert first == expected
        assert second == expected
        assert memoized.mem.memo.stats["digest"].hits > 0

    def test_write_invalidates_stale_digests(self):
        _, memoized = _pair()
        words = list(range(7000, 7100))
        vsid = memoized.create_segment(words)
        before = dag.segment_fingerprint(memoized, vsid)
        memoized.write_word(vsid, 42, 999999)
        after = dag.segment_fingerprint(memoized, vsid)
        assert after != before
        # ground truth: a fresh plain machine with the updated content
        fresh = Machine(small_config())
        words[42] = 999999
        assert dag.segment_fingerprint(
            fresh, fresh.create_segment(words)) == after


class TestInvalidationAndRebuild:
    def test_dealloc_then_rebuild_is_correct(self):
        _, memoized = _pair()
        mem = memoized.mem
        data = b"ephemeral-content-" * 8
        seg = AnonSegment.from_bytes(mem, data)
        seg.release()  # refcount hits zero: lines dealloc, memo drops
        assert memoized.footprint_lines() == 0
        assert mem.memo.sizes()["segment"] == 0
        rebuilt = AnonSegment.from_bytes(mem, data)  # PLIDs may be reused
        assert rebuilt.to_bytes(len(data)) == data
        rebuilt.release()
        assert mem.memo.stats["segment"].invalidations >= 1


class TestBoundsStandalone:
    """LRU caps and reverse-map hygiene on a bare StructuralMemo."""

    def test_line_table_bounded_with_evictions(self):
        memo = StructuralMemo(max_lines=4).enable()
        for i in range(7):
            memo.put_line(("line", i), 100 + i)
        assert memo.sizes()["line"] == 4
        assert memo.stats["line"].evictions == 3
        assert memo.get_line(("line", 0)) is None  # evicted
        assert memo.get_line(("line", 6)) == 106

    def test_segment_table_bounded(self):
        memo = StructuralMemo(max_segments=2).enable()
        for i in range(5):
            memo.put_segment(b"data-%d" % i, PlidRef(50 + i), 1, 4)
        assert memo.sizes()["segment"] == 2
        assert memo.stats["segment"].evictions == 3

    def test_merge_dealloc_cleans_all_dep_entries(self):
        memo = StructuralMemo().enable()
        deps = (PlidRef(1), PlidRef(2), PlidRef(3), PlidRef(4))
        memo.put_merge(("a", "b", "c", 0), deps[3], deps)
        memo.on_dealloc(2)  # any dep's reuse kills the entry
        assert memo.get_merge(("a", "b", "c", 0)) is MISS
        assert memo.stats["merge"].invalidations == 1
        assert memo._merge_rev == {}  # no dangling reverse entries

    def test_digest_cache_trims_wholesale(self):
        memo = StructuralMemo(max_digests=8).enable()
        for plid in range(10):
            memo.digests[plid] = b"d%d" % plid
        memo.trim_digests()
        assert memo.digests == {}
        assert memo.stats["digest"].evictions == 10

    def test_disable_drops_state(self):
        memo = StructuralMemo().enable()
        memo.put_line(("x",), 9)
        memo.disable()
        assert not memo.enabled
        assert memo.sizes()["line"] == 0


class TestObsIntegration:
    def test_register_memo_exposes_ops_and_sizes(self):
        registry = MetricsRegistry()
        memo = StructuralMemo().enable()
        adapters.register_memo(registry, memo)
        memo.put_line(("a",), 7)
        assert memo.get_line(("a",)) == 7
        assert memo.get_line(("b",)) is None
        ops = dict(registry.get("repro_memo_ops_total").snapshot_value())
        assert ops["line,hit"] == 1
        assert ops["line,miss"] == 1
        sizes = dict(registry.get("repro_memo_entries").snapshot_value())
        assert sizes["line"] == 1
        assert registry.get("repro_memo_enabled").snapshot_value() == 1

    def test_router_registers_memo_metrics(self):
        from repro.net.router import ShardRouter

        router = ShardRouter(shard_count=1)
        assert router.machine.mem.memo.enabled
        assert router.registry.get("repro_memo_enabled") is not None
        disabled = ShardRouter(shard_count=1, structural_memo=False)
        assert not disabled.machine.mem.memo.enabled
