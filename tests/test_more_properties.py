"""Second round of property-based tests: machine-level op sequences,
persistence, SZ-order, and iterator/snapshot agreement."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro import Machine, MachineConfig, MemoryConfig
from repro.core.persistence import machine_image, restore_machine
from repro.params import CacheGeometry
from repro.structures.hmatrix import sz_coords, sz_index

SETTINGS = settings(
    max_examples=30,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fresh_machine(line_bytes=16):
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=line_bytes, num_buckets=1 << 12,
                            data_ways=12, overflow_lines=1 << 16),
        cache=CacheGeometry(size_bytes=64 * 1024, ways=8,
                            line_bytes=line_bytes),
    ))


word_values = st.integers(min_value=0, max_value=(1 << 64) - 1)


class MachineModel(RuleBasedStateMachine):
    """Random segment operations vs a dict-of-lists reference model."""

    def __init__(self):
        super().__init__()
        self.machine = fresh_machine()
        self.model = {}  # vsid -> list of words
        self.handles = []

    @rule(words=st.lists(word_values, max_size=30))
    def create(self, words):
        vsid = self.machine.create_segment(words)
        self.model[vsid] = list(words)
        self.handles.append(vsid)

    @rule(offset=st.integers(min_value=0, max_value=60), value=word_values,
          pick=st.integers(min_value=0, max_value=10**6))
    def write(self, offset, value, pick):
        if not self.handles:
            return
        vsid = self.handles[pick % len(self.handles)]
        self.machine.write_word(vsid, offset, value)
        words = self.model[vsid]
        if offset >= len(words):
            words.extend([0] * (offset + 1 - len(words)))
        words[offset] = value

    @rule(extra=st.lists(word_values, min_size=1, max_size=8),
          pick=st.integers(min_value=0, max_value=10**6))
    def append(self, extra, pick):
        if not self.handles:
            return
        vsid = self.handles[pick % len(self.handles)]
        self.machine.append_words(vsid, extra)
        self.model[vsid].extend(extra)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def drop(self, pick):
        if not self.handles:
            return
        vsid = self.handles.pop(pick % len(self.handles))
        self.machine.drop_segment(vsid)
        del self.model[vsid]

    @invariant()
    def contents_match(self):
        for vsid, words in self.model.items():
            assert self.machine.read_segment(vsid) == words

    @invariant()
    def equal_contents_equal_roots(self):
        by_content = {}
        for vsid, words in self.model.items():
            by_content.setdefault(tuple(words), []).append(vsid)
        for group in by_content.values():
            for other in group[1:]:
                assert self.machine.segments_equal(group[0], other)

    def teardown(self):
        for vsid in self.handles:
            self.machine.drop_segment(vsid)
        assert self.machine.footprint_lines() == 0
        self.machine.mem.store.check_refcounts()


TestMachineModel = MachineModel.TestCase
TestMachineModel.settings = SETTINGS


class TestPersistenceProperties:
    @SETTINGS
    @given(contents=st.lists(st.lists(word_values, max_size=40),
                             min_size=1, max_size=5))
    def test_roundtrip_arbitrary_contents(self, contents):
        machine = fresh_machine()
        vsids = [machine.create_segment(words) for words in contents]
        restored = restore_machine(machine_image(machine))
        for vsid, words in zip(vsids, contents):
            assert restored.read_segment(vsid) == list(words)
        assert restored.footprint_lines() == machine.footprint_lines()


class TestSzOrderProperties:
    @SETTINGS
    @given(size_log=st.integers(min_value=0, max_value=7),
           data=st.data())
    def test_bijection(self, size_log, data):
        size = 1 << size_log
        r = data.draw(st.integers(min_value=0, max_value=size - 1))
        c = data.draw(st.integers(min_value=0, max_value=size - 1))
        idx = sz_index(r, c, size)
        assert 0 <= idx < size * size
        assert sz_coords(idx, size) == (r, c)

    @SETTINGS
    @given(size_log=st.integers(min_value=1, max_value=6),
           data=st.data())
    def test_symmetric_pairs_align(self, size_log, data):
        size = 1 << size_log
        half = size // 2
        r = data.draw(st.integers(min_value=0, max_value=half - 1))
        c = data.draw(st.integers(min_value=half, max_value=size - 1))
        quad = half * half
        assert (sz_index(r, c, size) - 2 * quad
                == sz_index(c, r, size) - 3 * quad)


class TestIteratorAgreesWithSnapshot:
    @SETTINGS
    @given(words=st.lists(word_values, min_size=1, max_size=50),
           offsets=st.lists(st.integers(min_value=0, max_value=49),
                            min_size=1, max_size=12))
    def test_reads_agree(self, words, offsets):
        machine = fresh_machine()
        vsid = machine.create_segment(words)
        it = machine.iterator(vsid)
        with machine.snapshot(vsid) as snap:
            for offset in offsets:
                expected = words[offset] if offset < len(words) else 0
                assert it.get(offset) == expected
                assert snap.read(offset) == expected
        machine.release_iterator(it)

    @SETTINGS
    @given(words=st.lists(word_values, min_size=1, max_size=40))
    def test_iter_items_matches_enumerate(self, words):
        machine = fresh_machine()
        vsid = machine.create_segment(words)
        it = machine.iterator(vsid)
        got = list(it.iter_items())
        expected = [(i, w) for i, w in enumerate(words) if w]
        assert got == expected
        machine.release_iterator(it)
