"""Per-tenant namespaces (TenantMemcached) and their observability.

Each tenant prefix owns a *separate* HMap — a separate VSID, so one
tenant's churn can never perturb another's canonical root, and a
tenant's whole namespace is one `drop` away from reclaimed. The
registry adapters (PR 4 idiom) expose per-tenant counters and the
eviction silo, with ``legacy_*_snapshot`` byte-compat checks.
"""

import dataclasses

from repro.apps.memcached import DEFAULT_TENANT, TenantMemcached
from repro.apps.memcached.eviction import ManagedMemcached
from repro.core.machine import Machine
from repro.obs import adapters
from repro.obs.registry import MetricsRegistry


def make():
    return TenantMemcached(Machine())


class TestTenantRouting:
    def test_prefix_selects_namespace(self):
        server = make()
        server.set(b"acme:user-1", b"a")
        server.set(b"globex:user-1", b"b")
        assert server.get(b"acme:user-1") == b"a"
        assert server.get(b"globex:user-1") == b"b"
        assert set(server.vsids()) == {DEFAULT_TENANT, b"acme",
                                       b"globex"}

    def test_namespaces_have_distinct_vsids(self):
        server = make()
        server.set(b"acme:k", b"v")
        server.set(b"globex:k", b"v")
        vsids = server.vsids()
        assert len(set(vsids.values())) == len(vsids)

    def test_unprefixed_keys_land_in_the_default_tenant(self):
        server = make()
        server.set(b"plain-key", b"v")
        server.set(b":leading-separator", b"w")
        assert server.tenant_of(b"plain-key") == DEFAULT_TENANT
        assert server.tenant_of(b":leading-separator") == DEFAULT_TENANT
        assert server.get(b"plain-key") == b"v"

    def test_same_key_suffix_is_isolated_across_tenants(self):
        server = make()
        server.set(b"a:k", b"from-a")
        server.set(b"b:k", b"from-b")
        server.delete(b"a:k")
        assert server.get(b"a:k") is None
        assert server.get(b"b:k") == b"from-b"

    def test_identical_tenant_contents_share_canonical_roots(self):
        # dedup across backends: the same tenant namespace holding the
        # same items has the same canonical root, wherever it lives
        machine = Machine()
        one, two = TenantMemcached(machine), TenantMemcached(machine)
        for i in range(8):
            one.set(b"acme:key-%d" % i, b"value-%d" % i)
        for i in reversed(range(8)):        # different order, too
            two.set(b"acme:key-%d" % i, b"value-%d" % i)
        assert machine.segment_fingerprint(one.vsids()[b"acme"]) \
            == machine.segment_fingerprint(two.vsids()[b"acme"])

    def test_set_many_groups_by_tenant(self):
        server = make()
        server.set_many([(b"a:1", b"x"), (b"b:1", b"y"),
                         (b"a:2", b"z")])
        assert server.items_by_tenant() == {DEFAULT_TENANT: 0,
                                            b"a": 2, b"b": 1}
        assert server.item_count() == 3

    def test_cas_add_replace_incr_respect_tenancy(self):
        server = make()
        assert server.add(b"a:k", b"1")
        assert not server.add(b"a:k", b"2")
        assert server.add(b"b:k", b"9")
        assert server.replace(b"a:k", b"3")
        token = server.gets(b"a:k")[1]
        assert server.cas(b"a:k", b"4", token)
        assert server.incr(b"a:k", 1) == 5
        assert server.get(b"b:k") == b"9"

    def test_flush_all_drops_every_namespace(self):
        server = make()
        server.set_many([(b"a:1", b"x"), (b"b:1", b"y"),
                         (b"plain", b"z")])
        server.flush_all()
        assert server.item_count() == 0
        assert set(server.vsids()) == {DEFAULT_TENANT}
        # a get re-creates the namespace (create-on-use), empty
        assert server.get(b"a:1") is None
        assert server.items_by_tenant()[b"a"] == 0

    def test_per_tenant_stats(self):
        server = make()
        server.set(b"a:k", b"v")
        server.get(b"a:k")
        server.get(b"a:nope")
        server.get(b"b:k")
        server.delete(b"a:k")
        stats = server.tenant_stats
        assert stats[b"a"].sets == 1
        assert stats[b"a"].gets == 2
        assert stats[b"a"].get_hits == 1
        assert stats[b"a"].deletes == 1
        assert stats[b"b"].gets == 1
        assert stats[b"b"].get_hits == 0

    def test_extra_stats_reports_namespaces(self):
        server = make()
        server.set(b"a:1", b"x")
        extra = server.extra_stats()
        assert extra["tenants"] == 2  # default + a
        assert extra["tenant_a_items"] == 1


class TestTenantAdapters:
    def test_registry_counters_sum_across_shards(self):
        machine = Machine()
        shards = [TenantMemcached(machine), TenantMemcached(machine)]
        registry = MetricsRegistry()
        adapters.register_tenants(registry, shards)
        shards[0].set(b"a:1", b"x")
        shards[1].set(b"a:2", b"y")
        shards[1].set(b"b:1", b"z")
        shards[0].get(b"a:1")
        sets = registry.get("repro_tenant_sets_total").snapshot_value()
        items = registry.get("repro_tenant_items").snapshot_value()
        assert sets["a"] == 2
        assert sets["b"] == 1
        assert items["a"] == 2
        assert registry.get("repro_tenant_gets_total") \
            .snapshot_value()["a"] == 1
        assert registry.get("repro_tenant_namespaces") \
            .snapshot_value() == 3  # default + a + b


class TestEvictionAdapter:
    def test_legacy_snapshot_is_byte_compatible(self):
        machine = Machine()
        server = ManagedMemcached(machine, quota_bytes=512)
        registry = MetricsRegistry()
        adapters.register_eviction(registry, server.eviction)
        for i in range(12):
            server.set(b"key-%d" % i, b"x" * 64, exptime=1)
        server.tick(100)
        server.get(b"key-0")          # lazy-expires
        assert registry.get("repro_eviction_expired_total") \
            .snapshot_value()["0"] == server.eviction.expired
        assert adapters.legacy_eviction_snapshot(registry) \
            == dataclasses.asdict(server.eviction)

    def test_multi_shard_labels(self):
        machine = Machine()
        shards = [ManagedMemcached(machine, quota_bytes=256)
                  for _ in range(2)]
        registry = MetricsRegistry()
        adapters.register_eviction(registry,
                                   [s.eviction for s in shards])
        for i in range(8):
            shards[1].set(b"key-%d" % i, b"y" * 64)
        snapshot = registry.get("repro_eviction_evicted_total") \
            .snapshot_value()
        assert set(snapshot) == {"0", "1"}
        assert snapshot["1"] == shards[1].eviction.evicted > 0
        assert adapters.legacy_eviction_snapshot(registry, shard=1) \
            == dataclasses.asdict(shards[1].eviction)
