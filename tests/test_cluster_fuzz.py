"""Cluster fuzz harness: seeded leader-kill episodes.

One real episode runs end to end (kill mid-script, repair, readback,
audits); the rest pins the determinism contract — script, victim and
kill point are pure functions of the seed, so a failure's printed seed
replays the identical episode.
"""

from repro.cluster.fuzz import (
    ClusterEpisodeConfig,
    _build_script,
    episode_seed,
    kill_plan,
    run_episode,
    run_fuzz,
    script_digest,
)


class TestDeterminism:
    def test_script_and_kill_plan_are_pure_in_the_seed(self):
        cfg = ClusterEpisodeConfig()
        for seed in (0, 1, 12345):
            a, b = _build_script(seed, cfg), _build_script(seed, cfg)
            assert a == b
            assert script_digest(a) == script_digest(b)
            assert kill_plan(seed, cfg) == kill_plan(seed, cfg)
        assert _build_script(0, cfg) != _build_script(1, cfg)

    def test_kill_lands_in_the_middle_half(self):
        cfg = ClusterEpisodeConfig(ops=80)
        for seed in range(50):
            victim, kill_at = kill_plan(seed, cfg)
            assert victim in ("lead-0", "lead-1")
            assert cfg.ops // 4 <= kill_at < cfg.ops // 4 + cfg.ops // 2

    def test_episode_zero_replays_the_run_seed(self):
        assert episode_seed(7, 0) == 7
        assert episode_seed(7, 1) != 7
        assert episode_seed(7, 1) == episode_seed(7, 1)


class TestEpisodes:
    def test_one_episode_survives_a_leader_kill(self):
        cfg = ClusterEpisodeConfig(ops=40, key_space=8)
        result = run_episode(3, cfg)
        assert result.ok, "\n".join(result.trace + result.failures)
        assert any(line.startswith("repaired=yes")
                   for line in result.trace)
        assert result.metrics["cluster"]["promotions"] == 1
        assert "result=ok" in result.trace[-1]

    def test_report_render_names_the_reproducing_seed(self):
        cfg = ClusterEpisodeConfig(ops=30, key_space=6)
        report = run_fuzz(episodes=1, seed=5, cfg=cfg)
        text = report.render(verbose=True)
        assert report.ok, text
        assert "episodes=1 ok=1 failed=0" in text
        assert "seed=5" in text
