"""The topology manager: detect → propose → verify → commit, and the
repair edge cases.

Covers the full self-healing loop against a live fleet (leader killed
under a running manager) plus the deterministic corners: lag ties break
by node id, a promotion forced mid-sync still gates its commit on
fingerprint convergence, a stale-epoch client rides MOVED redirects to
the new owner, and a fleet with nobody left to promote fails the repair
without wedging.
"""

import asyncio

from repro.cluster import (
    Cluster,
    ClusterClient,
    ClusterConfig,
    TopologyManager,
)

CRLF = b"\r\n"


async def fill(client, count, salt=b""):
    oracle = {}
    for i in range(count):
        key, value = b"%sk%02d" % (salt, i), b"v%02d" % (i % 5)
        line = await client.set(key, value)
        assert line.strip() == b"STORED", line
        oracle[key] = value
    return oracle


async def wait_epoch(cluster, above, timeout=20.0):
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if cluster.metrics.epoch > above:
            return True
        await asyncio.sleep(0.02)
    return False


class TestRepairLoop:
    def test_kill_detect_promote_verify_commit(self):
        async def go():
            cluster = Cluster(ClusterConfig(
                leaders=2, followers=2, shards=2))
            manager = TopologyManager(cluster, probe_interval=0.05,
                                      failure_threshold=2)
            client = ClusterClient(max_retries=100, retry_delay=0.02)
            async with cluster:
                client.topology = cluster.topology
                oracle = await fill(client, 40)
                for leader_id in cluster.topology.leader_ids():
                    assert await cluster.wait_converged(leader_id)
                await manager.start()
                epoch = cluster.topology.epoch
                await cluster.kill("lead-0")
                # the client keeps writing straight through the repair
                oracle.update(await fill(client, 20, salt=b"post-"))
                assert await wait_epoch(cluster, epoch), \
                    "manager never committed a repair"
                assert cluster.metrics.promotions == 1
                assert cluster.metrics.reparents == 1
                assert cluster.metrics.last_recovery_seconds > 0
                # the dead leader is out of the directory; its slot is
                # owned by one of its ex-followers
                topology = cluster.topology
                assert "lead-0" not in topology.nodes
                promoted = [lid for lid in topology.leader_ids()
                            if lid.startswith("lead-0-")]
                assert len(promoted) == 1
                # the repair's verify gated its commit; the post-kill
                # writes that rode through keep replicating after it
                assert await cluster.wait_converged(promoted[0])
                assert await cluster.wait_converged("lead-1")
                # every acknowledged write survived the repair
                await client.refresh()
                assert client.topology.epoch == topology.epoch
                for key, value in oracle.items():
                    assert await client.get(key) == value
                await client.close()
                await manager.stop()
                assert any("committed epoch" in event
                           for event in manager.events)

        asyncio.run(go())

    def test_promotion_mid_sync_still_gates_on_convergence(self):
        """Kill the leader while its fleet is still applying deltas:
        the repair may only commit after fingerprints agree."""
        async def go():
            cluster = Cluster(ClusterConfig(
                leaders=1, followers=2, shards=2))
            manager = TopologyManager(cluster, probe_interval=0.05,
                                      failure_threshold=2,
                                      verify_timeout=10.0)
            client = ClusterClient(max_retries=100, retry_delay=0.02)
            async with cluster:
                client.topology = cluster.topology
                oracle = await fill(client, 60)
                # no convergence wait: the kill lands mid-replication
                epoch = cluster.topology.epoch
                await cluster.kill("lead-0")
                await manager.start()
                assert await wait_epoch(cluster, epoch, timeout=30.0)
                promoted = cluster.topology.leader_ids()[0]
                assert promoted.startswith("lead-0-")
                assert cluster.fleet_converged(promoted)
                await client.refresh()
                for key, value in oracle.items():
                    assert await client.get(key) == value
                await client.close()
                await manager.stop()

        asyncio.run(go())

    def test_lag_tie_breaks_by_node_id(self):
        async def go():
            cluster = Cluster(ClusterConfig(
                leaders=1, followers=3, shards=2))
            manager = TopologyManager(cluster)
            client = ClusterClient(max_retries=40, retry_delay=0.02)
            async with cluster:
                client.topology = cluster.topology
                await fill(client, 20)
                # fully converged fleet: every follower's progress ties
                assert await cluster.wait_converged("lead-0")
                await cluster.kill("lead-0")
                progress = {fid: cluster.followers[fid].progress()
                            for fid in cluster.followers}
                assert len(set(progress.values())) == 1
                assert manager.propose("lead-0") == "lead-0-f0"
                await client.close()

        asyncio.run(go())

    def test_stale_epoch_client_rides_moved_to_the_owner(self):
        """A client holding a wrong slot binding is corrected in-band:
        the mis-addressed leader answers MOVED, the client refreshes
        from the named node and the retried write lands."""
        async def go():
            async with Cluster(ClusterConfig(
                    leaders=2, followers=1, shards=2)) as cluster:
                topology = cluster.topology
                # doctor a stale view: swap the two slot bindings
                doc = topology.to_doc()
                (s0, o0), (s1, o1) = sorted(doc["slot_owner"].items())
                doc["slot_owner"] = {s0: o1, s1: o0}
                doc["epoch"] = 0
                stale = type(topology).from_doc(doc)
                client = ClusterClient(topology=stale,
                                       max_retries=10, retry_delay=0.01)
                oracle = await fill(client, 20)
                assert client.moved_retries > 0
                assert client.topology.epoch == topology.epoch
                assert cluster.sample_moved() >= client.moved_retries
                for key, value in oracle.items():
                    assert await client.get(key) == value
                await client.close()

        asyncio.run(go())

    def test_repair_without_survivors_fails_cleanly(self):
        async def go():
            cluster = Cluster(ClusterConfig(
                leaders=2, followers=0, shards=1))
            manager = TopologyManager(cluster)
            async with cluster:
                epoch = cluster.topology.epoch
                await cluster.kill("lead-0")
                assert not await manager.repair("lead-0")
                assert cluster.metrics.repairs_failed == 1
                assert cluster.metrics.promotions == 0
                assert cluster.topology.epoch == epoch

        asyncio.run(go())

    def test_probe_counts_and_healthy_fleet_is_left_alone(self):
        async def go():
            cluster = Cluster(ClusterConfig(
                leaders=2, followers=1, shards=1))
            manager = TopologyManager(cluster, failure_threshold=2)
            async with cluster:
                for _ in range(3):
                    await manager.tick()
                assert cluster.metrics.probes == 6
                assert cluster.metrics.probe_failures == 0
                assert cluster.metrics.promotions == 0
                assert cluster.topology.epoch == 1

        asyncio.run(go())
