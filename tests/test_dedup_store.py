"""Unit tests for the deduplicating content-addressable store."""

import pytest

from repro.errors import BadPlidError, MemoryExhaustedError
from repro.memory.dedup_store import DedupStore
from repro.memory.line import PlidRef, ZERO_PLID, make_leaf
from repro.params import MemoryConfig


def small_store(line_bytes=16, num_buckets=256, data_ways=4, overflow=1024):
    return DedupStore(MemoryConfig(line_bytes=line_bytes, num_buckets=num_buckets,
                                   data_ways=data_ways, overflow_lines=overflow))


class TestLookup:
    def test_dedup_same_content_same_plid(self):
        store = small_store()
        p1, created1 = store.lookup((1, 2))
        p2, created2 = store.lookup((1, 2))
        assert p1 == p2
        assert created1 and not created2

    def test_distinct_content_distinct_plid(self):
        store = small_store()
        p1, _ = store.lookup((1, 2))
        p2, _ = store.lookup((2, 1))
        assert p1 != p2

    def test_zero_line_is_zero_plid(self):
        store = small_store()
        plid, created = store.lookup((0, 0))
        assert plid == ZERO_PLID and not created
        assert store.footprint_lines() == 0

    def test_read_returns_content(self):
        store = small_store()
        plid, _ = store.lookup((7, 8))
        assert store.read_dram(plid) == (7, 8)

    def test_read_zero_plid(self):
        store = small_store()
        assert store.read_dram(ZERO_PLID) == (0, 0)

    def test_read_unallocated_raises(self):
        store = small_store()
        with pytest.raises(BadPlidError):
            store.read_dram(999999)

    def test_plid_encodes_way_and_bucket(self):
        store = small_store()
        plid, _ = store.lookup((3, 4))
        assert plid % store.config.num_buckets == store.bucket_of(plid)
        assert 1 <= plid // store.config.num_buckets <= store.config.data_ways


class TestRefcounting:
    def test_create_sets_rc_one(self):
        store = small_store()
        plid, _ = store.lookup((1, 1))
        assert store.refcount(plid) == 1

    def test_matching_lookup_increments(self):
        store = small_store()
        plid, _ = store.lookup((1, 1))
        store.lookup((1, 1))
        assert store.refcount(plid) == 2

    def test_decref_to_zero_deallocates(self):
        store = small_store()
        plid, _ = store.lookup((1, 1))
        store.decref(plid)
        assert not store.is_allocated(plid)
        assert store.footprint_lines() == 0

    def test_way_reusable_after_dealloc(self):
        store = small_store()
        plid, _ = store.lookup((1, 1))
        store.decref(plid)
        plid2, created = store.lookup((9, 9))
        assert created
        assert store.is_allocated(plid2)

    def test_same_content_after_dealloc_gets_fresh_line(self):
        store = small_store()
        plid, _ = store.lookup((1, 1))
        store.decref(plid)
        plid2, created = store.lookup((1, 1))
        assert created

    def test_allocation_increfs_children(self):
        store = small_store()
        child, _ = store.lookup((5, 5))
        parent, _ = store.lookup((PlidRef(child), 0))
        assert store.refcount(child) == 2  # caller + parent line

    def test_recursive_dealloc(self):
        store = small_store()
        child, _ = store.lookup((5, 5))
        parent, _ = store.lookup((PlidRef(child), 0))
        store.decref(child)  # drop caller ref; parent still holds one
        assert store.is_allocated(child)
        store.decref(parent)
        assert not store.is_allocated(parent)
        assert not store.is_allocated(child)
        assert store.footprint_lines() == 0

    def test_deep_cascade_is_iterative(self):
        # A long chain must deallocate without hitting recursion limits.
        store = small_store(num_buckets=1024, data_ways=8, overflow=8192)
        plid, _ = store.lookup((1, 1))
        for i in range(3000):
            parent, _ = store.lookup((PlidRef(plid), i))
            store.decref(plid)  # hand the child reference to the parent
            plid = parent
        store.decref(plid)
        assert store.footprint_lines() == 0

    def test_underflow_raises(self):
        store = small_store()
        plid, _ = store.lookup((1, 1))
        store.decref(plid)
        with pytest.raises(BadPlidError):
            store.decref(plid)

    def test_zero_plid_refs_are_noops(self):
        store = small_store()
        store.incref(ZERO_PLID)
        store.decref(ZERO_PLID)
        assert store.refcount(ZERO_PLID) == 0


class TestBucketsAndOverflow:
    def test_overflow_when_bucket_full(self):
        store = small_store(num_buckets=1, data_ways=2)
        plids = [store.lookup((i, 1))[0] for i in range(1, 6)]
        assert len(set(plids)) == 5
        assert store.counters.overflow_allocations >= 3
        for plid, i in zip(plids, range(1, 6)):
            assert store.read_dram(plid) == (i, 1)

    def test_overflow_lookup_finds_existing(self):
        store = small_store(num_buckets=1, data_ways=1)
        p1, _ = store.lookup((1, 1))
        p2, _ = store.lookup((2, 2))  # lands in overflow
        p2b, created = store.lookup((2, 2))
        assert p2 == p2b and not created

    def test_overflow_exhaustion(self):
        store = small_store(num_buckets=1, data_ways=1, overflow=4)
        store.lookup((1, 0))
        for i in range(2, 6):
            store.lookup((i, 0))
        with pytest.raises(MemoryExhaustedError):
            store.lookup((99, 0))

    def test_overflow_slot_reused_after_dealloc(self):
        store = small_store(num_buckets=1, data_ways=1, overflow=4)
        store.lookup((1, 0))
        p2, _ = store.lookup((2, 0))
        store.decref(p2)
        p3, created = store.lookup((3, 0))
        assert created and store.is_allocated(p3)


class TestDramAccounting:
    def test_lookup_charges_signature_and_alloc(self):
        store = small_store()
        store.lookup((1, 2))
        # signature read + signature write at minimum
        assert store.stats.lookups >= 2
        assert store.stats.reads == 0

    def test_hit_charges_data_read(self):
        store = small_store()
        store.lookup((1, 2))
        before = store.stats.lookups
        store.lookup((1, 2))
        after = store.stats.lookups
        assert after - before >= 2  # signature read + data line read

    def test_deferred_write_on_writeback(self):
        store = small_store()
        plid, _ = store.lookup((1, 2))
        assert store.stats.writes == 0
        store.writeback(plid)
        assert store.stats.writes == 1
        store.writeback(plid)  # idempotent
        assert store.stats.writes == 1

    def test_dealloc_before_writeback_never_writes(self):
        store = small_store()
        plid, _ = store.lookup((1, 2))
        store.decref(plid)
        store.writeback(plid)
        assert store.stats.writes == 0
        assert store.stats.dealloc >= 1

    def test_rc_cache_spills_charge_refcount_category(self):
        store = DedupStore(
            MemoryConfig(line_bytes=16, num_buckets=256, data_ways=4,
                         overflow_lines=1024),
            rc_cache_entries=2,
        )
        plids = [store.lookup((i, 0))[0] for i in range(1, 8)]
        for plid in plids:
            store.incref(plid)
        assert store.stats.refcount > 0


class TestInvariantChecker:
    def test_check_refcounts_passes_for_dag(self):
        store = small_store()
        a, _ = store.lookup((1, 0))
        b, _ = store.lookup((PlidRef(a), 0))
        store.decref(a)
        store.check_refcounts()

    def test_check_refcounts_detects_drift(self):
        store = small_store()
        a, _ = store.lookup((1, 0))
        store.lookup((PlidRef(a), 0))
        store._refcounts[a] = 0  # corrupt: below the parent's reference
        with pytest.raises(AssertionError):
            store.check_refcounts()
