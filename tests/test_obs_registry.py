"""Metrics registry: instruments, exposition formats, edge cases."""

import json
import math
from dataclasses import fields as dataclass_fields

import pytest

from repro.analysis.reporting import latency_summary, percentile
from repro.memory.stats import CATEGORIES, DramStats
from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    parse_exposition,
    sample,
)


# ----------------------------------------------------------------------
# instruments


def test_counter_inc_and_value():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "requests")
    assert c.value() == 0
    c.inc()
    c.inc(5)
    assert c.value() == 6


def test_labeled_counter_tracks_series_independently():
    reg = MetricsRegistry()
    c = reg.counter("ops", labels=("command",))
    c.inc(1, "get")
    c.inc(2, "set")
    c.inc(1, "get")
    assert c.value("get") == 2
    assert c.value("set") == 2
    assert c.value("delete") == 0


def test_label_arity_enforced():
    reg = MetricsRegistry()
    c = reg.counter("ops", labels=("command",))
    with pytest.raises(ValueError):
        c.inc(1)
    with pytest.raises(ValueError):
        c.inc(1, "get", "extra")


def test_gauge_goes_up_and_down():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(7)
    assert g.value() == 7
    g.set(3)
    assert g.value() == 3


def test_callback_backed_instruments_read_live_values():
    reg = MetricsRegistry()
    state = {"n": 0}
    reg.counter("live_total", fn=lambda: state["n"])
    assert reg.get("live_total").snapshot_value() == 0
    state["n"] = 42
    assert reg.get("live_total").snapshot_value() == 42


def test_duplicate_registration_raises():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(ValueError):
        reg.gauge("x_total")


def test_bad_metric_and_label_names_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("bad name")
    with pytest.raises(ValueError):
        reg.counter("ok_name", labels=("bad-label",))


# ----------------------------------------------------------------------
# histograms


def test_histogram_requires_strictly_increasing_buckets():
    with pytest.raises(ValueError):
        Histogram("h", buckets=())
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        Histogram("h", buckets=(2.0, 1.0))


def test_histogram_boundary_value_lands_in_its_bucket():
    """Prometheus ``le`` semantics: value == bound is *in* the bucket."""
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(1.0, 5.0, 10.0))
    h.observe(1.0)   # exactly on the first bound -> le=1.0 bucket
    h.observe(5.0)   # exactly on the second bound -> le=5.0 bucket
    h.observe(10.0)  # exactly on the last finite bound
    h.observe(10.000001)  # just over -> +Inf only
    ((_, cumulative, total, count),) = h.series()
    # cumulative counts: le=1 has 1, le=5 has 2, le=10 has 3, +Inf all 4
    assert cumulative == [1, 2, 3, 4]
    assert count == 4
    assert total == pytest.approx(26.000001)


def test_histogram_exposition_is_cumulative_and_parseable():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "latency", buckets=(0.5, 2.0))
    for v in (0.1, 0.5, 1.0, 99.0):
        h.observe(v)
    parsed = parse_exposition(reg.exposition())
    assert sample(parsed, "lat_bucket", le="0.5") == 2
    assert sample(parsed, "lat_bucket", le="2.0") == 3
    assert sample(parsed, "lat_bucket", le="+Inf") == 4
    assert sample(parsed, "lat_count") == 4
    assert sample(parsed, "lat_sum") == pytest.approx(100.6)


def test_empty_histogram_snapshot_shape():
    reg = MetricsRegistry()
    reg.histogram("lat", buckets=(1.0,))
    assert reg.get("lat").snapshot_value() == \
        {"count": 0, "sum": 0.0, "buckets": {}}


# ----------------------------------------------------------------------
# exposition / snapshot


def test_exposition_has_help_and_type_lines():
    reg = MetricsRegistry()
    reg.counter("a_total", "things counted")
    reg.gauge("b", "a level")
    text = reg.exposition()
    assert "# HELP a_total things counted" in text
    assert "# TYPE a_total counter" in text
    assert "# TYPE b gauge" in text
    assert text.endswith("\n")


def test_exposition_escapes_label_values():
    reg = MetricsRegistry()
    c = reg.counter("q", labels=("key",))
    c.inc(1, 'she said "hi"\n')
    parsed = parse_exposition(reg.exposition())
    assert sample(parsed, "q", key='she said "hi"\n') == 1


def test_exposition_integer_values_have_no_decimal_point():
    reg = MetricsRegistry()
    reg.counter("n_total", fn=lambda: 3)
    line = [l for l in reg.exposition().splitlines()
            if l.startswith("n_total ")][0]
    assert line == "n_total 3"


def test_snapshot_is_json_safe_and_sorted():
    reg = MetricsRegistry()
    reg.counter("b_total").inc(2)
    reg.counter("a_total").inc(1)
    g = reg.gauge("lag", labels=("stream",))
    g.set(4, "0")
    snap = json.loads(reg.snapshot_json())
    assert list(snap) == sorted(snap)
    assert snap["a_total"] == 1
    assert snap["lag"] == {"0": 4}


def test_parse_exposition_handles_inf():
    parsed = parse_exposition("up_bound +Inf\ndown_bound -Inf\n")
    assert parsed[("up_bound", ())] == math.inf
    assert parsed[("down_bound", ())] == -math.inf


# ----------------------------------------------------------------------
# reservoir edge cases (shared percentile definitions)


def test_percentile_empty_population_is_zero():
    assert percentile([], 0.5) == 0.0
    assert percentile([], 0.99) == 0.0


def test_latency_summary_empty_reservoir():
    assert latency_summary([]) == \
        {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}


def test_percentile_rejects_out_of_range_fraction():
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


# ----------------------------------------------------------------------
# DramStats drift guards: a category added to the dataclass without
# updating CATEGORIES (or total()) must fail here, not silently skew
# Figure 6.


def test_dram_stats_fields_match_categories():
    assert tuple(f.name for f in dataclass_fields(DramStats)) == CATEGORIES


def test_dram_stats_total_covers_every_category():
    stats = DramStats()
    for i, name in enumerate(CATEGORIES, start=1):
        setattr(stats, name, i)
    assert stats.total() == sum(range(1, len(CATEGORIES) + 1))
    assert stats.total() == sum(stats.as_dict().values())
