"""Tests for the section 3.1 error-detection capability and the
compaction configuration flags."""

import pytest

from repro import Machine, MachineConfig, MemoryConfig
from repro.errors import IntegrityError
from repro.memory.dedup_store import DedupStore
from repro.params import CacheGeometry


def small_store(**kwargs):
    return DedupStore(MemoryConfig(line_bytes=16, num_buckets=256,
                                   data_ways=4, overflow_lines=1024),
                      **kwargs)


class TestIntegrity:
    def test_clean_lines_verify(self):
        store = small_store()
        plid, _ = store.lookup((1, 2))
        store.verify_line(plid)  # no raise

    def test_corruption_detected(self):
        store = small_store()
        plid, _ = store.lookup((1, 2))
        store.corrupt_line_for_test(plid, (9, 9))
        with pytest.raises(IntegrityError):
            store.verify_line(plid)

    def test_verify_on_read(self):
        store = small_store(verify_reads=True)
        plid, _ = store.lookup((1, 2))
        assert store.read_dram(plid) == (1, 2)
        store.corrupt_line_for_test(plid, (9, 9))
        with pytest.raises(IntegrityError):
            store.read_dram(plid)

    def test_zero_plid_always_clean(self):
        store = small_store(verify_reads=True)
        store.verify_line(0)
        assert store.read_dram(0) == (0, 0)

    def test_overflow_lines_not_constrained(self):
        store = DedupStore(MemoryConfig(line_bytes=16, num_buckets=1,
                                        data_ways=1, overflow_lines=64))
        store.lookup((1, 1))
        plid, _ = store.lookup((2, 2))  # overflow resident
        store.verify_line(plid)  # placed by capacity, not content


def machine_with(path=True, data=True):
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=16, num_buckets=1 << 12,
                            data_ways=12, overflow_lines=1 << 16),
        cache=CacheGeometry(size_bytes=64 * 1024, ways=8, line_bytes=16),
        path_compaction=path, data_compaction=data,
    ))


class TestCompactionFlags:
    @pytest.mark.parametrize("path", [True, False])
    @pytest.mark.parametrize("data", [True, False])
    def test_content_correct_in_all_modes(self, path, data):
        machine = machine_with(path, data)
        words = [0] * 200
        words[7] = 3
        words[150] = 1 << 50
        vsid = machine.create_segment(words)
        assert machine.read_segment(vsid) == words
        machine.write_word(vsid, 8, 4)
        assert machine.read_word(vsid, 8) == 4
        machine.drop_segment(vsid)
        assert machine.footprint_lines() == 0

    def test_path_compaction_saves_lines(self):
        on, off = machine_with(path=True), machine_with(path=False)
        for m in (on, off):
            v = m.create_segment([0] * 4096)
            m.write_word(v, 4000, 1 << 50)
        assert on.footprint_lines() < off.footprint_lines()

    def test_data_compaction_saves_lines(self):
        on, off = machine_with(data=True), machine_with(data=False)
        for m in (on, off):
            m.create_segment([1, 2, 3, 4, 5, 6, 7, 8])
        assert on.footprint_lines() < off.footprint_lines()

    def test_canonical_within_one_mode(self):
        # equal content still yields equal roots with compaction off
        machine = machine_with(path=False, data=False)
        a = machine.create_segment([0, 5, 0, 9])
        b = machine.create_segment([0] * 4)
        machine.write_word(b, 1, 5)
        machine.write_word(b, 3, 9)
        assert machine.segments_equal(a, b)


class TestVerifyReadsConfig:
    def test_machine_level_flag(self):
        from repro import Machine, MachineConfig, MemoryConfig
        from repro.params import CacheGeometry
        machine = Machine(MachineConfig(
            memory=MemoryConfig(line_bytes=16, num_buckets=1 << 10,
                                data_ways=12, overflow_lines=1 << 14,
                                verify_reads=True),
            cache=CacheGeometry(size_bytes=16 * 1024, ways=4,
                                line_bytes=16)))
        assert machine.mem.store.verify_reads
        vsid = machine.create_segment([1 << 40, 2 << 40])
        assert machine.read_segment(vsid) == [1 << 40, 2 << 40]
        # inject a fault; the next uncached read detects it
        plid = machine.mem.store.live_plids()[0]
        machine.mem.store.corrupt_line_for_test(plid, (9 << 40, 9))
        with pytest.raises(IntegrityError):
            machine.mem.store.read_dram(plid)
