"""End-to-end cluster tier: a whole fleet in one event loop.

Boots real leaders and followers on ephemeral localhost ports, drives
writes through the cluster-aware client, and checks the properties the
tier promises: owner routing with MOVED redirects for stale views, the
in-band ``cluster topology`` verb on every node, fleet-wide fingerprint
convergence, and the registry instruments the obs adapter wires up.
"""

import asyncio
import json

from repro.cluster import (
    Cluster,
    ClusterClient,
    ClusterConfig,
    ClusterTopology,
)

CRLF = b"\r\n"


async def raw_request(host, port, payload, lines=1):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        out = [await reader.readline() for _ in range(lines)]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return out


class TestClusterServing:
    def test_owner_routed_writes_and_fleet_reads(self):
        async def go():
            async with Cluster(ClusterConfig(
                    leaders=2, followers=2, shards=2)) as cluster:
                client = ClusterClient(topology=cluster.topology)
                oracle = {}
                for i in range(40):
                    key, value = b"k%02d" % i, b"v%02d" % (i % 7)
                    line = await client.set(key, value)
                    assert line.strip() == b"STORED", line
                    oracle[key] = value
                # both keyspaces got traffic
                owners = {cluster.topology.owner_of(k) for k in oracle}
                assert owners == {"lead-0", "lead-1"}
                for leader_id in cluster.topology.leader_ids():
                    assert await cluster.wait_converged(leader_id), \
                        "fleet of %s never converged" % leader_id
                # reads spread over followers return the written values
                for key, value in oracle.items():
                    assert await client.get(key) == value
                await client.close()
                # no write was misrouted: the live client view matched
                assert cluster.sample_moved() == 0
                lags = cluster.sample_lags()
                assert set(lags) == set(cluster.followers)

        asyncio.run(go())

    def test_topology_verb_on_every_node(self):
        async def go():
            async with Cluster(ClusterConfig(
                    leaders=2, followers=1, shards=2)) as cluster:
                for host, port in cluster.endpoints():
                    line, tail = await raw_request(
                        host, port, b"cluster topology" + CRLF, lines=2)
                    assert tail == b"END" + CRLF
                    doc = json.loads(line.decode())
                    topology = ClusterTopology.from_doc(doc)
                    assert topology.epoch == cluster.topology.epoch
                    assert set(topology.nodes) == \
                        set(cluster.topology.nodes)

        asyncio.run(go())

    def test_stale_view_write_gets_moved(self):
        """A write sent to the wrong live leader is refused with a
        MOVED naming the owner — never silently applied."""
        async def go():
            async with Cluster(ClusterConfig(
                    leaders=2, followers=1, shards=2)) as cluster:
                topology = cluster.topology
                key = next(b"k%02d" % i for i in range(100)
                           if topology.owner_of(b"k%02d" % i) == "lead-1")
                wrong = cluster.leaders["lead-0"]
                (line,) = await raw_request(
                    wrong.host, wrong.port,
                    b"set %s 0 0 1\r\nx\r\n" % key)
                assert line.startswith(b"MOVED "), line
                _, epoch, node_id, addr = line.split()
                assert int(epoch) == topology.epoch
                assert node_id == b"lead-1"
                owner = topology.node("lead-1")
                assert addr.decode() == "%s:%d" % (owner.host, owner.port)
                assert cluster.sample_moved() == 1
                # reads are epoch-free: any node serves its snapshot
                (got,) = await raw_request(wrong.host, wrong.port,
                                           b"get %s\r\n" % key)
                assert got == b"END" + CRLF

        asyncio.run(go())

    def test_registry_instruments(self):
        async def go():
            async with Cluster(ClusterConfig(
                    leaders=1, followers=1, shards=1)) as cluster:
                registry = cluster.registry
                assert "repro_cluster_epoch" in registry
                assert "repro_cluster_promotions_total" in registry
                assert "repro_cluster_node_lag" in registry
                assert registry.get(
                    "repro_cluster_epoch").snapshot_value() == 1
                cluster.sample_lags()
                lag = registry.get(
                    "repro_cluster_node_lag").snapshot_value()
                assert set(lag) == {"lead-0-f0"}
                exposition = registry.exposition()
                assert "repro_cluster_epoch 1" in exposition

        asyncio.run(go())
