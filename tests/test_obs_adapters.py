"""Adapters: the registry must mirror the legacy silos exactly.

Each ``legacy_*_snapshot`` helper rebuilds a silo's own snapshot dict
purely from registry reads; equality here proves the registry is a
lossless view — and a silo field added without its registration breaks
these tests instead of silently vanishing from the exposition.
"""

from dataclasses import fields as dataclass_fields

from repro.memory.stats import DramStats
from repro.net.metrics import ServerMetrics
from repro.obs import adapters
from repro.obs.registry import MetricsRegistry, parse_exposition, sample
from repro.replication.metrics import ReplicationMetrics


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, start: float = 100.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _busy_server_metrics(clock: FakeClock) -> ServerMetrics:
    metrics = ServerMetrics(clock=clock)
    clock.advance(2.0)
    metrics.observe_read(120, 3)
    metrics.observe_request(b"set", 0.004, 8)
    metrics.observe_request(b"get", 0.002, 40)
    metrics.observe_request(b"get", 0.001, 5)
    metrics.observe_queue_depth(5)
    metrics.observe_commit(vsid=7)
    metrics.observe_commit(vsid=7)
    metrics.observe_commit(vsid=9)
    metrics.connections_opened = 2
    metrics.commit_batches = 4
    metrics.merge_commits = 1
    return metrics


def test_server_snapshot_round_trip():
    clock = FakeClock()
    metrics = _busy_server_metrics(clock)
    registry = MetricsRegistry()
    adapters.register_server_metrics(registry, metrics)
    assert adapters.legacy_server_snapshot(registry) == metrics.snapshot()


def test_server_round_trip_tracks_live_updates():
    clock = FakeClock()
    metrics = _busy_server_metrics(clock)
    registry = MetricsRegistry()
    adapters.register_server_metrics(registry, metrics)
    # mutate after registration: the registry reads live state
    clock.advance(3.5)
    metrics.observe_request(b"delete", 0.009, 9)
    assert adapters.legacy_server_snapshot(registry) == metrics.snapshot()


def test_every_server_scalar_field_is_registered():
    covered = set(adapters.SERVER_COUNTER_FIELDS) \
        | set(adapters.SERVER_GAUGE_FIELDS)
    scalar = {f.name for f in dataclass_fields(ServerMetrics)
              if f.type == "int" and not f.name.startswith("_")}
    scalar -= {"reservoir_size"}  # config, not a metric
    assert scalar == covered


def test_replication_snapshot_round_trip():
    metrics = ReplicationMetrics()
    metrics.bytes_sent = 512
    metrics.lines_shipped = 20
    metrics.lines_deduped_on_arrival = 6
    metrics.root_advances = 3
    metrics.lag_by_stream = {0: 2, 1: 0}
    registry = MetricsRegistry()
    adapters.register_replication_metrics(registry, metrics)
    assert adapters.legacy_replication_snapshot(registry) \
        == metrics.snapshot()


def test_every_replication_scalar_field_is_registered():
    scalar = {f.name for f in dataclass_fields(ReplicationMetrics)
              if f.type == "int"}
    assert scalar == set(adapters.REPLICATION_COUNTER_FIELDS)


def test_dram_round_trip_and_exposition():
    dram = DramStats(reads=5, lookups=11, refcount=2)
    registry = MetricsRegistry()
    adapters.register_dram_stats(registry, dram)
    assert adapters.legacy_dram_dict(registry) == dram.as_dict()
    dram.writes += 4  # live view
    parsed = parse_exposition(registry.exposition())
    assert sample(parsed, adapters.DRAM_METRIC, category="writes") == 4
    assert sample(parsed, adapters.DRAM_METRIC, category="lookups") == 11


def test_exposition_carries_labeled_server_series():
    clock = FakeClock()
    metrics = _busy_server_metrics(clock)
    registry = MetricsRegistry()
    adapters.register_server_metrics(registry, metrics)
    parsed = parse_exposition(registry.exposition())
    assert sample(parsed, "repro_server_ops_by_command", command="get") == 2
    assert sample(parsed, "repro_server_commits_by_vsid", vsid="7") == 2
    latency = metrics.snapshot()["latency"]
    assert sample(parsed, "repro_server_latency_ms", quantile="p99_ms") \
        == latency["p99_ms"]


def _churned_epoch_store():
    from repro.memory.dedup_store import DedupStore
    from repro.params import MemoryConfig

    store = DedupStore(MemoryConfig(reclaim_kind="epoch"))
    plids = [store.lookup((i + 1, i + 2))[0] for i in range(12)]
    for plid in plids[:8]:
        store.decref(plid)
    store.lookup((1, 2))  # resurrect one deferred line
    store.reclaim_advance(4)
    return store


def test_reclaim_registration_mirrors_snapshot():
    store = _churned_epoch_store()
    registry = MetricsRegistry()
    adapters.register_reclaim(registry, store)
    parsed = parse_exposition(registry.exposition())
    snap = store.reclaim_snapshot()
    assert sample(parsed, "repro_reclaim_kind_info", kind="epoch") == 1
    assert sample(parsed, "repro_reclaim_pending_lines") \
        == snap["pending_lines"] == store.reclaimer.pending()
    assert sample(parsed, "repro_reclaim_epoch") == snap["epoch"]
    for reason in adapters.RECLAIM_DRAIN_REASONS:
        assert sample(parsed, "repro_reclaim_drained_total",
                      reason=reason) == snap["drained_" + reason]
    assert sample(parsed, "repro_reclaim_deferred_total") \
        == snap["deferred_total"] == 8
    assert sample(parsed, "repro_reclaim_free_slots") == snap["free_slots"]
    # the registry is a live view, not a copy
    store.reclaim_quiesce()
    parsed = parse_exposition(registry.exposition())
    assert sample(parsed, "repro_reclaim_pending_lines") == 0
    assert sample(parsed, "repro_reclaim_quiesces_total") == 1


def test_reclaim_schema_is_kind_independent():
    from repro.memory.dedup_store import DedupStore
    from repro.params import MemoryConfig

    expositions = {}
    for kind in ("immediate", "epoch"):
        registry = MetricsRegistry()
        adapters.register_reclaim(
            registry, DedupStore(MemoryConfig(reclaim_kind=kind)))
        parsed = parse_exposition(registry.exposition())
        expositions[kind] = parsed
        # stats-json consumers see every series under either kind
        assert sample(parsed, "repro_reclaim_kind_info", kind=kind) == 1
        assert sample(parsed, "repro_reclaim_pending_lines") == 0
        for reason in adapters.RECLAIM_DRAIN_REASONS:
            assert sample(parsed, "repro_reclaim_drained_total",
                          reason=reason) == 0
    # identical metric families (label *values* differ only on kind_info)
    assert {name for name, _ in expositions["immediate"]} \
        == {name for name, _ in expositions["epoch"]}


def _sampled_controller(adaptive=False):
    from repro.net.adaptive import (AdaptiveConfig, BatchSample,
                                    CommitController)

    controller = CommitController(
        2, "merge", adaptive=adaptive,
        config=AdaptiveConfig(window=1, dwell_epochs=0))
    controller.note_read(0)
    controller.note_read(0)
    controller.observe_batch(0, BatchSample(
        writes=10, sets=9, dup_sets=2, cas_retries=1, merge_commits=3,
        queue_depth=4, rtt_s=0.004))
    for _ in range(8):
        controller.note_read(1)  # shard 1 stays read-mostly -> merge
    controller.observe_batch(1, BatchSample(
        writes=2, sets=2, queue_depth=0, rtt_s=0.030))
    return controller


def test_adaptive_registration_exports_raw_inputs_when_disabled():
    # satellite claim: the controller samples under static modes too —
    # the policy inputs are scrapeable before adaptation is ever on
    controller = _sampled_controller(adaptive=False)
    registry = MetricsRegistry()
    adapters.register_adaptive(registry, controller)
    parsed = parse_exposition(registry.exposition())
    assert sample(parsed, "repro_adaptive_enabled") == 0
    assert sample(parsed, "repro_adaptive_mode_info",
                  shard="0", mode="merge") == 1
    assert sample(parsed, "repro_adaptive_queue_depth", shard="0") == 4
    assert sample(parsed, "repro_adaptive_writes_total", shard="0") == 10
    assert sample(parsed, "repro_adaptive_reads_total", shard="0") == 2
    assert sample(parsed, "repro_adaptive_dup_sets_total", shard="0") == 2
    assert sample(parsed, "repro_adaptive_cas_retries_total",
                  shard="0") == 1
    assert sample(parsed, "repro_adaptive_merge_commits_total",
                  shard="0") == 3
    # cumulative RTT histogram: 4ms lands in le=5.0, 30ms in le=50.0
    assert sample(parsed, "repro_adaptive_batch_rtt_ms_bucket",
                  shard="0", le="5.0") == 1
    assert sample(parsed, "repro_adaptive_batch_rtt_ms_bucket",
                  shard="1", le="25.0") == 0
    assert sample(parsed, "repro_adaptive_batch_rtt_ms_bucket",
                  shard="1", le="+Inf") == 1
    assert sample(parsed, "repro_adaptive_mode_switches_total",
                  shard="0") == 0


def test_adaptive_mode_series_move_once_enabled():
    controller = _sampled_controller(adaptive=True)  # window=1: retuned
    registry = MetricsRegistry()
    adapters.register_adaptive(registry, controller)
    parsed = parse_exposition(registry.exposition())
    assert sample(parsed, "repro_adaptive_enabled") == 1
    # shard 0's all-set window entered bulk and retuned both knobs
    assert sample(parsed, "repro_adaptive_mode_info",
                  shard="0", mode="bulk") == 1
    assert sample(parsed, "repro_adaptive_mode_switches_total",
                  shard="0") == 1
    assert sample(parsed, "repro_adaptive_batch_limit", shard="0") == 48
    assert sample(parsed, "repro_adaptive_batch_limit", shard="1") == 16
    assert sample(parsed, "repro_adaptive_epochs_total", shard="0") == 1


def test_router_registers_adaptive_series_for_every_commit_mode():
    from repro.net.router import ShardRouter

    for mode in ("merge", "adaptive"):
        router = ShardRouter(shard_count=2, commit_mode=mode)
        parsed = parse_exposition(router.registry.exposition())
        assert sample(parsed, "repro_adaptive_enabled") \
            == (1 if mode == "adaptive" else 0)
        assert sample(parsed, "repro_adaptive_mode_info",
                      shard="1", mode="merge") == 1
