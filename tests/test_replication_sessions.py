"""Leader session hygiene under follower churn.

Every follower connection hangs a per-session dealloc listener off the
leader machine's store; a leader that outlives hundreds of follower
connects/disconnects must not accumulate them. These tests churn
followers against one long-lived leader and assert the listener
population returns to its pre-connection baseline every time — the
regression guard for the per-session deregistration in
:meth:`ReplicationLeader._detach_session`.
"""

import asyncio

from repro.net.server import MemcachedServer
from repro.replication import ReplicationFollower, ReplicationLeader


async def wait_until(predicate, timeout=5.0):
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.01)
    return False


class LeaderStack:
    async def __aenter__(self):
        self.server = MemcachedServer(port=0, shard_count=2)
        await self.server.start()
        self.leader = ReplicationLeader(self.server.router,
                                        heartbeat_interval=None)
        await self.leader.start()
        return self

    async def __aexit__(self, *exc):
        await self.leader.stop()
        await self.server.shutdown()

    @property
    def dealloc_listeners(self):
        return self.leader.machine.mem.store.dealloc_listeners

    @property
    def commit_listeners(self):
        return self.server.router.commit_listeners


class TestSessionChurn:
    def test_listeners_return_to_baseline_after_churn(self):
        async def go():
            async with LeaderStack() as stack:
                base_dealloc = len(stack.dealloc_listeners)
                base_commit = len(stack.commit_listeners)
                for round_number in range(8):
                    follower = ReplicationFollower(
                        "127.0.0.1", stack.leader.port,
                        reconnect_delay=0.01)
                    await follower.start()
                    assert await wait_until(
                        lambda: len(stack.dealloc_listeners)
                        == base_dealloc + 1), \
                        "session %d never registered" % round_number
                    assert len(stack.leader._sessions) == 1
                    await follower.stop()
                    assert await wait_until(
                        lambda: len(stack.dealloc_listeners)
                        == base_dealloc), \
                        "session %d leaked its dealloc listener" \
                        % round_number
                    assert await wait_until(
                        lambda: not stack.leader._sessions)
                    # the commit listener is leader-wide, not
                    # per-session: churn must not touch it
                    assert len(stack.commit_listeners) == base_commit

        asyncio.run(go())

    def test_concurrent_sessions_detach_independently(self):
        async def go():
            async with LeaderStack() as stack:
                base = len(stack.dealloc_listeners)
                followers = []
                for _ in range(3):
                    follower = ReplicationFollower(
                        "127.0.0.1", stack.leader.port,
                        reconnect_delay=0.01)
                    await follower.start()
                    followers.append(follower)
                assert await wait_until(
                    lambda: len(stack.dealloc_listeners) == base + 3)
                # drop the middle one; the other two sessions stay live
                await followers[1].stop()
                assert await wait_until(
                    lambda: len(stack.dealloc_listeners) == base + 2)
                assert len(stack.leader._sessions) == 2
                for follower in (followers[0], followers[2]):
                    await follower.stop()
                assert await wait_until(
                    lambda: len(stack.dealloc_listeners) == base)

        asyncio.run(go())

    def test_leader_stop_sweeps_live_sessions(self):
        async def go():
            stack = LeaderStack()
            await stack.__aenter__()
            base = len(stack.dealloc_listeners)
            follower = ReplicationFollower(
                "127.0.0.1", stack.leader.port, reconnect_delay=0.01)
            await follower.start()
            assert await wait_until(
                lambda: len(stack.leader._sessions) == 1)
            # stop the leader while the follower is still attached
            await stack.leader.stop()
            assert not stack.leader._sessions
            assert stack.leader._on_commit not in stack.commit_listeners
            # the session's dealloc listener went with it
            assert len(stack.dealloc_listeners) == base
            await follower.stop()
            await stack.server.shutdown()

        asyncio.run(go())
