"""Multi-endpoint loadgen: read/write split against a replicated pair.

Two contracts. First, the single-endpoint path is untouched — same
report keys, same strict oracle — so every existing consumer of the
loadgen JSON sees byte-identical shapes. Second, fleet mode: writes pin
to the leader, plain reads round-robin a follower fleet, and replica
answers are judged against the write history (a lagged-but-once-written
value is legal and counted, a never-written value is still a failure).
"""

import asyncio

from repro.net.loadgen import (
    LoadgenReport,
    ReadSplitPolicy,
    SingleEndpointPolicy,
    run_loadgen,
)
from repro.net.server import MemcachedServer
from repro.replication import (
    FollowerServer,
    ReplicationFollower,
    ReplicationLeader,
)


class TestSingleEndpointCompatibility:
    def test_report_shape_is_unchanged(self):
        """No fleet keys leak into the classic single-server report."""
        report = LoadgenReport()
        doc = report.as_dict()
        assert "endpoints" not in doc
        assert "stale_reads" not in doc
        fleet = LoadgenReport(endpoints=3, stale_reads=2).as_dict()
        assert fleet["endpoints"] == 3
        assert fleet["stale_reads"] == 2

    def test_single_server_run_is_strict(self):
        async def go():
            server = MemcachedServer(port=0, shard_count=2)
            await server.start()
            try:
                report = await run_loadgen(
                    "127.0.0.1", server.port, clients=2,
                    ops_per_client=40, pipeline_depth=4, key_space=8,
                    seed=3)
            finally:
                await server.shutdown()
            return report

        report = asyncio.run(go())
        assert report.consistent
        assert report.errors == 0
        assert report.endpoints == 1
        assert "stale_reads" not in report.as_dict()

    def test_policy_defaults(self):
        single = SingleEndpointPolicy()
        assert not single.relaxed_reads
        assert single.write_endpoint(b"k") == single.read_endpoint(b"k") == 0
        split = ReadSplitPolicy(writer=0, readers=[1, 2])
        assert split.relaxed_reads
        assert split.write_endpoint(b"k") == 0
        assert [split.read_endpoint(b"k") for _ in range(4)] == [1, 2, 1, 2]
        # gets is a write-path operation: tokens come from the writer
        lone = ReadSplitPolicy(writer=3)
        assert lone.read_endpoint(b"k") == 3


class TestReadSplitFleet:
    def test_reads_spread_over_a_live_follower(self):
        """Loadgen against leader + snapshot-serving follower: writes to
        the leader, plain reads on the follower, zero mismatches under
        the relaxed (write-history) oracle."""
        async def go():
            server = MemcachedServer(port=0, shard_count=2)
            await server.start()
            leader = ReplicationLeader(server.router,
                                       heartbeat_interval=None)
            await leader.start()
            follower = ReplicationFollower("127.0.0.1", leader.port,
                                           reconnect_delay=0.01)
            await follower.start()
            front = FollowerServer(follower, "127.0.0.1", server.port)
            await front.start()
            try:
                report = await run_loadgen(
                    "127.0.0.1", server.port, clients=2,
                    ops_per_client=60, pipeline_depth=4, key_space=8,
                    seed=5,
                    endpoints=[("127.0.0.1", server.port),
                               ("127.0.0.1", front.port)],
                    policy_factory=lambda: ReadSplitPolicy(
                        writer=0, readers=[1]))
            finally:
                await front.stop()
                await follower.stop()
                await leader.stop()
                await server.shutdown()
            return report

        report = asyncio.run(go())
        assert report.consistent, report.as_dict()
        assert report.errors == 0
        assert report.oracle_mismatches == 0
        assert report.endpoints == 2
        assert report.get_hits + report.get_misses > 0
        doc = report.as_dict()
        assert doc["endpoints"] == 2
        assert doc["stale_reads"] == report.stale_reads
