"""Tests for DAG inspection/visualization tools."""

import pytest

from repro.analysis.inspect import (
    dump_entry,
    segment_report,
    sharing_matrix,
    to_dot,
)


class TestDump:
    def test_dense_segment_dump(self, machine):
        # wide values so leaves stay real lines (no data compaction)
        vsid = machine.create_segment([(1 << 40) + i for i in range(40)])
        entry = machine.segmap.entry(vsid)
        text = dump_entry(machine.mem, entry.root, entry.height)
        assert "line" in text
        assert "level 0" in text

    def test_inline_segment_dump(self, machine):
        vsid = machine.create_segment([1, 2, 3])
        entry = machine.segmap.entry(vsid)
        text = dump_entry(machine.mem, entry.root, entry.height)
        assert "inline" in text

    def test_zero_segment_dump(self, machine):
        text = dump_entry(machine.mem, 0, 2)
        assert "(zero)" in text

    def test_depth_limit(self, machine):
        vsid = machine.create_segment([])
        machine.write_word(vsid, 10**12, 1 << 50)
        entry = machine.segmap.entry(vsid)
        text = dump_entry(machine.mem, entry.root, entry.height, max_depth=1)
        assert text  # renders without exploding


class TestReport:
    def test_counts_add_up(self, machine):
        vsid = machine.create_segment(list(range(1000, 1128)))
        report = segment_report(machine, vsid)
        assert report.total_lines == report.leaf_lines + report.interior_lines
        assert report.bytes == report.total_lines * machine.mem.line_bytes
        assert report.length == 128
        assert "VSID" in report.as_text()

    def test_sparse_shows_compaction(self, machine):
        # the off-position value forces a real leaf line, so the chain of
        # single-child ancestors collapses into one compacted path
        vsid = machine.create_segment([])
        machine.write_word(vsid, (1 << 30) + 5, 1 << 50)
        report = segment_report(machine, vsid)
        assert report.compacted_paths >= 1
        assert report.total_lines <= 2

    def test_single_small_value_is_pure_inline(self, machine):
        # a lone small word propagates as an Inline entry all the way up:
        # even path compaction is unnecessary
        vsid = machine.create_segment([])
        machine.write_word(vsid, 1 << 30, 7)
        report = segment_report(machine, vsid)
        assert report.total_lines <= 1
        assert report.inline_entries >= 1

    def test_inline_counted(self, machine):
        vsid = machine.create_segment([1, 2, 3])
        report = segment_report(machine, vsid)
        assert report.inline_entries == 1
        assert report.total_lines == 0


class TestSharing:
    def test_duplicate_segments_fully_shared(self, machine):
        a = machine.create_segment(list(range(500, 564)))
        b = machine.create_segment(list(range(500, 564)))
        matrix = sharing_matrix(machine, [a, b])
        report = segment_report(machine, a)
        assert matrix[(a, b)] == report.total_lines

    def test_disjoint_segments_share_nothing(self, machine):
        a = machine.create_segment([1 << 40, 2 << 40])
        b = machine.create_segment([3 << 40, 4 << 40])
        assert sharing_matrix(machine, [a, b])[(a, b)] == 0

    def test_partial_sharing(self, machine):
        base = list(range(7000, 7128))
        a = machine.create_segment(base)
        modified = list(base)
        modified[0] = 1
        b = machine.create_segment(modified)
        shared = sharing_matrix(machine, [a, b])[(a, b)]
        assert 0 < shared < segment_report(machine, a).total_lines


class TestDot:
    def test_renders_valid_shape(self, machine):
        a = machine.create_segment(list(range(900, 964)))
        dot = to_dot(machine, [a])
        assert dot.startswith("digraph hicamp {")
        assert dot.endswith("}")
        assert "VSID %d" % a in dot
        assert "->" in dot

    def test_shared_lines_appear_once(self, machine):
        a = machine.create_segment(list(range(800, 864)))
        b = machine.create_segment(list(range(800, 864)))
        dot = to_dot(machine, [a, b])
        # both VSIDs point at the same root node
        entry = machine.segmap.entry(a)
        root_decl = dot.count('L%d [' % entry.root.plid)
        assert root_decl == 1
        assert "V%d -> L%d;" % (a, entry.root.plid) in dot
        assert "V%d -> L%d;" % (b, entry.root.plid) in dot

    def test_max_lines_cap(self, machine):
        a = machine.create_segment(list(range(4000, 4512)))
        dot = to_dot(machine, [a], max_lines=5)
        assert dot.count("[label=\"{") <= 6
