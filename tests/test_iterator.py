"""Unit tests for iterator registers."""

import pytest

from repro.errors import IteratorStateError, ReadOnlyError
from repro.segments.iterator import IteratorRegister
from repro.segments.segment_map import SegmentMap


@pytest.fixture
def env(machine):
    return machine


def new_it(machine, words, **kwargs):
    vsid = machine.create_segment(words, **kwargs)
    it = IteratorRegister(machine.mem, machine.segmap)
    it.load(vsid)
    return vsid, it


class TestLoadAndRead:
    def test_reads_through_register(self, machine):
        _, it = new_it(machine, [10, 20, 30])
        assert it.get(0) == 10
        assert it.get(2) == 30

    def test_unloaded_register_raises(self, machine):
        it = IteratorRegister(machine.mem, machine.segmap)
        with pytest.raises(IteratorStateError):
            it.get(0)

    def test_leaf_caching_counts_path_hits(self, machine):
        _, it = new_it(machine, list(range(100, 200)))
        it.get(0)
        reads_before = it.stats.reads
        it.get(1)  # same leaf line
        assert it.stats.reads == reads_before
        assert it.stats.path_hits >= 1

    def test_read_beyond_capacity_is_zero(self, machine):
        _, it = new_it(machine, [1, 2])
        assert it.get(10_000) == 0


class TestSnapshotIsolation:
    def test_register_sees_load_time_content(self, machine):
        vsid, it = new_it(machine, [1, 2, 3])
        machine.write_word(vsid, 0, 99)  # concurrent committed update
        assert it.get(0) == 1  # the register's snapshot is stable
        it.load(vsid)
        assert it.get(0) == 99

    def test_snapshot_survives_segment_drop(self, machine):
        vsid, it = new_it(machine, list(range(50)))
        machine.drop_segment(vsid)
        assert it.get(10) == 10  # register still holds the content
        it.reset()
        assert machine.footprint_lines() == 0


class TestTransientWrites:
    def test_uncommitted_writes_private(self, machine):
        vsid, it = new_it(machine, [1, 2, 3])
        it.put(42, offset=1)
        assert it.get(1) == 42
        assert machine.read_word(vsid, 1) == 2

    def test_abort_discards(self, machine):
        vsid, it = new_it(machine, [1, 2, 3])
        it.put(42, offset=1)
        it.abort()
        assert it.get(1) == 2
        assert not it.dirty

    def test_commit_publishes(self, machine):
        vsid, it = new_it(machine, [1, 2, 3])
        it.put(42, offset=1)
        assert it.try_commit()
        assert machine.read_word(vsid, 1) == 42
        assert not it.dirty

    def test_write_extends_length(self, machine):
        vsid, it = new_it(machine, [1, 2, 3])
        it.put(7, offset=100)
        assert it.try_commit()
        assert machine.segment_length(vsid) == 101
        assert machine.read_word(vsid, 100) == 7

    def test_transient_writes_cost_no_lookups(self, machine):
        vsid, it = new_it(machine, [1, 2, 3])
        lookups_before = machine.mem.store.counters.lookups
        for i in range(50):
            it.put(i + 1000, offset=i)
        # stores land in transient lines; no dedup lookups until commit
        assert machine.mem.store.counters.lookups == lookups_before
        it.try_commit()
        assert machine.mem.store.counters.lookups > lookups_before

    def test_read_only_register_rejects_put(self, machine):
        vsid = machine.create_segment([1, 2, 3])
        ro = machine.share_read_only(vsid)
        it = IteratorRegister(machine.mem, machine.segmap)
        it.load(ro)
        with pytest.raises(ReadOnlyError):
            it.put(9, offset=0)


class TestCommitRaces:
    def test_lost_race_returns_false_and_keeps_transients(self, machine):
        vsid = machine.create_segment([1, 2, 3])
        it1 = IteratorRegister(machine.mem, machine.segmap).load(vsid)
        it2 = IteratorRegister(machine.mem, machine.segmap).load(vsid)
        it1.put(10, offset=0)
        it2.put(20, offset=1)
        assert it1.try_commit()
        assert not it2.try_commit()
        assert it2.dirty  # caller may retry or merge
        assert machine.read_word(vsid, 0) == 10
        assert machine.read_word(vsid, 1) == 2

    def test_commit_moves_snapshot_forward(self, machine):
        vsid, it = new_it(machine, [1, 2, 3])
        it.put(10, offset=0)
        assert it.try_commit()
        it.put(11, offset=1)
        assert it.try_commit()  # second commit builds on the first
        assert machine.read_segment(vsid) == [10, 11, 3]


class TestNextNonzero:
    def test_skips_zeros(self, machine):
        vsid = machine.create_segment([0] * 64)
        machine.write_words(vsid, {5: 50, 20: 200, 63: 630})
        it = IteratorRegister(machine.mem, machine.segmap).load(vsid)
        it.seek(0)
        hits = []
        while True:
            item = it.next_nonzero()
            if item is None:
                break
            hits.append(item)
        assert hits == [(5, 50), (20, 200), (63, 630)]

    def test_includes_transient_stores(self, machine):
        vsid = machine.create_segment([0] * 32)
        machine.write_words(vsid, {10: 1})
        it = IteratorRegister(machine.mem, machine.segmap).load(vsid)
        it.put(5, offset=3)
        it.seek(0)
        assert it.next_nonzero() == (3, 5)
        assert it.next_nonzero() == (10, 1)

    def test_transient_overwrite_hides_committed(self, machine):
        vsid = machine.create_segment([0] * 16)
        machine.write_words(vsid, {4: 9})
        it = IteratorRegister(machine.mem, machine.segmap).load(vsid)
        it.put(0, offset=4)  # deletes element 4 in the transient view
        it.seek(0)
        assert it.next_nonzero() is None

    def test_iter_items(self, machine):
        vsid = machine.create_segment([7, 0, 8, 0, 9])
        it = IteratorRegister(machine.mem, machine.segmap).load(vsid)
        assert list(it.iter_items()) == [(0, 7), (2, 8), (4, 9)]


class TestPrefetch:
    def test_sequential_scan_prefetches(self, machine):
        words = list(range(1000, 1000 + 16 * machine.mem.words_per_line))
        vsid = machine.create_segment(words)
        it = IteratorRegister(machine.mem, machine.segmap).load(vsid)
        for offset in range(len(words)):
            assert it.get(offset) == words[offset]
        assert it.stats.prefetches > 0
        # after warm-up, every demand fill was prefetched ahead of time
        assert it.stats.prefetch_hits >= it.stats.prefetches - 1

    def test_random_access_does_not_prefetch(self, machine):
        words = list(range(1000, 1256))
        vsid = machine.create_segment(words)
        it = IteratorRegister(machine.mem, machine.segmap).load(vsid)
        w = machine.mem.words_per_line
        for offset in (0, 9 * w, 3 * w, 12 * w, 6 * w):
            it.get(offset)
        assert it.stats.prefetches == 0

    def test_prefetch_can_be_disabled(self, machine):
        words = list(range(1000, 1128))
        vsid = machine.create_segment(words)
        it = IteratorRegister(machine.mem, machine.segmap, prefetch=False)
        it.load(vsid)
        for offset in range(len(words)):
            it.get(offset)
        assert it.stats.prefetches == 0

    def test_prefetch_preserves_dram_total(self, machine):
        # prefetching shifts fetches earlier; it must not change the
        # total lines moved for a full sequential scan
        words = list(range(2000, 2000 + 128))
        vsid = machine.create_segment(words)

        def scan(prefetch):
            it = IteratorRegister(machine.mem, machine.segmap,
                                  prefetch=prefetch)
            it.load(vsid)
            before = machine.dram.snapshot()
            for offset in range(len(words)):
                it.get(offset)
            it.reset()
            return machine.dram.delta(before).total()

        first = scan(True)
        second = scan(False)  # cache is warm now; compare shapes only
        assert first >= second  # warm second pass can only be cheaper
