"""Online cuckoo resize under live fault-injected fuzz episodes.

The tentpole acceptance clause: starting the serving stack on a
deliberately tiny cuckoo table, a fault-injected episode (commit stalls
raised well above the default rate) must drive at least one online
resize to completion with **zero failed operations** and strict audits
clean — the resize protocol never blocks or corrupts serving."""

import pytest

from repro.testing.faults import COMMIT_STALL, CONN_RESET
from repro.testing.fuzz import EpisodeConfig, run_episode


def _resize_cfg(**over):
    base = dict(
        index_kind="cuckoo",
        index_buckets=8,            # 8 buckets x 4 slots: resizes fast
        clients=4,
        ops_per_client=48,
        key_space=24,               # enough distinct content to grow
        rates={CONN_RESET: 0.06, COMMIT_STALL: 0.5},
    )
    base.update(over)
    return EpisodeConfig(**base)


@pytest.mark.parametrize("seed", [7, 1001])
def test_online_resize_completes_during_live_episode(seed):
    result = run_episode(seed, _resize_cfg())
    assert result.ok, result.failures
    assert result.failures == []
    snap = result.index
    assert snap["kind"] == "cuckoo"
    cuckoo = snap["cuckoo"]
    assert cuckoo["resizes_started"] >= 1, \
        "episode never stressed the table into a resize"
    assert cuckoo["resizes_completed"] >= 1, \
        "online resize did not complete during the live episode"
    assert cuckoo["migrated_entries"] > 0
    assert cuckoo["entries"] > 0


def test_episode_trace_is_index_independent():
    """Same seed, both kinds: the seed-deterministic trace and verdict
    must be identical — the index never leaks into observable serving
    behaviour (resize/migration progress lives outside the trace)."""
    seed = 99
    legacy = run_episode(seed, _resize_cfg(index_kind="legacy",
                                           index_buckets=0))
    cuckoo = run_episode(seed, _resize_cfg())
    assert legacy.ok and cuckoo.ok
    assert legacy.trace == cuckoo.trace
    assert legacy.fired.get(CONN_RESET, 0) == cuckoo.fired.get(
        CONN_RESET, 0)
    assert legacy.index["kind"] == "legacy"
    assert cuckoo.index["kind"] == "cuckoo"
