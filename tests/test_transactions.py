"""Unit tests for mCAS and multi-segment commit."""

import pytest

from repro.core.transactions import MultiSegmentCommit, atomic_update, mcas
from repro.errors import MergeConflictError
from repro.segments import dag
from repro.segments.iterator import IteratorRegister
from repro.segments.merge import MergeStats


class TestMcas:
    def test_clean_cas_path(self, machine):
        vsid = machine.create_segment([1, 2, 3])
        entry = machine.segmap.entry(vsid)
        base = (entry.root, entry.height)
        new_root, nh = dag.build_segment(machine.mem, [9, 2, 3])
        assert mcas(machine.mem, machine.segmap, vsid, base,
                    (new_root, nh), 3)
        assert machine.read_segment(vsid) == [9, 2, 3]

    def test_merges_on_interference(self, machine):
        vsid = machine.create_segment([10, 20, 30])
        entry = machine.segmap.entry(vsid)
        base = (entry.root, entry.height)
        dag.retain_entry(machine.mem, base[0])  # keep base alive
        # another thread commits first
        machine.write_word(vsid, 1, 25)
        # our update was computed against the old base
        mine, mh = dag.build_segment(machine.mem, [11, 20, 30])
        stats = MergeStats()
        assert mcas(machine.mem, machine.segmap, vsid, base,
                    (mine, mh), 3, stats=stats)
        assert machine.read_segment(vsid) == [11, 25, 30]
        dag.release_entry(machine.mem, base[0])

    def test_true_conflict_fails(self, machine):
        value_a = machine.create_segment(list(range(40)))
        value_b = machine.create_segment(list(range(40, 80)))
        ea = machine.segmap.entry(value_a)
        eb = machine.segmap.entry(value_b)
        w = machine.mem.words_per_line
        vsid = machine.create_segment([0] * (2 * w))
        entry = machine.segmap.entry(vsid)
        base = (entry.root, entry.height)
        dag.retain_entry(machine.mem, base[0])
        # thread 1 stores ref A at slot 0 and commits
        dag.retain_entry(machine.mem, ea.root)
        r1 = dag.write_words_bulk(machine.mem, dag.retain_entry(
            machine.mem, base[0]) and base[0], base[1], {0: ea.root})
        machine.segmap.set_root(vsid, r1, base[1], 2 * w)
        # thread 2 computed ref B at slot 0 against the old base
        mine = dag.write_words_bulk(machine.mem, dag.retain_entry(
            machine.mem, base[0]) and base[0], base[1], {0: eb.root})
        assert not mcas(machine.mem, machine.segmap, vsid, base,
                        (mine, base[1]), 2 * w)
        dag.release_entry(machine.mem, base[0])
        machine.mem.store.check_refcounts()


class TestAtomicUpdateMerge:
    def test_concurrent_counter_updates_sum(self, machine):
        vsid = machine.create_segment([100])
        it = IteratorRegister(machine.mem, machine.segmap).load(vsid)

        def add_three(it):
            # interference lands after the snapshot, before commit
            if not getattr(add_three, "poked", False):
                add_three.poked = True
                machine.write_word(vsid, 0, 105)  # another thread's +5
            it.put(it.get(0) + 3, offset=0)

        atomic_update(it, add_three, merge=True)
        assert machine.read_word(vsid, 0) == 108  # 100 + 5 + 3
        it.reset()

    def test_merge_conflict_raises(self, machine):
        w = machine.mem.words_per_line
        vsid = machine.create_segment([0] * (2 * w))
        a = machine.create_segment(list(range(40)))
        b = machine.create_segment(list(range(40, 80)))
        ra = machine.segmap.entry(a).root
        rb = machine.segmap.entry(b).root
        it = IteratorRegister(machine.mem, machine.segmap).load(vsid)

        def store_ref(it):
            if not getattr(store_ref, "poked", False):
                store_ref.poked = True
                machine.write_word(vsid, 0, rb)
            it.put(ra, offset=0)

        with pytest.raises(MergeConflictError):
            atomic_update(it, store_ref, merge=True)
        it.reset()


class TestMultiSegmentCommit:
    def test_commit_applies_all(self, machine):
        a = machine.create_segment([1])
        b = machine.create_segment([2])
        txn = MultiSegmentCommit(machine.mem, machine.segmap)
        ra, ha = dag.build_segment(machine.mem, [10])
        rb, hb = dag.build_segment(machine.mem, [20])
        txn.stage(a, ra, ha, 1)
        txn.stage(b, rb, hb, 1)
        # nothing visible before commit
        assert machine.read_segment(a) == [1]
        assert txn.commit()
        assert machine.read_segment(a) == [10]
        assert machine.read_segment(b) == [20]

    def test_conflict_discards_everything(self, machine):
        a = machine.create_segment([1])
        b = machine.create_segment([2])
        txn = MultiSegmentCommit(machine.mem, machine.segmap)
        ra, ha = dag.build_segment(machine.mem, [10])
        rb, hb = dag.build_segment(machine.mem, [20])
        txn.stage(a, ra, ha, 1)
        txn.stage(b, rb, hb, 1)
        machine.write_word(b, 0, 99)  # interference on an enrolled segment
        assert not txn.commit()
        assert machine.read_segment(a) == [1]
        assert machine.read_segment(b) == [99]
        machine.mem.store.check_refcounts()

    def test_enroll_without_stage_guards_reads(self, machine):
        a = machine.create_segment([1])
        b = machine.create_segment([2])
        txn = MultiSegmentCommit(machine.mem, machine.segmap)
        txn.enroll(a)  # read dependency only
        rb, hb = dag.build_segment(machine.mem, [20])
        txn.stage(b, rb, hb, 1)
        machine.write_word(a, 0, 5)  # the read dependency changed
        assert not txn.commit()
        assert machine.read_segment(b) == [2]

    def test_abort_releases(self, machine):
        a = machine.create_segment([1])
        txn = MultiSegmentCommit(machine.mem, machine.segmap)
        ra, ha = dag.build_segment(machine.mem, list(range(3000, 3100)))
        txn.stage(a, ra, ha, 100)
        lines_with_staged = machine.footprint_lines()
        txn.abort()
        assert machine.footprint_lines() < lines_with_staged


class TestMergeUpdateFlag:
    def test_segment_flag_enables_merge_automatically(self, machine):
        # a segment created with MERGE_UPDATE merges without the caller
        # passing merge=True (the §2.3 flags drive the behaviour)
        from repro.segments.segment_map import SegmentFlags
        vsid = machine.create_segment([100],
                                      flags=SegmentFlags.MERGE_UPDATE)

        def bump(it):
            if not getattr(bump, "poked", False):
                bump.poked = True
                machine.write_word(vsid, 0, 105)
            it.put(it.get(0) + 3, offset=0)

        machine.atomic_update(vsid, bump)  # no merge=True needed
        assert machine.read_word(vsid, 0) == 108

    def test_unflagged_segment_retries_instead(self, machine):
        vsid = machine.create_segment([100])
        calls = []

        def bump(it):
            calls.append(1)
            if len(calls) == 1:
                machine.write_word(vsid, 0, 105)
            it.put(it.get(0) + 3, offset=0)

        machine.atomic_update(vsid, bump)
        assert len(calls) == 2          # re-ran from a fresh snapshot
        assert machine.read_word(vsid, 0) == 108


class TestDrainIdempotence:
    def test_drain_twice_adds_nothing(self, machine):
        machine.create_segment(list(range(3000, 3200)))
        machine.drain()
        total = machine.dram.total()
        machine.drain()
        assert machine.dram.total() == total
