"""Tests for the memcached ASCII protocol layer."""

import pytest

from repro.apps.memcached import HicampMemcached
from repro.apps.memcached.protocol import (
    ProtocolError,
    ProtocolHandler,
    parse_request,
)


@pytest.fixture
def handler(machine):
    return ProtocolHandler(HicampMemcached(machine))


class TestParsing:
    def test_retrieval_line(self):
        cmd, args, payload = parse_request(b"get alpha beta\r\n")
        assert cmd == b"get" and args == [b"alpha", b"beta"]
        assert payload is None

    def test_storage_with_payload(self):
        cmd, args, payload = parse_request(b"set k 0 0 5\r\nhello\r\n")
        assert cmd == b"set" and payload == b"hello"

    def test_binary_safe_payload(self):
        blob = bytes(range(256))
        cmd, args, payload = parse_request(
            b"set blob 0 0 256\r\n" + blob + b"\r\n")
        assert payload == blob

    def test_length_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b"set k 0 0 10\r\nshort\r\n")

    def test_unterminated_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b"get key")

    def test_bad_byte_count_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(b"set k 0 0 xyz\r\n\r\n")


class TestCommands:
    def test_set_get_roundtrip(self, handler):
        assert handler.handle(b"set greeting 0 0 5\r\nhello\r\n") == \
            b"STORED\r\n"
        assert handler.handle(b"get greeting\r\n") == \
            b"VALUE greeting 0 5\r\nhello\r\nEND\r\n"

    def test_get_miss(self, handler):
        assert handler.handle(b"get nothing\r\n") == b"END\r\n"

    def test_multi_get(self, handler):
        handler.handle(b"set a 0 0 1\r\nx\r\n")
        handler.handle(b"set b 0 0 1\r\ny\r\n")
        response = handler.handle(b"get a missing b\r\n")
        assert response == (b"VALUE a 0 1\r\nx\r\n"
                            b"VALUE b 0 1\r\ny\r\nEND\r\n")

    def test_add_replace(self, handler):
        assert handler.handle(b"add k 0 0 1\r\n1\r\n") == b"STORED\r\n"
        assert handler.handle(b"add k 0 0 1\r\n2\r\n") == b"NOT_STORED\r\n"
        assert handler.handle(b"replace k 0 0 1\r\n3\r\n") == b"STORED\r\n"
        assert handler.handle(b"replace nope 0 0 1\r\n4\r\n") == \
            b"NOT_STORED\r\n"

    def test_delete(self, handler):
        handler.handle(b"set k 0 0 1\r\nv\r\n")
        assert handler.handle(b"delete k\r\n") == b"DELETED\r\n"
        assert handler.handle(b"delete k\r\n") == b"NOT_FOUND\r\n"

    def test_incr_decr(self, handler):
        handler.handle(b"set n 0 0 2\r\n10\r\n")
        assert handler.handle(b"incr n 5\r\n") == b"15\r\n"
        assert handler.handle(b"decr n 3\r\n") == b"12\r\n"
        assert handler.handle(b"incr missing 1\r\n") == b"NOT_FOUND\r\n"

    def test_gets_cas_flow(self, handler):
        handler.handle(b"set k 0 0 2\r\nv1\r\n")
        response = handler.handle(b"gets k\r\n")
        token = response.split(b"\r\n")[0].split()[-1]
        assert handler.handle(
            b"cas k 0 0 2 %s\r\nv2\r\n" % token) == b"STORED\r\n"
        # stale token now
        assert handler.handle(
            b"cas k 0 0 2 %s\r\nv3\r\n" % token) == b"EXISTS\r\n"
        assert handler.handle(b"cas missing 0 0 1 5\r\nx\r\n") == \
            b"NOT_FOUND\r\n"

    def test_stats(self, handler):
        handler.handle(b"set k 0 0 1\r\nv\r\n")
        handler.handle(b"get k\r\n")
        response = handler.handle(b"stats\r\n")
        assert b"STAT gets 1" in response
        assert b"STAT curr_items 1" in response

    def test_unknown_command(self, handler):
        assert handler.handle(b"flushish\r\n") == b"ERROR\r\n"

    def test_malformed_returns_client_error(self, handler):
        assert handler.handle(b"set k 0 0\r\n").startswith(b"CLIENT_ERROR")
        assert handler.handle(b"incr n xyz\r\n").startswith(b"CLIENT_ERROR")


class TestAdminCommands:
    def test_version(self, handler):
        response = handler.handle(b"version\r\n")
        assert response.startswith(b"VERSION ")
        assert response.endswith(b"\r\n")

    def test_flush_all_empties_cache(self, handler):
        for i in range(5):
            handler.handle(b"set k%d 0 0 1\r\nv\r\n" % i)
        assert handler.handle(b"flush_all\r\n") == b"OK\r\n"
        assert handler.handle(b"get k0\r\n") == b"END\r\n"
        assert b"STAT curr_items 0" in handler.handle(b"stats\r\n")

    def test_flush_all_then_store_again(self, handler):
        handler.handle(b"set k 0 0 1\r\na\r\n")
        handler.handle(b"flush_all\r\n")
        assert handler.handle(b"set k 0 0 1\r\nb\r\n") == b"STORED\r\n"
        assert b"VALUE k 0 1\r\nb" in handler.handle(b"get k\r\n")

    def test_stats_includes_cas_and_extra(self, handler):
        handler.handle(b"set k 0 0 2\r\nv1\r\n")
        token = handler.handle(b"gets k\r\n").split(b"\r\n")[0].split()[-1]
        handler.handle(b"cas k 0 0 2 %s\r\nv2\r\n" % token)
        # a stale token is rejected at the protocol layer, before the
        # server-level cas counter — only the applied cas is counted
        handler.handle(b"cas k 0 0 2 %s\r\nv3\r\n" % token)
        handler.handle(b"flush_all\r\n")
        response = handler.handle(b"stats\r\n")
        assert b"STAT cas_ops 1" in response
        assert b"STAT cas_failures 0" in response
        assert b"STAT flushes 1" in response
        assert b"STAT footprint_bytes" in response

    def test_managed_flush_all_clears_lru(self, machine):
        from repro.apps.memcached.eviction import ManagedMemcached
        server = ManagedMemcached(machine)
        handler = ProtocolHandler(server)
        for i in range(4):
            handler.handle(b"set k%d 0 0 1\r\nv\r\n" % i)
        handler.handle(b"flush_all\r\n")
        assert server.item_count() == 0
        assert not server._lru
        # a fresh set must not be evicted because of stale LRU entries
        assert handler.handle(b"set new 0 0 1\r\nx\r\n") == b"STORED\r\n"
        assert b"VALUE new" in handler.handle(b"get new\r\n")


class TestProtocolRobustness:
    def test_random_bytes_never_crash(self, handler):
        import random
        rng = random.Random(0)
        for _ in range(300):
            size = rng.randint(0, 40)
            blob = bytes(rng.randrange(256) for _ in range(size))
            response = handler.handle(blob + b"\r\n")
            assert response.endswith(b"\r\n")

    def test_fuzzed_command_lines(self, handler):
        import random
        rng = random.Random(1)
        verbs = [b"get", b"set", b"add", b"cas", b"delete", b"incr",
                 b"decr", b"stats", b"quit", b"flush_all"]
        for _ in range(200):
            parts = [rng.choice(verbs)]
            for _ in range(rng.randint(0, 5)):
                parts.append(b"%d" % rng.randrange(10**6))
            request = b" ".join(parts) + b"\r\n" + b"x" * rng.randint(0, 8)
            response = handler.handle(request + b"\r\n")
            assert isinstance(response, bytes) and response


class TestProtocolWithTtlServer:
    def test_exptime_honoured(self, machine):
        from repro.apps.memcached.eviction import ManagedMemcached
        server = ManagedMemcached(machine)
        handler = ProtocolHandler(server)
        assert handler.handle(b"set k 0 5 1\r\nv\r\n") == b"STORED\r\n"
        assert b"VALUE k" in handler.handle(b"get k\r\n")
        server.tick(10)  # past the 5-tick TTL
        assert handler.handle(b"get k\r\n") == b"END\r\n"

    def test_zero_exptime_means_forever(self, machine):
        from repro.apps.memcached.eviction import ManagedMemcached
        server = ManagedMemcached(machine)
        handler = ProtocolHandler(server)
        handler.handle(b"set k 0 0 1\r\nv\r\n")
        server.tick(100000)
        assert b"VALUE k" in handler.handle(b"get k\r\n")

    def test_bad_exptime_rejected(self, handler):
        assert handler.handle(b"set k 0 zz 1\r\nv\r\n").startswith(
            b"CLIENT_ERROR")

    def test_plain_server_ignores_ttl_gracefully(self, handler):
        # HicampMemcached has no TTL support; the protocol still stores
        assert handler.handle(b"set k 0 99 1\r\nv\r\n") == b"STORED\r\n"
        assert b"VALUE k" in handler.handle(b"get k\r\n")
