"""The delta engine: reachability walks, pruning, cross-machine install.

These tests exercise the replication building blocks without sockets:
the deterministic children-first walk, known-set pruning (minimality),
line translation between PLID spaces, idempotent installs through the
dedup store, and the machine-independent content fingerprints that stand
in for the paper's O(1) root compare across machines.
"""

from repro import Machine
from repro.memory.line import PlidRef
from repro.replication.delta import compute_delta, translate_line
from repro.segments import dag

import pytest


def build(machine, words):
    """Build a segment; returns (root, height) with a caller-owned ref."""
    return dag.build_segment(machine.mem, words)


class TestWalkLines:
    def test_children_strictly_before_parents(self, machine):
        root, _ = build(machine, list(range(300)))
        seen = set()
        for plid, line in dag.walk_lines(machine.mem.store,
                                         root):
            for word in line:
                if isinstance(word, PlidRef):
                    assert word.plid in seen, "parent before child"
            assert plid not in seen, "line yielded twice"
            seen.add(plid)
        dag.release_entry(machine.mem, root)

    def test_walk_is_deterministic(self, machine):
        root, _ = build(machine, list(range(150)))
        first = [p for p, _ in dag.walk_lines(machine.mem.store, root)]
        second = [p for p, _ in dag.walk_lines(machine.mem.store, root)]
        assert first == second and first
        dag.release_entry(machine.mem, root)

    def test_skip_prunes_whole_subtrees(self, machine):
        root, _ = build(machine, list(range(200)))
        full = [p for p, _ in dag.walk_lines(machine.mem.store, root)]
        # knowing everything but the root prunes the walk to nothing new
        known = set(full[:-1])
        rest = [p for p, _ in dag.walk_lines(machine.mem.store, root,
                                             skip=known)]
        assert rest == [full[-1]]
        dag.release_entry(machine.mem, root)

    def test_zero_entry_walks_empty(self, machine):
        assert list(dag.walk_lines(machine.mem.store, 0)) == []


class TestComputeDelta:
    def test_second_delta_ships_only_new_lines(self, machine):
        words = list(range(256))
        root_a, ha = build(machine, words)
        known = set()
        delta_a = compute_delta(machine.mem.store, 0, 1, root_a, ha,
                                len(words), known)
        known.update(p for p, _ in delta_a.lines)
        assert delta_a.line_count > 0

        words[3] = 999_999  # one leaf changes: one spine of new lines
        root_b, hb = build(machine, words)
        delta_b = compute_delta(machine.mem.store, 0, 1, root_b, hb,
                                len(words), known)
        assert 0 < delta_b.line_count < delta_a.line_count
        # everything shipped twice would be a pruning failure
        assert not {p for p, _ in delta_b.lines} & known
        dag.release_entry(machine.mem, root_a)
        dag.release_entry(machine.mem, root_b)


class TestTranslateLine:
    def test_rewrites_references_only(self):
        line = (PlidRef(10, (1,)), 5, 0, PlidRef(20))
        out = translate_line(line, {10: 100, 20: 200})
        assert out == (PlidRef(100, (1,)), 5, 0, PlidRef(200))

    def test_data_only_line_passes_through_unchanged(self):
        line = (1, 2, 3, 4)
        assert translate_line(line, {}) is line

    def test_missing_translation_raises_keyerror(self):
        with pytest.raises(KeyError):
            translate_line((PlidRef(10),), {})


class TestCrossMachineInstall:
    def install_tree(self, src, dst, root):
        """Ship a whole tree between machines; returns the plid map."""
        plid_map = {}
        for plid, line in dag.walk_lines(src.mem.store, root):
            local, _ = dst.install_line(translate_line(line, plid_map))
            plid_map[plid] = local
        return plid_map

    def translated_root(self, plid_map, root):
        if isinstance(root, PlidRef):
            return PlidRef(plid_map[root.plid], root.path)
        return root

    def release_map(self, dst, plid_map):
        for local in plid_map.values():
            dst.mem.decref(local)

    def test_fingerprints_equal_after_install(self, machine, machine_audit):
        other = Machine(machine.config)
        words = [7, 8, 9] * 60
        vsid = machine.create_segment(words)
        entry = machine.segmap.entry(vsid)

        plid_map = self.install_tree(machine, other, entry.root)
        new_root = self.translated_root(plid_map, entry.root)
        dag.retain_entry(other.mem, new_root)  # segmap takes this ref over
        other_vsid = other.segmap.create(new_root, entry.height,
                                         entry.length, entry.flags)
        self.release_map(other, plid_map)

        assert dag.segment_fingerprint(machine, vsid) == \
            dag.segment_fingerprint(other, other_vsid)
        assert other.read_segment(other_vsid) == words
        machine_audit(other, strict=True)

    def test_double_install_dedups_and_keeps_refcounts_exact(
            self, machine, machine_audit):
        """Satellite: identical lines installed twice via export/install."""
        other = Machine(machine.config)
        root, height = build(machine, list(range(128)))

        first = self.install_tree(machine, other, root)
        baseline = other.footprint_lines()
        # the second install is pure dedup: same PLIDs, no new lines
        second = self.install_tree(machine, other, root)
        assert second == first
        assert other.footprint_lines() == baseline
        for plid, line in dag.walk_lines(machine.mem.store, root):
            local, created = other.install_line(translate_line(line, first))
            assert not created and local == first[plid]
            other.mem.decref(local)

        # releasing every counted install reference reclaims everything
        self.release_map(other, first)
        self.release_map(other, second)
        assert other.footprint_lines() == 0
        machine_audit(other, strict=True)
        dag.release_entry(machine.mem, root)

    def test_install_rejects_unknown_children(self, machine):
        other = Machine(machine.config)
        root, _ = build(machine, list(range(64)))
        lines = list(dag.walk_lines(machine.mem.store, root))
        parent = lines[-1][1]  # references children `other` has never seen
        from repro.errors import BadPlidError
        with pytest.raises(BadPlidError):
            other.install_line(parent)
        dag.release_entry(machine.mem, root)


class TestContentFingerprint:
    def test_same_content_same_fingerprint_across_machines(self, machine):
        other = Machine(machine.config)
        a = machine.create_segment([5] * 100)
        b = other.create_segment([5] * 100)
        assert dag.segment_fingerprint(machine, a) == \
            dag.segment_fingerprint(other, b)

    def test_different_content_different_fingerprint(self, machine):
        a = machine.create_segment([5] * 100)
        b = machine.create_segment([5] * 99 + [6])
        assert dag.segment_fingerprint(machine, a) != \
            dag.segment_fingerprint(machine, b)

    def test_empty_segments_agree(self, machine):
        other = Machine(machine.config)
        assert dag.segment_fingerprint(machine, machine.create_segment([])) \
            == dag.segment_fingerprint(other, other.create_segment([]))
