"""Tests for the linearizability checker (memcached sequential spec)."""

from repro.testing.history import (
    UNMATCHABLE,
    HistoryRecorder,
    Operation,
    check_history,
)


def op(client, seq, kind, key=b"k", value=None, expect=None,
       invoked=0, completed=0, result=None):
    """A completed operation with explicit logical timestamps."""
    return Operation(client=client, seq=seq, kind=kind, key=key,
                     value=value, expect=expect, invoked=invoked,
                     completed=completed, result=result)


def pending(client, seq, kind, key=b"k", value=None, expect=None,
            invoked=0):
    """An operation whose response was never observed (reset)."""
    return Operation(client=client, seq=seq, kind=kind, key=key,
                     value=value, expect=expect, invoked=invoked,
                     completed=None, result=None)


class TestSequentialSpec:
    def test_sequential_set_then_get(self):
        history = [
            op(0, 0, "set", value=b"v", invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "get", invoked=2, completed=3, result=("value", b"v")),
        ]
        assert check_history(history).ok

    def test_get_before_any_set_must_miss(self):
        assert check_history(
            [op(0, 0, "get", invoked=0, completed=1,
                result=("miss",))]).ok
        assert not check_history(
            [op(0, 0, "get", invoked=0, completed=1,
                result=("value", b"ghost"))]).ok

    def test_initial_state_respected(self):
        history = [op(0, 0, "get", invoked=0, completed=1,
                      result=("value", b"seeded"))]
        assert check_history(history, initial={b"k": b"seeded"}).ok

    def test_delete_semantics(self):
        history = [
            op(0, 0, "set", value=b"v", invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "delete", invoked=2, completed=3,
               result=("deleted",)),
            op(0, 2, "get", invoked=4, completed=5, result=("miss",)),
        ]
        assert check_history(history).ok
        # a delete of an absent key cannot answer DELETED
        assert not check_history(
            [op(0, 0, "delete", invoked=0, completed=1,
                result=("deleted",))]).ok


class TestConcurrency:
    def test_overlapping_cross_client_reorder_is_legal(self):
        # the set and the get overlap in real time: the get may
        # linearize before the set and miss
        history = [
            op(0, 0, "set", value=b"v", invoked=0, completed=3,
               result=("stored",)),
            op(1, 0, "get", invoked=1, completed=4, result=("miss",)),
        ]
        assert check_history(history).ok

    def test_stale_pipelined_read_same_client_is_caught(self):
        # same intervals, same client: program order makes the get take
        # effect after the set — a miss is the read-after-write fence
        # being broken, and the checker must catch it even though plain
        # real-time linearizability would allow it
        history = [
            op(0, 0, "set", value=b"v", invoked=0, completed=3,
               result=("stored",)),
            op(0, 1, "get", invoked=1, completed=4, result=("miss",)),
        ]
        report = check_history(history)
        assert not report.ok
        assert report.violations[0].key == b"k"
        assert "no linearization" in report.summary()

    def test_two_writers_reader_sees_one_of_them(self):
        history = [
            op(0, 0, "set", value=b"a", invoked=0, completed=5,
               result=("stored",)),
            op(1, 0, "set", value=b"b", invoked=1, completed=6,
               result=("stored",)),
            op(2, 0, "get", invoked=7, completed=8,
               result=("value", b"a")),
        ]
        assert check_history(history).ok
        history[2] = op(2, 0, "get", invoked=7, completed=8,
                        result=("value", b"c"))
        assert not check_history(history).ok

    def test_keys_are_checked_independently(self):
        history = [
            op(0, 0, "set", key=b"a", value=b"v", invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "get", key=b"b", invoked=2, completed=3,
               result=("value", b"ghost")),
        ]
        report = check_history(history)
        assert not report.ok
        assert [v.key for v in report.violations] == [b"b"]


class TestPendingOperations:
    def test_pending_set_may_have_landed(self):
        history = [
            pending(0, 0, "set", value=b"v", invoked=0),
            op(1, 0, "get", invoked=1, completed=2,
               result=("value", b"v")),
        ]
        assert check_history(history).ok

    def test_pending_set_may_have_been_lost(self):
        history = [
            pending(0, 0, "set", value=b"v", invoked=0),
            op(1, 0, "get", invoked=1, completed=2, result=("miss",)),
        ]
        assert check_history(history).ok

    def test_pending_set_cannot_explain_foreign_value(self):
        history = [
            pending(0, 0, "set", value=b"v", invoked=0),
            op(1, 0, "get", invoked=1, completed=2,
               result=("value", b"other")),
        ]
        assert not check_history(history).ok


class TestCasSemantics:
    def test_cas_with_matching_token_stores(self):
        history = [
            op(0, 0, "set", value=b"a", invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "gets", invoked=2, completed=3,
               result=("value", b"a")),
            op(0, 2, "cas", value=b"b", expect=b"a", invoked=4,
               completed=5, result=("stored",)),
            op(0, 3, "get", invoked=6, completed=7,
               result=("value", b"b")),
        ]
        assert check_history(history).ok

    def test_cas_cannot_store_over_changed_value(self):
        # token taken from value a; value is c when the cas runs, with
        # no overlap that could excuse a STORED answer
        history = [
            op(0, 0, "set", value=b"a", invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "gets", invoked=2, completed=3,
               result=("value", b"a")),
            op(0, 2, "set", value=b"c", invoked=4, completed=5,
               result=("stored",)),
            op(0, 3, "cas", value=b"b", expect=b"a", invoked=6,
               completed=7, result=("stored",)),
        ]
        assert not check_history(history).ok

    def test_cas_losing_race_answers_exists(self):
        history = [
            op(0, 0, "set", value=b"a", invoked=0, completed=1,
               result=("stored",)),
            op(0, 1, "gets", invoked=2, completed=3,
               result=("value", b"a")),
            op(1, 0, "set", value=b"c", invoked=4, completed=5,
               result=("stored",)),
            op(0, 2, "cas", value=b"b", expect=b"a", invoked=6,
               completed=7, result=("exists",)),
        ]
        assert check_history(history).ok

    def test_unmatchable_token_never_stores(self):
        base = [op(0, 0, "set", value=b"a", invoked=0, completed=1,
                   result=("stored",))]
        stored = base + [op(0, 1, "cas", value=b"b", expect=UNMATCHABLE,
                            invoked=2, completed=3, result=("stored",))]
        exists = base + [op(0, 1, "cas", value=b"b", expect=UNMATCHABLE,
                            invoked=2, completed=3, result=("exists",))]
        assert not check_history(stored).ok
        assert check_history(exists).ok

    def test_cas_on_absent_key_answers_not_found(self):
        history = [op(0, 0, "cas", value=b"b", expect=b"a", invoked=0,
                      completed=1, result=("not_found",))]
        assert check_history(history).ok


class TestRecorder:
    def test_logical_clock_orders_invocations(self, history_recorder):
        a = history_recorder.invoke(0, 0, "set", b"k", value=b"v")
        b = history_recorder.invoke(1, 0, "get", b"k")
        history_recorder.complete(a, ("stored",))
        history_recorder.complete(b, ("value", b"v"))
        ops = history_recorder.operations()
        assert [o.invoked for o in ops] == [0, 1]
        assert ops[0].completed == 2 and ops[1].completed == 3
        assert check_history(ops).ok

    def test_unanswered_op_stays_pending(self, history_recorder):
        a = history_recorder.invoke(0, 0, "set", b"k", value=b"v")
        assert a.pending and a.result is None
