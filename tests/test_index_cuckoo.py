"""Cuckoo lookup-by-content index: unit, store integration, obs, and
persistence coverage (repro.memory.index + MemoryConfig.index_kind)."""

import pytest

from repro.core.machine import Machine
from repro.core.persistence import machine_image, restore_machine
from repro.memory.dedup_store import DedupStore
from repro.memory.index import (
    MAX_FP_BITS,
    MIN_FP_BITS,
    CuckooIndex,
    compute_fp_bits,
)
from repro.memory.line import encode_line, make_leaf
from repro.obs.registry import MetricsRegistry
from repro.obs import adapters
from repro.params import MachineConfig, MemoryConfig
from repro.testing.auditors import audit_index, audit_machine


def _key(i: int) -> int:
    return CuckooIndex.key_of(b"content-%06d" % i)


def _leaf(i: int):
    return make_leaf((i + 1, (i * 2654435761 + 7) & ((1 << 64) - 1)), 2)


# ----------------------------------------------------------------------
# CuckooIndex unit behaviour


class TestCuckooIndexUnit:
    def _matcher(self, owned):
        """Verification callback: candidate plid must own the probed key
        (the store's full-content compare, modelled)."""
        probe = {}

        def match(plid):
            return owned.get(plid) == probe["key"]

        return probe, match

    def test_roundtrip_insert_get_remove(self):
        index = CuckooIndex(initial_buckets=8, slots_per_bucket=2)
        owned = {}
        probe, match = self._matcher(owned)
        for i in range(64):
            key = _key(i)
            owned[i] = key
            index.insert(key, i)
        assert len(index) == 64
        for i in range(64):
            probe["key"] = owned[i]
            assert index.get(owned[i], match) == i
        probe["key"] = _key(10_000)
        assert index.get(_key(10_000), match) is None
        for i in range(0, 64, 2):
            assert index.remove(owned[i], i)
            assert not index.remove(owned[i], i)  # already gone
        assert len(index) == 32
        probe["key"] = owned[2]
        assert index.get(owned[2], match) is None

    def test_displacement_and_depth_histogram(self):
        index = CuckooIndex(initial_buckets=4, slots_per_bucket=1,
                            max_load=0.99)
        owned = {}
        probe, match = self._matcher(owned)
        for i in range(48):
            owned[i] = _key(i)
            index.insert(owned[i], i)
        # collisions at one-slot buckets force kick paths
        assert index.stats.displacements > 0
        assert sum(index.stats.depth_hist.values()) >= 48
        assert any(depth > 0 for depth in index.stats.depth_hist)
        for i in range(48):
            probe["key"] = owned[i]
            assert index.get(owned[i], match) == i, "entry lost in kicks"

    def test_adaptive_fp_width_growth(self):
        assert compute_fp_bits(0, 0.02) == MIN_FP_BITS
        # widths grow monotonically with occupancy and cap at 16
        widths = [compute_fp_bits(n, 0.02) for n in range(0, 9)]
        assert widths == sorted(widths)
        assert compute_fp_bits(8, 0.0001) == MAX_FP_BITS
        index = CuckooIndex(initial_buckets=2, slots_per_bucket=8,
                            target_fp_rate=0.001, max_load=1.0)
        for i in range(12):
            index.insert(_key(i), i)
        assert index.stats.fp_growth_events > 0
        assert any(w > MIN_FP_BITS for w in index.bucket_width_counts())

    def test_online_resize_serves_during_migration(self):
        # one migrated bucket per op keeps the resize window open across
        # many lookups; every entry must stay reachable throughout
        index = CuckooIndex(initial_buckets=4, slots_per_bucket=2,
                            migrate_step=1)
        owned = {}
        probe, match = self._matcher(owned)
        for i in range(40):
            owned[i] = _key(i)
            index.insert(owned[i], i)
        assert index.stats.resizes_started >= 1
        saw_resizing = False
        for i in range(40):
            saw_resizing = saw_resizing or index.resizing
            probe["key"] = owned[i]
            assert index.get(owned[i], match) == i
        for _ in range(200):  # drive remaining migration to completion
            probe["key"] = owned[0]
            index.get(owned[0], match)
        assert not index.resizing
        assert index.stats.resizes_completed >= 1
        assert index.stats.migrated_entries > 0
        assert len(index) == 40

    def test_stash_absorbs_placement_failure_and_stays_servable(self):
        index = CuckooIndex(initial_buckets=2, slots_per_bucket=1,
                            max_kick_depth=1, max_bfs_nodes=2)
        owned = {}
        probe, match = self._matcher(owned)
        # force placements with resize forbidden: overflow must stash,
        # never refuse or drop
        for i in range(8):
            owned[i] = _key(i)
            index._place(index._active, owned[i], i, allow_resize=False)
        assert index.stats.stash_inserts > 0
        for i in range(8):
            probe["key"] = owned[i]
            assert index.get(owned[i], match) == i
        for i in range(8):
            assert index.remove(owned[i], i)
        assert len(index) == 0

    def test_audit_detects_missing_stale_and_mismatched(self):
        index = CuckooIndex(initial_buckets=8)
        expected = {}
        for i in range(16):
            key = _key(i)
            index.insert(key, i)
            expected[i] = key
        assert index.audit(expected) == []
        # stale: an entry whose plid is no longer live
        del expected[3]
        assert any("stale" in f for f in index.audit(expected))
        expected[3] = _key(3)
        # missing: a live plid the index lost
        index.remove(_key(5), 5)
        assert any("not indexed" in f for f in index.audit(expected))
        index.insert(_key(5), 5)
        # mismatch: live content no longer matching the indexed key
        expected[7] = _key(9_999)
        assert any("does not match" in f for f in index.audit(expected))

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CuckooIndex(initial_buckets=3)
        with pytest.raises(ValueError):
            CuckooIndex(initial_buckets=8, slots_per_bucket=0)


# ----------------------------------------------------------------------
# DedupStore integration


def _cfg(kind, **over):
    base = dict(num_buckets=1 << 6, index_kind=kind, index_buckets=8)
    base.update(over)
    return MemoryConfig(**base)


class TestStoreIntegration:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MemoryConfig(index_kind="nope")
        with pytest.raises(ValueError):
            MemoryConfig(index_buckets=12)
        with pytest.raises(ValueError):
            MemoryConfig(index_target_fp_rate=0.0)

    def test_plid_parity_and_identical_state_across_kinds(self):
        legacy = DedupStore(_cfg("legacy"))
        cuckoo = DedupStore(_cfg("cuckoo"))
        plids = []
        for i in range(600):
            line = _leaf(i)
            pl, cl = legacy.lookup(line)
            pc, cc = cuckoo.lookup(line)
            assert (pl, cl) == (pc, cc)
            plids.append(pl)
        # dedup hits resolve to the same PLIDs under both kinds
        for i in range(0, 600, 7):
            line = _leaf(i)
            assert legacy.lookup(line) == (plids[i], False)
            assert cuckoo.lookup(line) == (plids[i], False)
        # interleaved churn keeps the stores bit-identical
        for i in range(0, 600, 2):
            count = 2 if i % 7 == 0 else 1
            legacy.decref(plids[i], count)
            cuckoo.decref(plids[i], count)
        assert legacy._lines == cuckoo._lines
        assert legacy._refcounts == cuckoo._refcounts
        assert legacy.footprint_bytes() == cuckoo.footprint_bytes()
        assert legacy.index_failures() == []
        assert cuckoo.index_failures() == []
        assert len(cuckoo.index) == cuckoo.footprint_lines()

    def test_cuckoo_beats_legacy_dram_at_overflow_scale(self):
        legacy = DedupStore(_cfg("legacy"))
        cuckoo = DedupStore(_cfg("cuckoo"))
        for i in range(4000):  # ~5x the 64*12 resident capacity
            legacy.lookup(_leaf(i))
            cuckoo.lookup(_leaf(i))
        assert legacy.counters.bucket_overflows > 0
        assert legacy.counters.false_positive_scans > \
            cuckoo.counters.false_positive_scans
        assert cuckoo.stats.total() < legacy.stats.total() / 2

    def test_dealloc_listener_and_overflow_slot_reuse(self):
        store = DedupStore(_cfg("cuckoo", num_buckets=2))
        seen = []
        store.dealloc_listeners.append(seen.append)
        plids = [store.lookup(_leaf(i))[0] for i in range(40)]
        assert store.counters.overflow_allocations > 0
        for plid in plids:
            store.decref(plid)
        assert set(seen) == set(plids)
        assert store.footprint_lines() == 0
        assert len(store.index) == 0
        assert store.index_failures() == []
        # freed overflow slots are recycled, and the index re-learns them
        again = [store.lookup(_leaf(i))[0] for i in range(40)]
        assert set(again) == set(plids)
        assert store.index_failures() == []

    @pytest.mark.parametrize("kind", ["legacy", "cuckoo"])
    def test_corrupt_line_flagged_then_deallocates_cleanly(self, kind):
        store = DedupStore(_cfg(kind))
        plid = store.lookup(_leaf(1))[0]
        store.lookup(_leaf(2))
        store.corrupt_line_for_test(plid, _leaf(999))
        failures = store.index_failures()
        assert failures, "stale index entry for corrupted line not flagged"
        assert any(str(plid) in f for f in failures)
        # dealloc keys off the captured allocation-time encoding, so the
        # corrupted line still unindexes without raising
        store.decref(plid)
        assert store.footprint_lines() == 1
        assert store.index_failures() == []

    @pytest.mark.parametrize("kind", ["legacy", "cuckoo"])
    def test_audit_machine_includes_index(self, kind):
        machine = Machine(MachineConfig(
            memory=MemoryConfig(index_kind=kind, index_buckets=8)))
        vsid = machine.create_segment([i + 1 for i in range(64)])
        assert audit_machine(machine, strict=True).ok
        store = machine.mem.store
        # manually lose an index entry: the auditor must notice
        victim = store.live_plids()[0]
        if kind == "cuckoo":
            enc = store._enc_by_plid[victim]
            assert store.index.remove(CuckooIndex.key_of(enc), victim)
        else:
            enc = store._enc_by_plid[victim]
            store._buckets[store.bucket_of(victim)].by_encoding.pop(enc)
        failures = audit_index(machine)
        assert any("not" in f and str(victim) in f for f in failures)
        assert not audit_machine(machine).ok
        machine.drop_segment(vsid)

    def test_install_line_dedups_through_cuckoo(self):
        src = DedupStore(_cfg("cuckoo"))
        dst = DedupStore(_cfg("cuckoo"))
        plids = [src.lookup(_leaf(i))[0] for i in range(50)]
        for plid in plids:
            line = src.export_line(plid)
            p1, created1 = dst.install_line(line)
            p2, created2 = dst.install_line(line)
            assert created1 and not created2 and p1 == p2
        assert dst.index_failures() == []


# ----------------------------------------------------------------------
# persistence


def test_persistence_roundtrip_rebuilds_cuckoo_index():
    machine = Machine(MachineConfig(
        memory=MemoryConfig(index_kind="cuckoo", index_buckets=8)))
    vsid = machine.create_segment([(i * 31 + 5) for i in range(200)])
    image = machine_image(machine)
    assert image["config"]["index_kind"] == "cuckoo"
    restored = restore_machine(image)
    store = restored.mem.store
    assert store.config.index_kind == "cuckoo"
    assert store.index is not None
    assert len(store.index) == store.footprint_lines()
    assert store.index_failures() == []
    # content lookups after restore dedup to the pre-existing lines
    for plid in list(store.live_plids())[:20]:
        line = store.peek(plid)
        found, created = store.lookup(line, encode_line(line))
        assert (found, created) == (plid, False)
        store.decref(plid)  # release the extra lookup reference
    assert audit_machine(restored, strict=True).ok
    assert restored.read_segment(vsid) == machine.read_segment(vsid)


def test_persistence_legacy_image_defaults_to_legacy_kind():
    machine = Machine()
    machine.create_segment([1, 2, 3, 4])
    image = machine_image(machine)
    del image["config"]["index_kind"]  # image from before the switch
    del image["config"]["index_buckets"]
    del image["config"]["index_slots"]
    restored = restore_machine(image)
    assert restored.mem.store.index is None
    assert audit_machine(restored, strict=True).ok


# ----------------------------------------------------------------------
# observability


def test_register_index_exposes_cuckoo_metrics():
    store = DedupStore(_cfg("cuckoo"))
    registry = MetricsRegistry()
    adapters.register_index(registry, store)
    for i in range(200):
        store.lookup(_leaf(i))
    store.lookup(_leaf(0))
    text = registry.exposition()
    for metric in ("repro_index_kind_info", "repro_index_store_ops_total",
                   "repro_index_cuckoo_events_total",
                   "repro_index_displacement_depth_total",
                   "repro_index_buckets_by_fp_bits",
                   "repro_index_occupancy"):
        assert metric in text, metric
    events = registry.get("repro_index_cuckoo_events_total") \
        .snapshot_value()
    assert events["inserts"] == store.index.stats.inserts == 200
    assert events["hits"] == 1
    store_ops = registry.get("repro_index_store_ops_total") \
        .snapshot_value()
    assert store_ops["lookups"] == store.counters.lookups == 201
    widths = registry.get("repro_index_buckets_by_fp_bits") \
        .snapshot_value()
    assert sum(widths.values()) == store.index.num_buckets


def test_register_index_legacy_only_store_counters():
    store = DedupStore(_cfg("legacy"))
    registry = MetricsRegistry()
    adapters.register_index(registry, store)
    text = registry.exposition()
    assert "repro_index_store_ops_total" in text
    assert "repro_index_cuckoo_events_total" not in text
    assert registry.get("repro_index_kind_info") \
        .snapshot_value() == {"legacy": 1}


def test_router_defaults_to_cuckoo_and_snapshots_index():
    from repro.net.router import ShardRouter

    router = ShardRouter(shard_count=1)
    assert router.machine.mem.store.config.index_kind == "cuckoo"
    snap = router.snapshot()
    assert snap["index"]["kind"] == "cuckoo"
    assert "cuckoo" in snap["index"]
    legacy = ShardRouter(shard_count=1, index_kind="legacy")
    assert legacy.machine.mem.store.index is None
    assert legacy.snapshot()["index"]["kind"] == "legacy"
