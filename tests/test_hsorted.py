"""Tests for the string-ordered two-array map (section 4.1)."""

import pytest

from repro.structures import HSortedMap


@pytest.fixture
def smap(machine):
    return HSortedMap.create(machine)


class TestSortedMap:
    def test_put_get(self, smap):
        smap.put(b"banana", b"1")
        smap.put(b"apple", b"2")
        assert smap.get(b"apple") == b"2"
        assert smap.get(b"missing") is None
        assert len(smap) == 2

    def test_ordered_iteration(self, smap):
        for key in (b"pear", b"apple", b"mango", b"banana"):
            smap.put(key, b"v-" + key)
        assert [k for k, _ in smap.items_ordered()] == \
            [b"apple", b"banana", b"mango", b"pear"]

    def test_update_does_not_duplicate_index(self, smap):
        smap.put(b"k", b"1")
        smap.put(b"k", b"2")
        assert [k for k, _ in smap.items_ordered()] == [b"k"]
        assert smap.get(b"k") == b"2"

    def test_delete_removes_from_order(self, smap):
        for key in (b"a", b"b", b"c"):
            smap.put(key, b"v")
        assert smap.delete(b"b")
        assert [k for k, _ in smap.items_ordered()] == [b"a", b"c"]
        assert not smap.delete(b"b")

    def test_range_scan(self, smap):
        for key in (b"alpha", b"beta", b"delta", b"gamma", b"omega"):
            smap.put(key, b"v")
        got = [k for k, _ in smap.range(b"beta", b"omega")]
        assert got == [b"beta", b"delta", b"gamma"]

    def test_first(self, smap):
        assert smap.first() is None
        smap.put(b"zz", b"1")
        smap.put(b"aa", b"2")
        assert smap.first() == (b"aa", b"2")

    def test_binary_key_order(self, smap):
        keys = [bytes([b]) for b in (200, 3, 100, 0, 255)]
        for key in keys:
            smap.put(key, b"v")
        assert [k for k, _ in smap.items_ordered()] == sorted(keys)

    def test_index_references_dedup_against_map(self, machine, smap):
        # the order index stores references, not key copies: adding it
        # on top of the map costs little beyond the index lines
        long_key = bytes(range(200))
        smap.put(long_key, b"v")
        lines = machine.footprint_lines()
        # the key's content lines exist once, shared by map and index
        from repro.analysis.inspect import sharing_matrix
        assert lines > 0

    def test_drop_reclaims(self, machine):
        smap = HSortedMap.create(machine)
        smap.put(b"k" * 50, bytes(range(100)))
        smap.drop()
        assert machine.footprint_lines() == 0
