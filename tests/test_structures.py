"""Unit tests for the typed structures (strings, arrays, maps, queues,
counters)."""

import pytest

from repro.structures import HArray, HCounterArray, HMap, HQueue, HString


class TestHString:
    def test_roundtrip(self, machine):
        s = HString.create(machine, b"hello world")
        assert s.to_bytes() == b"hello world"
        assert len(s) == 11

    def test_dedup_equal_strings(self, machine):
        s1 = HString.create(machine, b"the same content, repeated")
        lines = machine.footprint_lines()
        s2 = HString.create(machine, b"the same content, repeated")
        assert machine.footprint_lines() == lines
        assert s1.equals(s2)

    def test_single_instruction_compare(self, machine):
        a = HString.create(machine, b"x" * 500)
        b = HString.create(machine, b"x" * 500)
        c = HString.create(machine, b"x" * 499 + b"y")
        assert a.equals(b)
        assert not a.equals(c)

    def test_indexing(self, machine):
        s = HString.create(machine, b"abcdefghij")
        assert s[0] == ord("a")
        assert s[9] == ord("j")
        with pytest.raises(IndexError):
            s[10]

    def test_aligned_prefix_shares_lines(self, machine):
        long = HString.create(machine, bytes(range(64)) * 4)
        lines = machine.footprint_lines()
        long.substring(0, 128)
        # the prefix reuses the long string's leaf lines
        assert machine.footprint_lines() - lines <= 3

    def test_concat(self, machine):
        a = HString.create(machine, b"foo|bar|")
        b = HString.create(machine, b"baz")
        assert a.concat(b).to_bytes() == b"foo|bar|baz"

    def test_drop(self, machine):
        s = HString.create(machine, b"bye" * 100)
        s.drop()
        assert machine.footprint_lines() == 0


class TestHArray:
    def test_basics(self, machine):
        a = HArray.create(machine, [5, 6, 7])
        assert len(a) == 3
        assert a[1] == 6
        assert a[-1] == 7
        a[1] = 60
        assert a.to_list() == [5, 60, 7]

    def test_append_extend(self, machine):
        a = HArray.create(machine)
        for i in range(10):
            a.append(i * i)
        a.extend([900, 1000])
        assert len(a) == 12
        assert a[11] == 1000

    def test_index_error(self, machine):
        a = HArray.create(machine, [1])
        with pytest.raises(IndexError):
            a[1]
        with pytest.raises(IndexError):
            a[-2]

    def test_iter_nonzero_sparse(self, machine):
        a = HArray.create(machine, [0] * 100)
        a[17] = 5
        a[83] = 6
        assert list(a.iter_nonzero()) == [(17, 5), (83, 6)]

    def test_equals(self, machine):
        a = HArray.create(machine, [1, 2, 3])
        b = HArray.create(machine, [1, 2, 3])
        assert a.equals(b)
        b[0] = 9
        assert not a.equals(b)


class TestHMap:
    def test_put_get_delete(self, machine):
        m = HMap.create(machine)
        assert m.put(b"alpha", b"1")
        assert m.put(b"beta", b"2")
        assert m.get(b"alpha") == b"1"
        assert m.get(b"beta") == b"2"
        assert m.delete(b"alpha")
        assert m.get(b"alpha") is None
        assert len(m) == 1

    def test_update_in_place(self, machine):
        m = HMap.create(machine)
        m.put(b"k", b"v1")
        assert not m.put(b"k", b"v2")  # not new
        assert m.get(b"k") == b"v2"
        assert len(m) == 1

    def test_empty_value_distinct_from_absent(self, machine):
        m = HMap.create(machine)
        m.put(b"k", b"")
        assert m.get(b"k") == b""
        assert m.contains(b"k")
        assert m.get(b"other") is None

    def test_large_values(self, machine):
        m = HMap.create(machine)
        blob = bytes(range(256)) * 8
        m.put(b"big", blob)
        assert m.get(b"big") == blob

    def test_similar_keys_do_not_collide(self, machine):
        m = HMap.create(machine)
        m.put(b"key", b"1")
        m.put(b"key\x00", b"2")  # same packed words, different length
        m.put(b"kex", b"3")
        assert m.get(b"key") == b"1"
        assert m.get(b"key\x00") == b"2"
        assert m.get(b"kex") == b"3"

    def test_items_roundtrip(self, machine):
        m = HMap.create(machine)
        data = {b"a": b"1", b"bb": b"22", b"ccc": b"333", b"d" * 30: b"4" * 99}
        for k, v in data.items():
            m.put(k, v)
        assert dict(m.items()) == data

    def test_value_storage_dedups(self, machine):
        m = HMap.create(machine)
        blob = bytes(range(128))
        m.put(b"k1", blob)
        lines = machine.footprint_lines()
        m.put(b"k2", blob)  # same value content: shares the value DAG
        assert machine.footprint_lines() - lines <= 4

    def test_drop_reclaims_values(self, machine):
        m = HMap.create(machine)
        m.put(b"k", bytes(range(200)))
        m.drop()
        assert machine.footprint_lines() == 0

    def test_many_keys(self, machine):
        m = HMap.create(machine)
        for i in range(60):
            m.put(b"key-%d" % i, b"value-%d" % i)
        assert len(m) == 60
        for i in range(60):
            assert m.get(b"key-%d" % i) == b"value-%d" % i


class TestHQueue:
    def test_fifo_order(self, machine):
        q = HQueue.create(machine)
        for item in (b"1", b"2", b"3"):
            q.enqueue(item)
        assert [q.dequeue() for _ in range(3)] == [b"1", b"2", b"3"]

    def test_empty_dequeue(self, machine):
        q = HQueue.create(machine)
        assert q.dequeue() is None
        assert q.peek() is None
        assert len(q) == 0

    def test_interleaved(self, machine):
        q = HQueue.create(machine)
        q.enqueue(b"a")
        q.enqueue(b"b")
        assert q.dequeue() == b"a"
        q.enqueue(b"c")
        assert q.dequeue() == b"b"
        assert q.dequeue() == b"c"

    def test_empty_payload(self, machine):
        q = HQueue.create(machine)
        q.enqueue(b"")
        assert q.dequeue() == b""

    def test_dequeued_items_reclaimed(self, machine):
        q = HQueue.create(machine)
        q.enqueue(bytes(range(250)))
        lines_full = machine.footprint_lines()
        q.dequeue()
        assert machine.footprint_lines() < lines_full


class TestHCounterArray:
    def test_add_and_get(self, machine):
        c = HCounterArray.create(machine, 8)
        c.add(3, 10)
        c.add(3, -2)
        assert c.get(3) == 8

    def test_initial_values(self, machine):
        c = HCounterArray.create(machine, 4, [1, 2])
        assert c.snapshot_values() == [1, 2, 0, 0]

    def test_add_many_atomic(self, machine):
        c = HCounterArray.create(machine, 4)
        c.add_many({0: 1, 1: 2, 2: 3})
        assert c.snapshot_values() == [1, 2, 3, 0]

    def test_wrapping(self, machine):
        c = HCounterArray.create(machine, 1)
        c.add(0, (1 << 64) - 1)
        c.add(0, 1)
        assert c.get(0) == 0
