"""Tests for the seeded deterministic fault injector."""

import asyncio

import pytest

from repro.testing.faults import (
    COMMIT_STALL,
    CONN_RESET,
    FLUSH_DELAY,
    POINTS,
    READ_SPLIT,
    WRITE_SPLIT,
    FaultInjector,
    FaultPlan,
    InjectedReset,
)

ALL_ON = {point: 1.0 for point in POINTS}
ALL_OFF = {point: 0.0 for point in POINTS}


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(42, {READ_SPLIT: 0.5})
        b = FaultPlan(42, {READ_SPLIT: 0.5})
        for scope in range(4):
            for seq in range(50):
                assert a.fires(READ_SPLIT, scope, seq) \
                    == b.fires(READ_SPLIT, scope, seq)
                assert a.amount(READ_SPLIT, scope, seq, 1, 9) \
                    == b.amount(READ_SPLIT, scope, seq, 1, 9)

    def test_different_seeds_differ_somewhere(self):
        a = FaultPlan(1, {READ_SPLIT: 0.5})
        b = FaultPlan(2, {READ_SPLIT: 0.5})
        decisions_a = [a.fires(READ_SPLIT, 0, seq) for seq in range(200)]
        decisions_b = [b.fires(READ_SPLIT, 0, seq) for seq in range(200)]
        assert decisions_a != decisions_b

    def test_decisions_independent_of_query_order(self):
        # pure function of (seed, point, scope, seq): asking in any
        # order, or repeatedly, never changes an answer
        plan = FaultPlan(7, {COMMIT_STALL: 0.5})
        forward = [plan.fires(COMMIT_STALL, 0, seq) for seq in range(30)]
        backward = [plan.fires(COMMIT_STALL, 0, seq)
                    for seq in reversed(range(30))]
        assert forward == list(reversed(backward))

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(3, ALL_OFF)
        assert not any(plan.fires(point, 0, seq)
                       for point in POINTS for seq in range(100))

    def test_rate_one_always_fires(self):
        plan = FaultPlan(3, ALL_ON)
        assert all(plan.fires(point, 0, seq)
                   for point in POINTS for seq in range(100))

    def test_rate_roughly_honored(self):
        plan = FaultPlan(5, {READ_SPLIT: 0.3})
        fired = sum(plan.fires(READ_SPLIT, 0, seq) for seq in range(2000))
        assert 0.2 < fired / 2000 < 0.4

    def test_amount_within_bounds(self):
        plan = FaultPlan(9)
        for seq in range(200):
            amount = plan.amount(FLUSH_DELAY, 0, seq, 2, 6)
            assert 2 <= amount <= 6
        assert plan.amount(FLUSH_DELAY, 0, 0, 4, 4) == 4

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(0, {"bogus.point": 1.0})

    def test_describe_is_stable(self):
        a = FaultPlan(11, {CONN_RESET: 0.1}, max_stall=3)
        b = FaultPlan(11, {CONN_RESET: 0.1}, max_stall=3)
        assert a.describe() == b.describe()
        assert a.describe()[0] == "plan seed=11 max_stall=3"


class TestFaultInjector:
    def test_connection_scopes_increment(self, fault_injector):
        injector = fault_injector()
        assert [injector.next_connection() for _ in range(3)] == [0, 1, 2]

    def test_read_split_preserves_bytes(self, fault_injector):
        injector = fault_injector(seed=1, rates={READ_SPLIT: 1.0})
        data = b"set k 0 0 5\r\nhello\r\n"
        first = injector.on_read(0, data)
        rest = injector.held_bytes(0)
        assert first + rest == data
        assert 0 < len(first) < len(data)
        # held bytes are delivered exactly once
        assert injector.held_bytes(0) == b""

    def test_read_split_off_passes_through(self, fault_injector):
        injector = fault_injector(seed=1, rates=ALL_OFF)
        assert injector.on_read(0, b"get k\r\n") == b"get k\r\n"
        assert injector.held_bytes(0) == b""

    def test_after_dispatch_raises_injected_reset(self, fault_injector):
        injector = fault_injector(seed=2, rates={CONN_RESET: 1.0})
        with pytest.raises(InjectedReset):
            injector.after_dispatch(0, b"set")
        # an injected reset must be caught by ConnectionResetError
        # handlers (the server treats it like a real peer reset)
        assert issubclass(InjectedReset, ConnectionResetError)
        assert injector.fired[CONN_RESET] == 1

    def test_split_write_reassembles(self, fault_injector):
        injector = fault_injector(seed=4, rates={WRITE_SPLIT: 1.0})
        payload = b"VALUE k 0 5\r\nhello\r\nEND\r\n"
        chunks = injector.split_write(0, payload)
        assert len(chunks) == 2
        assert b"".join(chunks) == payload

    def test_async_hooks_fire_and_count(self, fault_injector):
        injector = fault_injector(seed=6, rates=ALL_ON, max_stall=3)

        async def go():
            await injector.before_flush(0)
            await injector.before_commit(1)

        asyncio.run(go())
        assert injector.fired[FLUSH_DELAY] == 1
        assert injector.fired[COMMIT_STALL] == 1

    def test_two_injectors_same_plan_agree(self):
        plan = FaultPlan(8, {CONN_RESET: 0.3})
        a, b = FaultInjector(plan), FaultInjector(plan)

        def resets(injector):
            out = []
            for seq in range(40):
                try:
                    injector.after_dispatch(0, b"set")
                    out.append(False)
                except InjectedReset:
                    out.append(True)
            return out

        assert resets(a) == resets(b)
