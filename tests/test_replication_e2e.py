"""End-to-end replication over real sockets: leader, follower, serving.

Each test stands up the full stack — a sharded memcached server, a
replication leader tailing its router, a follower replicating into its
own machine, and (where relevant) the follower's serving front — on
ephemeral localhost ports, then checks the PR's convergence property via
machine-independent segment fingerprints.
"""

import asyncio

from repro.core.persistence import load_machine_file, save_machine_file
from repro.net.server import MemcachedServer
from repro.replication import (
    FollowerServer,
    ReplicationFollower,
    ReplicationLeader,
)
from repro.replication import wire
from repro.segments import dag
from repro.testing.auditors import audit_machine

CRLF = b"\r\n"


async def request(port, payload):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    await asyncio.sleep(0.05)
    data = await reader.read(1 << 16)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    return data


def leader_fingerprints(leader):
    return {s: dag.segment_fingerprint(leader.machine, v)
            for s, v in leader.streams().items()}


async def wait_converged(leader, follower, timeout=10.0):
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        fps = leader_fingerprints(leader)
        if fps and fps == follower.fingerprints():
            return True
        await asyncio.sleep(0.02)
    return False


class ReplicatedStack:
    """Leader serving stack + one follower, torn down cleanly."""

    def __init__(self, shards=2, lag_window=256, with_front=False,
                 follower_kwargs=None):
        self.shards = shards
        self.lag_window = lag_window
        self.with_front = with_front
        self.follower_kwargs = follower_kwargs or {}
        self.front = None

    async def __aenter__(self):
        self.server = MemcachedServer(port=0, shard_count=self.shards)
        await self.server.start()
        self.leader = ReplicationLeader(
            self.server.router, lag_window=self.lag_window,
            heartbeat_interval=None)
        await self.leader.start()
        self.follower = ReplicationFollower(
            "127.0.0.1", self.leader.port, reconnect_delay=0.01,
            **self.follower_kwargs)
        await self.follower.start()
        if self.with_front:
            self.front = FollowerServer(self.follower, "127.0.0.1",
                                        self.server.port)
            await self.front.start()
        return self

    async def __aexit__(self, *exc):
        if self.front is not None:
            await self.front.stop()
        await self.follower.stop()
        await self.leader.stop()
        await self.server.shutdown()

    async def put(self, key, value):
        resp = await request(self.server.port, b"set %s 0 0 %d\r\n%s\r\n"
                             % (key, len(value), value))
        assert resp == b"STORED" + CRLF, resp

    async def fill(self, count, salt=b""):
        for i in range(count):
            await self.put(b"key-%s%d" % (salt, i), b"value-%d" % (i % 5))
        await self.server.router.drain()


class TestConvergence:
    def test_initial_sync_and_incremental_deltas(self):
        async def go():
            async with ReplicatedStack() as stack:
                assert await wait_converged(stack.leader, stack.follower), \
                    "empty-state sync"
                await stack.fill(30)
                assert await wait_converged(stack.leader, stack.follower), \
                    "incremental deltas"
                # a second wave ships only new structure
                shipped = stack.leader.metrics.lines_shipped
                await stack.fill(30)  # identical writes: pure dedup
                assert await wait_converged(stack.leader, stack.follower)
                return stack, shipped

        stack, shipped_once = asyncio.run(go())
        assert stack.leader.metrics.lines_shipped >= shipped_once > 0
        assert stack.follower.metrics.root_advances > 0
        assert stack.follower.metrics.acks > 0

    def test_follower_machine_audits_clean_after_disconnect(self):
        async def go():
            async with ReplicatedStack() as stack:
                await stack.fill(25)
                assert await wait_converged(stack.leader, stack.follower)
            # context exit stopped everything and released the pins
            return stack.follower.machine

        machine = asyncio.run(go())
        audit_machine(machine, strict=True).raise_if_failed()

    def test_overwrites_and_deletes_keep_converging(self):
        async def go():
            async with ReplicatedStack() as stack:
                await stack.fill(20)
                await request(stack.server.port, b"delete key-3\r\n")
                for i in range(20):
                    await stack.put(b"key-%d" % i, b"rewritten-%d" % (i % 3))
                await stack.server.router.drain()
                assert await wait_converged(stack.leader, stack.follower)
                return stack

        stack = asyncio.run(go())
        # the overwritten structure was deallocated on the leader, so
        # the follower must have been told to drop those translations
        assert stack.follower.metrics.forgets > 0
        assert stack.follower.metrics.forgets == stack.leader.metrics.forgets

    def test_flush_all_replicates_the_segment_swap(self):
        async def go():
            async with ReplicatedStack() as stack:
                await stack.fill(10)
                assert await wait_converged(stack.leader, stack.follower)
                resp = await request(stack.server.port, b"flush_all\r\n")
                assert resp == b"OK" + CRLF
                await stack.server.router.drain()
                assert await wait_converged(stack.leader, stack.follower), \
                    "follower must follow the backend's new segment"

        asyncio.run(go())

    def test_forced_resync_repairs_and_reconverges(self):
        async def go():
            async with ReplicatedStack() as stack:
                await stack.fill(15)
                assert await wait_converged(stack.leader, stack.follower)
                session = stack.leader._sessions[0]
                session.needs_resync = True
                session.wake.set()
                await stack.fill(5, salt=b"x")
                assert await wait_converged(stack.leader, stack.follower)
                return stack

        stack = asyncio.run(go())
        assert stack.leader.metrics.resets >= 1
        assert stack.follower.metrics.resets >= 1
        # the resync re-ships lines the follower already had: pure dedup
        assert stack.follower.metrics.lines_deduped_on_arrival > 0


class TestFollowerServing:
    def test_local_snapshot_reads_and_write_forwarding(self):
        async def go():
            async with ReplicatedStack(with_front=True) as stack:
                await stack.fill(12)
                assert await wait_converged(stack.leader, stack.follower)
                local = await request(stack.front.port, b"get key-7\r\n")
                assert b"value-2" in local
                # a write lands on the leader and replicates back
                resp = await request(stack.front.port,
                                     b"set fwd 0 0 5\r\nhello\r\n")
                assert resp == b"STORED" + CRLF
                await stack.server.router.drain()
                assert await wait_converged(stack.leader, stack.follower)
                assert b"hello" in await request(stack.front.port,
                                                b"get fwd\r\n")
                # content-identity CAS tokens agree between the replicas
                on_leader = await request(stack.server.port,
                                          b"gets key-4\r\n")
                on_follower = await request(stack.front.port,
                                            b"gets key-4\r\n")
                assert on_leader == on_follower
                stats = await request(stack.front.port, b"stats\r\n")
                assert b"replication_root_advances" in stats
                assert b"VERSION repro-hicamp-follower" in await request(
                    stack.front.port, b"version\r\n")

        asyncio.run(go())

    def test_reads_before_any_sync_miss_cleanly(self):
        async def go():
            follower = ReplicationFollower("127.0.0.1", 1,  # nothing there
                                           reconnect_delay=5.0)
            front = FollowerServer(follower, "127.0.0.1", 1)
            await front.start()
            try:
                assert await request(front.port, b"get nothing\r\n") == \
                    b"END" + CRLF
                # writes cannot be forwarded: upstream is down
                resp = await request(front.port, b"set k 0 0 1\r\nv\r\n")
                assert resp.startswith(b"SERVER_ERROR")
            finally:
                await front.stop()
                await follower.stop()

        asyncio.run(go())


class TestWarmStart:
    def test_checkpointed_follower_seeds_without_reshipping(self, tmp_path):
        path = str(tmp_path / "follower.json.gz")

        async def first_run():
            async with ReplicatedStack() as stack:
                await stack.fill(25)
                assert await wait_converged(stack.leader, stack.follower)
            save_machine_file(
                stack.follower.machine, path,
                extra={"replication_streams":
                       {str(s): v
                        for s, v in stack.follower.streams.items()}})
            return stack.server, stack.leader

        async def second_run(server):
            leader = ReplicationLeader(server.router,
                                       heartbeat_interval=None)
            await leader.start()
            machine, extra = load_machine_file(path)
            streams = {int(s): v for s, v in
                       extra["replication_streams"].items()}
            follower = ReplicationFollower("127.0.0.1", leader.port,
                                           machine=machine, streams=streams,
                                           reconnect_delay=0.01)
            await follower.start()
            try:
                loop = asyncio.get_event_loop()
                deadline = loop.time() + 10.0
                while len(follower.applied_seq) < len(leader.streams()):
                    assert loop.time() < deadline, "warm handshake timeout"
                    await asyncio.sleep(0.02)
                assert await wait_converged(leader, follower)
            finally:
                await follower.stop()
                await leader.stop()
                await server.shutdown()
            return leader, follower

        async def go():
            server, _ = await first_run()
            return await second_run(server)

        leader2, follower2 = asyncio.run(go())
        # the SEED path paired the PLID spaces without shipping content
        assert leader2.metrics.lines_shipped == 0
        assert leader2.metrics.seed_lines > 0
        assert follower2.metrics.seed_lines == leader2.metrics.seed_lines
        audit_machine(follower2.machine, strict=True).raise_if_failed()


class FrameSink:
    """Captures frames the follower writes in unit-level handler tests."""

    def __init__(self):
        self.data = b""

    def write(self, blob):
        self.data += blob

    def frames(self):
        return wire.LengthPrefixedDecoder().feed(self.data)


class TestNackPath:
    def test_advance_with_unknown_root_nacks(self):
        follower = ReplicationFollower("127.0.0.1", 1)
        follower.streams[0] = follower.machine.create_segment([])
        sink = FrameSink()
        payload = wire.encode_advance_payload(
            0, 7, 1, wire.PlidRef(999_999), 3, 64)
        follower._handle(sink, wire.ROOT_ADVANCE, payload)
        frames = sink.frames()
        assert [f[0] for f in frames] == [wire.NACK]
        doc = wire.decode_json_payload(frames[0][1])
        assert doc["missing"] == 999_999
        assert follower.metrics.nacks == 1
        # nothing applied: the local segment still has its empty root
        assert follower.machine.segmap.entry(follower.streams[0]).root == 0

    def test_line_with_unknown_child_nacks(self):
        follower = ReplicationFollower("127.0.0.1", 1)
        sink = FrameSink()
        payload = wire.encode_line_payload(5, (wire.PlidRef(424242), 0))
        follower._handle(sink, wire.LINE, payload)
        assert [f[0] for f in sink.frames()] == [wire.NACK]
        assert follower.plid_map == {}
