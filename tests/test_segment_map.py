"""Unit tests for the virtual segment map."""

import pytest

from repro.errors import BadVsidError, ReadOnlyError
from repro.segments import dag
from repro.segments.segment_map import SegmentFlags, SegmentMap


@pytest.fixture
def segmap(mem):
    return SegmentMap(mem)


def build(mem, words):
    return dag.build_segment(mem, words)


class TestLifecycle:
    def test_create_and_entry(self, mem, segmap):
        root, height = build(mem, [1, 2, 3])
        vsid = segmap.create(root, height, 3)
        entry = segmap.entry(vsid)
        assert entry.height == height and entry.length == 3

    def test_vsids_are_distinct(self, segmap):
        assert segmap.create() != segmap.create()

    def test_unknown_vsid_raises(self, segmap):
        with pytest.raises(BadVsidError):
            segmap.entry(424242)

    def test_drop_releases_content(self, mem, segmap):
        root, height = build(mem, list(range(100, 164)))
        vsid = segmap.create(root, height, 64)
        assert mem.footprint_lines() > 0
        segmap.drop(vsid)
        assert mem.footprint_lines() == 0
        assert not segmap.exists(vsid)

    def test_len_counts_entries(self, segmap):
        a = segmap.create()
        segmap.create()
        segmap.drop(a)
        assert len(segmap) == 1


class TestCas:
    def test_cas_success_swaps_root(self, mem, segmap):
        root, h = build(mem, [1, 2, 3])
        vsid = segmap.create(root, h, 3)
        new_root, nh = build(mem, [9, 9, 9])
        assert segmap.cas_root(vsid, root, h, new_root, nh, 3)
        entry = segmap.entry(vsid)
        assert dag.entry_key(entry.root) == dag.entry_key(new_root)
        assert entry.version == 1

    def test_cas_failure_keeps_old(self, mem, segmap):
        root, h = build(mem, [1, 2, 3])
        vsid = segmap.create(root, h, 3)
        stale, sh = build(mem, [7, 7, 7])
        new_root, nh = build(mem, [9, 9, 9])
        assert not segmap.cas_root(vsid, stale, sh, new_root, nh, 3)
        assert dag.entry_key(segmap.entry(vsid).root) == dag.entry_key(root)
        # the loser cleans up its references
        dag.release_entry(mem, stale)
        dag.release_entry(mem, new_root)

    def test_cas_failure_counted(self, mem, segmap):
        root, h = build(mem, [1, 2, 3])
        vsid = segmap.create(root, h, 3)
        stale, sh = build(mem, [7, 7, 7])
        new_root, nh = build(mem, [9, 9, 9])
        segmap.cas_root(vsid, stale, sh, new_root, nh, 3)
        assert segmap.cas_attempts == 1 and segmap.cas_failures == 1
        dag.release_entry(mem, stale)
        dag.release_entry(mem, new_root)

    def test_old_content_reclaimed_after_swap(self, mem, segmap):
        root, h = build(mem, list(range(500, 600)))
        vsid = segmap.create(root, h, 100)
        new_root, nh = build(mem, [1])
        assert segmap.cas_root(vsid, root, h, new_root, nh, 1)
        # the old 100-word DAG is unreferenced now
        assert mem.footprint_lines() <= 2
        mem.store.check_refcounts()


class TestReadOnly:
    def test_read_only_share_sees_snapshot(self, mem, segmap):
        root, h = build(mem, [1, 2, 3])
        vsid = segmap.create(root, h, 3)
        ro = segmap.share_read_only(vsid)
        assert segmap.is_read_only(ro)
        assert not segmap.is_read_only(vsid)
        # the owner moves on; the read-only view keeps its version
        new_root, nh = build(mem, [5, 5, 5])
        segmap.set_root(vsid, new_root, nh, 3)
        assert dag.entry_key(segmap.entry(ro).root) == dag.entry_key(root)

    def test_read_only_rejects_update(self, mem, segmap):
        root, h = build(mem, [1, 2, 3])
        vsid = segmap.create(root, h, 3)
        ro = segmap.share_read_only(vsid)
        other, oh = build(mem, [4])
        with pytest.raises(ReadOnlyError):
            segmap.set_root(ro, other, oh, 1)
        with pytest.raises(ReadOnlyError):
            segmap.cas_root(ro, root, h, other, oh, 1)
        dag.release_entry(mem, other)

    def test_flags_preserved(self, mem, segmap):
        vsid = segmap.create(flags=SegmentFlags.MERGE_UPDATE)
        ro = segmap.share_read_only(vsid)
        assert segmap.entry(ro).flags & SegmentFlags.MERGE_UPDATE
        assert segmap.entry(ro).flags & SegmentFlags.READ_ONLY


class TestWeakReferences:
    def test_alias_tracks_live_target(self, mem, segmap):
        root, h = build(mem, [1, 2, 3])
        vsid = segmap.create(root, h, 3)
        alias = segmap.create_weak_alias(vsid)
        assert dag.entry_key(segmap.entry(alias).root) == dag.entry_key(root)
        # tracks updates, unlike a read-only share
        new_root, nh = build(mem, [9, 9])
        segmap.set_root(vsid, new_root, nh, 2)
        assert dag.entry_key(segmap.entry(alias).root) == \
            dag.entry_key(segmap.entry(vsid).root)

    def test_alias_does_not_pin_content(self, mem, segmap):
        root, h = build(mem, list(range(100, 200)))
        vsid = segmap.create(root, h, 100)
        alias = segmap.create_weak_alias(vsid)
        segmap.drop(vsid)
        # content reclaimed despite the alias; alias reads as empty
        assert mem.footprint_lines() == 0
        entry = segmap.entry(alias)
        assert entry.root == 0 and entry.length == 0

    def test_alias_is_read_only(self, mem, segmap):
        root, h = build(mem, [1])
        vsid = segmap.create(root, h, 1)
        alias = segmap.create_weak_alias(vsid)
        other, oh = build(mem, [2])
        with pytest.raises(ReadOnlyError):
            segmap.set_root(alias, other, oh, 1)
        dag.release_entry(mem, other)

    def test_dropping_alias_leaves_target(self, mem, segmap):
        root, h = build(mem, [1, 2])
        vsid = segmap.create(root, h, 2)
        alias = segmap.create_weak_alias(vsid)
        segmap.drop(alias)
        assert not segmap.exists(alias)
        assert dag.entry_key(segmap.entry(vsid).root) == dag.entry_key(root)
        segmap.drop(vsid)
        assert mem.footprint_lines() == 0

    def test_alias_of_unknown_vsid_rejected(self, segmap):
        with pytest.raises(BadVsidError):
            segmap.create_weak_alias(999)
