"""Unit tests for the analytical models and reporting helpers."""

import pytest

from repro.analysis.concurrent_model import ConcurrencyModel, simulate_conflicts
from repro.analysis.reporting import format_table, ratio_series, summarize_ratios


class TestConcurrencyModel:
    def test_paper_headline_numbers(self):
        model = ConcurrencyModel()  # N=1e6, LS=16, 50ns, 200K cmd/s, 10:1
        assert model.map_update_time_us == pytest.approx(2.0, abs=0.02)
        assert model.conflict_probability == pytest.approx(0.04, abs=0.001)
        assert model.merge_latency_ns == 200.0
        assert model.set_interval_us == pytest.approx(50.0)

    def test_billion_kvps(self):
        model = ConcurrencyModel(n_kvps=10**9)
        assert model.conflict_probability == pytest.approx(0.06, abs=0.001)

    def test_line_size_scales_levels(self):
        base = ConcurrencyModel()
        half = ConcurrencyModel(line_bytes=32)
        assert half.dag_levels == pytest.approx(base.dag_levels / 2)

    def test_monte_carlo_matches_closed_form(self):
        model = ConcurrencyModel()
        sim = simulate_conflicts(model, n_sets=200_000, seed=1)
        assert sim == pytest.approx(model.conflict_probability, abs=0.005)

    def test_monte_carlo_deterministic(self):
        model = ConcurrencyModel()
        assert (simulate_conflicts(model, n_sets=5000, seed=3)
                == simulate_conflicts(model, n_sets=5000, seed=3))


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [100, 0.125]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bbb" in lines[1]
        assert "2.500" in text and "0.125" in text

    def test_ratio_series_log_bars(self):
        text = ratio_series([(10, 0.5), (20, 2.0), (30, 1.0)], title="F")
        assert "-1.00" in text  # log2(0.5)
        assert "1.00" in text   # log2(2)
        # bars point opposite ways around the y=1 axis
        assert "." in text and "#" in text

    def test_ratio_series_handles_zero(self):
        text = ratio_series([(1, 0.0)])
        assert "?" in text

    def test_summarize_ratios(self):
        stats = summarize_ratios([0.5, 2.0])
        assert stats["gmean"] == pytest.approx(1.0)
        assert stats["min"] == 0.5 and stats["max"] == 2.0

    def test_summarize_empty(self):
        assert summarize_ratios([])["mean"] == 0.0


class TestTimingModel:
    def test_pricing(self):
        from repro.analysis.timing import TimingModel
        from repro.memory.stats import DramStats
        model = TimingModel(dram_ns=50.0, cache_hit_ns=2.0)
        delta = DramStats(reads=4, lookups=6)
        assert model.dram_time_ns(delta) == 500.0
        assert model.op_time_ns(delta, cache_hits=10) == 520.0

    def test_map_update_latency_matches_formula(self):
        from repro.analysis.timing import measure_map_update_latency
        result = measure_map_update_latency(n_items=256, probes=16)
        # the §5.1.1 closed form holds on the real machinery
        assert 0.6 <= result.ratio <= 1.5
        # the background traffic the paper parallelizes away is real
        assert result.total_ns > result.critical_ns

    def test_latency_grows_logarithmically(self):
        from repro.analysis.timing import measure_map_update_latency
        small = measure_map_update_latency(n_items=128, probes=8)
        big = measure_map_update_latency(n_items=2048, probes=8)
        assert big.critical_ns > small.critical_ns
        assert big.critical_ns < small.critical_ns * 2.5  # log, not linear
