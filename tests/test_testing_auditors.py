"""Tests for the machine invariant auditors (and their fixtures)."""

import pytest

from repro.apps.memcached.server import HicampMemcached
from repro.memory.line import PlidRef
from repro.testing.auditors import (
    audit_dedup,
    audit_machine,
    audit_refcounts,
    audit_segment_map,
)


def run_workload(machine, items=24):
    """A mixed memcached workload leaving the machine quiesced."""
    server = HicampMemcached(machine)
    for i in range(items):
        server.set(b"k%02d" % i, b"value-%d" % i)
    for i in range(0, items, 3):
        server.set(b"k%02d" % i, b"value-%d-rewritten" % i)
    for i in range(0, items, 5):
        server.delete(b"k%02d" % i)
    assert server.get(b"k01") == b"value-1"
    return server


class TestHealthyMachines:
    def test_quiesced_workload_audits_clean_strict(self, machine):
        run_workload(machine)
        report = audit_machine(machine, strict=True)
        assert report.ok, report.failures
        assert report.checks > 0
        assert "audits=ok" in report.summary()

    def test_audit_leaves_footprint_unchanged(self, machine):
        # the canonical-form rebuild allocates through the dedup store
        # and must release everything it allocated
        run_workload(machine)
        before = machine.footprint_lines()
        audit_machine(machine, strict=True).raise_if_failed()
        assert machine.footprint_lines() == before

    def test_plain_segments_audit_clean(self, machine):
        vsid = machine.create_segment(list(range(16)))
        machine.write_word(vsid, 3, 999)
        snap = machine.snapshot(vsid)
        machine.write_word(vsid, 3, 1000)
        snap.release()
        # a caller-held snapshot was released; strict must hold
        audit_machine(machine, strict=True).raise_if_failed()

    def test_fresh_machine_is_clean(self, audited_machine):
        # the audited_machine fixture strict-audits at teardown; a
        # small balanced workload must satisfy it
        run_workload(audited_machine, items=8)


class TestInjectedCorruption:
    def _target_plid(self, machine):
        store = machine.mem.store
        # a line that other lines point into (has internal references)
        for plid in store.live_plids():
            if store.refcount(plid) > 0:
                return plid
        pytest.fail("workload produced no live lines")

    def test_refcount_underflow_is_caught(self, machine):
        run_workload(machine)
        machine.drain()
        store = machine.mem.store
        plid = self._target_plid(machine)
        store._refcounts[plid] = 0  # simulate a dropped count
        failures = audit_refcounts(machine)
        assert any("PLID %d" % plid in f for f in failures)

    def test_leaked_reference_needs_strict(self, machine):
        run_workload(machine)
        store = machine.mem.store
        store.incref(self._target_plid(machine))  # nobody owns this ref
        assert audit_refcounts(machine) == []
        assert any("leak" in f for f in audit_refcounts(machine,
                                                        strict=True))

    def test_corrupted_line_content_is_caught(self, machine):
        run_workload(machine)
        store = machine.mem.store
        plids = store.live_plids()
        # overwrite one line with another's content, like a DRAM flip;
        # its content no longer hashes to the bucket it lives in
        store.corrupt_line_for_test(plids[0], store.peek(plids[1]))
        failures = audit_dedup(machine)
        assert failures
        assert any("signature" in f or "dedup" in f for f in failures)

    def test_dangling_segmap_root_is_caught(self, machine):
        server = run_workload(machine)
        segmap = machine.segmap
        vsid = server.kvp.vsid
        entry = segmap._entries[vsid]
        entry.root = PlidRef(plid=1 << 40)  # no such line
        failures = audit_segment_map(machine)
        assert any("not a live line" in f for f in failures)

    def test_audit_machine_bundles_all(self, machine):
        run_workload(machine)
        store = machine.mem.store
        store._refcounts[self._target_plid(machine)] = 0
        report = audit_machine(machine)
        assert not report.ok
        with pytest.raises(AssertionError):
            report.raise_if_failed()
        assert "FAILED" in report.summary()


class TestFixtures:
    def test_machine_audit_fixture_raises_on_failure(self, machine,
                                                     machine_audit):
        run_workload(machine)
        machine_audit(machine, strict=True)  # clean: no raise
        machine.mem.store._refcounts[self._first_live(machine)] = 0
        with pytest.raises(AssertionError):
            machine_audit(machine)

    @staticmethod
    def _first_live(machine):
        store = machine.mem.store
        for plid in store.live_plids():
            if store.refcount(plid) > 0:
                return plid
        pytest.fail("no live lines")
