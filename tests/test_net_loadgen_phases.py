"""Phase-shifting loadgen: ``--phases`` parsing, per-phase report
sections, delete-churn tombstones, and byte-compat guarantees for the
classic single-mix path (same RNG stream, same JSON schema)."""

import asyncio
import random

import pytest

from repro.net.loadgen import (LoadgenClient, PhaseSpec, parse_phases,
                               run_loadgen)
from repro.net.server import MemcachedServer


class TestParsePhases:
    def test_full_spec_round_trips_every_field(self):
        phases = parse_phases(
            "read:ops=400:get=0.9,"
            "storm:ops=600:get=0.05:set=0.95:del=0.2:value=256:entropy=1,"
            "hot:skew=3.5:entropy=0")
        assert [p.name for p in phases] == ["read", "storm", "hot"]
        read, storm, hot = phases
        assert (read.ops, read.get_ratio) == (400, 0.9)
        assert storm.set_bias == 0.95 and storm.del_ratio == 0.2
        assert storm.value_bytes == 256 and storm.entropy
        assert hot.ops == 0 and hot.skew == 3.5 and not hot.entropy
        # unspecified fields keep the PhaseSpec defaults
        assert hot.set_bias == 0.7 and hot.del_ratio == 0.0

    def test_bad_fields_raise_with_the_offending_part(self):
        with pytest.raises(ValueError, match="bogus"):
            parse_phases("a:bogus=1")
        with pytest.raises(ValueError, match="get=x"):
            parse_phases("a:get=x")
        with pytest.raises(ValueError, match="empty"):
            parse_phases("a,,b")

    def test_unsized_phases_split_the_total_budget(self):
        client = LoadgenClient(
            0, "h", 0, ops=90, pipeline_depth=4, get_ratio=0.5,
            key_space=8, value_bytes=16, seed=1,
            phases=parse_phases("a,b:ops=30,c"))
        assert [p.ops for p in client.phases] == [30, 30, 30]
        assert client.ops == 90


def _run(phases=None, clients=2, ops=48, seed=9, **kwargs):
    async def scenario():
        async with MemcachedServer(port=0, shard_count=2) as server:
            return await run_loadgen(
                "127.0.0.1", server.port, clients=clients,
                ops_per_client=ops, pipeline_depth=4, key_space=8,
                value_bytes=32, seed=seed, phases=phases, **kwargs)

    return asyncio.run(scenario())


class TestPhaseSections:
    def test_report_gains_one_section_per_phase(self):
        report = _run(parse_phases(
            "read:ops=16:get=0.9,storm:ops=24:get=0.05:set=0.95:del=0.2,"
            "hot:ops=8:skew=4"))
        assert report.consistent and report.errors == 0
        names = [s["name"] for s in report.phases]
        assert names == ["read", "storm", "hot"]
        # counters diff cleanly: sections sum to the run totals
        assert sum(s["ops"] for s in report.phases) == report.ops
        assert sum(s["stored"] for s in report.phases) == report.stored
        assert sum(s["deleted"] for s in report.phases) == report.deleted
        starts = [s["t_start"] for s in report.phases]
        assert starts == sorted(starts)
        for section in report.phases:
            assert section["ops"] > 0
            assert section["t_end"] >= section["t_start"]
            assert section["ops_per_second"] > 0
            assert "p99_ms" in section["batch_rtt"]
        # the delete churn really landed, in the storm section
        assert report.deleted > 0
        assert report.phases[1]["deleted"] == report.deleted
        assert report.as_dict()["phases"] == report.phases

    def test_delete_churn_tombstones_survive_verification(self):
        # the final private readback asserts tombstoned keys stay dead
        # (a get_hit on one would be an oracle mismatch); a tiny
        # keyspace with heavy churn makes delete/set races the norm
        report = _run(parse_phases("churn:del=0.4:get=0.2:set=0.9"),
                      ops=120, seed=13)
        assert report.deleted > 10
        assert report.consistent and report.oracle_mismatches == 0
        assert report.oracle_checked > 0


class TestClassicByteCompat:
    def test_phaseless_json_schema_is_unchanged(self):
        report = _run(None)
        doc = report.as_dict()
        # no "phases", "deleted" or fleet keys on a classic run: the
        # JSON stays byte-compatible with every report ever written
        assert "phases" not in doc and "deleted" not in doc
        assert "endpoints" not in doc
        assert report.consistent

    def test_del_ratio_zero_draws_the_classic_rng_stream(self):
        # band layout regression pin: with del_ratio=0 the planner must
        # consume the RNG exactly like the historical two-band code
        client = LoadgenClient(
            0, "h", 0, ops=64, pipeline_depth=8, get_ratio=0.35,
            key_space=8, value_bytes=16, seed=21)
        planned = [client._plan_batch(8) for _ in range(8)]

        def classic_plan(seed, get_ratio=0.35, set_bias=0.7):
            rng = random.Random((seed << 16) | 0)  # client 0's stream
            kinds = []
            for _ in range(64):
                roll = rng.random()
                if roll < get_ratio:
                    rng.random()   # shared-vs-private pick
                    rng.randrange(8)
                    kinds.append("get")
                elif roll < get_ratio + (1 - get_ratio) * set_bias:
                    rng.randrange(8)
                    kinds.append("set")
                else:
                    rng.randrange(8)
                    kinds.append("gets")
            return kinds

        flat = [kind for batch in planned for kind, _, _ in batch]
        assert flat == classic_plan(21)

    def test_single_phase_run_matches_phaseless_totals(self):
        # one phase with the classic knobs = the classic run, op for op
        phaseless = _run(None)
        single = _run([PhaseSpec("all", get_ratio=0.5)])
        assert single.ops == phaseless.ops
        assert single.stored == phaseless.stored
        assert single.get_hits == phaseless.get_hits
        assert single.cas_stored == phaseless.cas_stored
        assert len(single.phases) == 1
        doc = single.as_dict()
        doc.pop("phases")
        base = phaseless.as_dict()
        # timing fields aside, the schemas line up key for key
        for key in set(doc) | set(base):
            assert key in doc and key in base
