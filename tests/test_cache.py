"""Unit tests for the HICAMP cache (read + lookup-by-content)."""

from repro.memory.cache import HicampCache
from repro.memory.dedup_store import DedupStore
from repro.params import CacheGeometry, MemoryConfig


def make(cache_lines=64, ways=4, line_bytes=16):
    store = DedupStore(MemoryConfig(line_bytes=line_bytes, num_buckets=256,
                                    data_ways=8, overflow_lines=4096))
    geometry = CacheGeometry(size_bytes=cache_lines * line_bytes, ways=ways,
                             line_bytes=line_bytes)
    return store, HicampCache(store, geometry)


class TestRead:
    def test_miss_then_hit(self):
        store, cache = make()
        plid, _ = store.lookup((1, 2))
        reads_before = store.stats.reads
        assert cache.read(plid) == (1, 2)
        assert store.stats.reads == reads_before + 1
        assert cache.read(plid) == (1, 2)
        assert store.stats.reads == reads_before + 1  # served from cache
        assert cache.traffic.hits == 1 and cache.traffic.misses == 1

    def test_zero_plid_free(self):
        store, cache = make()
        assert cache.read(0) == (0, 0)
        assert store.stats.reads == 0


class TestLookup:
    def test_lookup_hit_avoids_dram(self):
        store, cache = make()
        p1 = cache.lookup((5, 6))
        dram_before = store.stats.total()
        p2 = cache.lookup((5, 6))
        assert p1 == p2
        assert store.stats.total() == dram_before  # pure cache hit
        assert cache.traffic.lookup_hits == 1

    def test_lookup_hit_still_counts_reference(self):
        store, cache = make()
        plid = cache.lookup((5, 6))
        cache.lookup((5, 6))
        assert store.refcount(plid) == 2

    def test_zero_content(self):
        store, cache = make()
        assert cache.lookup((0, 0)) == 0

    def test_same_bucket_single_set(self):
        # Every line of one hash bucket must land in one cache set.
        store, cache = make()
        plids = [cache.lookup((i, 7)) for i in range(1, 30)]
        for plid in plids:
            expected = store.bucket_of(plid) % cache.geometry.num_sets
            if plid in cache._where:
                assert cache._where[plid] == expected


class TestEvictionAndWriteback:
    def test_eviction_charges_deferred_write(self):
        store, cache = make(cache_lines=8, ways=2)
        for i in range(1, 60):
            cache.lookup((i, 0))
        assert cache.traffic.evictions > 0
        assert store.stats.writes > 0

    def test_flush_writes_everything_once(self):
        store, cache = make()
        plids = [cache.lookup((i, 0)) for i in range(1, 10)]
        cache.flush()
        assert store.stats.writes == len(plids)
        cache.flush()
        assert store.stats.writes == len(plids)

    def test_invalidate_on_dealloc(self):
        store, cache = make()
        plid = cache.lookup((9, 9))
        assert cache.resident_lines() == 1
        store.decref(plid)
        assert cache.resident_lines() == 0
        # And the freed line was never written back to DRAM.
        assert store.stats.writes == 0
