"""Tests for the per-processor transient region (section 3.3, fn. 2/7)."""

from repro.memory.transient import TransientRegion


class TestTransientRegion:
    def test_resident_working_set_is_cheap(self):
        region = TransientRegion(size_bytes=64 * 1024)
        for _ in range(50):
            for slot in range(16):
                region.write_word(slot)
                region.read_word(slot)
        region.drain()
        # a small reused buffer stays in the region's private cache:
        # off-chip traffic is bounded by the working set, not by op count
        assert region.dram.total() <= 32

    def test_overflow_spills(self):
        region = TransientRegion(size_bytes=1024, line_bytes=64)
        for slot in range(4000):
            region.write_word(slot)
        region.drain()
        assert region.dram.total() > 0  # capacity pressure reached DRAM

    def test_reset_recycles(self):
        region = TransientRegion()
        for slot in range(10):
            region.write_word(slot)
        assert region.live_words() == 10
        region.reset()
        assert region.live_words() == 0

    def test_iterator_charges_region(self, machine):
        vsid = machine.create_segment([0] * 16)
        it = machine.iterator(vsid)
        before = machine.transient.live_words()
        it.put(5, offset=3)
        it.get(3)  # transient read
        assert machine.transient.live_words() == before + 1
        it.try_commit()
        assert machine.transient.live_words() == 0  # recycled on commit
        machine.release_iterator(it)


class TestQueueCoalescing:
    def test_identical_concurrent_enqueues_coalesce_but_never_lose_order(
            self, machine):
        # content-addressed identity: two racing enqueues of the SAME
        # payload may collapse into one slot with tail advanced by two;
        # dequeue must skip the hole and keep serving
        from repro.concurrency import Scheduler
        from repro.structures import HQueue
        q = HQueue.create(machine)

        def producer():
            q.enqueue(b"same-payload")
            yield

        sched = Scheduler(seed=1)
        sched.spawn("p1", producer())
        sched.spawn("p2", producer())
        sched.run()
        q.enqueue(b"tail-item")
        got = []
        while True:
            item = q.dequeue()
            if item is None:
                break
            got.append(item)
        assert got[-1] == b"tail-item"
        assert all(x in (b"same-payload", b"tail-item") for x in got)
