"""Tests for the seeded fuzz episodes: reproducibility and sensitivity."""

from unittest import mock

from repro.cli.main import main
from repro.net.router import ConnectionState
from repro.testing.faults import COMMIT_STALL, CONN_RESET, FLUSH_DELAY
from repro.testing.fuzz import (
    EpisodeConfig,
    episode_seed,
    run_episode,
    run_fuzz,
)

#: A fault mix that exercises the fence hard: every commit batch stalls,
#: flushes are delayed, and some connections are reset mid-commit.
ADVERSARIAL = {CONN_RESET: 0.12, COMMIT_STALL: 1.0, FLUSH_DELAY: 0.5}


class TestReproducibility:
    def test_fixed_seed_is_bit_reproducible(self):
        # the ISSUE acceptance criterion: same seed -> same episode trace
        a = run_fuzz(episodes=3, seed=0)
        b = run_fuzz(episodes=3, seed=0)
        assert a.ok and b.ok
        assert a.render() == b.render()
        assert a.render(verbose=True) == b.render(verbose=True)
        for ea, eb in zip(a.episodes, b.episodes):
            assert ea.trace == eb.trace

    def test_failure_seed_replays_as_episode_zero(self):
        # a printed failure seed reproduces via --episodes 1 --seed S
        assert episode_seed(12345, 0) == 12345
        assert episode_seed(12345, 1) != 12345
        # later-episode seeds are themselves deterministic
        assert episode_seed(12345, 7) == episode_seed(12345, 7)

    def test_default_episodes_pass(self):
        report = run_fuzz(episodes=2, seed=3)
        assert report.ok
        assert report.failed_seeds == []
        assert "fuzz episodes=2 ok=2 failed=0" in report.render()


class TestCheckerSensitivity:
    def test_reset_mid_commit_with_broken_fence_is_caught(self):
        """The ISSUE acceptance criterion: an episode that injects
        connection resets mid-commit passes on correct code, and the
        linearizability checker catches it once the read-after-write
        fence is deliberately broken."""
        cfg = EpisodeConfig(rates=ADVERSARIAL)
        healthy = run_episode(1, cfg)
        assert healthy.ok, healthy.failures
        # the episode really did reset connections mid-commit
        assert healthy.fired.get(CONN_RESET, 0) > 0

        with mock.patch.object(ConnectionState, "depends_on",
                               lambda self, shard: None):
            broken = run_episode(1, cfg)
        assert not broken.ok
        assert any("linearizability violation" in f
                   for f in broken.failures)

    def test_stalled_commits_pass_with_working_fence(self):
        # forcing every batch to stall must not fail a correct server
        cfg = EpisodeConfig(rates={COMMIT_STALL: 1.0, CONN_RESET: 0.0})
        result = run_episode(5, cfg)
        assert result.ok, result.failures
        assert result.fired.get(COMMIT_STALL, 0) > 0


class TestFuzzCli:
    def test_cli_subcommand_runs_and_reports(self, capsys):
        code = main(["fuzz", "--episodes", "1", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz episodes=1 ok=1 failed=0" in out

    def test_cli_output_reproducible(self, capsys):
        main(["fuzz", "--episodes", "2", "--seed", "9", "--verbose"])
        first = capsys.readouterr().out
        main(["fuzz", "--episodes", "2", "--seed", "9", "--verbose"])
        second = capsys.readouterr().out
        assert first == second
        assert "plan seed=9" in first
