"""Tests for tree-recursive matrix algebra and the parallel SpMV."""

import numpy as np
import pytest

from repro.apps.spmv.algebra import (
    _OpStats,
    parallel_spmv,
    qts_add,
    qts_scale,
    qts_transpose,
)
from repro.structures import QuadTreeMatrix
from repro.workloads.matrices import fem_2d, patterned_block


def random_matrix(machine, n, density, seed):
    rng = np.random.RandomState(seed)
    dense = np.round(rng.rand(n, n) * (rng.rand(n, n) < density), 3)
    return QuadTreeMatrix.from_dense(machine, dense), dense


class TestAdd:
    def test_matches_numpy(self, machine):
        a, da = random_matrix(machine, 12, 0.3, 1)
        b, db = random_matrix(machine, 12, 0.3, 2)
        c = qts_add(machine, a, b)
        assert np.allclose(c.to_dense(), da + db)

    def test_zero_shortcut(self, machine):
        a, da = random_matrix(machine, 8, 0.3, 3)
        zero = QuadTreeMatrix.from_coo(machine, 8, 8, [])
        stats = _OpStats()
        c = qts_add(machine, a, zero, stats)
        assert np.allclose(c.to_dense(), da)
        assert stats.zero_shortcuts > 0
        assert stats.leaf_ops == 0  # nothing actually summed

    def test_add_with_self_is_doubling(self, machine):
        a, da = random_matrix(machine, 10, 0.4, 4)
        c = qts_add(machine, a, a)
        assert np.allclose(c.to_dense(), 2 * da)

    def test_duplicate_blocks_summed_once(self, machine):
        spec = patterned_block(128, "p", seed=5, tile=16)
        a = QuadTreeMatrix.from_coo(machine, spec.n, spec.m, spec.entries)
        stats = _OpStats()
        c = qts_add(machine, a, a, stats)
        # 8 identical tile-blocks, but the memo computes each distinct
        # (sub-block, sub-block) pair only once
        assert stats.memo_hits > 0
        assert stats.leaf_ops < spec.nnz / 4
        ref = np.zeros((spec.n, spec.m))
        for r, col, v in spec.entries:
            ref[r, col] = v
        assert np.allclose(c.to_dense(), 2 * ref)

    def test_shape_mismatch_rejected(self, machine):
        a, _ = random_matrix(machine, 8, 0.3, 1)
        b, _ = random_matrix(machine, 16, 0.3, 1)
        with pytest.raises(ValueError):
            qts_add(machine, a, b)


class TestScale:
    def test_matches_numpy(self, machine):
        a, da = random_matrix(machine, 12, 0.4, 6)
        c = qts_scale(machine, a, -2.5)
        assert np.allclose(c.to_dense(), -2.5 * da)

    def test_memoized_over_duplicates(self, machine):
        spec = patterned_block(128, "p", seed=7, tile=16)
        a = QuadTreeMatrix.from_coo(machine, spec.n, spec.m, spec.entries)
        stats = _OpStats()
        qts_scale(machine, a, 3.0, stats)
        assert stats.memo_hits > 0

    def test_scale_by_one_is_identity_root(self, machine):
        a, _ = random_matrix(machine, 10, 0.4, 8)
        c = qts_scale(machine, a, 1.0)
        assert c.equals(a)  # canonical: same content, same root


class TestTranspose:
    def test_matches_numpy(self, machine):
        a, da = random_matrix(machine, 9, 0.4, 9)
        t = qts_transpose(machine, a)
        assert np.allclose(t.to_dense(), da.T)

    def test_symmetric_transposes_to_same_root(self, machine):
        spec = fem_2d(8, "sym")
        a = QuadTreeMatrix.from_coo(machine, spec.n, spec.m, spec.entries)
        t = qts_transpose(machine, a)
        assert t.equals(a)  # Aᵀ == A as a single root compare


class TestParallelSpmv:
    def test_matches_serial(self, machine):
        a, da = random_matrix(machine, 24, 0.3, 10)
        x = np.linspace(0.5, 1.5, 24)
        y = parallel_spmv(machine, a, x, n_workers=4, seed=3)
        assert np.allclose(y, da @ x)

    def test_single_worker(self, machine):
        a, da = random_matrix(machine, 8, 0.5, 11)
        x = np.ones(8)
        assert np.allclose(parallel_spmv(machine, a, x, n_workers=1), da @ x)

    def test_result_segment_reclaimed(self, machine):
        a, da = random_matrix(machine, 8, 0.5, 12)
        before = len(machine.segmap)
        parallel_spmv(machine, a, np.ones(8), n_workers=2)
        assert len(machine.segmap) == before
