#!/usr/bin/env bash
# Reproduce every benchmark and merge the results into one trajectory.
#
# Runs each `repro bench` target in sequence, then `repro bench
# aggregate`, which sweeps every BENCH_*.json and benchmarks/out/*.json
# into benchmarks/out/trajectory.json — the single document to diff
# across commits.
#
# Smoke tier by default (minutes); FULL=1 runs the full geometries.
#
#   ./scripts/reproduce_all.sh
#   FULL=1 ./scripts/reproduce_all.sh

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

SMOKE_FLAG="--smoke"
if [ "${FULL:-0}" = "1" ]; then
    SMOKE_FLAG=""
fi

run() {
    echo "==> repro bench $*"
    python -m repro.cli.main bench "$@"
}

run hotpath --out benchmarks/out/hotpath.json
run cluster ${SMOKE_FLAG}
run scale ${SMOKE_FLAG}
run dedup-index ${SMOKE_FLAG}
run reclaim ${SMOKE_FLAG}
run adaptive ${SMOKE_FLAG}

echo "==> repro bench aggregate"
python -m repro.cli.main bench aggregate

echo "trajectory written to benchmarks/out/trajectory.json"
