"""Merge-update (section 3.4).

When a CAS commit fails because another thread moved a segment's root,
a merge-update folds the loser's changes into the winner's version
instead of re-running the whole operation:

* for each line offset, compute the difference between the *original*
  (base) line and the *modified* (mine) line and apply it to the
  *current* (theirs) line — plain data words merge arithmetically, which
  makes concurrent counter increments sum;
* a PLID field must equal either the original or one side's value —
  two updates storing distinct PLIDs into the same field are a true
  conflict and the merge fails (:class:`MergeConflictError`);
* content-uniqueness lets the merge skip identical sub-DAGs with a single
  root compare, so the expected work is a short path from the root down
  to the (usually single) diverging subtree — the geometric-series
  latency argument of section 5.1.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import MergeConflictError
from repro.memory.line import Inline, PlidRef
from repro.memory.memo import MISS
from repro.memory.system import MemorySystem
from repro.params import WORD_MASK
from repro.segments import dag
from repro.segments.dag import Entry, entry_key


@dataclass
class MergeStats:
    """Work accounting for one merge (feeds the §5.1.1 latency model)."""

    levels_descended: int = 0
    subtrees_skipped: int = 0
    leaf_merges: int = 0


def three_way_merge_word(base, mine, theirs):
    """Merge one word under the section 3.4 rules.

    Data words merge by difference (``theirs + (mine - base)``) — always,
    even when both sides happen to hold the same value: two concurrent
    "+1"s must sum to "+2", so the diff rule takes precedence over value
    coincidence. Tagged reference words must match the base or one side
    (identical stores coalesce; distinct stores are a true conflict).
    """
    if mine == base:
        return theirs
    if theirs == base:
        return mine
    if (isinstance(base, int) and isinstance(mine, int)
            and isinstance(theirs, int)):
        return (theirs + mine - base) & WORD_MASK
    if mine == theirs:
        return mine  # identical reference stores coalesce
    raise MergeConflictError(
        "distinct references stored into the same field: %r / %r (base %r)"
        % (mine, theirs, base)
    )


def _leaf_view(mem: MemorySystem, entry: Entry) -> List:
    """Borrowed view of a level-0 entry's words (no reference changes)."""
    w = mem.words_per_line
    if entry == 0:
        return [0] * w
    if isinstance(entry, Inline):
        return list(entry.values) + [0] * (w - len(entry.values))
    return list(mem.read(entry.plid))


def _children_view(mem: MemorySystem, entry: Entry, level: int) -> List[Entry]:
    """Borrowed view of an interior entry's child entries."""
    fan = mem.fanout
    if entry == 0:
        return [0] * fan
    if isinstance(entry, Inline):
        child_span = dag.entry_capacity(mem, level - 1)
        vals = list(entry.values)  # trailing zeros are implicit
        out: List[Entry] = []
        for j in range(fan):
            lo = j * child_span
            chunk = dag._trim(vals[lo:lo + child_span]) if lo < len(vals) else ()
            sub = dag._inline_for(chunk) if chunk else None
            out.append(sub if sub is not None else 0)
        return out
    if entry.path:
        children: List[Entry] = [0] * fan
        children[entry.path[0]] = PlidRef(entry.plid, entry.path[1:])
        return children
    return list(mem.read(entry.plid))


def merge_entries(mem: MemorySystem, base: Entry, mine: Entry, theirs: Entry,
                  level: int, stats: MergeStats = None) -> Entry:
    """Three-way merge of same-height subtrees.

    Inputs are borrowed; the merged entry is returned with one
    caller-owned reference. Raises :class:`MergeConflictError` on a true
    data conflict (the whole merge then aborts — mCAS returns failure).
    """
    if stats is None:
        stats = MergeStats()
    k_base, k_mine, k_theirs = entry_key(base), entry_key(mine), entry_key(theirs)
    # Uniqueness of segments lets unchanged sub-DAGs be skipped by a
    # single root compare (section 3.4). Note the sound skips are the
    # one-side-unchanged cases; two sides that made the *same-looking*
    # change must still merge word-by-word, or two identical counter
    # increments would collapse into one. (For the same reason there is
    # deliberately no ``mine == theirs`` short-circuit here — the memo
    # below covers *repeated identical triples* soundly instead, since a
    # merge is a pure function of its three contents.)
    if k_mine == k_base:
        stats.subtrees_skipped += 1
        return dag.retain_entry(mem, theirs)
    if k_theirs == k_base:
        stats.subtrees_skipped += 1
        return dag.retain_entry(mem, mine)
    memo = mem.memo
    memo_key = None
    if memo.enabled:
        memo_key = (k_base, k_mine, k_theirs, level)
        cached = memo.get_merge(memo_key)
        if cached is not MISS:
            # content-unique entries make the key a full content triple;
            # retaining the cached result is refcount-identical to
            # re-deriving it (intermediate lookup hits cancel out)
            stats.subtrees_skipped += 1
            return dag.retain_entry(mem, cached)
    if level == 0:
        stats.leaf_merges += 1
        b, m, t = (_leaf_view(mem, e) for e in (base, mine, theirs))
        words = [three_way_merge_word(b[i], m[i], t[i])
                 for i in range(mem.words_per_line)]
        merged = dag._leaf_entry(mem, words)
    else:
        stats.levels_descended += 1
        bc = _children_view(mem, base, level)
        mc = _children_view(mem, mine, level)
        tc = _children_view(mem, theirs, level)
        children: List[Entry] = []
        try:
            for j in range(mem.fanout):
                children.append(merge_entries(mem, bc[j], mc[j], tc[j],
                                              level - 1, stats))
        except MergeConflictError:
            for c in children:
                dag.release_entry(mem, c)
            raise
        merged = dag._canonical_interior(mem, children, level)
    if memo_key is not None:
        memo.put_merge(memo_key, merged, (base, mine, theirs, merged))
    return merged


def merge_roots(mem: MemorySystem,
                base: Tuple[Entry, int], mine: Tuple[Entry, int],
                theirs: Tuple[Entry, int],
                stats: MergeStats = None) -> Tuple[Entry, int]:
    """Merge whole segments whose heights may differ (after growth).

    Each argument is ``(root_entry, height)``, borrowed. Returns the
    merged ``(root, height)`` with a caller-owned reference.
    """
    height = max(base[1], mine[1], theirs[1])
    grown = []
    for root, h in (base, mine, theirs):
        dag.retain_entry(mem, root)
        grown.append(dag.grow_entry(mem, root, h, height))
    try:
        merged = merge_entries(mem, grown[0], grown[1], grown[2], height, stats)
    finally:
        for g in grown:
            dag.release_entry(mem, g)
    return merged, height
