"""Segments: canonical DAG representation of variable-size memory regions
(section 2.2), the virtual segment map (section 2.3), iterator registers
(section 3.3) and merge-update (section 3.4).
"""

from repro.segments.dag import (
    build_entry,
    build_segment,
    count_unique_lines,
    entry_capacity,
    entry_key,
    gather_words,
    grow_entry,
    height_for,
    iter_nonzero,
    read_word,
    release_entry,
    retain_entry,
    write_word,
    write_words_bulk,
)
from repro.segments.segment_map import MapEntry, SegmentFlags, SegmentMap
from repro.segments.hicamp_map import HicampSegmentMap, MapTransaction
from repro.segments.iterator import IteratorRegister
from repro.segments.merge import merge_entries, merge_roots, three_way_merge_word

__all__ = [
    "build_entry",
    "build_segment",
    "count_unique_lines",
    "entry_capacity",
    "entry_key",
    "gather_words",
    "grow_entry",
    "height_for",
    "iter_nonzero",
    "read_word",
    "release_entry",
    "retain_entry",
    "write_word",
    "write_words_bulk",
    "MapEntry",
    "SegmentFlags",
    "SegmentMap",
    "HicampSegmentMap",
    "MapTransaction",
    "IteratorRegister",
    "merge_entries",
    "merge_roots",
    "three_way_merge_word",
]
