"""A virtual segment map stored in a HICAMP segment (section 2.3).

"When the segment map itself is implemented as a HICAMP segment indexed
by VSID, multiple segments can be updated by one atomic update/commit of
the segment map. In particular, the revised segments are not visible to
other threads until the commit of the revised segment map takes place."

Layout: VSID ``v`` occupies the two-word slot at ``8 + 2*v``::

    +0  root entry word (a tagged reference — or Inline for tiny content)
    +1  meta word: [length:47][height:8][flags:7][present:1]

The map segment itself is anchored by one entry in a conventional
:class:`~repro.segments.segment_map.SegmentMap` (hardware would hold this
root in a register); committing a :class:`MapTransaction` is a single
mCAS on that anchor, so:

* all segments revised in the transaction become visible atomically;
* two transactions touching disjoint VSIDs merge instead of aborting
  (slots are tagged fields — same-VSID races are true conflicts);
* reference counting is automatic: the map's leaf lines own the root
  references, so replacing a root reclaims the old version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import BadVsidError, MergeConflictError
from repro.memory.system import MemorySystem
from repro.segments import dag
from repro.segments.dag import Entry
from repro.segments.segment_map import SegmentFlags, SegmentMap

_SLOT_BASE = 8
_MAX_LENGTH = (1 << 47) - 1


def _pack_meta(height: int, length: int, flags: int) -> int:
    if length > _MAX_LENGTH:
        raise ValueError(
            "segment too long (%d words) for a segment-backed map entry"
            % length)
    return (length << 16) | ((height & 0xFF) << 8) | ((flags & 0x7F) << 1) | 1


def _unpack_meta(meta: int) -> Tuple[int, int, int]:
    return (meta >> 8) & 0xFF, meta >> 16, (meta >> 1) & 0x7F


@dataclass
class MapEntryView:
    """A decoded map slot. The root is *borrowed* from the map segment —
    valid while the map version it was read from stays reachable."""

    root: Entry
    height: int
    length: int
    flags: SegmentFlags


class HicampSegmentMap:
    """Segment map held in HICAMP memory, committed by root CAS."""

    def __init__(self, mem: MemorySystem, anchor: Optional[SegmentMap] = None) -> None:
        self.mem = mem
        self.anchor = anchor or SegmentMap(mem)
        self._anchor_vsid = self.anchor.create(
            0, 0, _SLOT_BASE, SegmentFlags.MERGE_UPDATE)
        self._next_vsid = 1

    # ------------------------------------------------------------------

    @property
    def map_vsid(self) -> int:
        """The anchor VSID of the map segment itself."""
        return self._anchor_vsid

    def allocate_vsid(self) -> int:
        """Reserve a VSID (slot); contents are written by a transaction."""
        vsid = self._next_vsid
        self._next_vsid += 1
        return vsid

    def create(self, root: Entry = 0, height: int = 0, length: int = 0,
               flags: SegmentFlags = SegmentFlags.NONE) -> int:
        """Create a segment entry (single-writer convenience).

        Takes over the caller's reference on ``root``.
        """
        vsid = self.allocate_vsid()
        txn = self.begin()
        txn.set_root(vsid, root, height, length, flags)
        if not txn.commit():
            raise MergeConflictError("map create lost an unmergeable race")
        return vsid

    def entry(self, vsid: int) -> MapEntryView:
        """Decode the current slot for ``vsid``."""
        anchor = self.anchor.entry(self._anchor_vsid)
        base = _SLOT_BASE + 2 * vsid
        capacity = dag.entry_capacity(self.mem, anchor.height)
        if base + 1 >= capacity:
            raise BadVsidError("VSID %d is not mapped" % vsid)
        meta = dag.read_word(self.mem, anchor.root, anchor.height, base + 1)
        if meta == 0:
            raise BadVsidError("VSID %d is not mapped" % vsid)
        root = dag.read_word(self.mem, anchor.root, anchor.height, base)
        height, length, flags = _unpack_meta(meta)
        return MapEntryView(root, height, length, SegmentFlags(flags))

    def read_segment(self, vsid: int) -> list:
        """Convenience: the full content of a mapped segment."""
        view = self.entry(vsid)
        if view.length == 0:
            return []
        return dag.gather_words(self.mem, view.root, view.height, 0,
                                view.length)

    def begin(self) -> "MapTransaction":
        """Start a multi-segment transaction against the current map."""
        return MapTransaction(self)

    def drop(self, vsid: int) -> None:
        """Remove a mapping (its content is reclaimed if unshared)."""
        txn = self.begin()
        txn.clear(vsid)
        if not txn.commit():
            raise MergeConflictError("map drop lost an unmergeable race")


class MapTransaction:
    """Buffered updates to several segments, committed by one mCAS."""

    def __init__(self, hmap: HicampSegmentMap) -> None:
        self._map = hmap
        self.mem = hmap.mem
        anchor = hmap.anchor.entry(hmap.map_vsid)
        # pin the base map version: another transaction's commit must not
        # reclaim it while this transaction builds against it
        self._base_root = anchor.root
        dag.retain_entry(self.mem, self._base_root)
        self._base_height = anchor.height
        self._base_length = anchor.length
        # staged slot words; staged root entries are caller-owned until
        # commit/abort
        self._updates: Dict[int, object] = {}
        self._owned: Dict[int, Entry] = {}
        self._done = False

    def set_root(self, vsid: int, new_root: Entry, height: int, length: int,
                 flags: SegmentFlags = SegmentFlags.NONE) -> None:
        """Stage a new version for ``vsid`` (takes over the caller's
        reference on ``new_root``)."""
        base = _SLOT_BASE + 2 * vsid
        if base in self._owned:
            dag.release_entry(self.mem, self._owned.pop(base))
        self._updates[base] = new_root
        self._updates[base + 1] = _pack_meta(height, length, int(flags))
        self._owned[base] = new_root

    def clear(self, vsid: int) -> None:
        """Stage removal of ``vsid``."""
        base = _SLOT_BASE + 2 * vsid
        if base in self._owned:
            dag.release_entry(self.mem, self._owned.pop(base))
        self._updates[base] = 0
        self._updates[base + 1] = 0

    def commit(self) -> bool:
        """Build the revised map and mCAS it over the anchor.

        Returns False on a true conflict (another transaction changed one
        of the same slots incompatibly); disjoint transactions merge.
        """
        from repro.core.transactions import mcas

        if self._done:
            raise MergeConflictError("transaction already finished")
        self._done = True
        length = max(self._base_length,
                     max(self._updates, default=0) + 1)
        root, height = self._base_root, self._base_height
        dag.retain_entry(self.mem, root)
        needed = dag.height_for(self.mem, max(1, length))
        if needed > height:
            root = dag.grow_entry(self.mem, root, height, needed)
            height = needed
        new_root = dag.write_words_bulk(self.mem, root, height, self._updates)
        ok = mcas(self.mem, self._map.anchor, self._map.map_vsid,
                  (self._base_root, self._base_height),
                  (new_root, height), length)
        # release the staged (caller-transferred) references: the map's
        # leaves own them now (or, on failure, they are simply dropped)
        for entry in self._owned.values():
            dag.release_entry(self.mem, entry)
        self._owned.clear()
        dag.release_entry(self.mem, self._base_root)  # unpin the base map
        return ok

    def abort(self) -> None:
        """Discard staged updates, releasing transferred references."""
        if self._done:
            return
        self._done = True
        for entry in self._owned.values():
            dag.release_entry(self.mem, entry)
        self._owned.clear()
        self._updates.clear()
        dag.release_entry(self.mem, self._base_root)
