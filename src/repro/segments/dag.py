"""Canonical segment DAGs (section 2.2) with path and data compaction
(section 3.2, Figure 4).

A segment's content is a sequence of 64-bit words. It is represented as a
DAG of lines: leaf lines hold ``line_bytes/8`` data words; interior lines
hold ``line_bytes/plid_bytes`` tagged child entries (the paper sizes
PLIDs at 32 bits, so a 16-byte line holds four child references). The
representation is **canonical** — leaves fill left to right, all-zero
subtrees collapse to the zero PLID, and both compactions are applied
greedily by deterministic rules — so any two segments with equal content
share the same root entry (the content-uniqueness property that makes
root-PLID comparison a full content compare).

An *entry* denotes a subtree at a known level and is one of:

* ``0`` — the all-zero subtree;
* :class:`~repro.memory.line.Inline` — data compaction: the subtree's
  (trimmed) words packed into a single entry slot;
* :class:`~repro.memory.line.PlidRef` — a reference to a line, whose
  ``path`` carries the way positions of elided single-child interior
  nodes (path compaction).

At level ``L`` an entry spans ``leaf_words * fanout**L`` words; a segment
of height ``h`` is the entry at level ``h``.

Reference-count contract: every function that *returns* an entry returns
it with one caller-owned reference on its PLID (if any); every function
that *consumes* entries consumes the caller's references on them.
:func:`release_entry` drops a caller reference; the store then cascades.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SegmentRangeError
from repro.memory.line import Inline, Line, PlidRef, ZERO_PLID, encode_word
from repro.memory.system import MemorySystem

Entry = object  # 0 | Inline | PlidRef

_INLINE_WIDTHS = (1, 2, 4, 8)


def entry_capacity(mem: MemorySystem, level: int) -> int:
    """Words addressable by a subtree entry at ``level``."""
    return mem.words_per_line * (mem.fanout ** level)


def height_for(mem: MemorySystem, length: int) -> int:
    """Minimal height whose capacity covers ``length`` words."""
    height = 0
    while entry_capacity(mem, height) < length:
        height += 1
    return height


def _trim(words: Sequence) -> Tuple:
    """Drop trailing zero words (canonical form for inline packing)."""
    n = len(words)
    while n and words[n - 1] == 0:
        n -= 1
    return tuple(words[:n])


def _inline_for(words: Sequence) -> Optional[Inline]:
    """Try to pack a subtree's words into one Inline entry (Figure 4b).

    Qualifies when the trimmed words are all plain data and fit a common
    width ``w`` with ``len * w <= 8`` bytes. Returns None when the subtree
    does not pack (tagged reference words are never inlined).
    """
    vals = _trim(words)
    if not vals:
        return None
    if any(not isinstance(v, int) for v in vals):
        return None
    biggest = max(vals)
    for width in _INLINE_WIDTHS:
        if len(vals) * width > 8:
            break
        if biggest < (1 << (8 * width)):
            return Inline(width=width, values=vals, span=len(vals))
    return None


def retain_entry(mem: MemorySystem, entry: Entry) -> Entry:
    """Take an extra caller reference on an entry (no-op for 0/Inline)."""
    if isinstance(entry, PlidRef):
        mem.incref(entry.plid)
    return entry


def release_entry(mem: MemorySystem, entry: Entry) -> None:
    """Drop a caller reference on an entry (no-op for 0/Inline)."""
    if isinstance(entry, PlidRef):
        mem.decref(entry.plid)


def entry_key(entry: Entry) -> bytes:
    """Canonical byte key of an entry — equal iff the subtrees are equal.

    This is what hardware compares when it compares two root PLIDs; the
    byte form also covers compacted (Inline / path-carrying) roots.
    """
    if entry == 0:
        return b"Z"
    return encode_word(entry)


# ----------------------------------------------------------------------
# building

def _interned_lookup(mem: MemorySystem, line: Line) -> int:
    """Find-or-allocate a line, consulting the structural memo first.

    A memo hit performs exactly the reference bump the dedup-hit path
    would (the PLID's count goes up by one either way), so reference
    counting stays exact; what it skips is the host-side encode/hash/
    bucket walk — and the modeled lookup charge, which is why the memo
    is off by default (see :mod:`repro.memory.memo`).
    """
    memo = mem.memo
    if not memo.enabled:
        return mem.lookup(line)
    plid = memo.get_line(line)
    if plid is not None:
        mem.incref(plid)
        return plid
    plid = mem.lookup(line)
    memo.put_line(line, plid)
    return plid


def _leaf_entry(mem: MemorySystem, words: Sequence) -> Entry:
    """Canonical entry for one leaf-line span of words."""
    vals = _trim(words)
    if not vals:
        return 0
    if mem.config.data_compaction:
        inline = _inline_for(vals)
        if inline is not None:
            return inline
    w = mem.words_per_line
    line: Line = tuple(words) + (0,) * (w - len(words))
    plid = _interned_lookup(mem, line)
    return PlidRef(plid)


def _canonical_interior(mem: MemorySystem, children: List[Entry], level: int) -> Entry:
    """Canonical entry over ``fanout`` child entries at level ``level - 1``.

    Consumes the caller's references on PLID children; returns an entry
    carrying one caller reference.
    """
    nonzero = [(i, c) for i, c in enumerate(children) if c != 0]
    if not nonzero:
        return 0
    # Data compaction: all children already packed (0/Inline) and the
    # combined trimmed words still fit one entry slot.
    if mem.config.data_compaction and all(
            isinstance(c, Inline) for _, c in nonzero):
        child_span = entry_capacity(mem, level - 1)
        last_idx, last_child = nonzero[-1]
        combined_len = last_idx * child_span + len(last_child.values)
        if combined_len <= 8:  # cheap pre-filter before expanding
            # Children past the last non-zero one contribute nothing, and
            # the pre-filter guarantees the expanded prefix stays tiny.
            combined: List[int] = []
            for c in children[:last_idx]:
                if c == 0:
                    combined.extend([0] * child_span)
                else:
                    vals = list(c.values)
                    combined.extend(vals + [0] * (child_span - len(vals)))
            combined.extend(last_child.values)  # no trailing padding needed
            inline = _inline_for(combined)
            if inline is not None:
                return inline
    # Path compaction: a single non-zero child that is a line reference.
    if (mem.config.path_compaction and len(nonzero) == 1
            and isinstance(nonzero[0][1], PlidRef)):
        idx, child = nonzero[0]
        return PlidRef(child.plid, (idx,) + child.path)
    # Materialize the interior line.
    line: Line = tuple(children)
    plid = _interned_lookup(mem, line)
    for _, c in nonzero:
        if isinstance(c, PlidRef):
            mem.decref(c.plid)
    return PlidRef(plid)


def build_entry(mem: MemorySystem, words: Sequence, level: int) -> Entry:
    """Build the canonical entry for ``words`` as a subtree at ``level``."""
    if level == 0:
        return _leaf_entry(mem, words)
    child_span = entry_capacity(mem, level - 1)
    children: List[Entry] = []
    for j in range(mem.fanout):
        chunk = words[j * child_span:(j + 1) * child_span]
        children.append(build_entry(mem, chunk, level - 1) if len(chunk) else 0)
    return _canonical_interior(mem, children, level)


def build_segment(mem: MemorySystem, words: Sequence) -> Tuple[Entry, int]:
    """Build a whole segment; returns ``(root_entry, height)``.

    The height is minimal for the content length, and the root entry
    carries one caller reference.
    """
    height = height_for(mem, max(1, len(words)))
    return build_entry(mem, words, height), height


def grow_entry(mem: MemorySystem, entry: Entry, height: int, new_height: int) -> Entry:
    """Raise a segment's height (content unchanged; capacity grows).

    Consumes the caller's reference on ``entry``; this is the "DAG simply
    extended with additional lines" growth of section 4.1.
    """
    while height < new_height:
        children: List[Entry] = [entry] + [0] * (mem.fanout - 1)
        entry = _canonical_interior(mem, children, height + 1)
        height += 1
    return entry


# ----------------------------------------------------------------------
# reading

def read_word(mem: MemorySystem, entry: Entry, level: int, index: int):
    """Read the word at ``index`` within a subtree at ``level``.

    Returns a plain data ``int`` or, for segments that store references in
    their leaves (e.g. a map of value-segment roots), a tagged
    :class:`PlidRef` word.
    """
    if index >= entry_capacity(mem, level):
        raise SegmentRangeError("index %d beyond height-%d capacity" % (index, level))
    fan = mem.fanout
    while True:
        if entry == 0:
            return 0
        if isinstance(entry, Inline):
            return entry.values[index] if index < len(entry.values) else 0
        # PlidRef: follow the compacted path, then the line.
        for p in entry.path:
            child_span = entry_capacity(mem, level - 1)
            if index // child_span != p:
                return 0
            index %= child_span
            level -= 1
        line = mem.read(entry.plid)
        if level == 0:
            return line[index]
        child_span = entry_capacity(mem, level - 1)
        j = index // child_span
        entry = line[j]
        index %= child_span
        level -= 1


def gather_words(mem: MemorySystem, entry: Entry, level: int,
                 start: int, count: int) -> List:
    """Read ``count`` consecutive words starting at ``start``.

    Descends each touched line once (as an iterator register's cached
    path would), not once per word.
    """
    out = [0] * count
    if count <= 0:
        return out
    if start + count > entry_capacity(mem, level):
        raise SegmentRangeError("range [%d, %d) beyond capacity" % (start, start + count))

    def visit(entry: Entry, level: int, base: int) -> None:
        if entry == 0:
            return
        span = entry_capacity(mem, level)
        lo, hi = max(start, base), min(start + count, base + span)
        if lo >= hi:
            return
        if isinstance(entry, Inline):
            for k, v in enumerate(entry.values):
                pos = base + k
                if start <= pos < start + count and v:
                    out[pos - start] = v
            return
        for p in entry.path:
            span = entry_capacity(mem, level - 1)
            base += p * span
            level -= 1
            lo, hi = max(start, base), min(start + count, base + span)
            if lo >= hi:
                return
        line = mem.read(entry.plid)
        if level == 0:
            for k in range(mem.words_per_line):
                pos = base + k
                if start <= pos < start + count:
                    word = line[k]
                    if word != 0:
                        out[pos - start] = word
            return
        child_span = entry_capacity(mem, level - 1)
        for j in range(mem.fanout):
            visit(line[j], level - 1, base + j * child_span)

    visit(entry, level, 0)
    return out


def iter_nonzero(mem: MemorySystem, entry: Entry, level: int,
                 start: int = 0, stop: Optional[int] = None) -> Iterator[Tuple[int, object]]:
    """Yield ``(index, word)`` for each non-zero word, in index order.

    This is the hardware behaviour behind iterator-register increment:
    moving directly to the next non-null element, skipping zero subtrees
    without touching memory (section 3.3).
    """
    limit = entry_capacity(mem, level) if stop is None else stop

    def visit(entry: Entry, level: int, base: int) -> Iterator[Tuple[int, object]]:
        if entry == 0:
            return
        span = entry_capacity(mem, level)
        if base + span <= start or base >= limit:
            return
        if isinstance(entry, Inline):
            for k, v in enumerate(entry.values):
                pos = base + k
                if v and start <= pos < limit:
                    yield pos, v
            return
        for p in entry.path:
            span = entry_capacity(mem, level - 1)
            base += p * span
            level -= 1
            if base + span <= start or base >= limit:
                return
        line = mem.read(entry.plid)
        if level == 0:
            for k in range(mem.words_per_line):
                word = line[k]
                pos = base + k
                if word != 0 and start <= pos < limit:
                    yield pos, word
            return
        child_span = entry_capacity(mem, level - 1)
        for j in range(mem.fanout):
            child_base = base + j * child_span
            if child_base + child_span <= start or child_base >= limit:
                continue
            for item in visit(line[j], level - 1, child_base):
                yield item

    return visit(entry, level, 0)


# ----------------------------------------------------------------------
# writing

def _expand_children(mem: MemorySystem, entry: Entry, level: int) -> List[Entry]:
    """Expand an entry at ``level > 0`` into its ``fanout`` child entries.

    The returned child entries carry one caller reference each (so they
    can be fed back to :func:`_canonical_interior` uniformly).
    """
    fan = mem.fanout
    if entry == 0:
        return [0] * fan
    if isinstance(entry, Inline):
        child_span = entry_capacity(mem, level - 1)
        vals = list(entry.values)  # trailing zeros are implicit
        children = []
        for j in range(fan):
            lo = j * child_span
            chunk = _trim(vals[lo:lo + child_span]) if lo < len(vals) else ()
            children.append(_inline_for(chunk) if chunk else 0)
        return children
    if entry.path:
        j = entry.path[0]
        children: List[Entry] = [0] * fan
        child = PlidRef(entry.plid, entry.path[1:])
        children[j] = child  # inherits the caller's reference
        return children
    line = mem.read(entry.plid)
    children = list(line)
    for c in children:
        if isinstance(c, PlidRef):
            mem.incref(c.plid)
    # The caller's reference on the expanded line itself is released: the
    # children references above stand in for it during rebuilding.
    mem.decref(entry.plid)
    return children


def _expand_leaf(mem: MemorySystem, entry: Entry) -> List:
    """Expand a level-0 entry into its words.

    Consumes the caller's reference on the leaf line. Tagged reference
    words inside the leaf are returned with one caller-owned reference
    each (taken before the line reference is dropped, so a cascading
    deallocation cannot free them mid-rebuild).
    """
    w = mem.words_per_line
    if entry == 0:
        return [0] * w
    if isinstance(entry, Inline):
        return list(entry.values) + [0] * (w - len(entry.values))
    line = mem.read(entry.plid)
    words = list(line)
    for word in words:
        if isinstance(word, PlidRef):
            mem.incref(word.plid)
    mem.decref(entry.plid)
    return words


def write_word(mem: MemorySystem, entry: Entry, level: int,
               index: int, value) -> Entry:
    """Functional update: new canonical entry with ``index`` set to ``value``.

    Consumes the caller's reference on ``entry`` and returns the new entry
    with one caller reference. Unchanged subtrees are shared between the
    old and new DAG (copy-on-write, section 2.2).
    """
    return write_words_bulk(mem, entry, level, {index: value})


def write_words_bulk(mem: MemorySystem, entry: Entry, level: int,
                     updates: Dict[int, object]) -> Entry:
    """Apply many word updates in one canonical rebuild pass.

    This is what an iterator-register commit does: transient writes are
    accumulated and the affected paths are converted to content-unique
    lines bottom-up in a single sweep (section 3.3), amortizing the
    lookup-by-content cost over many writes.
    """
    if not updates:
        return entry
    cap = entry_capacity(mem, level)
    for index in updates:
        if not 0 <= index < cap:
            raise SegmentRangeError("write at %d beyond capacity %d" % (index, cap))

    def apply(entry: Entry, level: int, updates: Dict[int, object]) -> Entry:
        if level == 0:
            words = _expand_leaf(mem, entry)
            owned = {i for i, word in enumerate(words) if isinstance(word, PlidRef)}
            for i, v in updates.items():
                if i in owned:
                    mem.decref(words[i].plid)
                    owned.discard(i)
                words[i] = v
            new_entry = _leaf_entry(mem, words)
            # Release the expansion-owned references: the new leaf (if
            # materialized) took its own on creation.
            for i in owned:
                mem.decref(words[i].plid)
            return new_entry
        child_span = entry_capacity(mem, level - 1)
        by_child: Dict[int, Dict[int, object]] = {}
        for i, v in updates.items():
            by_child.setdefault(i // child_span, {})[i % child_span] = v
        children = _expand_children(mem, entry, level)
        for j, child_updates in by_child.items():
            children[j] = apply(children[j], level - 1, child_updates)
        return _canonical_interior(mem, children, level)

    return apply(entry, level, dict(updates))


# ----------------------------------------------------------------------
# inspection

def walk_lines(store, entry: Entry,
               skip: Optional[set] = None) -> Iterator[Tuple[int, Line]]:
    """Yield ``(plid, line)`` for every line reachable from ``entry``,
    children strictly before parents, each line exactly once.

    The traversal order is a pure function of the DAG content (children
    visited in word order, duplicates suppressed), so two machines
    holding the same canonical segment walk it in the same sequence —
    the replication layer relies on this both for delta shipping (a
    receiver installing lines in walk order always holds every child a
    line references) and for pairing PLID spaces across machines.

    ``skip`` names subtree roots to prune: a PLID in ``skip`` is neither
    yielded nor descended into (the delta engine passes the set of lines
    the receiver is known to hold — knowledge of a line implies
    knowledge of its whole subtree). Reads go through the store's
    ``peek``, charging no DRAM traffic.
    """
    if skip is None:
        skip = set()
    if not isinstance(entry, PlidRef) or entry.plid in skip:
        return
    seen = set()
    # iterative postorder: (plid, children_expanded) frames
    stack: List[List] = [[entry.plid, False]]
    while stack:
        frame = stack[-1]
        plid, expanded = frame
        if plid == ZERO_PLID or plid in seen or plid in skip:
            stack.pop()
            continue
        line = store.peek(plid)
        if expanded:
            stack.pop()
            seen.add(plid)
            yield plid, line
            continue
        frame[1] = True
        # push children in reverse word order so they pop in word order
        children = [w.plid for w in line if isinstance(w, PlidRef)]
        for child in reversed(children):
            if child != ZERO_PLID and child not in seen and child not in skip:
                stack.append([child, False])


def reachable_plids(store, entries: Iterable[Entry]) -> set:
    """The set of PLIDs reachable from the given root entries."""
    out = set()
    for entry in entries:
        for plid, _ in walk_lines(store, entry, skip=out):
            out.add(plid)
    return out


def content_fingerprint(store, entry: Entry,
                        memo: Optional[Dict[int, bytes]] = None) -> bytes:
    """Machine-independent digest of a subtree: equal iff the canonical
    structures are equal, regardless of how PLIDs were assigned.

    Within one machine, content uniqueness makes root comparison O(1);
    across machines PLID numbering differs, so replication compares
    roots by this digest instead — each PLID reference is replaced by
    its target's fingerprint, bottom-up. ``memo`` (plid → digest) makes
    repeated fingerprinting of overlapping DAGs linear overall.

    When no per-call ``memo`` is given and the store's structural memo
    is enabled, its machine-level digest cache is used instead: digests
    then persist across calls (replication delta pruning, convergence
    checks) and are invalidated through the store's dealloc listeners,
    so a reused PLID can never serve a stale digest.
    """
    tracker = None
    if memo is None:
        smemo = getattr(store, "memo", None)
        if smemo is not None and smemo.enabled:
            memo = smemo.digests
            tracker = smemo
        else:
            memo = {}

    def word_material(word) -> bytes:
        if isinstance(word, PlidRef):
            return b"P" + line_digest(word.plid) + bytes(word.path)
        return encode_word(word)

    def line_digest(plid: int) -> bytes:
        if plid == ZERO_PLID:
            return b"\x00" * 16
        cached = memo.get(plid)
        if tracker is not None:
            tracker.note_digest(cached is not None)
        if cached is not None:
            return cached
        # resolve children first, iteratively (DAGs can be deep). The
        # skip view is live: subtrees digested earlier in this very walk
        # are pruned too, not just ones memoized before the call.
        for child, _ in walk_lines(store, PlidRef(plid),
                                   skip=memo.keys()):
            material = b"".join(word_material(w)
                                for w in store.peek(child))
            memo[child] = hashlib.blake2b(material,
                                          digest_size=16).digest()
        return memo[plid]

    if entry == 0:
        return hashlib.blake2b(b"Z", digest_size=16).digest()
    material = word_material(entry)
    if tracker is not None:
        tracker.trim_digests()
    return hashlib.blake2b(material, digest_size=16).digest()


def segment_fingerprint(machine, vsid: int) -> bytes:
    """Digest of a whole mapped segment: root content + height + length.

    Two machines hold the same version of a replicated segment exactly
    when these digests match (the cross-machine analogue of the paper's
    O(1) root compare).
    """
    entry = machine.segmap.entry(vsid)
    root = content_fingerprint(machine.mem.store, entry.root)
    # sparse segments (HMap slots) have lengths past 2**64 — encode the
    # length as minimal big-endian bytes rather than a fixed field
    length = entry.length.to_bytes(max(1, (entry.length.bit_length() + 7)
                                       // 8), "big")
    material = root + bytes((entry.height,)) + length
    return hashlib.blake2b(material, digest_size=16).digest()


def count_unique_lines(mem: MemorySystem, entries: Iterable[Entry]) -> int:
    """Number of distinct lines reachable from the given root entries.

    Walks the DAGs without charging DRAM traffic (uses the store's
    ``peek``); used by footprint accounting.
    """
    seen = set()

    def visit(plid: int) -> None:
        if plid == ZERO_PLID or plid in seen:
            return
        seen.add(plid)
        for word in mem.store.peek(plid):
            if isinstance(word, PlidRef):
                visit(word.plid)

    for entry in entries:
        if isinstance(entry, PlidRef):
            visit(entry.plid)
    return len(seen)
