"""Iterator registers (section 3.3, Figure 5).

An iterator register is the architecture's extended address register: it
is loaded with a VSID and an offset, caches the DAG path to the current
position, advances directly to the next non-null element, and buffers
stores in *transient lines* — per-processor, non-deduplicated memory —
until a commit converts them to content-unique lines bottom-up and
compare-and-swaps the new root into the segment map.

Loading a register takes a snapshot: the register holds its own reference
on the root it observed, so the content it iterates is immune to
concurrent commits (snapshot isolation, section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import IteratorStateError, ReadOnlyError, SegmentRangeError
from repro.memory.system import MemorySystem
from repro.segments import dag
from repro.segments.dag import Entry
from repro.segments.segment_map import SegmentFlags, SegmentMap


@dataclass
class IteratorStats:
    """Register-level access accounting (supports the §3.3 claims)."""

    reads: int = 0
    path_hits: int = 0  # served from the register's cached leaf
    writes: int = 0
    transient_writes: int = 0
    commits: int = 0
    aborts: int = 0
    prefetches: int = 0      # next-leaf paths fetched ahead of demand
    prefetch_hits: int = 0   # demand fills that found their prefetch


class IteratorRegister:
    """One iterator register bound to a memory system and segment map."""

    def __init__(self, mem: MemorySystem, segmap: SegmentMap,
                 prefetch: bool = True, transient_region=None) -> None:
        self.mem = mem
        self.segmap = segmap
        #: DAG-aware prefetching (section 3.3): on a sequential leaf
        #: advance, the register fetches the next leaf's path ahead of
        #: demand, hiding its latency behind the current leaf's use.
        self.prefetch = prefetch
        #: per-processor conventional-mode area holding transient lines
        #: (section 3.3; optional — accounting only)
        self.transient_region = transient_region
        self._prefetched_base = -1
        self.stats = IteratorStats()
        self._vsid: Optional[int] = None
        self._root: Entry = 0
        self._height = 0
        self._length = 0
        self._read_only = True
        self._offset = 0
        # Transient-line overlay: uncommitted stores, offset -> word.
        self._transient: Dict[int, object] = {}
        # Cached leaf span (the register's cached path): base offset and
        # the words of the leaf-line span containing the current offset.
        self._leaf_base = -1
        self._leaf_words: Optional[list] = None

    # ------------------------------------------------------------------
    # loading / state

    def load(self, vsid: int, offset: int = 0) -> "IteratorRegister":
        """Load the register: snapshot the segment and seek to ``offset``."""
        self.reset()
        entry = self.segmap.entry(vsid)
        dag.retain_entry(self.mem, entry.root)
        self._vsid = vsid
        self._root = entry.root
        self._height = entry.height
        self._length = entry.length
        self._read_only = bool(entry.flags & SegmentFlags.READ_ONLY)
        self._loaded_version = entry.version
        self._offset = offset
        return self

    def reset(self) -> None:
        """Unload the register, dropping its snapshot reference."""
        if self._vsid is not None:
            dag.release_entry(self.mem, self._root)
        self._vsid = None
        self._root = 0
        self._height = 0
        self._length = 0
        self._offset = 0
        self._transient.clear()
        self._leaf_base = -1
        self._leaf_words = None
        self._prefetched_base = -1
        if self.transient_region is not None:
            self.transient_region.reset()

    def _require_loaded(self) -> None:
        if self._vsid is None:
            raise IteratorStateError("iterator register is not loaded")

    @property
    def vsid(self) -> Optional[int]:
        """The VSID the register is loaded with (None when unloaded)."""
        return self._vsid

    @property
    def offset(self) -> int:
        """Current word offset within the segment."""
        return self._offset

    @property
    def length(self) -> int:
        """Logical segment length in words (grows on writes past the end)."""
        return self._length

    @property
    def snapshot_root(self) -> Entry:
        """The root entry captured at load time (plus committed changes)."""
        return self._root

    @property
    def height(self) -> int:
        """Snapshot height."""
        return self._height

    # ------------------------------------------------------------------
    # reading

    def seek(self, offset: int) -> "IteratorRegister":
        """Position the register at ``offset``."""
        self._require_loaded()
        if offset < 0:
            raise SegmentRangeError("negative offset %d" % offset)
        self._offset = offset
        return self

    def get(self, offset: Optional[int] = None):
        """Read the word at the current (or given) offset.

        Uncommitted transient stores are visible to this register only.
        """
        self._require_loaded()
        if offset is None:
            offset = self._offset
        if offset in self._transient:
            self.stats.path_hits += 1
            if self.transient_region is not None:
                self.transient_region.read_word(offset)
            return self._transient[offset]
        w = self.mem.words_per_line
        base = offset - offset % w
        if base == self._leaf_base and self._leaf_words is not None:
            self.stats.path_hits += 1
            return self._leaf_words[offset - base]
        self.stats.reads += 1
        cap = dag.entry_capacity(self.mem, self._height)
        if offset >= cap:
            return 0  # beyond capacity is logically zero content
        if base == self._prefetched_base:
            self.stats.prefetch_hits += 1
        sequential = (self._leaf_base >= 0 and base == self._leaf_base + w)
        words = dag.gather_words(self.mem, self._root, self._height, base,
                                 min(w, cap - base))
        if len(words) < w:
            words = words + [0] * (w - len(words))
        self._leaf_base = base
        self._leaf_words = words
        # DAG-aware prefetch: a sequential advance pulls the next leaf's
        # path into the cache before it is demanded (section 3.3).
        next_base = base + w
        if (self.prefetch and sequential and next_base < cap
                and next_base < self._length
                and next_base != self._prefetched_base):
            dag.gather_words(self.mem, self._root, self._height, next_base,
                             min(w, cap - next_base))
            self._prefetched_base = next_base
            self.stats.prefetches += 1
        return words[offset - base]

    def next_nonzero(self) -> Optional[Tuple[int, object]]:
        """Advance past the current offset to the next non-null element.

        Returns ``(offset, word)`` or None at the end of the segment. The
        hardware skips zero subtrees without memory accesses; transient
        stores are merged into the scan.
        """
        self._require_loaded()
        start = self._offset + 1
        base = None
        for idx, word in dag.iter_nonzero(self.mem, self._root, self._height,
                                          start=start, stop=self._length):
            if idx in self._transient:
                continue  # superseded by a transient store
            base = (idx, word)
            break
        pending = sorted(
            (o, v) for o, v in self._transient.items()
            if o >= start and v != 0 and o < self._length
        )
        if pending and (base is None or pending[0][0] < base[0]):
            base = pending[0]
        if base is None:
            return None
        self._offset = base[0]
        return base

    def iter_items(self, start: int = 0) -> Iterator[Tuple[int, object]]:
        """Iterate ``(offset, word)`` over all non-null elements from
        ``start`` — the software ``for(it = obj.begin(); ...)`` pattern."""
        self._require_loaded()
        self._offset = start - 1  # so next_nonzero scans from ``start``
        while True:
            item = self.next_nonzero()
            if item is None:
                return
            yield item

    # ------------------------------------------------------------------
    # writing

    def put(self, value, offset: Optional[int] = None) -> "IteratorRegister":
        """Store a word at the current (or given) offset.

        The store lands in a transient line (no dedup lookup yet); commit
        converts transient lines to content-unique lines (section 3.3).
        Writing at or past the current length extends the segment.
        """
        self._require_loaded()
        if self._read_only:
            raise ReadOnlyError("store through read-only iterator (VSID %d)" % self._vsid)
        if offset is None:
            offset = self._offset
        if offset < 0:
            raise SegmentRangeError("negative offset %d" % offset)
        self._transient[offset] = value
        self.stats.writes += 1
        self.stats.transient_writes += 1
        if self.transient_region is not None:
            self.transient_region.write_word(offset)
        if offset >= self._length:
            self._length = offset + 1
        return self

    @property
    def dirty(self) -> bool:
        """True when uncommitted transient stores exist."""
        return bool(self._transient)

    def abort(self) -> None:
        """Discard transient stores, reverting to the loaded snapshot."""
        self._require_loaded()
        self._transient.clear()
        self._leaf_base = -1
        self._leaf_words = None
        self.stats.aborts += 1
        if self.transient_region is not None:
            self.transient_region.reset()

    def build_updated_root(self) -> Tuple[Entry, int]:
        """Materialize the snapshot plus transient stores as a new DAG.

        Returns ``(new_root, new_height)`` with a caller-owned reference;
        this is the bottom-up conversion of transient lines to
        content-unique lines that commit performs. Does not touch the map.
        """
        self._require_loaded()
        w = self.mem.words_per_line
        root, height = self._root, self._height
        dag.retain_entry(self.mem, root)
        needed = dag.height_for(self.mem, max(1, self._length))
        if needed > height:
            root = dag.grow_entry(self.mem, root, height, needed)
            height = needed
        updates = {o: v for o, v in self._transient.items()}
        root = dag.write_words_bulk(self.mem, root, height, updates)
        return root, height

    def try_commit(self) -> bool:
        """Commit transient stores: rebuild and CAS the root into the map.

        Returns False when another thread committed first (the CAS saw a
        different root); the register keeps its transient stores so the
        caller can retry or merge. With no transient stores this still
        validates the snapshot is current.
        """
        self._require_loaded()
        new_root, new_height = self.build_updated_root()
        ok = self.segmap.cas_root(
            self._vsid,
            expected_root=self._root, expected_height=self._height,
            new_root=new_root, new_height=new_height, new_length=self._length,
        )
        if not ok:
            dag.release_entry(self.mem, new_root)
            return False
        # Move the register's snapshot to the committed version.
        dag.retain_entry(self.mem, new_root)
        dag.release_entry(self.mem, self._root)
        self._root = new_root
        self._height = new_height
        self._transient.clear()
        self._leaf_base = -1
        self._leaf_words = None
        self.stats.commits += 1
        if self.transient_region is not None:
            self.transient_region.reset()
        return True
