"""The virtual segment map (section 2.3).

Software names segments by Virtual Segment IDs (VSIDs); the map translates
a VSID to ``[root PLID, height, flags]``. The indirection gives HICAMP its
protection model — a process can only reach content whose VSID (or PLID)
it was explicitly given — and its update model: committing a new version
of a segment is a single compare-and-swap of the root PLID in the map
entry, which is also the only mutable, coherence-requiring state in the
architecture.

Deviations from the paper, documented:

* entries also record the segment's logical ``length`` in words. Hardware
  would leave this to software conventions (e.g. a length header word);
  the library keeps it in the map entry for convenience, and structures
  that need content-unique identity across lengths (HString) additionally
  embed a length header in the segment content itself.
* the map is held in conventional memory (a dict); the paper also allows
  a map implemented as a HICAMP segment for atomic multi-segment commit,
  which :class:`repro.core.transactions.MultiSegmentCommit` models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import BadVsidError, ReadOnlyError
from repro.memory.system import MemorySystem
from repro.segments import dag
from repro.segments.dag import Entry, entry_key


class SegmentFlags(enum.IntFlag):
    """Per-entry flags (section 2.3)."""

    NONE = 0
    #: Holders of this reference may not update the root PLID.
    READ_ONLY = 1
    #: CAS failures on this segment should attempt merge-update (§3.4).
    MERGE_UPDATE = 2
    #: Weak reference: zeroed on reclamation instead of pinning content.
    WEAK = 4


@dataclass
class MapEntry:
    """One segment-map entry: ``[root, height, flags]`` plus length."""

    root: Entry
    height: int
    length: int
    flags: SegmentFlags = SegmentFlags.NONE
    #: bumped on every root swap; cheap staleness check for iterators.
    version: int = 0


class SegmentMap:
    """VSID → segment-map-entry translation table."""

    def __init__(self, mem: MemorySystem) -> None:
        self.mem = mem
        self._entries: Dict[int, MapEntry] = {}
        self._next_vsid = 1
        #: weak aliases per target VSID, zeroed when the target is dropped
        self._weak_aliases: Dict[int, List[int]] = {}
        self._weak_target: Dict[int, int] = {}  # alias -> live target
        #: counters for CAS outcomes (feeds the §5.1.1 conflict analysis)
        self.cas_attempts = 0
        self.cas_failures = 0

    # ------------------------------------------------------------------

    def create(self, root: Entry = 0, height: int = 0, length: int = 0,
               flags: SegmentFlags = SegmentFlags.NONE) -> int:
        """Allocate a VSID for a segment.

        Takes over the caller's reference on ``root`` — the map entry now
        owns it.
        """
        vsid = self._next_vsid
        self._next_vsid += 1
        self._entries[vsid] = MapEntry(root=root, height=height,
                                       length=length, flags=flags)
        return vsid

    def entry(self, vsid: int) -> MapEntry:
        """The live entry for ``vsid`` (raises :class:`BadVsidError`).

        A weak alias resolves to its target's current entry while the
        target lives; afterwards it resolves to its own zeroed entry.
        """
        target = self._weak_target.get(vsid)
        if target is not None and target in self._entries:
            live = self._entries[target]
            weak = self._entries[vsid]
            # mirror the target (read-only view of the current version)
            weak.root, weak.height = live.root, live.height
            weak.length, weak.version = live.length, live.version
            return weak
        try:
            return self._entries[vsid]
        except KeyError:
            raise BadVsidError("VSID %d is not mapped" % vsid)

    def exists(self, vsid: int) -> bool:
        """True when ``vsid`` names a live segment."""
        return vsid in self._entries

    def is_read_only(self, vsid: int) -> bool:
        """True when the entry is flagged read-only."""
        return bool(self.entry(vsid).flags & SegmentFlags.READ_ONLY)

    # ------------------------------------------------------------------

    def cas_root(self, vsid: int, expected_root: Entry, expected_height: int,
                 new_root: Entry, new_height: int, new_length: int) -> bool:
        """Atomically replace the root if it is still the expected one.

        This is the architecture's commit primitive (section 2.2 step 3).
        On success the map takes over the caller's reference on
        ``new_root`` and drops its reference on the old root; on failure
        the caller keeps its reference on ``new_root`` (and typically
        retries or merges).
        """
        entry = self.entry(vsid)
        if entry.flags & SegmentFlags.READ_ONLY:
            raise ReadOnlyError("CAS through read-only reference to VSID %d" % vsid)
        self.cas_attempts += 1
        if (entry.height != expected_height
                or entry_key(entry.root) != entry_key(expected_root)):
            self.cas_failures += 1
            return False
        old_root = entry.root
        entry.root = new_root
        entry.height = new_height
        entry.length = new_length
        entry.version += 1
        dag.release_entry(self.mem, old_root)
        return True

    def set_root(self, vsid: int, new_root: Entry, new_height: int,
                 new_length: int) -> None:
        """Unconditional root replacement (single-writer update).

        Takes over the caller's reference on ``new_root``.
        """
        entry = self.entry(vsid)
        if entry.flags & SegmentFlags.READ_ONLY:
            raise ReadOnlyError("write through read-only reference to VSID %d" % vsid)
        old_root = entry.root
        entry.root = new_root
        entry.height = new_height
        entry.length = new_length
        entry.version += 1
        dag.release_entry(self.mem, old_root)

    # ------------------------------------------------------------------

    def share_read_only(self, vsid: int) -> int:
        """A new VSID for the same segment content, flagged read-only.

        Passing such a reference gives another thread access to the data
        with the same protection as a separate address space but no copy
        (section 2.3). The new entry snapshots the current root.
        """
        entry = self.entry(vsid)
        dag.retain_entry(self.mem, entry.root)
        return self.create(entry.root, entry.height, entry.length,
                           entry.flags | SegmentFlags.READ_ONLY)

    def create_weak_alias(self, vsid: int) -> int:
        """A weak reference to a segment (section 2.3).

        The alias does not pin the content: while the target lives, the
        alias tracks the target's current version; when the target is
        dropped, the alias is *zeroed* — rather than preventing
        reclamation — and reads as the empty segment. Aliases are always
        read-only.
        """
        self.entry(vsid)  # must exist
        alias = self.create(0, 0, 0, SegmentFlags.WEAK | SegmentFlags.READ_ONLY)
        self._weak_aliases.setdefault(vsid, []).append(alias)
        self._weak_target[alias] = vsid
        return alias

    def drop(self, vsid: int) -> None:
        """Delete a map entry, releasing its reference on the root DAG.

        Weak aliases of the dropped segment are zeroed (section 2.3's
        weak-reference semantics).
        """
        if vsid in self._weak_target:
            # an alias owns no reference — just unlink it
            target = self._weak_target.pop(vsid)
            if target in self._weak_aliases:
                self._weak_aliases[target] = [
                    a for a in self._weak_aliases[target] if a != vsid]
            del self._entries[vsid]
            return
        entry = self.entry(vsid)
        del self._entries[vsid]
        for alias in self._weak_aliases.pop(vsid, []):
            if alias in self._entries:
                weak = self._entries[alias]
                weak.root, weak.height, weak.length = 0, 0, 0
                weak.version += 1
            self._weak_target.pop(alias, None)
        dag.release_entry(self.mem, entry.root)

    def live_vsids(self) -> List[int]:
        """All mapped VSIDs (diagnostics)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
