"""``repro`` — the command-line front end of the reproduction.

Examples::

    repro experiments --list
    repro experiments table1 figure6
    repro experiments --all --out results/
    repro memcached            # interactive protocol REPL
    repro demo                 # one-minute architecture tour
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.analysis.experiments import RUNNERS, headline_metrics


def _cmd_experiments(args: argparse.Namespace) -> int:
    names = list(RUNNERS) if args.all or not args.names else args.names
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown),
              file=sys.stderr)
        print("available: %s" % ", ".join(RUNNERS), file=sys.stderr)
        return 2
    out_dir: Optional[pathlib.Path] = None
    if args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
    all_metrics = {}
    for name in names:
        runner = RUNNERS[name]
        kwargs = {}
        if "scale" in runner.__code__.co_varnames[:runner.__code__.co_argcount]:
            kwargs["scale"] = args.scale
        result = runner(**kwargs)
        metrics = headline_metrics(result)
        all_metrics[name] = metrics
        if args.json:
            import json
            print(json.dumps({name: metrics}, indent=2))
        else:
            print(result.text)
            print()
        if out_dir is not None:
            (out_dir / (name + ".txt")).write_text(result.text + "\n")
    if out_dir is not None:
        import json
        (out_dir / "metrics.json").write_text(
            json.dumps(all_metrics, indent=2) + "\n")
    return 0


def _cmd_experiments_list(_args: argparse.Namespace) -> int:
    for name, runner in RUNNERS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print("%-16s %s" % (name, doc))
    return 0


def _cmd_memcached(args: argparse.Namespace) -> int:
    from repro import Machine
    from repro.apps.memcached.eviction import ManagedMemcached
    from repro.apps.memcached.protocol import ProtocolHandler

    machine = Machine()
    server = ManagedMemcached(machine, quota_bytes=args.quota)
    handler = ProtocolHandler(server)
    stream = sys.stdin
    print("# repro memcached on a HICAMP machine — ASCII protocol, one "
          "request per line;\n# storage commands take the payload on the "
          "next line. Ctrl-D to quit.", file=sys.stderr)
    while True:
        line = stream.readline()
        if not line:
            break
        line = line.rstrip("\n")
        if not line:
            continue
        request = line.encode() + b"\r\n"
        command = line.split(None, 1)[0] if line.split() else ""
        if command in ("set", "add", "replace", "cas"):
            payload = stream.readline().rstrip("\n").encode()
            request += payload + b"\r\n"
        response = handler.handle(request)
        sys.stdout.write(response.decode(errors="replace"))
        sys.stdout.flush()
    print("# footprint: %d bytes in %d unique lines"
          % (machine.footprint_bytes(), machine.footprint_lines()),
          file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro import Machine
    from repro.net.server import MemcachedServer

    def backend_factory(machine: Machine):
        if args.quota is not None:
            from repro.apps.memcached.eviction import ManagedMemcached
            return ManagedMemcached(machine, quota_bytes=args.quota)
        from repro.apps.memcached import HicampMemcached
        return HicampMemcached(machine)

    async def go() -> None:
        server = MemcachedServer(
            host=args.host, port=args.port, shard_count=args.shards,
            read_timeout=args.read_timeout,
            backend_factory=backend_factory,
            queue_depth=args.queue_depth, batch_limit=args.batch_limit,
            commit_mode=args.commit_mode,
            reclaim_budget=args.reclaim_budget)
        await server.start()
        print("# repro serve: HICAMP memcached on %s:%d "
              "(%d shards; `stats json` for metrics; Ctrl-C to stop)"
              % (args.host, server.port, args.shards), file=sys.stderr)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.shutdown()
            snapshot = server.router.snapshot()
            if args.metrics_json:
                pathlib.Path(args.metrics_json).write_text(
                    json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
            print("# served %d ops (%.0f ops/s), %d merge commits, "
                  "%d pending at shutdown"
                  % (snapshot["ops_total"], snapshot["ops_per_second"],
                     snapshot["merge_commits"],
                     snapshot["pending_at_shutdown"]), file=sys.stderr)

    try:
        asyncio.run(go())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print("repro serve: cannot listen on %s:%d: %s"
              % (args.host, args.port, exc), file=sys.stderr)
        return 1
    return 0


def _parse_endpoint(spec: str) -> tuple:
    host, _, port = spec.rpartition(":")
    return (host or "127.0.0.1", int(port))


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.net.loadgen import (ReadSplitPolicy, parse_phases,
                                   run_loadgen)

    phases = None
    if args.phases:
        try:
            phases = parse_phases(args.phases)
        except ValueError as exc:
            print("repro loadgen: %s" % exc, file=sys.stderr)
            return 2
    endpoints = None
    policy_factory = None
    if args.read_endpoint:
        # fleet mode: writes stay on --host/--port (endpoint 0), plain
        # reads round-robin across the replica endpoints
        endpoints = [(args.host, args.port)]
        endpoints += [_parse_endpoint(spec) for spec in args.read_endpoint]
        readers = list(range(1, len(endpoints)))
        policy_factory = lambda: ReadSplitPolicy(writer=0, readers=readers)
    try:
        report = asyncio.run(run_loadgen(
            args.host, args.port, clients=args.clients,
            ops_per_client=args.ops, pipeline_depth=args.pipeline,
            get_ratio=args.get_ratio, key_space=args.keys,
            value_bytes=args.value_bytes, seed=args.seed,
            endpoints=endpoints, policy_factory=policy_factory,
            phases=phases))
    except OSError as exc:
        print("repro loadgen: cannot reach %s:%d: %s"
              % (args.host, args.port, exc), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        from repro.analysis.reporting import format_table
        latency = report.latency()
        print(format_table(
            ["metric", "value"],
            [["clients", report.clients],
             ["ops", report.ops],
             ["ops/s", round(report.ops_per_second, 1)],
             ["stored", report.stored],
             ["get hits", report.get_hits],
             ["get misses", report.get_misses],
             ["cas stored", report.cas_stored],
             ["cas conflicts", report.cas_conflicts],
             ["errors", report.errors],
             ["oracle mismatches", report.oracle_mismatches],
             ["shared mismatches", report.shared_mismatches]]
            + ([["endpoints", report.endpoints],
                ["stale reads", report.stale_reads]]
               if report.endpoints > 1 else [])
            + [["batch RTT p50 (ms)", latency["p50_ms"]],
               ["batch RTT p99 (ms)", latency["p99_ms"]]]
            + [["phase %s (%d ops)" % (p["name"], p["ops"]),
                "%.1f ops/s" % p["ops_per_second"]]
               for p in report.phases],
            title="loadgen against %s:%d" % (args.host, args.port)))
    return 0 if report.consistent and report.errors == 0 else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.cluster import Cluster, ClusterConfig, TopologyManager

    async def go() -> None:
        cluster = Cluster(ClusterConfig(
            leaders=args.leaders, followers=args.followers,
            shards=args.shards, host=args.host, seed=args.seed))
        manager = TopologyManager(
            cluster, probe_interval=args.probe_interval,
            failure_threshold=args.failure_threshold)
        async with cluster:
            await manager.start()
            print("# repro cluster: %d leaders x %d followers "
                  "(%d shards each), epoch %d"
                  % (args.leaders, args.followers, args.shards,
                     cluster.topology.epoch), file=sys.stderr)
            for node_id in sorted(cluster.topology.nodes):
                info = cluster.topology.nodes[node_id]
                print("#   %-12s %-8s %s:%d"
                      % (node_id, info.role, info.host, info.port),
                      file=sys.stderr)
            print("# `cluster topology` on any node returns the "
                  "committed topology; Ctrl-C to stop", file=sys.stderr)
            try:
                while True:
                    await asyncio.sleep(3600)
            except asyncio.CancelledError:
                pass
            finally:
                await manager.stop()
                cluster.sample_moved()
                print("# cluster: %s"
                      % json.dumps(cluster.metrics.snapshot(),
                                   sort_keys=True), file=sys.stderr)

    try:
        asyncio.run(go())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print("repro cluster: %s" % exc, file=sys.stderr)
        return 1
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.profile == "hi":
        from repro.testing.hi import HIConfig, run_hi

        cfg = HIConfig(schedules=args.schedules, keys=args.keys,
                       ops=args.ops, index_kind=args.index_kind,
                       reclaim_kind=args.reclaim_kind)
        report = run_hi(episodes=args.episodes, seed=args.seed, cfg=cfg)
    elif args.profile == "expiry":
        from repro.testing.fuzz import expiry_config, run_fuzz

        cfg = expiry_config(clients=args.clients,
                            ops_per_client=args.ops,
                            pipeline_depth=args.pipeline,
                            key_space=args.keys, shards=args.shards)
        cfg.index_kind = args.index_kind
        cfg.reclaim_kind = args.reclaim_kind
        cfg.commit_mode = args.commit_mode
        report = run_fuzz(episodes=args.episodes, seed=args.seed, cfg=cfg)
    elif args.profile == "cluster":
        from repro.cluster.fuzz import ClusterEpisodeConfig, run_fuzz

        cfg = ClusterEpisodeConfig(ops=args.ops, key_space=args.keys,
                                   shards=args.shards)
        report = run_fuzz(episodes=args.episodes, seed=args.seed, cfg=cfg)
    elif args.profile == "replication":
        from repro.replication.fuzz import (
            ReplicationEpisodeConfig,
            run_fuzz,
        )

        cfg = ReplicationEpisodeConfig(ops=args.ops, key_space=args.keys,
                                       shards=args.shards)
        report = run_fuzz(episodes=args.episodes, seed=args.seed, cfg=cfg)
    else:
        from repro.testing.fuzz import EpisodeConfig, run_fuzz

        cfg = EpisodeConfig(clients=args.clients, ops_per_client=args.ops,
                            pipeline_depth=args.pipeline,
                            key_space=args.keys, shards=args.shards,
                            index_kind=args.index_kind,
                            reclaim_kind=args.reclaim_kind,
                            commit_mode=args.commit_mode)
        report = run_fuzz(episodes=args.episodes, seed=args.seed, cfg=cfg)
    print(report.render(verbose=args.verbose))
    return 0 if report.ok else 1


def _cmd_replicate_leader(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.net.server import MemcachedServer
    from repro.replication import ReplicationLeader

    async def go() -> None:
        server = MemcachedServer(
            host=args.host, port=args.port, shard_count=args.shards,
            queue_depth=args.queue_depth, batch_limit=args.batch_limit)
        await server.start()
        leader = ReplicationLeader(
            server.router, host=args.repl_host, port=args.repl_port,
            lag_window=args.lag_window)
        await leader.start()
        print("# repro replicate-leader: memcached on %s:%d, "
              "replication on %s:%d (%d shards, lag window %d)"
              % (args.host, server.port, args.repl_host, leader.port,
                 args.shards, args.lag_window), file=sys.stderr)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await leader.stop()
            await server.shutdown()
            print("# replication: %s"
                  % json.dumps(leader.metrics.snapshot(), sort_keys=True),
                  file=sys.stderr)

    try:
        asyncio.run(go())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print("repro replicate-leader: %s" % exc, file=sys.stderr)
        return 1
    return 0


def _cmd_replicate_follower(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.core.persistence import load_machine_file, save_machine_file
    from repro.errors import PersistenceError
    from repro.replication import FollowerServer, ReplicationFollower

    machine = None
    streams = None
    if args.checkpoint:
        try:
            machine, extra = load_machine_file(args.checkpoint)
        except (FileNotFoundError, PersistenceError) as exc:
            print("repro replicate-follower: cannot load checkpoint: %s"
                  % exc, file=sys.stderr)
            return 1
        streams = {int(s): vsid for s, vsid in
                   extra.get("replication_streams", {}).items()}
        print("# warm start from %s (%d streams)"
              % (args.checkpoint, len(streams)), file=sys.stderr)

    async def go() -> None:
        follower = ReplicationFollower(
            args.leader_host, args.leader_port,
            machine=machine, streams=streams)
        await follower.start()
        front = FollowerServer(
            follower, args.upstream_host, args.upstream_port,
            host=args.host, port=args.port)
        await front.start()
        print("# repro replicate-follower: serving snapshot reads on "
              "%s:%d, replicating from %s:%d, forwarding writes to %s:%d"
              % (args.host, front.port, args.leader_host, args.leader_port,
                 args.upstream_host, args.upstream_port), file=sys.stderr)
        try:
            while True:
                await asyncio.sleep(3600)
        except asyncio.CancelledError:
            pass
        finally:
            await front.stop()
            await follower.stop()
            if args.save_checkpoint:
                save_machine_file(
                    follower.machine, args.save_checkpoint,
                    extra={"replication_streams":
                           {str(s): vsid
                            for s, vsid in follower.streams.items()}})
                print("# checkpoint saved to %s" % args.save_checkpoint,
                      file=sys.stderr)
            print("# replication: %s"
                  % json.dumps(follower.metrics.snapshot(), sort_keys=True),
                  file=sys.stderr)

    try:
        asyncio.run(go())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print("repro replicate-follower: %s" % exc, file=sys.stderr)
        return 1
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.core.persistence import load_machine_file, save_machine_file
    from repro.errors import PersistenceError
    from repro.testing.auditors import audit_machine

    if args.action == "save":
        if args.source:
            try:
                machine, extra = load_machine_file(args.source)
            except (FileNotFoundError, PersistenceError) as exc:
                print("repro checkpoint: cannot load %s: %s"
                      % (args.source, exc), file=sys.stderr)
                return 1
        else:
            from repro import Machine
            machine, extra = Machine(), {}
        save_machine_file(machine, args.path, extra=extra or None)
        print("saved %s: %d unique lines, %d bytes footprint"
              % (args.path, machine.footprint_lines(),
                 machine.footprint_bytes()))
        return 0

    try:
        machine, extra = load_machine_file(args.path)
    except (FileNotFoundError, PersistenceError) as exc:
        print("repro checkpoint: cannot load %s: %s" % (args.path, exc),
              file=sys.stderr)
        return 1
    report = audit_machine(machine)
    print("loaded %s: %d unique lines, %d bytes footprint, audit %s"
          % (args.path, machine.footprint_lines(),
             machine.footprint_bytes(), "ok" if report.ok else "FAILED"))
    streams = extra.get("replication_streams")
    if streams:
        print("replication streams: %s"
              % ", ".join("%s->vsid %s" % (s, v)
                          for s, v in sorted(streams.items())))
    for failure in report.failures:
        print("audit: %s" % failure, file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    import socket

    request = (b"stats json\r\n" if args.format == "json"
               else b"stats prom\r\n")
    try:
        with socket.create_connection((args.host, args.port),
                                      timeout=args.timeout) as sock:
            sock.sendall(request)
            chunks = []
            while True:
                data = sock.recv(1 << 16)
                if not data:
                    break
                chunks.append(data)
                if b"".join(chunks[-2:]).find(b"END\r\n") >= 0:
                    break
    except OSError as exc:
        print("repro metrics: cannot reach %s:%d: %s"
              % (args.host, args.port, exc), file=sys.stderr)
        return 1
    payload = b"".join(chunks)
    end = payload.rfind(b"END\r\n")
    if end >= 0:
        payload = payload[:end]
    sys.stdout.write(payload.decode(errors="replace"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.trace import load_jsonl, render_spans, to_chrome_trace

    try:
        spans = load_jsonl(args.file)
    except (FileNotFoundError, ValueError) as exc:
        print("repro trace: cannot load %s: %s" % (args.file, exc),
              file=sys.stderr)
        return 1
    if args.chrome:
        pathlib.Path(args.chrome).write_text(
            json.dumps(to_chrome_trace(spans)) + "\n")
        print("wrote %d events to %s (load in chrome://tracing or "
              "https://ui.perfetto.dev)" % (len(spans), args.chrome),
              file=sys.stderr)
        return 0
    print(render_spans(spans, limit=args.limit))
    return 0


def _cmd_bench_cluster(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.reporting import format_table
    from repro.cluster.bench import run_cluster_bench

    report = run_cluster_bench(scale=args.scale)
    out = pathlib.Path(args.out or "benchmarks/out/cluster_scaling.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    scaling = report["read_scaling"]
    speedup_key = next(k for k in scaling if k.startswith("speedup_"))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        rows = [["single node (leader)", scaling["single_node_ops_s"]]]
        rows += [["aggregate, %s follower(s)" % n, rate]
                 for n, rate in sorted(
                     scaling["aggregate_by_followers"].items(),
                     key=lambda kv: int(kv[0]))]
        rows.append([speedup_key.replace("_", " x"),
                     "%.2fx" % scaling[speedup_key]])
        rows.append(["recovery to convergence (s)",
                     report["recovery"]["seconds_to_convergence"]])
        print(format_table(["metric", "read ops/s"], rows,
                           title="cluster scaling (scale %d) -> %s"
                           % (report["scale"], out)))
    if args.check is not None and scaling[speedup_key] < args.check:
        print("bench cluster: %s %.2fx below the %.2fx floor"
              % (speedup_key, scaling[speedup_key], args.check),
              file=sys.stderr)
        return 1
    return 0


def _cmd_bench_scale(args: argparse.Namespace) -> int:
    import json

    from repro.net import scale

    if args.smoke:
        cfg = scale.smoke_config(seed=args.seed)
    else:
        cfg = scale.ScaleConfig(seed=args.seed)
    if args.keys:
        cfg.keys = args.keys
    if args.workers:
        cfg.workers = args.workers
    result = scale.run_scale(cfg)
    out = args.out or scale.DEFAULT_OUT
    scale.write_result(result, out)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(scale.render(result))
        print("  -> %s" % out)
    if args.check is not None:
        problems = scale.check_floor(result, args.check)
        for problem in problems:
            print("bench scale: %s" % problem, file=sys.stderr)
        if problems:
            return 1
    return 0


def _cmd_bench_dedup_index(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import indexbench

    report = indexbench.run_index_bench(smoke=args.smoke,
                                        keys=args.keys or 0)
    out = pathlib.Path(args.out or indexbench.DEFAULT_OUT)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(indexbench.render(report))
        print("  -> %s" % out)
    if args.check is not None:
        problems = indexbench.check_floor(report, args.check)
        for problem in problems:
            print("bench dedup-index: %s" % problem, file=sys.stderr)
        if problems:
            return 1
    return 0


def _cmd_bench_reclaim(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import reclaimbench

    report = reclaimbench.run_reclaim_bench(smoke=args.smoke)
    out = pathlib.Path(args.out or reclaimbench.DEFAULT_OUT)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(reclaimbench.render(report))
        print("  -> %s" % out)
    if args.check is not None:
        problems = reclaimbench.check_floor(report, args.check)
        for problem in problems:
            print("bench reclaim: %s" % problem, file=sys.stderr)
        if problems:
            return 1
    return 0


def _cmd_bench_adaptive(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import adaptivebench

    report = adaptivebench.run_adaptive_bench(smoke=args.smoke)
    out = pathlib.Path(args.out or adaptivebench.DEFAULT_OUT)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(adaptivebench.render(report))
        print("  -> %s" % out)
    if args.check is not None:
        problems = adaptivebench.check_floor(report, args.check)
        for problem in problems:
            print("bench adaptive: %s" % problem, file=sys.stderr)
        if problems:
            return 1
    return 0


def _cmd_bench_aggregate(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import trajectory

    doc = trajectory.write_trajectory(out=args.out or
                                      trajectory.DEFAULT_OUT)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print("aggregated %d bench report(s) -> %s"
              % (len(doc["benches"]),
                 args.out or trajectory.DEFAULT_OUT))
        for source in doc["sources"]:
            print("  %s" % source)
        for source, error in doc.get("errors", {}).items():
            print("  unreadable %s: %s" % (source, error),
                  file=sys.stderr)
    return 1 if doc.get("errors") else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.hotpath import run_hotpath
    from repro.analysis.reporting import format_table

    if args.target == "cluster":
        return _cmd_bench_cluster(args)
    if args.target == "scale":
        return _cmd_bench_scale(args)
    if args.target == "dedup-index":
        return _cmd_bench_dedup_index(args)
    if args.target == "reclaim":
        return _cmd_bench_reclaim(args)
    if args.target == "adaptive":
        return _cmd_bench_adaptive(args)
    if args.target == "aggregate":
        return _cmd_bench_aggregate(args)
    report = run_hotpath(scale=args.scale)
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        rows = [[name, report[name]["seconds_off"],
                 report[name]["seconds_on"], report[name]["speedup"]]
                for name in ("build", "merge", "fingerprint")]
        bulk = report["bulk_ingest"]
        rows.append(["bulk ingest (%d items)" % bulk["items"],
                     bulk["seconds_sequential"], bulk["seconds_bulk"],
                     bulk["speedup"]])
        print(format_table(
            ["hot path", "seconds (plain)", "seconds (memo/bulk)",
             "speedup"],
            rows, title="structural memo + bulk ingest (scale %d)"
            % report["scale"]))
    if args.check is not None and report["min_memo_speedup"] < args.check:
        print("bench hotpath: min memo speedup %.2fx below the %.2fx "
              "floor" % (report["min_memo_speedup"], args.check),
              file=sys.stderr)
        return 1
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro import Machine
    from repro.structures import HMap, HString

    machine = Machine()
    print("== content-unique lines & segments ==")
    a = HString.create(machine, b"hello, content-addressable world")
    before = machine.footprint_lines()
    b = HString.create(machine, b"hello, content-addressable world")
    print("second identical string allocated %d new lines"
          % (machine.footprint_lines() - before))
    print("equality is one root compare:", a.equals(b))

    print("\n== snapshots & copy-on-write ==")
    v = machine.create_segment(list(range(8)))
    snap = machine.snapshot(v)
    machine.write_word(v, 0, 999)
    print("live segment:", machine.read_segment(v))
    print("snapshot    :", snap.words())
    snap.release()

    print("\n== the memcached map ==")
    kv = HMap.create(machine)
    kv.put(b"k", b"v")
    print("get k ->", kv.get(b"k"))

    print("\n== DRAM traffic so far ==")
    print(machine.dram.as_dict())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HICAMP (ASPLOS 2012) reproduction tools")
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser(
        "experiments",
        help="regenerate the paper's tables and figures")
    p_exp.add_argument("names", nargs="*",
                       help="experiment ids (default: all); see --list")
    p_exp.add_argument("--all", action="store_true",
                       help="run every experiment")
    p_exp.add_argument("--list", action="store_true",
                       help="list available experiments and exit")
    p_exp.add_argument("--scale", type=int, default=1,
                       help="workload scale multiplier (default 1)")
    p_exp.add_argument("--out", help="directory to write rendered outputs")
    p_exp.add_argument("--json", action="store_true",
                       help="print headline metrics as JSON instead of tables")
    p_exp.set_defaults(func=_cmd_experiments)

    p_mc = sub.add_parser(
        "memcached",
        help="interactive memcached protocol REPL on a HICAMP machine")
    p_mc.add_argument("--quota", type=int, default=None,
                      help="memory quota in bytes (enables LRU eviction)")
    p_mc.set_defaults(func=_cmd_memcached)

    p_srv = sub.add_parser(
        "serve",
        help="asyncio TCP memcached server on a HICAMP machine")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=11211,
                       help="TCP port (0 picks an ephemeral port)")
    p_srv.add_argument("--shards", type=int, default=4,
                       help="independent KVP shards (default 4)")
    p_srv.add_argument("--read-timeout", type=float, default=300.0,
                       help="idle-connection timeout in seconds")
    p_srv.add_argument("--queue-depth", type=int, default=256,
                       help="per-shard commit queue bound (backpressure)")
    p_srv.add_argument("--batch-limit", type=int, default=16,
                       help="max commits merged per shard batch")
    p_srv.add_argument("--commit-mode",
                       choices=("merge", "bulk", "cas", "adaptive"),
                       default="merge",
                       help="how a shard worker lands a batched run of "
                            "sets: merge (absorb lost CASes via "
                            "merge-update, the default), bulk (one "
                            "put_many tree rebuild per run), cas "
                            "(per-op compare-and-swap commits), or "
                            "adaptive (a per-shard controller switches "
                            "between the three online, with hysteresis)")
    p_srv.add_argument("--reclaim-budget", type=int, default=512,
                       help="deferred-reclaim segments drained per "
                            "shard batch (adaptive mode retunes this "
                            "online: raised when idle)")
    p_srv.add_argument("--quota", type=int, default=None,
                       help="per-machine byte quota (enables LRU eviction)")
    p_srv.add_argument("--metrics-json", default=None,
                       help="write a metrics snapshot here on shutdown")
    p_srv.set_defaults(func=_cmd_serve)

    p_lg = sub.add_parser(
        "loadgen",
        help="pipelined multi-client load generator with oracle checks")
    p_lg.add_argument("--host", default="127.0.0.1")
    p_lg.add_argument("--port", type=int, default=11211)
    p_lg.add_argument("--clients", type=int, default=4)
    p_lg.add_argument("--ops", type=int, default=200,
                      help="operations per client")
    p_lg.add_argument("--pipeline", type=int, default=8,
                      help="requests per pipelined batch")
    p_lg.add_argument("--get-ratio", type=float, default=0.5)
    p_lg.add_argument("--keys", type=int, default=16,
                      help="keys per keyspace (private and shared)")
    p_lg.add_argument("--value-bytes", type=int, default=32)
    p_lg.add_argument("--seed", type=int, default=0)
    p_lg.add_argument("--phases", default=None,
                      metavar="SPEC",
                      help="phase-shifting profile: comma-separated "
                           "specs, each name[:ops=N][:get=F][:skew=F]"
                           "[:set=F][:del=F][:value=N][:entropy=0|1] "
                           "(e.g. read:get=0.9,storm:get=0.05:set=0.95"
                           ":del=0.2); phases without ops=N split the "
                           "--ops budget; the report gains a per-phase "
                           "section for each")
    p_lg.add_argument("--read-endpoint", action="append", default=[],
                      metavar="HOST:PORT",
                      help="replica endpoint for plain reads (repeatable; "
                           "writes stay on --host/--port, replica reads "
                           "are checked against the write history)")
    p_lg.add_argument("--json", action="store_true",
                      help="print the report as JSON")
    p_lg.set_defaults(func=_cmd_loadgen)

    p_cl = sub.add_parser(
        "cluster",
        help="a whole self-healing fleet in one process: sharded "
             "leaders, follower fleets, topology manager")
    cl_sub = p_cl.add_subparsers(dest="cluster_command", required=True)
    p_cls = cl_sub.add_parser(
        "serve", help="boot the fleet and serve until Ctrl-C")
    p_cls.add_argument("--leaders", type=int, default=2,
                       help="leader shards (default 2)")
    p_cls.add_argument("--followers", type=int, default=2,
                       help="followers per leader (default 2)")
    p_cls.add_argument("--shards", type=int, default=2,
                       help="KVP shards per leader (default 2)")
    p_cls.add_argument("--host", default="127.0.0.1")
    p_cls.add_argument("--seed", type=int, default=0,
                       help="hash-ring seed (placement determinism)")
    p_cls.add_argument("--probe-interval", type=float, default=0.25,
                       help="seconds between manager health-probe ticks")
    p_cls.add_argument("--failure-threshold", type=int, default=3,
                       help="consecutive probe failures before a leader "
                            "is declared dead")
    p_cls.set_defaults(func=_cmd_cluster)

    p_rl = sub.add_parser(
        "replicate-leader",
        help="memcached server plus a replication leader shipping "
             "structural deltas to followers")
    p_rl.add_argument("--host", default="127.0.0.1")
    p_rl.add_argument("--port", type=int, default=11211,
                      help="memcached TCP port (0 picks ephemeral)")
    p_rl.add_argument("--repl-host", default="127.0.0.1")
    p_rl.add_argument("--repl-port", type=int, default=11311,
                      help="replication TCP port (0 picks ephemeral)")
    p_rl.add_argument("--shards", type=int, default=4)
    p_rl.add_argument("--queue-depth", type=int, default=256)
    p_rl.add_argument("--batch-limit", type=int, default=16)
    p_rl.add_argument("--lag-window", type=int, default=256,
                      help="commits a follower may lag before a forced "
                           "full resync")
    p_rl.set_defaults(func=_cmd_replicate_leader)

    p_rf = sub.add_parser(
        "replicate-follower",
        help="replica serving local snapshot reads; writes forward "
             "to the leader")
    p_rf.add_argument("--leader-host", default="127.0.0.1")
    p_rf.add_argument("--leader-port", type=int, default=11311,
                      help="the leader's replication port")
    p_rf.add_argument("--upstream-host", default="127.0.0.1")
    p_rf.add_argument("--upstream-port", type=int, default=11211,
                      help="the leader's memcached port (write forwarding)")
    p_rf.add_argument("--host", default="127.0.0.1")
    p_rf.add_argument("--port", type=int, default=11212,
                      help="local serving port (0 picks ephemeral)")
    p_rf.add_argument("--checkpoint", default=None,
                      help="warm-start from a machine image (catches up "
                           "via deltas instead of a full sync)")
    p_rf.add_argument("--save-checkpoint", default=None,
                      help="write a machine image here on shutdown")
    p_rf.set_defaults(func=_cmd_replicate_follower)

    p_cp = sub.add_parser(
        "checkpoint",
        help="save/load machine images (gzip if the path ends in .gz)")
    p_cp.add_argument("action", choices=("save", "load"))
    p_cp.add_argument("path", help="image file path")
    p_cp.add_argument("--source", default=None,
                      help="save: copy/convert this image instead of "
                           "writing a fresh empty machine")
    p_cp.set_defaults(func=_cmd_checkpoint)

    p_fz = sub.add_parser(
        "fuzz",
        help="seeded adversarial episodes against a live server "
             "(fault injection + linearizability + invariant audits)")
    p_fz.add_argument("--profile",
                      choices=("serving", "replication", "cluster",
                               "expiry", "hi"),
                      default="serving",
                      help="serving: faulty clients against one server; "
                           "replication: a faulty replication link that "
                           "must converge after healing; cluster: a "
                           "seeded mid-script leader kill the topology "
                           "manager must repair; expiry: TTL'd sets "
                           "under commit stalls (expired keys must not "
                           "resurrect); hi: differential history "
                           "independence over permuted schedules")
    p_fz.add_argument("--episodes", type=int, default=10,
                      help="number of seeded episodes (default 10)")
    p_fz.add_argument("--seed", type=int, default=0,
                      help="run seed; a failure prints the episode seed "
                           "that reproduces it with --episodes 1")
    p_fz.add_argument("--clients", type=int, default=3,
                      help="concurrent scripted connections per episode")
    p_fz.add_argument("--ops", type=int, default=24,
                      help="operations per client per episode")
    p_fz.add_argument("--pipeline", type=int, default=4,
                      help="requests per pipelined batch")
    p_fz.add_argument("--keys", type=int, default=8,
                      help="shared keyspace size (contention)")
    p_fz.add_argument("--shards", type=int, default=2)
    p_fz.add_argument("--schedules", type=int, default=20,
                      help="hi profile: permuted schedules per workload "
                           "(default 20)")
    p_fz.add_argument("--index-kind", choices=("legacy", "cuckoo"),
                      default="legacy",
                      help="lookup-by-content index of the machine "
                           "under test (serving/expiry/hi profiles)")
    p_fz.add_argument("--reclaim-kind", choices=("immediate", "epoch"),
                      default="immediate",
                      help="reclamation of the machine under test "
                           "(serving/expiry/hi profiles); epoch defers "
                           "frees and quiesces before the auditors")
    p_fz.add_argument("--commit-mode",
                      choices=("merge", "bulk", "cas", "adaptive"),
                      default="merge",
                      help="router commit strategy of the server under "
                           "test (serving/expiry profiles); adaptive "
                           "episodes run a twitchy controller (short "
                           "window, forced rotation) so mode switches "
                           "land mid-episode under faults")
    p_fz.add_argument("--verbose", action="store_true",
                      help="print the full trace of passing episodes too")
    p_fz.set_defaults(func=_cmd_fuzz)

    p_mx = sub.add_parser(
        "metrics",
        help="scrape a running server's metrics registry "
             "(Prometheus text exposition or the legacy JSON snapshot)")
    p_mx.add_argument("--host", default="127.0.0.1")
    p_mx.add_argument("--port", type=int, default=11211)
    p_mx.add_argument("--format", choices=("prom", "json"),
                      default="prom",
                      help="prom: `stats prom` exposition (default); "
                           "json: the legacy `stats json` snapshot")
    p_mx.add_argument("--timeout", type=float, default=5.0)
    p_mx.set_defaults(func=_cmd_metrics)

    p_tr = sub.add_parser(
        "trace",
        help="inspect a recorded span trace (JSONL) or convert it to "
             "Chrome trace_event format")
    p_tr.add_argument("file", help="JSONL trace file (TraceRecorder."
                                   "write_jsonl output)")
    p_tr.add_argument("--chrome", default=None,
                      help="write Chrome trace_event JSON here instead "
                           "of printing the span tree")
    p_tr.add_argument("--limit", type=int, default=0,
                      help="print at most N spans (0 = all)")
    p_tr.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark suites: hot-path microbenchmarks or cluster "
             "read-scaling and recovery")
    p_bench.add_argument("target",
                         choices=("hotpath", "cluster", "scale",
                                  "dedup-index", "reclaim", "adaptive",
                                  "aggregate"),
                         help="benchmark suite to run (dedup-index: "
                              "lookup-by-content cuckoo vs legacy at "
                              "overflow scale; reclaim: p99/p999 commit "
                              "latency under churny overwrites + "
                              "big-root drops, epoch vs immediate; "
                              "adaptive: phase-shifting serving raced "
                              "across every commit mode, adaptive must "
                              "beat the best static; aggregate: merge "
                              "every bench JSON into benchmarks/out/"
                              "trajectory.json)")
    p_bench.add_argument("--scale", type=int, default=1,
                         help="repetition multiplier (default 1)")
    p_bench.add_argument("--smoke", action="store_true",
                         help="scale/dedup-index/reclaim/adaptive: CI tier "
                              "(small key counts, seconds instead of "
                              "minutes)")
    p_bench.add_argument("--keys", type=int, default=0,
                         help="scale: total keys across workers "
                              "(default 1M, or 20k with --smoke); "
                              "dedup-index: unique lines per kind")
    p_bench.add_argument("--workers", type=int, default=0,
                         help="scale: worker processes (default 4, "
                              "or 2 with --smoke)")
    p_bench.add_argument("--seed", type=int, default=0,
                         help="scale: workload seed")
    p_bench.add_argument("--out", default=None,
                         help="write the JSON report here (cluster "
                              "default: benchmarks/out/"
                              "cluster_scaling.json)")
    p_bench.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of a table")
    p_bench.add_argument("--check", type=float, default=None,
                         help="hotpath: exit 1 if the smallest memo "
                              "speedup is below this floor; cluster: "
                              "exit 1 if the full-fanout aggregate read "
                              "speedup is below it; scale: exit 1 if "
                              "populate ops/s falls below it (or any "
                              "serve-phase error/miss); dedup-index: "
                              "exit 1 if the legacy/cuckoo DRAM or p99 "
                              "ratio is below it; reclaim: exit 1 if "
                              "the immediate/epoch p99 commit-latency "
                              "ratio is below it or post-quiesce state "
                              "diverges; adaptive: exit 1 if the "
                              "adaptive/best-static end-to-end "
                              "ratio is below it, any phase falls "
                              "under 0.9x its best static, or a "
                              "phase boundary shows no switch")
    p_bench.set_defaults(func=_cmd_bench)

    p_demo = sub.add_parser("demo", help="one-minute architecture tour")
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "experiments" and args.list:
            return _cmd_experiments_list(args)
        return args.func(args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
