"""``repro`` — the command-line front end of the reproduction.

Examples::

    repro experiments --list
    repro experiments table1 figure6
    repro experiments --all --out results/
    repro memcached            # interactive protocol REPL
    repro demo                 # one-minute architecture tour
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.analysis.experiments import RUNNERS, headline_metrics


def _cmd_experiments(args: argparse.Namespace) -> int:
    names = list(RUNNERS) if args.all or not args.names else args.names
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown),
              file=sys.stderr)
        print("available: %s" % ", ".join(RUNNERS), file=sys.stderr)
        return 2
    out_dir: Optional[pathlib.Path] = None
    if args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
    all_metrics = {}
    for name in names:
        runner = RUNNERS[name]
        kwargs = {}
        if "scale" in runner.__code__.co_varnames[:runner.__code__.co_argcount]:
            kwargs["scale"] = args.scale
        result = runner(**kwargs)
        metrics = headline_metrics(result)
        all_metrics[name] = metrics
        if args.json:
            import json
            print(json.dumps({name: metrics}, indent=2))
        else:
            print(result.text)
            print()
        if out_dir is not None:
            (out_dir / (name + ".txt")).write_text(result.text + "\n")
    if out_dir is not None:
        import json
        (out_dir / "metrics.json").write_text(
            json.dumps(all_metrics, indent=2) + "\n")
    return 0


def _cmd_experiments_list(_args: argparse.Namespace) -> int:
    for name, runner in RUNNERS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print("%-16s %s" % (name, doc))
    return 0


def _cmd_memcached(args: argparse.Namespace) -> int:
    from repro import Machine
    from repro.apps.memcached.eviction import ManagedMemcached
    from repro.apps.memcached.protocol import ProtocolHandler

    machine = Machine()
    server = ManagedMemcached(machine, quota_bytes=args.quota)
    handler = ProtocolHandler(server)
    stream = sys.stdin
    print("# repro memcached on a HICAMP machine — ASCII protocol, one "
          "request per line;\n# storage commands take the payload on the "
          "next line. Ctrl-D to quit.", file=sys.stderr)
    while True:
        line = stream.readline()
        if not line:
            break
        line = line.rstrip("\n")
        if not line:
            continue
        request = line.encode() + b"\r\n"
        command = line.split(None, 1)[0] if line.split() else ""
        if command in ("set", "add", "replace", "cas"):
            payload = stream.readline().rstrip("\n").encode()
            request += payload + b"\r\n"
        response = handler.handle(request)
        sys.stdout.write(response.decode(errors="replace"))
        sys.stdout.flush()
    print("# footprint: %d bytes in %d unique lines"
          % (machine.footprint_bytes(), machine.footprint_lines()),
          file=sys.stderr)
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro import Machine
    from repro.structures import HMap, HString

    machine = Machine()
    print("== content-unique lines & segments ==")
    a = HString.create(machine, b"hello, content-addressable world")
    before = machine.footprint_lines()
    b = HString.create(machine, b"hello, content-addressable world")
    print("second identical string allocated %d new lines"
          % (machine.footprint_lines() - before))
    print("equality is one root compare:", a.equals(b))

    print("\n== snapshots & copy-on-write ==")
    v = machine.create_segment(list(range(8)))
    snap = machine.snapshot(v)
    machine.write_word(v, 0, 999)
    print("live segment:", machine.read_segment(v))
    print("snapshot    :", snap.words())
    snap.release()

    print("\n== the memcached map ==")
    kv = HMap.create(machine)
    kv.put(b"k", b"v")
    print("get k ->", kv.get(b"k"))

    print("\n== DRAM traffic so far ==")
    print(machine.dram.as_dict())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HICAMP (ASPLOS 2012) reproduction tools")
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser(
        "experiments",
        help="regenerate the paper's tables and figures")
    p_exp.add_argument("names", nargs="*",
                       help="experiment ids (default: all); see --list")
    p_exp.add_argument("--all", action="store_true",
                       help="run every experiment")
    p_exp.add_argument("--list", action="store_true",
                       help="list available experiments and exit")
    p_exp.add_argument("--scale", type=int, default=1,
                       help="workload scale multiplier (default 1)")
    p_exp.add_argument("--out", help="directory to write rendered outputs")
    p_exp.add_argument("--json", action="store_true",
                       help="print headline metrics as JSON instead of tables")
    p_exp.set_defaults(func=_cmd_experiments)

    p_mc = sub.add_parser(
        "memcached",
        help="interactive memcached protocol REPL on a HICAMP machine")
    p_mc.add_argument("--quota", type=int, default=None,
                      help="memory quota in bytes (enables LRU eviction)")
    p_mc.set_defaults(func=_cmd_memcached)

    p_demo = sub.add_parser("demo", help="one-minute architecture tour")
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "experiments" and args.list:
            return _cmd_experiments_list(args)
        return args.func(args)
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
