"""Command-line interface: ``repro <subcommand>``.

* ``repro experiments`` — regenerate the paper's tables and figures;
* ``repro memcached``   — an interactive memcached (ASCII protocol) REPL
  running on a HICAMP machine;
* ``repro demo``        — a quick tour of the architecture's behaviours.
"""

from repro.cli.main import main

__all__ = ["main"]
