"""Cluster-aware client: owner-routed writes, fleet-spread reads.

Two consumers of the placement layer live here:

* :class:`ClusterClient` — a direct asyncio client for tests, fuzzing
  and the CLI. It holds a (possibly stale) topology, routes each write
  to the owning leader, and reacts to the two stale-view signals a
  repair produces: a **dead socket** (the owner crashed — refresh from
  any live node and retry) and a **MOVED line** (a live leader refused
  the key — refresh from the node MOVED names and retry). Reads prefer
  the owner's followers round-robin, falling back to the leader.
* :class:`ClusterPolicy` — the same routing as a
  :mod:`repro.net.loadgen` policy, so one loadgen process drives a
  whole fleet: writes land on owners, plain reads spread across the
  owners' fleets, replica staleness checked under the relaxed
  write-history oracle.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

from repro.net.loadgen import (read_value_response, set_request)
from repro.cluster.node import parse_moved
from repro.cluster.placement import ClusterTopology

__all__ = ["ClusterClient", "ClusterPolicy", "topology_endpoints",
           "ClusterUnavailableError"]

CRLF = b"\r\n"


class ClusterUnavailableError(ConnectionError):
    """No retry path led to a live owner within the attempt budget."""


def topology_endpoints(topology: ClusterTopology
                       ) -> Tuple[List[Tuple[str, int]], Dict[str, int]]:
    """Loadgen fleet wiring: endpoint list + node id → index map."""
    ids = sorted(topology.nodes)
    endpoints = [(topology.nodes[node_id].host, topology.nodes[node_id].port)
                 for node_id in ids]
    return endpoints, {node_id: i for i, node_id in enumerate(ids)}


class ClusterPolicy:
    """Topology-aware routing for the multi-endpoint load generator."""

    relaxed_reads = True

    def __init__(self, topology: ClusterTopology,
                 index: Dict[str, int]) -> None:
        self.topology = topology
        self.index = index
        self._rr = 0

    def write_endpoint(self, key: bytes) -> int:
        return self.index[self.topology.owner_of(key)]

    def read_endpoint(self, key: bytes) -> int:
        owner = self.topology.owner_of(key)
        readers = self.topology.followers_of(owner) or [owner]
        node_id = readers[self._rr % len(readers)]
        self._rr += 1
        return self.index[node_id]


class ClusterClient:
    """An asyncio memcached client that understands the cluster tier."""

    def __init__(self, topology: Optional[ClusterTopology] = None,
                 seeds: Optional[List[Tuple[str, int]]] = None,
                 max_retries: int = 40,
                 retry_delay: float = 0.05) -> None:
        self.topology = topology
        #: bootstrap addresses usable before (or instead of) a topology
        self.seeds = list(seeds or [])
        self.max_retries = max(1, max_retries)
        self.retry_delay = retry_delay
        self.moved_retries = 0
        self.refreshes = 0
        self.dead_retries = 0
        self._conns: Dict[Tuple[str, int], Tuple] = {}
        self._rr = 0

    # ------------------------------------------------------------------
    # connections

    async def _conn(self, host: str, port: int):
        addr = (host, port)
        if addr not in self._conns:
            self._conns[addr] = await asyncio.open_connection(host, port)
        return self._conns[addr]

    def _drop(self, host: str, port: int) -> None:
        conn = self._conns.pop((host, port), None)
        if conn is not None:
            conn[1].close()

    async def close(self) -> None:
        for _, writer in self._conns.values():
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
        self._conns.clear()

    # ------------------------------------------------------------------
    # topology refresh

    async def fetch_topology(self, host: str,
                             port: int) -> ClusterTopology:
        """The in-band ``cluster topology`` verb against one node."""
        reader, writer = await self._conn(host, port)
        try:
            writer.write(b"cluster topology" + CRLF)
            await writer.drain()
            line = await reader.readline()
            if not line or line.startswith(b"SERVER_ERROR") \
                    or line.startswith(b"ERROR"):
                raise ConnectionError("no topology at %s:%d" % (host, port))
            tail = await reader.readline()  # END
            if tail.strip() != b"END":
                raise ConnectionError("bad topology framing")
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self._drop(host, port)
            raise
        return ClusterTopology.from_doc(json.loads(line.decode()))

    def _candidates(self) -> List[Tuple[str, int]]:
        out: List[Tuple[str, int]] = []
        if self.topology is not None:
            for node_id in sorted(self.topology.nodes):
                info = self.topology.nodes[node_id]
                out.append((info.host, info.port))
        for seed in self.seeds:
            if seed not in out:
                out.append(seed)
        return out

    async def refresh(self) -> bool:
        """Adopt the highest-epoch topology any reachable node serves."""
        best = self.topology
        found = False
        for host, port in self._candidates():
            try:
                topology = await self.fetch_topology(host, port)
            except (ConnectionError, OSError):
                continue
            if best is None or topology.epoch > best.epoch:
                best = topology
                found = True
        if found:
            self.topology = best
            self.refreshes += 1
        return found

    async def _refresh_from(self, addr: Tuple[str, int]) -> None:
        """Refresh preferring one node (the one MOVED pointed at)."""
        try:
            topology = await self.fetch_topology(*addr)
        except (ConnectionError, OSError):
            await self.refresh()
            return
        if self.topology is None or topology.epoch >= self.topology.epoch:
            self.topology = topology
            self.refreshes += 1

    # ------------------------------------------------------------------
    # operations

    async def _request_line(self, host: str, port: int,
                            payload: bytes) -> bytes:
        reader, writer = await self._conn(host, port)
        try:
            writer.write(payload)
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ConnectionResetError("peer closed")
            return line
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            self._drop(host, port)
            raise

    def _owner_info(self, key: bytes):
        if self.topology is None:
            return None
        return self.topology.node(self.topology.owner_of(key))

    async def set(self, key: bytes, value: bytes) -> bytes:
        """Owner-routed write with dead-socket and MOVED retry."""
        payload = set_request(key, value)
        for _ in range(self.max_retries):
            info = self._owner_info(key)
            if info is not None:
                try:
                    line = await self._request_line(info.host, info.port,
                                                    payload)
                except (ConnectionError, OSError):
                    self.dead_retries += 1
                    line = None
                if line is not None:
                    moved = parse_moved(line)
                    if moved is None:
                        return line
                    # a live leader refused the key: our epoch is stale
                    self.moved_retries += 1
                    _, _, host, port = moved
                    await self._refresh_from((host, port))
                    continue
            await self.refresh()
            await asyncio.sleep(self.retry_delay)
        raise ClusterUnavailableError("no owner accepted %r" % key)

    async def get(self, key: bytes) -> Optional[bytes]:
        """Fleet-spread snapshot read: followers first, leader fallback."""
        if self.topology is None:
            raise ClusterUnavailableError("no topology")
        owner = self.topology.owner_of(key)
        readers = self.topology.followers_of(owner)
        if readers:
            start = self._rr
            self._rr += 1
            readers = [readers[(start + i) % len(readers)]
                       for i in range(len(readers))]
        for node_id in readers + [owner]:
            info = self.topology.node(node_id)
            if info is None:
                continue
            try:
                reader, writer = await self._conn(info.host, info.port)
                writer.write(b"get %s\r\n" % key)
                await writer.drain()
                values = await read_value_response(reader)
            except (ConnectionError, OSError, ValueError,
                    asyncio.IncompleteReadError):
                self._drop(info.host, info.port)
                continue
            if key in values:
                return values[key][0]
            return None
        raise ClusterUnavailableError("no readable node for %r" % key)
