"""Cluster benchmarks: read scaling and recovery-to-convergence.

Two numbers the cluster tier exists to move, captured as a tracked JSON
artifact (``benchmarks/out/cluster_scaling.json``):

* **read scaling** — aggregate snapshot-read throughput as followers
  are added. Because snapshot reads are synchronization-free, a
  follower's read capacity is independent of its siblings'; this host
  runs the whole fleet on one event loop (and typically one core), so
  concurrent endpoints would timeshare the core and hide exactly the
  effect being measured. Each endpoint is therefore measured **in
  isolation** and the aggregate is the sum — the standard
  fleet-capacity model for nodes that would each own a machine. The
  JSON says so explicitly (``note``).
* **recovery** — wall-clock seconds from leader crash-stop to the
  topology manager's *committed* repair, which by construction includes
  fleet-wide fingerprint convergence (verify gates commit).
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Sequence, Tuple

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.manager import TopologyManager
from repro.net.loadgen import read_value_response, set_request

CRLF = b"\r\n"

#: The artifact's schema version (bump on shape changes).
SCHEMA = 1


async def _fill(host: str, port: int, count: int,
                value_bytes: int = 32) -> List[bytes]:
    """Seed a corpus through one leader endpoint; returns the keys."""
    keys = [b"bench:k%04d" % i for i in range(count)]
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i, key in enumerate(keys):
            value = (b"val-%04d." % (i % 7)).ljust(value_bytes, b"x")
            writer.write(set_request(key, value))
        await writer.drain()
        for _ in keys:
            await reader.readline()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return keys


async def _measure_reads(endpoint: Tuple[str, int], keys: List[bytes],
                         ops: int, pipeline: int = 16) -> float:
    """Pipelined-get throughput (ops/s) against one endpoint."""
    host, port = endpoint
    reader, writer = await asyncio.open_connection(host, port)
    try:
        done = 0
        started = time.monotonic()
        while done < ops:
            batch = [keys[(done + i) % len(keys)]
                     for i in range(min(pipeline, ops - done))]
            writer.write(b"".join(b"get %s\r\n" % key for key in batch))
            await writer.drain()
            for key in batch:
                values = await read_value_response(reader)
                if key not in values:
                    raise AssertionError("bench read missed %r" % key)
            done += len(batch)
        elapsed = time.monotonic() - started
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return done / max(1e-9, elapsed)


async def _read_scaling(scale: int,
                        follower_counts: Sequence[int]) -> Dict:
    """One leader, max(follower_counts) followers, per-endpoint reads."""
    fanout = max(follower_counts)
    corpus = 64 * scale
    ops = 600 * scale
    cluster = Cluster(ClusterConfig(leaders=1, followers=fanout, shards=2))
    async with cluster:
        leader = cluster.leaders["lead-0"]
        keys = await _fill(leader.host, leader.port, corpus)
        assert await cluster.wait_converged("lead-0", timeout=30.0), \
            "fleet never converged before read measurement"
        leader_rate = await _measure_reads((leader.host, leader.port),
                                           keys, ops)
        follower_rates = []
        for follower_id in sorted(cluster.followers):
            node = cluster.followers[follower_id]
            follower_rates.append(
                await _measure_reads((node.host, node.port), keys, ops))
    aggregate = {
        str(n): round(sum(follower_rates[:n]), 1)
        for n in follower_counts
    }
    speedup = sum(follower_rates[:fanout]) / max(1e-9, leader_rate)
    return {
        "single_node_ops_s": round(leader_rate, 1),
        "aggregate_by_followers": aggregate,
        "speedup_%d" % fanout: round(speedup, 2),
        "read_ops_per_endpoint": ops,
    }


async def _recovery(scale: int) -> Dict:
    """Kill a leader mid-write-stream; time the committed repair."""
    cluster = Cluster(ClusterConfig(leaders=2, followers=2, shards=2))
    manager = TopologyManager(cluster, probe_interval=0.05,
                              failure_threshold=2, verify_timeout=30.0)
    writes = 40 * scale
    try:
        await cluster.start()
        victim = "lead-0"
        node = cluster.leaders[victim]
        await _fill(node.host, node.port, writes)
        other = cluster.leaders["lead-1"]
        await _fill(other.host, other.port, writes)
        assert await cluster.wait_converged(victim, timeout=30.0)
        epoch_before = cluster.topology.epoch
        await manager.start()
        killed_at = time.monotonic()
        await cluster.kill(victim)
        while cluster.metrics.epoch == epoch_before:
            if time.monotonic() - killed_at > 60.0:
                raise AssertionError("repair never committed")
            await asyncio.sleep(0.01)
        elapsed = time.monotonic() - killed_at
    finally:
        await manager.stop()
        await cluster.stop()
    return {
        "seconds_to_convergence": round(elapsed, 3),
        "epoch": cluster.metrics.epoch,
        "promotions": cluster.metrics.promotions,
        "manager_recovery_seconds":
            round(cluster.metrics.last_recovery_seconds, 3),
    }


def run_cluster_bench(scale: int = 1,
                      follower_counts: Sequence[int] = (1, 2, 4)) -> Dict:
    """The whole cluster benchmark; returns the JSON-ready document."""
    read_scaling = asyncio.run(_read_scaling(scale, follower_counts))
    recovery = asyncio.run(_recovery(scale))
    return {
        "schema": SCHEMA,
        "scale": scale,
        "read_scaling": read_scaling,
        "recovery": recovery,
        "note": ("aggregate read throughput sums per-endpoint rates "
                 "measured in isolation (single-process harness shares "
                 "one core; nodes would each own a machine in a real "
                 "deployment)"),
    }
