"""Sharded leaders, follower fleets, and a self-healing topology (PR 6).

The cluster tier scales the replicated stack out: keys map to N leader
shards through a consistent-hash ring (stable slot names, so a promotion
rebinds a slot without remapping a single key), every leader feeds a
fan-out of snapshot-serving followers, and a topology manager watches
the fleet and repairs it when a leader dies — detect by probe, propose
the most-caught-up follower, **verify** the new fleet by per-segment
``segment_fingerprint`` agreement (the paper's history-independence
lever: matching fingerprints prove byte-identical state no matter how
each node got there), and only then commit the new epoch.

Public surface:

* :mod:`~repro.cluster.placement` — :class:`HashRing`,
  :class:`NodeInfo`, :class:`ClusterTopology`: deterministic key
  placement and the versioned topology document.
* :class:`~repro.cluster.cluster.Cluster` — the in-process multi-node
  harness: a whole fleet of real socket-serving stacks in one event
  loop, with the fingerprint/lag probes repair decisions read.
* :class:`~repro.cluster.manager.TopologyManager` — the
  detect→propose→verify→commit repair loop.
* :class:`~repro.cluster.client.ClusterClient` /
  :class:`~repro.cluster.client.ClusterPolicy` — owner-routed writes
  with MOVED/dead-socket retry; fleet-spread reads (direct client and
  loadgen policy forms).
"""

from repro.cluster.client import (
    ClusterClient,
    ClusterPolicy,
    ClusterUnavailableError,
    topology_endpoints,
)
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.manager import TopologyManager
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.node import FollowerNode, LeaderNode
from repro.cluster.placement import (
    ClusterTopology,
    HashRing,
    NodeInfo,
    initial_topology,
)

__all__ = [
    "Cluster",
    "ClusterClient",
    "ClusterConfig",
    "ClusterMetrics",
    "ClusterPolicy",
    "ClusterTopology",
    "ClusterUnavailableError",
    "FollowerNode",
    "HashRing",
    "LeaderNode",
    "NodeInfo",
    "TopologyManager",
    "initial_topology",
    "topology_endpoints",
]
