"""Cluster-tier accounting: topology health, repairs, and routing.

Mirrors :class:`repro.replication.metrics.ReplicationMetrics` in shape —
a plain counter dataclass with a JSON-safe :meth:`snapshot` — so the obs
adapter (:func:`repro.obs.adapters.register_cluster`) can expose it as
live callback-backed instruments without a parallel bookkeeping path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ClusterMetrics:
    """Counters for one cluster (shared by harness + topology manager)."""

    #: current committed topology epoch
    epoch: int = 0
    #: completed detect→propose→verify→commit repairs
    promotions: int = 0
    #: repairs that could not complete (no candidate / verify timeout,
    #: counted once per abandoned attempt; retried attempts recount)
    repairs_failed: int = 0
    #: health probes sent / failed (all leaders, all ticks)
    probes: int = 0
    probe_failures: int = 0
    #: followers re-pointed at a new leader during repairs
    reparents: int = 0
    #: MOVED responses served by stale-epoch leaders (summed on sample)
    moved_total: int = 0
    #: wall-clock seconds of the most recent kill→convergence repair
    last_recovery_seconds: float = 0.0
    #: most recent per-node replication lag sample, in commits
    node_lag: Dict[str, int] = field(default_factory=dict)

    def observe_lag(self, node_id: str, lag: int) -> None:
        self.node_lag[node_id] = lag

    def forget_node(self, node_id: str) -> None:
        self.node_lag.pop(node_id, None)

    def snapshot(self) -> Dict:
        """JSON-safe snapshot (CLI status output, fuzz traces, tests)."""
        return {
            "epoch": self.epoch,
            "promotions": self.promotions,
            "repairs_failed": self.repairs_failed,
            "probes": self.probes,
            "probe_failures": self.probe_failures,
            "reparents": self.reparents,
            "moved_total": self.moved_total,
            "last_recovery_seconds": self.last_recovery_seconds,
            "node_lag": dict(sorted(self.node_lag.items())),
        }
