"""Seeded leader-kill episodes over a self-healing cluster.

One episode is: boot a whole fleet (N leaders × M followers) in one
event loop with a :class:`~repro.cluster.manager.TopologyManager`
watching it, drive a seeded write script through a
:class:`~repro.cluster.client.ClusterClient` — and, at a seed-derived
point mid-script, **crash-stop a seed-chosen leader**. The client keeps
writing: owner-dead retries and MOVED redirects are its problem, the
repair is the manager's. The episode then requires:

* the manager commits a higher topology epoch (exactly one promotion);
* every surviving fleet reaches per-stream ``segment_fingerprint``
  agreement — including the promoted fleet, whose members arrived at
  their state via completely different paths (replication, adoption,
  SEED re-sync). History-independence is what makes this assertable;
* the script's writes all landed: a final owner-routed read-back checks
  every key's last written value against the committed topology;
* every *live* machine passes the strict invariant audits. (The killed
  leader's machine is exempt: a crash-stop legitimately strands staged
  state — that is the fault model, not a bug.)

The script, the victim and the kill point are pure functions of the
episode seed. The trace records only scheduling-independent facts —
which follower wins promotion depends on replication timing at the kill
and is deliberately *not* in the trace (it lives in the debug metrics).
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.loadgen import read_value_response
from repro.testing.auditors import audit_machine
from repro.cluster.client import ClusterClient, ClusterUnavailableError
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.manager import TopologyManager

EPISODE_TIMEOUT = 120.0
CONVERGE_TIMEOUT = 20.0
REPAIR_TIMEOUT = 30.0


@dataclass
class ClusterEpisodeConfig:
    """Shape of one leader-kill episode (derived state is seeded)."""

    leaders: int = 2
    followers: int = 2
    shards: int = 2
    ops: int = 80
    key_space: int = 12
    value_pool: int = 5
    probe_interval: float = 0.05
    failure_threshold: int = 2


def _derive(seed: int, label: str) -> int:
    digest = hashlib.blake2b(b"%d/%s" % (seed, label.encode()),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _build_script(seed: int, cfg: ClusterEpisodeConfig
                  ) -> List[Tuple[str, bytes, bytes]]:
    """Seeded (kind, key, value) triples over a pooled value set."""
    rng = random.Random(_derive(seed, "cluster-script"))
    script: List[Tuple[str, bytes, bytes]] = []
    for _ in range(cfg.ops):
        key = b"ck%02d" % rng.randrange(cfg.key_space)
        value = b"pooled-value-%02d" % rng.randrange(cfg.value_pool)
        script.append(("set", key, value))
    return script


def script_digest(script: List[Tuple[str, bytes, bytes]]) -> str:
    material = b";".join(b"%s %s %s" % (kind.encode(), key, value)
                         for kind, key, value in script)
    return hashlib.blake2b(material, digest_size=6).hexdigest()


def kill_plan(seed: int, cfg: ClusterEpisodeConfig) -> Tuple[str, int]:
    """(victim leader id, op index at which it dies) — pure in the seed.

    The kill lands in the middle half of the script so there is always
    committed state to inherit and writes still pending to reroute.
    """
    victim = "lead-%d" % (_derive(seed, "cluster-victim") % cfg.leaders)
    lo = cfg.ops // 4
    span = max(1, cfg.ops // 2)
    kill_at = lo + _derive(seed, "cluster-kill-at") % span
    return victim, kill_at


@dataclass
class ClusterEpisodeResult:
    seed: int
    ok: bool
    trace: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    #: debug data (timing-dependent under faults, never part of trace)
    metrics: Dict = field(default_factory=dict)
    manager_events: List[str] = field(default_factory=list)


async def _await_repair(cluster: Cluster, epoch_before: int,
                        timeout: float) -> bool:
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if cluster.metrics.epoch > epoch_before:
            return True
        await asyncio.sleep(0.02)
    return False


async def _run_episode(seed: int, cfg: ClusterEpisodeConfig
                       ) -> ClusterEpisodeResult:
    script = _build_script(seed, cfg)
    victim, kill_at = kill_plan(seed, cfg)
    trace = ["cluster episode seed=%d leaders=%d followers=%d shards=%d "
             "ops=%d keys=%d pool=%d"
             % (seed, cfg.leaders, cfg.followers, cfg.shards, cfg.ops,
                cfg.key_space, cfg.value_pool)]
    trace.append("script=%s victim=%s kill_at=%d"
                 % (script_digest(script), victim, kill_at))

    failures: List[str] = []
    cluster = Cluster(ClusterConfig(
        leaders=cfg.leaders, followers=cfg.followers, shards=cfg.shards))
    manager = TopologyManager(
        cluster, probe_interval=cfg.probe_interval,
        failure_threshold=cfg.failure_threshold,
        verify_timeout=CONVERGE_TIMEOUT)
    client = ClusterClient(max_retries=200, retry_delay=0.05)
    oracle: Dict[bytes, bytes] = {}
    try:
        await cluster.start()
        client.topology = cluster.topology
        await manager.start()
        epoch_before = cluster.topology.epoch
        for index, (kind, key, value) in enumerate(script):
            if index == kill_at:
                await cluster.kill(victim)
            try:
                line = await client.set(key, value)
            except ClusterUnavailableError as exc:
                failures.append("set %r at op %d: %s" % (key, index, exc))
                continue
            if line.strip() != b"STORED":
                failures.append("set %r at op %d -> %r"
                                % (key, index, line))
            else:
                oracle[key] = value
        # the manager must finish the repair even if the script already
        # rode through it on retries
        repaired = await _await_repair(cluster, epoch_before,
                                       REPAIR_TIMEOUT)
        trace.append("repaired=%s" % ("yes" if repaired else "NO"))
        if not repaired:
            failures.append("no topology repair within %.0fs"
                            % REPAIR_TIMEOUT)
        trace.append("epoch_delta=%d"
                     % (cluster.topology.epoch - epoch_before))
        trace.append("promotions=%d" % cluster.metrics.promotions)
        # every surviving fleet must converge, fingerprint for
        # fingerprint — promoted fleets included
        for leader_id in cluster.topology.leader_ids():
            converged = await cluster.wait_converged(
                leader_id, timeout=CONVERGE_TIMEOUT)
            if not converged:
                failures.append("fleet of %s never converged" % leader_id)
        trace.append("converged=%s" % ("yes" if not any(
            f.startswith("fleet") for f in failures) else "NO"))
        # owner-routed read-back of the oracle through a fresh client
        # view: every write that was acknowledged must be in the cache
        await client.refresh()
        for key in sorted(oracle):
            value = await client.get(key)
            if value != oracle[key]:
                # replica may lag; the owner's answer is authoritative
                info = client._owner_info(key)
                reader, writer = await client._conn(info.host, info.port)
                writer.write(b"get %s\r\n" % key)
                await writer.drain()
                values = await read_value_response(reader)
                body = values.get(key, (b"", b""))[0]
                if body != oracle[key]:
                    failures.append("readback %r: %r != %r"
                                    % (key, body, oracle[key]))
        trace.append("readback=%s" % ("ok" if not any(
            f.startswith("readback") for f in failures) else "FAILED"))
    except asyncio.TimeoutError:
        failures.append("episode timed out")
        trace.append("result=TIMEOUT")
    finally:
        await client.close()
        await manager.stop()
        await cluster.stop()

    # strict audits on every *live* machine; the crash-stopped victim is
    # exempt by the fault model (staged refs died with its workers)
    audit_failures: List[str] = []
    for node_id in sorted(cluster.leaders):
        audit = audit_machine(cluster.leaders[node_id].machine,
                              strict=True)
        audit_failures.extend("%s audit: %s" % (node_id, f)
                              for f in audit.failures)
    for node_id in sorted(cluster.followers):
        audit = audit_machine(cluster.followers[node_id].machine,
                              strict=True)
        audit_failures.extend("%s audit: %s" % (node_id, f)
                              for f in audit.failures)
    failures.extend(audit_failures)
    trace.append("audits=%s" % ("ok" if not audit_failures else "FAILED"))

    ok = not failures
    trace.append("result=%s" % ("ok" if ok else "FAILED"))
    return ClusterEpisodeResult(
        seed=seed, ok=ok, trace=trace, failures=failures,
        metrics=cluster.snapshot(), manager_events=list(manager.events))


def episode_seed(seed: int, index: int) -> int:
    """Episode 0 replays from the run seed itself (same contract as
    :func:`repro.testing.fuzz.episode_seed`)."""
    return seed if index == 0 \
        else _derive(seed, "cluster-episode/%d" % index)


@dataclass
class ClusterFuzzReport:
    """Outcome of a whole cluster fuzz run."""

    episodes: List[ClusterEpisodeResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.episodes)

    @property
    def failed_seeds(self) -> List[int]:
        return [e.seed for e in self.episodes if not e.ok]

    def render(self, verbose: bool = False) -> str:
        lines: List[str] = []
        for result in self.episodes:
            if verbose or not result.ok:
                lines.extend(result.trace)
                lines.extend("  " + f for f in result.failures)
            else:
                lines.append("%s %s" % (result.trace[0], result.trace[-1]))
        lines.append("cluster fuzz episodes=%d ok=%d failed=%d"
                     % (len(self.episodes),
                        sum(1 for e in self.episodes if e.ok),
                        len(self.failed_seeds)))
        for seed in self.failed_seeds:
            lines.append("reproduce: repro fuzz --profile cluster "
                         "--episodes 1 --seed %d" % seed)
        return "\n".join(lines)


def run_episode(seed: int, cfg: Optional[ClusterEpisodeConfig] = None
                ) -> ClusterEpisodeResult:
    """One episode, synchronously (test entry point)."""
    return asyncio.run(asyncio.wait_for(
        _run_episode(seed, cfg or ClusterEpisodeConfig()),
        timeout=EPISODE_TIMEOUT))


def run_fuzz(episodes: int = 3, seed: int = 0,
             cfg: Optional[ClusterEpisodeConfig] = None
             ) -> ClusterFuzzReport:
    """Run ``episodes`` seeded leader-kill episodes."""
    cfg = cfg or ClusterEpisodeConfig()
    report = ClusterFuzzReport()
    for index in range(episodes):
        report.episodes.append(run_episode(episode_seed(seed, index), cfg))
    return report
