"""Cluster nodes: leader stacks, follower stacks, and promotion.

A *leader node* is one full serving stack — :class:`ClusterRouter`
(ownership-checking :class:`~repro.net.router.ShardRouter`) +
:class:`~repro.net.server.MemcachedServer` +
:class:`~repro.replication.leader.ReplicationLeader` — owning one slot
of the keyspace. A *follower node* is a
:class:`~repro.replication.follower.ReplicationFollower` plus its
serving front, parented to one leader.

Ownership enforcement speaks a MOVED-style line (redis-cluster's
stale-routing contract)::

    MOVED <epoch> <node_id> <host>:<port>\\r\\n

A leader answers MOVED for any write whose key it does not own at its
current topology epoch — which is exactly what a client holding a stale
topology sees after a repair rebinds a slot. The client refreshes via the
in-band ``cluster topology`` verb (JSON + END, served by leaders *and*
followers) and retries.

Promotion is where the paper's economics show up: a follower's machine
already holds the dead leader's committed state as canonical segments,
so :meth:`FollowerNode.promote` just *adopts* those segments as the
backends of a fresh leader stack (:class:`AdoptedMemcached` wraps an
existing VSID instead of creating one). No data copies, no log replay —
the DAG is the checkpoint. Surviving siblings then reparent to the new
leader and its HELLO fingerprints match, so they re-sync via the SEED
path: zero lines reshipped.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Dict, Optional

from repro.apps.memcached.protocol import CRLF
from repro.apps.memcached.server import HicampMemcached
from repro.core.machine import Machine
from repro.net.framing import Frame
from repro.net.router import (ConnectionState, ShardRouter, WRITE_COMMANDS,
                              _completed)
from repro.net.server import MemcachedServer
from repro.replication.follower import FollowerServer, ReplicationFollower
from repro.replication.leader import ReplicationLeader
from repro.cluster.placement import ClusterTopology, NodeInfo

__all__ = ["AdoptedMemcached", "ClusterRouter", "ClusterFollowerServer",
           "LeaderNode", "FollowerNode", "adopting_backend_factory",
           "topology_response", "parse_moved"]


class AdoptedMemcached(HicampMemcached):
    """A memcached backend over an *existing* segment.

    The promotion path: the follower replicated the dead leader's
    per-shard maps into its own machine; wrapping those VSIDs (instead of
    ``HMap.create``) turns replicated state into served state with zero
    copying.
    """

    def __init__(self, machine: Machine, vsid: int) -> None:
        from repro.structures.hmap import HMap
        self.machine = machine
        self.kvp = HMap(machine, vsid)
        from repro.apps.memcached.server import ServerStats
        self.stats = ServerStats()


def adopting_backend_factory(streams: Dict[int, int]):
    """Backend factory adopting ``shard index → vsid`` where present.

    The router instantiates backends in shard order, so a simple counter
    pairs each call with its shard index; shards with no replicated
    stream (never written on the old leader) start empty.
    """
    state = {"next": 0}

    def factory(machine: Machine) -> HicampMemcached:
        shard = state["next"]
        state["next"] += 1
        vsid = streams.get(shard)
        if vsid is None:
            return HicampMemcached(machine)
        return AdoptedMemcached(machine, vsid)

    return factory


def topology_response(topology: Optional[ClusterTopology]) -> bytes:
    """The ``cluster topology`` answer: one JSON line, then END."""
    if topology is None:
        return b"SERVER_ERROR no topology\r\n"
    body = json.dumps(topology.to_doc(), sort_keys=True).encode()
    return body + CRLF + b"END" + CRLF


def parse_moved(line: bytes):
    """``(epoch, node_id, host, port)`` from a MOVED line, else None."""
    if not line.startswith(b"MOVED "):
        return None
    parts = line.strip().split(b" ")
    if len(parts) != 4:
        return None
    host, _, port = parts[3].rpartition(b":")
    return (int(parts[1]), parts[2].decode(), host.decode(), int(port))


class ClusterRouter(ShardRouter):
    """A shard router that enforces keyspace ownership.

    Holds this node's view of the :class:`ClusterTopology`; writes for
    keys another leader owns are refused with MOVED instead of being
    committed — the fence that keeps a stale client (or a stale former
    leader) from splitting the brain after a repair. Reads stay
    unchecked: they are snapshot reads and harmless anywhere.
    """

    def __init__(self, node_id: str, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.node_id = node_id
        self.topology: Optional[ClusterTopology] = None
        self.moved_responses = 0

    async def dispatch(self, frame: Frame, conn: ConnectionState,
                       parent: Optional[int] = None) -> Awaitable[bytes]:
        if frame.command == b"cluster":
            if frame.args and frame.args[0] == b"topology":
                return _completed(topology_response(self.topology))
            return _completed(b"CLIENT_ERROR unknown cluster verb\r\n")
        topology = self.topology
        if (topology is not None and frame.error is None
                and frame.command in WRITE_COMMANDS
                and frame.key is not None):
            owner = topology.owner_of(frame.key)
            if owner != self.node_id:
                self.moved_responses += 1
                info = topology.node(owner)
                return _completed(b"MOVED %d %s %s:%d\r\n" % (
                    topology.epoch, owner.encode(),
                    info.host.encode(), info.port))
        return await super().dispatch(frame, conn, parent)


class ClusterFollowerServer(FollowerServer):
    """Follower front that also answers ``cluster topology``.

    Followers carry the committed topology too, so a client can refresh
    its view from *any* live node — essential when the node it would ask
    is exactly the one that died.
    """

    def __init__(self, node: "FollowerNode", *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.node = node

    def handle_local(self, frame: Frame) -> bytes:
        if frame.command == b"cluster":
            if frame.args and frame.args[0] == b"topology":
                return topology_response(self.node.topology)
            return b"CLIENT_ERROR unknown cluster verb\r\n"
        return super().handle_local(frame)


class LeaderNode:
    """One leader shard: router + serving front + replication leader."""

    def __init__(self, node_id: str,
                 machine: Optional[Machine] = None,
                 shards: int = 2,
                 host: str = "127.0.0.1", port: int = 0,
                 lag_window: int = 256,
                 heartbeat_interval: Optional[float] = None,
                 backend_factory=HicampMemcached,
                 recorder=None, injector=None,
                 commit_mode: str = "merge") -> None:
        self.node_id = node_id
        self.router = ClusterRouter(
            node_id, machine=machine, shard_count=shards,
            backend_factory=backend_factory, recorder=recorder,
            commit_mode=commit_mode)
        self.server = MemcachedServer(host=host, port=port,
                                      router=self.router,
                                      injector=injector)
        self.leader = ReplicationLeader(
            self.router, host=host,
            lag_window=lag_window,
            heartbeat_interval=heartbeat_interval,
            recorder=recorder)
        self.host = host
        self.alive = True

    @property
    def machine(self) -> Machine:
        return self.router.machine

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def repl_port(self) -> int:
        return self.leader.port

    @property
    def topology(self) -> Optional[ClusterTopology]:
        return self.router.topology

    def set_topology(self, topology: ClusterTopology) -> None:
        self.router.topology = topology

    def info(self) -> NodeInfo:
        return NodeInfo(node_id=self.node_id, host=self.host,
                        port=self.port, role="leader",
                        repl_port=self.repl_port)

    async def start(self) -> None:
        await self.server.start()
        await self.leader.start()

    async def stop(self) -> None:
        """Graceful stop: replication unhooked, commits drained."""
        self.alive = False
        await self.leader.stop()
        await self.server.shutdown()

    async def kill(self) -> None:
        """Crash-stop: connections dropped, queued commits lost.

        The adversarial path — this is what the topology manager's
        probes must detect and repair. The machine object survives (the
        harness still reads its committed roots for lag math), but
        nothing serves and nothing ships.
        """
        self.alive = False
        await self.leader.stop()
        await self.server.abort()


class FollowerNode:
    """One fleet member: replication follower + serving front."""

    def __init__(self, node_id: str, leader_id: str,
                 leader_info: NodeInfo,
                 host: str = "127.0.0.1", port: int = 0,
                 reconnect_delay: float = 0.02,
                 recorder=None) -> None:
        self.node_id = node_id
        self.leader_id = leader_id
        self.host = host
        self.follower = ReplicationFollower(
            leader_info.host, leader_info.repl_port,
            reconnect_delay=reconnect_delay, recorder=recorder)
        self.front = ClusterFollowerServer(
            self, self.follower, leader_info.host, leader_info.port,
            host=host, port=port)
        self.topology: Optional[ClusterTopology] = None

    @property
    def machine(self) -> Machine:
        return self.follower.machine

    @property
    def port(self) -> int:
        return self.front.port

    def set_topology(self, topology: ClusterTopology) -> None:
        self.topology = topology

    def info(self) -> NodeInfo:
        return NodeInfo(node_id=self.node_id, host=self.host,
                        port=self.port, role="follower",
                        leader_id=self.leader_id)

    def progress(self) -> int:
        """Total applied commits — the promotion candidate ranking."""
        return sum(self.follower.applied_seq.values())

    async def start(self) -> None:
        await self.follower.start()
        await self.front.start()

    async def stop(self) -> None:
        await self.front.stop()
        await self.follower.stop()

    def reparent(self, leader_id: str, leader_info: NodeInfo) -> None:
        """Re-point replication and write forwarding at a new leader."""
        self.leader_id = leader_id
        self.follower.reparent(leader_info.host, leader_info.repl_port)
        self.front.set_upstream(leader_info.host, leader_info.port)

    async def promote(self, shards: int,
                      lag_window: int = 256,
                      heartbeat_interval: Optional[float] = None,
                      recorder=None) -> LeaderNode:
        """Turn this follower into a leader over its replicated state.

        Stops the follower stack (releasing the translation map's pins;
        the segments stay), then adopts its per-stream segments as the
        shard backends of a fresh leader stack listening on the same
        serving port — clients that cached this node's address keep
        working. ``shards`` must be the dead leader's shard count so
        stream indices keep meaning the same thing to re-syncing
        siblings.
        """
        port = self.front.port
        streams = dict(self.follower.streams)
        await self.front.stop()
        await self.follower.stop()
        node = LeaderNode(
            self.node_id, machine=self.follower.machine, shards=shards,
            host=self.host, port=port, lag_window=lag_window,
            heartbeat_interval=heartbeat_interval,
            backend_factory=adopting_backend_factory(streams),
            recorder=recorder)
        await node.start()
        return node
