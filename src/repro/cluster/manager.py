"""The topology manager: detect → propose → verify → commit.

The self-healing loop over a :class:`~repro.cluster.cluster.Cluster`,
in the idiom of auto-repair controllers: observe, form a minimal repair
plan, *prove* it healthy, only then commit. Concretely, each tick:

1. **detect** — probe every leader the committed topology names (an
   in-band ``version`` request against its serving port, with a
   timeout). A leader must miss ``failure_threshold`` consecutive
   probes before it is declared dead — a single slow response is not
   a failure.
2. **propose** — rank the dead leader's surviving followers by applied
   commits (most caught up first; ties broken by node id ascending, so
   the choice is deterministic) and pick the head.
3. **promote & reparent** — adopt the candidate's replicated segments
   as a new leader stack and point its orphaned siblings at it. Their
   reconnect HELLOs carry fingerprints that match the promoted state,
   so re-sync rides the SEED path: no lines reshipped.
4. **verify** — the commit gate, and the paper's lever: because the
   canonical DAG is history-independent, per-stream
   ``segment_fingerprint`` agreement across the new fleet *proves*
   byte-identical state no matter what each node lived through. A
   repair that cannot converge within ``verify_timeout`` is **not**
   committed — it stays pending and re-verifies on later ticks.
5. **commit** — bump the epoch, publish the successor topology to every
   node, record the kill→convergence wall time.

Every transition emits trace spans (``cluster_detect`` …
``cluster_commit``) and moves the registry-visible counters in
:class:`~repro.cluster.metrics.ClusterMetrics`.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from repro.obs.trace import NULL_RECORDER
from repro.cluster.cluster import Cluster
from repro.cluster.placement import ClusterTopology

__all__ = ["TopologyManager"]


class TopologyManager:
    """Health-checks leaders and repairs the topology when one dies."""

    def __init__(self, cluster: Cluster,
                 probe_interval: float = 0.05,
                 probe_timeout: float = 0.25,
                 failure_threshold: int = 2,
                 verify_timeout: float = 5.0,
                 recorder=None) -> None:
        self.cluster = cluster
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.failure_threshold = max(1, failure_threshold)
        self.verify_timeout = verify_timeout
        self.recorder = recorder if recorder is not None \
            else cluster.recorder if cluster.recorder is not None \
            else NULL_RECORDER
        #: consecutive probe failures per leader id
        self._failures: Dict[str, int] = {}
        #: an un-committed repair awaiting fingerprint convergence
        self._pending: Optional[Dict] = None
        #: human-readable repair log (debugging; not a trace contract)
        self.events: List[str] = []
        self._task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # background loop

    async def start(self) -> None:
        if self._task is None:
            self._task = asyncio.ensure_future(self._loop())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _loop(self) -> None:
        while True:
            await self.tick()
            await asyncio.sleep(self.probe_interval)

    # ------------------------------------------------------------------
    # detect

    async def probe(self, leader_id: str) -> bool:
        """One in-band liveness check against a leader's serving port."""
        info = self.cluster.topology.node(leader_id)
        if info is None:
            return False
        self.cluster.metrics.probes += 1
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(info.host, info.port),
                self.probe_timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            self.cluster.metrics.probe_failures += 1
            return False
        try:
            writer.write(b"version\r\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(),
                                          self.probe_timeout)
            ok = line.startswith(b"VERSION")
        except (ConnectionError, OSError, asyncio.TimeoutError):
            ok = False
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
        if not ok:
            self.cluster.metrics.probe_failures += 1
        return ok

    async def tick(self) -> None:
        """One manager cycle: lag sampling, probes, repair if due."""
        self.cluster.sample_lags()
        if self._pending is not None:
            await self._verify_pending()
            return
        for leader_id in self.cluster.topology.leader_ids():
            if await self.probe(leader_id):
                self._failures[leader_id] = 0
                continue
            failures = self._failures.get(leader_id, 0) + 1
            self._failures[leader_id] = failures
            if failures >= self.failure_threshold:
                await self.repair(leader_id)
                return  # one repair per tick; re-probe next cycle

    # ------------------------------------------------------------------
    # propose

    def propose(self, dead_id: str) -> Optional[str]:
        """Most-caught-up surviving follower; ties break by node id."""
        candidates = [follower_id
                      for follower_id
                      in self.cluster.topology.followers_of(dead_id)
                      if follower_id in self.cluster.followers]
        if not candidates:
            return None
        candidates.sort(key=lambda follower_id: (
            -self.cluster.followers[follower_id].progress(), follower_id))
        return candidates[0]

    # ------------------------------------------------------------------
    # repair

    async def repair(self, dead_id: str) -> bool:
        """Promote, reparent, verify, commit — or leave a pending verify.

        Returns True when the repair committed (possibly on a later
        tick's re-verify for the pending case — then this call returns
        False and the commit happens in :meth:`tick`).
        """
        cluster = self.cluster
        recorder = self.recorder
        loop = asyncio.get_event_loop()
        started = loop.time()
        span = None
        if recorder.enabled:
            span = recorder.begin("cluster_detect", leader=dead_id,
                                  failures=self._failures.get(dead_id, 0))
        # a wedged-but-listed leader is crash-stopped first so the fleet
        # sees an unambiguous corpse, not a zombie
        if dead_id in cluster.leaders:
            await cluster.kill(dead_id)
        candidate = self.propose(dead_id)
        if span is not None:
            recorder.end(span, candidate=candidate or "")
        if candidate is None:
            cluster.metrics.repairs_failed += 1
            self.events.append("repair %s: no surviving follower"
                               % dead_id)
            return False
        promote_span = None
        if recorder.enabled:
            promote_span = recorder.begin("cluster_promote",
                                          dead=dead_id, node=candidate)
        node = await cluster.promote(candidate)
        successor = cluster.topology.with_promotion(
            dead_id, candidate, node.repl_port)
        # the promoted node enforces the successor view immediately —
        # it must not MOVED its own slot while verification runs
        node.set_topology(successor)
        orphans = [follower_id
                   for follower_id
                   in cluster.topology.followers_of(dead_id)
                   if follower_id != candidate
                   and follower_id in cluster.followers]
        for follower_id in orphans:
            cluster.reparent(follower_id, candidate)
        if promote_span is not None:
            recorder.end(promote_span, orphans=len(orphans))
        self.events.append("repair %s: promoting %s, reparenting %s"
                           % (dead_id, candidate, orphans))
        self._pending = {"dead": dead_id, "candidate": candidate,
                         "topology": successor, "started": started}
        return await self._verify_pending()

    async def _verify_pending(self) -> bool:
        """The commit gate: fingerprint convergence across the fleet."""
        pending = self._pending
        cluster = self.cluster
        recorder = self.recorder
        span = None
        if recorder.enabled:
            span = recorder.begin("cluster_verify",
                                  node=pending["candidate"])
        converged = await cluster.wait_converged(
            pending["candidate"], timeout=self.verify_timeout,
            topology=pending["topology"])
        if span is not None:
            recorder.end(span, converged=converged)
        if not converged:
            # NOT committed — the fleet keeps the old epoch; this verify
            # re-runs on the next tick until fingerprints agree
            self.events.append("repair %s: verify pending"
                               % pending["dead"])
            return False
        self._commit(pending)
        return True

    def _commit(self, pending: Dict) -> None:
        cluster = self.cluster
        recorder = self.recorder
        topology: ClusterTopology = pending["topology"]
        span = None
        if recorder.enabled:
            span = recorder.begin("cluster_commit", epoch=topology.epoch,
                                  node=pending["candidate"])
        cluster.publish(topology)
        cluster.metrics.promotions += 1
        elapsed = asyncio.get_event_loop().time() - pending["started"]
        cluster.metrics.last_recovery_seconds = elapsed
        self._failures.pop(pending["dead"], None)
        self._pending = None
        self.events.append(
            "repair %s: committed epoch %d (promoted %s, %.3fs)"
            % (pending["dead"], topology.epoch, pending["candidate"],
               elapsed))
        if span is not None:
            recorder.end(span, seconds=round(elapsed, 6))
