"""The in-process multi-node harness: a whole fleet in one event loop.

Every node is a real stack on a real localhost socket — leaders accept
memcached connections and ship replication deltas; followers replicate
and serve snapshot reads — but they all share one asyncio loop, so e2e
tests and fuzz episodes stay single-process and deterministic. The
:class:`Cluster` object is the control plane's substrate: it owns the
committed :class:`~repro.cluster.placement.ClusterTopology`, publishes
each new epoch to every node, and exposes the fingerprint/lag probes the
topology manager builds its detect→propose→verify loop from.

Dead leaders move to :attr:`Cluster.dead` rather than vanishing: their
sockets are gone but their machine objects remain readable, which is how
lag accounting can still compare a candidate follower's applied commits
against what the dead leader had committed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_RECORDER
from repro.segments import dag
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.node import FollowerNode, LeaderNode
from repro.cluster.placement import ClusterTopology, initial_topology

__all__ = ["ClusterConfig", "Cluster"]


@dataclass
class ClusterConfig:
    """Shape of a fleet: N leaders, M followers each, K shards per."""

    leaders: int = 2
    followers: int = 2          #: per leader
    shards: int = 2
    vnodes: int = 16
    seed: int = 0
    host: str = "127.0.0.1"
    lag_window: int = 256
    heartbeat_interval: Optional[float] = None
    reconnect_delay: float = 0.02
    commit_mode: str = "merge"


class Cluster:
    """A fleet of leader/follower stacks sharing one event loop."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 recorder=None, injector=None) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.metrics = ClusterMetrics()
        #: cluster-level registry (node stacks keep their own); the obs
        #: adapter wires ``repro_cluster_*`` instruments into it
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        #: optional fault injector handed to every *leader's* serving
        #: front — the adversary for fuzz episodes
        self.injector = injector
        self.leaders: Dict[str, LeaderNode] = {}
        self.followers: Dict[str, FollowerNode] = {}
        self.dead: Dict[str, LeaderNode] = {}
        self.topology: Optional[ClusterTopology] = None
        from repro.obs.adapters import register_cluster
        register_cluster(self.registry, self)

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Boot leaders, bind the epoch-1 topology, boot fleets."""
        cfg = self.config
        for i in range(cfg.leaders):
            node = LeaderNode(
                "lead-%d" % i, shards=cfg.shards, host=cfg.host,
                lag_window=cfg.lag_window,
                heartbeat_interval=cfg.heartbeat_interval,
                recorder=self.recorder, injector=self.injector,
                commit_mode=cfg.commit_mode)
            await node.start()
            self.leaders[node.node_id] = node
        leader_infos = [node.info() for node in self.leaders.values()]
        follower_infos = []
        for leader_id in sorted(self.leaders):
            leader = self.leaders[leader_id]
            for j in range(cfg.followers):
                node = FollowerNode(
                    "%s-f%d" % (leader_id, j), leader_id, leader.info(),
                    host=cfg.host, reconnect_delay=cfg.reconnect_delay,
                    recorder=self.recorder)
                await node.start()
                self.followers[node.node_id] = node
                follower_infos.append(node.info())
        self.publish(initial_topology(
            leader_infos, follower_infos, vnodes=cfg.vnodes,
            seed=cfg.seed))

    async def stop(self) -> None:
        for node in self.followers.values():
            await node.stop()
        for node in self.leaders.values():
            await node.stop()

    async def __aenter__(self) -> "Cluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # topology

    def publish(self, topology: ClusterTopology) -> None:
        """Commit a topology epoch: every live node gets the new view."""
        self.topology = topology
        self.metrics.epoch = topology.epoch
        for node in self.leaders.values():
            node.set_topology(topology)
        for node in self.followers.values():
            node.set_topology(topology)

    def node(self, node_id: str
             ) -> Optional[Union[LeaderNode, FollowerNode]]:
        return self.leaders.get(node_id) or self.followers.get(node_id)

    def endpoints(self) -> List[Tuple[str, int]]:
        """Every live serving endpoint (leaders first, sorted ids)."""
        out = [(node.host, node.port)
               for _, node in sorted(self.leaders.items())]
        out.extend((node.host, node.port)
                   for _, node in sorted(self.followers.items()))
        return out

    # ------------------------------------------------------------------
    # probes (what the topology manager reads)

    def leader_fingerprints(self, leader_id: str) -> Dict[int, bytes]:
        leader = self.leaders[leader_id]
        return {stream: dag.segment_fingerprint(leader.machine, vsid)
                for stream, vsid in leader.leader.streams().items()}

    def fleet_fingerprints(self, leader_id: str,
                           topology: Optional[ClusterTopology] = None
                           ) -> Dict[str, Dict[int, bytes]]:
        """Per-node per-stream fingerprints across one leader's fleet.

        ``topology`` defaults to the committed view; the topology manager
        passes its *proposed* successor so verification judges the fleet
        the repair is about to commit, not the one that just died.
        """
        topology = topology if topology is not None else self.topology
        out = {leader_id: self.leader_fingerprints(leader_id)}
        for follower_id in topology.followers_of(leader_id):
            follower = self.followers.get(follower_id)
            if follower is not None:
                out[follower_id] = follower.follower.fingerprints()
        return out

    def fleet_converged(self, leader_id: str,
                        topology: Optional[ClusterTopology] = None) -> bool:
        """Does every fleet member match the leader, stream for stream?"""
        fleet = self.fleet_fingerprints(leader_id, topology)
        reference = fleet.pop(leader_id)
        if not reference:
            return False
        return all(fps == reference for fps in fleet.values())

    async def wait_converged(self, leader_id: str, timeout: float = 10.0,
                             topology: Optional[ClusterTopology] = None
                             ) -> bool:
        loop = asyncio.get_event_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            if self.fleet_converged(leader_id, topology):
                return True
            await asyncio.sleep(0.02)
        return False

    def follower_lag(self, follower_id: str) -> int:
        """Commits behind the owning leader, summed over streams.

        Readable even when the owning leader is dead — its in-memory
        ``commit_seq`` survives the crash-stop, modeling the external
        commit accounting (client acks) a real control plane would use.
        """
        follower = self.followers[follower_id]
        owner = self.leaders.get(follower.leader_id) \
            or self.dead.get(follower.leader_id)
        if owner is None:
            return 0
        applied = follower.follower.applied_seq
        return sum(max(0, seq - applied.get(stream, 0))
                   for stream, seq in owner.leader.commit_seq.items())

    def sample_lags(self) -> Dict[str, int]:
        """Refresh the per-node lag gauges; returns the sample."""
        out = {}
        for follower_id in sorted(self.followers):
            lag = self.follower_lag(follower_id)
            self.metrics.observe_lag(follower_id, lag)
            out[follower_id] = lag
        return out

    # ------------------------------------------------------------------
    # transitions (the manager's verbs)

    async def kill(self, leader_id: str) -> None:
        """Crash-stop a leader; it keeps its ports' silence forever."""
        node = self.leaders.pop(leader_id)
        await node.kill()
        self.dead[leader_id] = node
        self.metrics.forget_node(leader_id)

    async def promote(self, follower_id: str) -> LeaderNode:
        """Replace a follower with a leader over its replicated state."""
        follower = self.followers.pop(follower_id)
        dead = self.dead.get(follower.leader_id)
        shards = len(dead.router.servers) if dead is not None \
            else self.config.shards
        node = await follower.promote(
            shards, lag_window=self.config.lag_window,
            heartbeat_interval=self.config.heartbeat_interval,
            recorder=self.recorder)
        self.leaders[node.node_id] = node
        self.metrics.forget_node(follower_id)
        return node

    def reparent(self, follower_id: str, leader_id: str) -> None:
        """Point an orphaned follower at its fleet's new leader."""
        follower = self.followers[follower_id]
        follower.reparent(leader_id, self.leaders[leader_id].info())
        self.metrics.reparents += 1

    # ------------------------------------------------------------------
    # reporting

    def sample_moved(self) -> int:
        """Sum MOVED responses over live leaders into the metrics."""
        total = sum(node.router.moved_responses
                    for node in self.leaders.values())
        total += sum(node.router.moved_responses
                     for node in self.dead.values())
        self.metrics.moved_total = total
        return total

    def snapshot(self) -> Dict:
        self.sample_moved()
        return {
            "cluster": self.metrics.snapshot(),
            "topology": self.topology.to_doc()
            if self.topology is not None else None,
            "live_leaders": sorted(self.leaders),
            "live_followers": sorted(self.followers),
            "dead": sorted(self.dead),
        }
