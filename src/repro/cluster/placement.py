"""Key placement: a seeded consistent-hash ring and versioned topology.

The cluster tier splits the keyspace across N leader shards the same way
the paper splits a contended map (§5.1.1) — but at fleet scale, where
"shard" means a whole serving stack (router + machine + replication
leader) rather than a commit queue. Placement follows the classic
consistent-hashing construction:

* the ring is built over **slots**, not node ids. A slot (``slot-0`` …
  ``slot-N-1``) is a stable name for one leader shard's keyspace
  partition; ``vnodes`` virtual points per slot smooth the split.
  Because the points hash the *slot name*, promoting a follower into a
  dead leader's place rebinds the slot without moving a single key —
  the hash-slot indirection redis-cluster uses, here derived from a
  seed so every test and fuzz episode lays keys out identically.
* :class:`ClusterTopology` is the explicit, versioned cluster state:
  the ring parameters, the slot → leader binding, and a
  :class:`NodeInfo` per node. It is immutable in spirit — every repair
  produces a *new* topology with ``epoch + 1`` via
  :meth:`ClusterTopology.with_promotion` — and JSON round-trippable so
  clients can fetch it over the wire (``cluster topology``) and detect
  staleness by epoch compare.

History-independence is what makes the versioning safe to verify
cheaply: two nodes that converged to the same per-VSID fingerprint hold
byte-identical segments no matter which deltas, resyncs or promotions
got them there, so a topology transition is provably complete the
moment fingerprints agree (see :mod:`repro.cluster.manager`).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

LEADER = "leader"
FOLLOWER = "follower"


def _point(seed: int, slot: str, replica: int) -> int:
    """Deterministic 64-bit ring position for one virtual node."""
    material = b"%d|%s|%d" % (seed, slot.encode(), replica)
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def key_point(key: bytes) -> int:
    """Where a key lands on the ring (independent of the seed: the
    *ring* is the seeded part, so re-seeding re-deals the slots while
    key hashing stays a pure content property)."""
    digest = hashlib.blake2b(b"key|" + key, digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A stable consistent-hash ring over slot names.

    Deterministic given ``(slots, vnodes, seed)``; adding or removing a
    slot moves only the keys adjacent to its virtual points — the
    elastic-scale-out property the SEED warm start makes cheap to
    exploit (a new leader's followers spin up from fingerprints, not
    full copies).
    """

    def __init__(self, slots: Sequence[str], vnodes: int = 32,
                 seed: int = 0) -> None:
        if not slots:
            raise ValueError("a ring needs at least one slot")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.slots: Tuple[str, ...] = tuple(slots)
        self.vnodes = vnodes
        self.seed = seed
        points: List[Tuple[int, str]] = []
        for slot in self.slots:
            for replica in range(vnodes):
                points.append((_point(seed, slot, replica), slot))
        # ties broken by slot name so the ring is a pure function of
        # its parameters, never of construction order
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def slot_for(self, key: bytes) -> str:
        """The slot owning ``key``: first virtual point clockwise."""
        index = bisect.bisect_right(self._points, key_point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def spread(self, keys: Sequence[bytes]) -> Dict[str, int]:
        """Keys per slot — balance diagnostics and tests."""
        out = {slot: 0 for slot in self.slots}
        for key in keys:
            out[self.slot_for(key)] += 1
        return out

    def to_doc(self) -> Dict:
        return {"slots": list(self.slots), "vnodes": self.vnodes,
                "seed": self.seed}

    @classmethod
    def from_doc(cls, doc: Dict) -> "HashRing":
        return cls(doc["slots"], vnodes=doc["vnodes"], seed=doc["seed"])


@dataclass
class NodeInfo:
    """One cluster member as the topology describes it."""

    node_id: str
    host: str
    port: int                       #: serving (memcached) port
    role: str = LEADER
    repl_port: int = 0              #: replication port (leaders only)
    leader_id: Optional[str] = None  #: owning leader (followers only)

    def to_doc(self) -> Dict:
        return {"node_id": self.node_id, "host": self.host,
                "port": self.port, "role": self.role,
                "repl_port": self.repl_port, "leader_id": self.leader_id}

    @classmethod
    def from_doc(cls, doc: Dict) -> "NodeInfo":
        return cls(node_id=doc["node_id"], host=doc["host"],
                   port=doc["port"], role=doc["role"],
                   repl_port=doc.get("repl_port", 0),
                   leader_id=doc.get("leader_id"))


@dataclass
class ClusterTopology:
    """Versioned cluster state: ring, slot bindings, node directory.

    Transitions never mutate in place — they build the successor
    topology with a bumped epoch, so a node or client can always tell
    whether its view is stale by comparing a single integer.
    """

    epoch: int
    ring: HashRing
    slot_owner: Dict[str, str]
    nodes: Dict[str, NodeInfo] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # queries

    def owner_of(self, key: bytes) -> str:
        """Node id of the leader owning ``key`` at this epoch."""
        return self.slot_owner[self.ring.slot_for(key)]

    def node(self, node_id: str) -> Optional[NodeInfo]:
        return self.nodes.get(node_id)

    def leader_ids(self) -> List[str]:
        return sorted(n.node_id for n in self.nodes.values()
                      if n.role == LEADER)

    def followers_of(self, leader_id: str) -> List[str]:
        return sorted(n.node_id for n in self.nodes.values()
                      if n.role == FOLLOWER and n.leader_id == leader_id)

    def slot_of(self, leader_id: str) -> Optional[str]:
        for slot, owner in self.slot_owner.items():
            if owner == leader_id:
                return slot
        return None

    # ------------------------------------------------------------------
    # transitions

    def with_promotion(self, dead_id: str, promoted_id: str,
                       repl_port: int) -> "ClusterTopology":
        """The successor topology after a follower promotion.

        The dead leader's slot rebinds to the promoted node; its
        surviving followers re-parent to the promoted node; the dead
        node leaves the directory. The ring itself never changes — no
        key moves between surviving leaders.
        """
        promoted = self.nodes[promoted_id]
        nodes: Dict[str, NodeInfo] = {}
        for node_id, info in self.nodes.items():
            if node_id == dead_id:
                continue
            if node_id == promoted_id:
                nodes[node_id] = NodeInfo(
                    node_id=node_id, host=promoted.host,
                    port=promoted.port, role=LEADER,
                    repl_port=repl_port, leader_id=None)
            elif info.role == FOLLOWER and info.leader_id == dead_id:
                nodes[node_id] = NodeInfo(
                    node_id=node_id, host=info.host, port=info.port,
                    role=FOLLOWER, leader_id=promoted_id)
            else:
                nodes[node_id] = info
        slot_owner = {slot: (promoted_id if owner == dead_id else owner)
                      for slot, owner in self.slot_owner.items()}
        return ClusterTopology(epoch=self.epoch + 1, ring=self.ring,
                               slot_owner=slot_owner, nodes=nodes)

    # ------------------------------------------------------------------
    # wire form

    def to_doc(self) -> Dict:
        return {
            "epoch": self.epoch,
            "ring": self.ring.to_doc(),
            "slot_owner": dict(sorted(self.slot_owner.items())),
            "nodes": {node_id: info.to_doc()
                      for node_id, info in sorted(self.nodes.items())},
        }

    @classmethod
    def from_doc(cls, doc: Dict) -> "ClusterTopology":
        return cls(epoch=doc["epoch"],
                   ring=HashRing.from_doc(doc["ring"]),
                   slot_owner=dict(doc["slot_owner"]),
                   nodes={node_id: NodeInfo.from_doc(info)
                          for node_id, info in doc["nodes"].items()})


def initial_topology(leaders: Sequence[NodeInfo],
                     followers: Sequence[NodeInfo],
                     vnodes: int = 32, seed: int = 0,
                     epoch: int = 1) -> ClusterTopology:
    """Epoch-1 topology: one slot per leader, bound in sorted id order."""
    slots = ["slot-%d" % i for i in range(len(leaders))]
    ring = HashRing(slots, vnodes=vnodes, seed=seed)
    ordered = sorted(leaders, key=lambda info: info.node_id)
    slot_owner = {slot: info.node_id
                  for slot, info in zip(slots, ordered)}
    nodes = {info.node_id: info for info in list(leaders) + list(followers)}
    return ClusterTopology(epoch=epoch, ring=ring, slot_owner=slot_owner,
                           nodes=nodes)


__all__ = ["HashRing", "NodeInfo", "ClusterTopology", "initial_topology",
           "key_point", "LEADER", "FOLLOWER"]
