"""The structural delta engine.

A segment update on HICAMP is fully described by (a) the lines the
receiver has never seen and (b) the new root — everything else is shared
structure the receiver already holds. The delta engine is therefore just
the deterministic children-first reachability walk of
:func:`repro.segments.dag.walk_lines`, pruned at every subtree root the
follower is known to hold: knowledge of a line implies knowledge of its
entire subtree (a line's content embeds its children's PLIDs, and the
follower's install pinned them), so the walk never descends into shared
history. What remains is, by construction, the minimal set of lines the
follower needs, in an order where every child precedes its parent.

The engine runs against a *retained* root entry: the caller takes a
reference before computing and releases it after shipping, so a
concurrent commit on the leader cannot deallocate a line mid-delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Set, Tuple

from repro.memory.line import Line, PlidRef
from repro.segments.dag import Entry, walk_lines


@dataclass
class Delta:
    """One stream's update: new lines (children first) plus the new root."""

    stream: int
    vsid: int
    root: Entry          # leader-side entry; the follower translates
    height: int
    length: int
    lines: List[Tuple[int, Line]] = field(default_factory=list)

    @property
    def line_count(self) -> int:
        return len(self.lines)


def delta_lines(store, entry: Entry,
                known: Set[int]) -> Iterator[Tuple[int, Line]]:
    """Yield ``(plid, line)`` the follower is missing, children first.

    ``known`` is the per-follower set of leader PLIDs already shipped
    (and not since forgotten); subtrees rooted at a known PLID are
    pruned without being read.
    """
    return walk_lines(store, entry, skip=known)


def compute_delta(store, stream: int, vsid: int, entry: Entry, height: int,
                  length: int, known: Set[int]) -> Delta:
    """Materialize the delta for one stream against a known-PLID set."""
    delta = Delta(stream=stream, vsid=vsid, root=entry, height=height,
                  length=length)
    delta.lines.extend(delta_lines(store, entry, known))
    return delta


def translate_line(line: Line, plid_map) -> Line:
    """Rewrite a shipped line's child references into local PLIDs.

    Raises ``KeyError`` with the missing leader PLID when a child was
    never installed — the caller turns that into a NACK.
    """
    if not any(isinstance(w, PlidRef) for w in line):
        return line
    return tuple(PlidRef(plid_map[w.plid], w.path)
                 if isinstance(w, PlidRef) else w
                 for w in line)
