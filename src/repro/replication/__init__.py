"""Content-addressed leader/follower replication (PR 3).

HICAMP's content-unique, immutable lines make replication a structural
problem rather than a log-shipping one: a follower is up to date exactly
when it holds the leader's root DAGs, and bringing it up to date means
shipping only the lines it has never seen — the delta engine in
:mod:`repro.replication.delta` walks new roots children-first, pruned at
every subtree the follower already holds. Roots advance atomically on
the follower with the same CAS primitive the leader commits with, so
follower reads are always a consistent snapshot, merely lagged.

Public surface:

* :class:`~repro.replication.leader.ReplicationLeader` — tails committed
  root advances from a :class:`~repro.net.router.ShardRouter` and ships
  deltas to connected followers with bounded lag.
* :class:`~repro.replication.follower.ReplicationFollower` — installs
  shipped lines into its own deduplicating store and CAS-advances its
  local segment roots.
* :class:`~repro.replication.follower.FollowerServer` — memcached front
  end serving snapshot GETs locally and forwarding writes to the leader.
* :class:`~repro.replication.metrics.ReplicationMetrics` — wire/dedup/lag
  accounting for either endpoint.
"""

from repro.replication.follower import (
    FollowerReadBackend,
    FollowerServer,
    ReplicationFollower,
)
from repro.replication.leader import ReplicationLeader
from repro.replication.metrics import ReplicationMetrics

__all__ = [
    "FollowerReadBackend",
    "FollowerServer",
    "ReplicationFollower",
    "ReplicationLeader",
    "ReplicationMetrics",
]
