"""The replication follower: install lines, advance roots, serve reads.

The follower owns its own :class:`~repro.core.machine.Machine` and
*installs* shipped lines through content lookup — the same operation the
leader used to create them — so installs are idempotent (a re-sent line
dedups to its existing PLID) and the two machines converge to
structurally identical DAGs even though their PLID numbering differs.
The bridge between the two PLID spaces is the translation map
``leader PLID → local PLID``; every entry holds one counted reference on
the local line ("pinned"), released when the leader sends FORGET (it
deallocated the line, and the PLID may be reused) or RESET (drop
everything, a full sync follows).

A root advance applies only when the shipped root's line is present —
the translation lookup *is* that check, since a translation exists
exactly for installed lines, and installing a line requires its whole
subtree. The root is committed with the architecture's CAS primitive and
acknowledged back to the leader; a missing translation raises a NACK
instead, and the leader falls back to a full sync.

Serving: :class:`FollowerServer` speaks memcached to clients —
**snapshot GETs execute locally** against the replicated segments (the
paper's synchronization-free read path, now on a second machine), while
write commands are forwarded verbatim to the leader's memcached port.
Reads are snapshot-consistent but may lag the leader by the replication
delay; a client's own write becomes locally visible only after its
delta arrives (eventual read-your-writes).
"""

from __future__ import annotations

import asyncio
import hashlib
import zlib
from typing import Dict, Optional

from repro.apps.memcached.protocol import ProtocolHandler
from repro.apps.memcached.server import ServerStats
from repro.core.machine import Machine
from repro.errors import ReplicationError
from repro.memory.line import PlidRef
from repro.net.framing import FrameDecoder
from repro.net.router import WRITE_COMMANDS
from repro.obs.trace import NULL_RECORDER
from repro.replication import wire
from repro.replication.delta import translate_line
from repro.replication.metrics import ReplicationMetrics
from repro.segments import dag

READ_CHUNK = 1 << 16


class ReplicationFollower:
    """Maintains a converging replica of the leader's streams."""

    def __init__(self, host: str, port: int,
                 machine: Optional[Machine] = None,
                 streams: Optional[Dict[int, int]] = None,
                 metrics: Optional[ReplicationMetrics] = None,
                 reconnect_delay: float = 0.05,
                 recorder=None) -> None:
        self.host = host
        self.port = port
        self.machine = machine if machine is not None else Machine()
        #: trace recorder (no-op default); root advances record spans
        #: with the DRAM traffic their installs caused on this machine
        self.recorder = recorder if recorder is not None \
            else NULL_RECORDER
        #: stream index → local VSID (warm-started from a checkpoint, or
        #: created empty when the WELCOME announces a new stream)
        self.streams: Dict[int, int] = dict(streams or {})
        self.leader_vsids: Dict[int, int] = {}
        self.metrics = metrics if metrics is not None \
            else ReplicationMetrics()
        self.reconnect_delay = reconnect_delay
        #: leader PLID → local PLID; each entry owns one counted
        #: reference on the local line
        self.plid_map: Dict[int, int] = {}
        self.applied_seq: Dict[int, int] = {}
        #: set whenever a ROOT_ADVANCE applies (tests wait on this)
        self.advanced = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        self._closing = False
        self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Disconnect and release the translation map's pins.

        The replicated segments stay — the machine can be audited,
        checkpointed, or promoted after the link is gone.
        """
        self._closing = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        self._release_translations()

    def fingerprints(self) -> Dict[int, bytes]:
        """Per-stream content digests (convergence checks, HELLO)."""
        return {stream: dag.segment_fingerprint(self.machine, vsid)
                for stream, vsid in self.streams.items()}

    def reparent(self, host: str, port: int) -> None:
        """Point this follower at a different leader.

        Aborts the live link (if any); the reconnect loop then dials the
        new address with a fresh HELLO carrying our fingerprints, so a
        new leader holding identical content SEEDs us without reshipping
        a single line — promotion inherits the warm-start economics.
        """
        self.host = host
        self.port = port
        writer = self._writer
        if writer is not None and writer.transport is not None:
            writer.transport.abort()

    def _release_translations(self) -> None:
        for local in self.plid_map.values():
            self.machine.mem.decref(local)
        self.plid_map.clear()

    # ------------------------------------------------------------------
    # connection loop

    async def _run(self) -> None:
        first = True
        while not self._closing:
            if not first:
                self.metrics.reconnects += 1
                await asyncio.sleep(self.reconnect_delay)
            first = False
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port)
            except (ConnectionError, OSError):
                continue
            self._writer = writer
            try:
                await self._session(reader, writer)
            except (ConnectionError, OSError,
                    asyncio.IncompleteReadError):
                # link fault: reconnect with a fresh HELLO. The
                # translation map is per-connection state the *leader*
                # mirrors, so it must not survive the session.
                self._release_translations()
            except ReplicationError as exc:
                self._release_translations()
                try:
                    writer.write(wire.encode_frame(
                        wire.ERROR,
                        wire.encode_json_payload({"error": str(exc)})))
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
            finally:
                self._writer = None
                writer.close()
                try:
                    await writer.wait_closed()
                except Exception:
                    pass

    async def _session(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        mem = self.machine.mem
        self._send(writer, wire.HELLO, wire.encode_json_payload(
            wire.hello_doc(mem.line_bytes, mem.fanout,
                           self.fingerprints())))
        await writer.drain()
        decoder = wire.LengthPrefixedDecoder()
        while True:
            data = await reader.read(READ_CHUNK)
            if not data:
                raise asyncio.IncompleteReadError(b"", None)
            self.metrics.bytes_received += len(data)
            for ftype, payload in decoder.feed(data):
                self._handle(writer, ftype, payload)
            await writer.drain()

    def _send(self, writer, ftype: int, payload: bytes) -> None:
        frame = wire.encode_frame(ftype, payload)
        self.metrics.bytes_sent += len(frame)
        writer.write(frame)

    # ------------------------------------------------------------------
    # frame handling

    def _handle(self, writer, ftype: int, payload: bytes) -> None:
        if ftype == wire.LINE:
            self._handle_line(writer, payload)
        elif ftype == wire.ROOT_ADVANCE:
            self._handle_advance(writer, payload)
        elif ftype == wire.SEED:
            self._handle_seed(writer, payload)
        elif ftype == wire.WELCOME:
            self._handle_welcome(payload)
        elif ftype == wire.FULL_SYNC:
            self.metrics.full_syncs += 1
        elif ftype == wire.RESET:
            self.metrics.resets += 1
            self._release_translations()
        elif ftype == wire.FORGET:
            plid = wire.decode_forget_payload(payload)
            local = self.plid_map.pop(plid, None)
            if local is not None:
                self.machine.mem.decref(local)
            self.metrics.forgets += 1
        elif ftype == wire.HEARTBEAT:
            self.metrics.heartbeats += 1
        elif ftype == wire.ERROR:
            doc = wire.decode_json_payload(payload)
            raise ReplicationError("leader error: %s" % doc.get("error"))
        else:
            raise ReplicationError("unexpected frame %s from leader"
                                   % wire.FRAME_NAMES.get(ftype, ftype))

    def _handle_welcome(self, payload: bytes) -> None:
        doc = wire.decode_json_payload(payload)
        mem = self.machine.mem
        wire.check_handshake(doc, mem.line_bytes, mem.fanout)
        for stream_str, vsid in doc.get("streams", {}).items():
            stream = int(stream_str)
            self.leader_vsids[stream] = vsid
            if stream not in self.streams:
                self.streams[stream] = self.machine.create_segment([])

    def _handle_line(self, writer, payload: bytes) -> None:
        plid, line = wire.decode_line_payload(payload)
        try:
            local_line = translate_line(line, self.plid_map)
        except KeyError as exc:
            self._nack(writer, -1, exc.args[0])
            return
        local, created = self.machine.install_line(local_line)
        self.metrics.lines_installed += 1
        if not created:
            self.metrics.lines_deduped_on_arrival += 1
        old = self.plid_map.get(plid)
        if old is not None:
            self.machine.mem.decref(old)
        self.plid_map[plid] = local  # the install reference is the pin

    def _handle_seed(self, writer, payload: bytes) -> None:
        """Warm start: pair the leader's walk with our identical walk."""
        stream, leader_plids = wire.decode_seed_payload(payload)
        vsid = self.streams.get(stream)
        if vsid is None:
            self._nack(writer, stream, 0)
            return
        entry = self.machine.segmap.entry(vsid)
        local_plids = [p for p, _ in
                       dag.walk_lines(self.machine.mem.store, entry.root)]
        if len(local_plids) != len(leader_plids):
            # fingerprints matched but the walks disagree — impossible
            # unless state diverged; ask for a full sync
            self._nack(writer, stream, 0)
            return
        for leader_plid, local in zip(leader_plids, local_plids):
            old = self.plid_map.get(leader_plid)
            if old is not None:
                self.machine.mem.decref(old)
            self.machine.mem.incref(local)
            self.plid_map[leader_plid] = local
        self.metrics.seed_lines += len(local_plids)

    def _handle_advance(self, writer, payload: bytes) -> None:
        recorder = self.recorder
        if recorder.enabled:
            with recorder.span("advance_apply",
                               dram=self.machine.mem.dram) as span:
                self._apply_advance(writer, payload, span)
        else:
            self._apply_advance(writer, payload, None)

    def _apply_advance(self, writer, payload: bytes,
                       span: Optional[int]) -> None:
        stream, seq, leader_vsid, height, length, root = \
            wire.decode_advance_payload(payload)
        if span is not None:
            self.recorder.attach(span, stream=stream, seq=seq)
        if stream not in self.streams:
            self.streams[stream] = self.machine.create_segment([])
        self.leader_vsids[stream] = leader_vsid
        if isinstance(root, PlidRef):
            local_plid = self.plid_map.get(root.plid)
            if local_plid is None:
                self._nack(writer, stream, root.plid)
                return
            new_root = PlidRef(local_plid, root.path)
        else:
            new_root = root
        vsid = self.streams[stream]
        entry = self.machine.segmap.entry(vsid)
        # the map entry takes over this reference on CAS success
        dag.retain_entry(self.machine.mem, new_root)
        if not self.machine.segmap.cas_root(vsid, entry.root, entry.height,
                                            new_root, height, length):
            # single writer: a lost CAS means the replica was corrupted
            dag.release_entry(self.machine.mem, new_root)
            raise ReplicationError(
                "root CAS lost on follower stream %d" % stream)
        self.applied_seq[stream] = seq
        self.metrics.root_advances += 1
        self._send(writer, wire.ACK, wire.encode_ack_payload(stream, seq))
        self.metrics.acks += 1
        self.advanced.set()

    def _nack(self, writer, stream: int, missing: int) -> None:
        self.metrics.nacks += 1
        self._send(writer, wire.NACK, wire.encode_json_payload(
            {"stream": stream, "missing": missing}))


# ----------------------------------------------------------------------
# serving


class FollowerReadBackend:
    """Duck-typed server object for :class:`ProtocolHandler`.

    Reads execute as snapshot reads over the replicated segments with
    the same key → shard routing the leader's router uses; writes never
    reach this object (the serving front forwards them upstream).
    """

    def __init__(self, follower: ReplicationFollower) -> None:
        self.follower = follower
        self.stats = ServerStats()

    def _map_for(self, key: bytes):
        from repro.structures.hmap import HMap
        streams = self.follower.streams
        if not streams:
            return None
        shard = zlib.crc32(key) % len(streams)
        vsid = streams.get(shard)
        if vsid is None:
            return None
        return HMap(self.follower.machine, vsid)

    def get(self, key: bytes):
        self.stats.gets += 1
        kvp = self._map_for(key)
        value = kvp.get(key) if kvp is not None else None
        if value is not None:
            self.stats.get_hits += 1
        return value

    def gets(self, key: bytes):
        value = self.get(key)
        if value is None:
            return None
        # same content-identity token as the leader: dedup makes equal
        # values one root, so leader and follower tokens agree
        return value, hashlib.blake2b(value, digest_size=8).digest()

    def item_count(self) -> int:
        from repro.structures.hmap import HMap
        return sum(len(HMap(self.follower.machine, vsid))
                   for vsid in self.follower.streams.values())

    def version(self) -> bytes:
        return b"repro-hicamp-follower/1.0"

    def extra_stats(self) -> dict:
        """Every replication counter, over the wire via ``stats``.

        The full :meth:`ReplicationMetrics.snapshot` is exposed under a
        ``replication_`` prefix (the per-stream lag map flattened to one
        key per stream), so follower lag and dedup ratio are visible to
        any memcached client. The original four summary keys and
        ``footprint_bytes`` keep their exact names.
        """
        snap = self.follower.metrics.snapshot()
        lag_by_stream = snap.pop("lag_by_stream")
        out = {
            "replication_dedup_on_arrival":
                snap["lines_deduped_on_arrival"],
            "replication_dedup_ratio":
                round(self.follower.metrics.dedup_ratio, 6),
            "footprint_bytes": self.follower.machine.footprint_bytes(),
        }
        for name, value in snap.items():
            out["replication_" + name] = value
        for stream, lag in lag_by_stream.items():
            out["replication_lag_stream_%s" % stream] = lag
        for stream, seq in sorted(self.follower.applied_seq.items()):
            out["replication_applied_seq_stream_%d" % stream] = seq
        return out


class FollowerServer:
    """Memcached front end of a follower: local snapshot reads, writes
    forwarded to the leader's memcached port."""

    def __init__(self, follower: ReplicationFollower,
                 upstream_host: str, upstream_port: int,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.follower = follower
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self.port = port
        self.backend = FollowerReadBackend(follower)
        self.handler = ProtocolHandler(self.backend)
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()
        #: bumped by :meth:`set_upstream`; connections drop their cached
        #: upstream link when their generation falls behind
        self._upstream_gen = 0

    def set_upstream(self, host: str, port: int) -> None:
        """Re-point write forwarding (a follower re-parented mid-life).

        Live connections notice via the generation counter on their next
        forward and re-dial instead of pushing writes at the old leader.
        """
        self.upstream_host = host
        self.upstream_port = port
        self._upstream_gen += 1

    def handle_local(self, frame) -> bytes:
        """Answer one locally-served (non-write) frame.

        Subclass hook: the cluster tier's follower front intercepts
        ``cluster ...`` frames here and defers everything else to the
        plain snapshot-read handler.
        """
        return self.handler.handle(frame.raw)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        decoder = FrameDecoder()
        # (generation, reader, writer), opened on first write command
        upstream = None
        try:
            while True:
                data = await reader.read(READ_CHUNK)
                if not data:
                    break
                quit_seen = False
                for frame in decoder.feed(data):
                    if frame.command == b"quit":
                        quit_seen = True
                        break
                    if frame.error is not None:
                        writer.write(b"CLIENT_ERROR %s\r\n"
                                     % frame.error.encode())
                    elif frame.command in WRITE_COMMANDS \
                            or frame.command == b"flush_all":
                        upstream, response = await self._forward(
                            upstream, frame.raw)
                        writer.write(response)
                    else:
                        writer.write(self.handle_local(frame))
                await writer.drain()
                if quit_seen:
                    break
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            self._conn_tasks.discard(task)
            if upstream is not None:
                upstream[2].close()
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _forward(self, upstream, raw: bytes):
        """Relay one write to the leader; returns (upstream, response).

        Every write command's response is a single line, so one
        ``readline()`` per forwarded request keeps the relay trivially
        in-order on the shared upstream connection.
        """
        try:
            if upstream is not None and upstream[0] != self._upstream_gen:
                # re-parented since this connection cached its link
                upstream[2].close()
                upstream = None
            if upstream is None:
                up_reader, up_writer = await asyncio.open_connection(
                    self.upstream_host, self.upstream_port)
                upstream = (self._upstream_gen, up_reader, up_writer)
            _, up_reader, up_writer = upstream
            up_writer.write(raw)
            await up_writer.drain()
            response = await up_reader.readline()
            if not response:
                raise ConnectionResetError("leader closed")
            return upstream, response
        except (ConnectionError, OSError):
            if upstream is not None:
                upstream[2].close()
            return None, b"SERVER_ERROR leader unavailable\r\n"
