"""The replication wire format: length-prefixed, versioned binary frames.

Every frame is ``!BI`` — one frame-type byte, a four-byte payload length
— followed by the payload; reassembly over split reads is the shared
:class:`~repro.net.framing.LengthPrefixedDecoder`. Control frames carry
JSON payloads (they are rare and small); the hot frames (LINE, SEED,
ROOT_ADVANCE, ACK) use a compact binary layout.

Frame catalogue (direction, payload):

==============  =====  ==========================================================
HELLO           F → L  JSON: protocol version, line geometry, per-stream
                       content fingerprints of the follower's local segments
WELCOME         L → F  JSON: version echo, geometry, the stream table
                       (stream index → leader VSID)
LINE            L → F  u64 leader PLID + tagged word codec — one shipped line
SEED            L → F  u16 stream + u64 PLID list, the leader's deterministic
                       walk of a root both sides already hold (warm start:
                       pairs the PLID spaces without re-shipping content)
ROOT_ADVANCE    L → F  u16 stream + u64 seq + u64 leader VSID + u8 height +
                       length (u8 byte count + big-endian bytes; sparse
                       segments index past 2**64) + root entry word —
                       commit a new version
FULL_SYNC       L → F  JSON: stream — the delta that follows assumes the
                       follower knows nothing about this stream
RESET           L → F  JSON: reason — follower must drop its whole PLID
                       translation map (leader lost/discarded its state)
FORGET          L → F  u64 leader PLID — leader deallocated it; the follower
                       drops the translation entry and its pin
HEARTBEAT       both   JSON: monotonic counter
ACK             F → L  u16 stream + u64 seq — root advance applied
NACK            F → L  JSON: stream, missing PLID — a frame referenced a
                       line the follower does not hold (leader full-syncs)
ERROR           both   JSON: message, then the connection closes
==============  =====  ==========================================================

The word codec is self-delimiting (unlike the canonical hash encoding in
:mod:`repro.memory.line`, which does not record path lengths): data
``D`` + u64; reference ``P`` + u8 path length + u64 PLID + path bytes;
inline ``I`` + width/span/count bytes + count u64 values.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Tuple

from repro.errors import ReplicationError
from repro.memory.line import Inline, Line, PlidRef

# re-exported so replication callers need only this module
from repro.net.framing import (  # noqa: F401
    FrameTooLargeError,
    LengthPrefixedDecoder,
    encode_frame,
)

PROTOCOL_VERSION = 1

HELLO = 1
WELCOME = 2
LINE = 3
SEED = 4
ROOT_ADVANCE = 5
FULL_SYNC = 6
RESET = 7
FORGET = 8
HEARTBEAT = 9
ACK = 10
NACK = 11
ERROR = 12

FRAME_NAMES = {
    HELLO: "HELLO", WELCOME: "WELCOME", LINE: "LINE", SEED: "SEED",
    ROOT_ADVANCE: "ROOT_ADVANCE", FULL_SYNC: "FULL_SYNC", RESET: "RESET",
    FORGET: "FORGET", HEARTBEAT: "HEARTBEAT", ACK: "ACK", NACK: "NACK",
    ERROR: "ERROR",
}

_U64 = struct.Struct("!Q")
_LINE_HEAD = struct.Struct("!QH")          # leader plid, word count
_SEED_HEAD = struct.Struct("!HI")          # stream, plid count
_ADVANCE_HEAD = struct.Struct("!HQQB")     # stream, seq, vsid, height
_ACK_BODY = struct.Struct("!HQ")           # stream, seq


def _encode_length(length: int) -> bytes:
    """Segment lengths are unbounded (sparse segments index past 2**64):
    u8 byte count + minimal big-endian bytes."""
    raw = length.to_bytes(max(1, (length.bit_length() + 7) // 8), "big")
    if len(raw) > 255:
        raise ReplicationError("absurd segment length (%d bytes)" % len(raw))
    return bytes((len(raw),)) + raw


def _decode_length(payload: bytes, pos: int) -> Tuple[int, int]:
    try:
        count = payload[pos]
        raw = payload[pos + 1:pos + 1 + count]
        if len(raw) != count:
            raise ReplicationError("truncated length field")
        return int.from_bytes(raw, "big"), pos + 1 + count
    except IndexError as exc:
        raise ReplicationError("truncated length field") from exc


# ----------------------------------------------------------------------
# tagged word codec

def encode_wire_word(word) -> bytes:
    """Self-delimiting encoding of one tagged word."""
    if isinstance(word, PlidRef):
        return (b"P" + bytes((len(word.path),)) + _U64.pack(word.plid)
                + bytes(word.path))
    if isinstance(word, Inline):
        return (b"I" + bytes((word.width, word.span, len(word.values)))
                + b"".join(_U64.pack(v) for v in word.values))
    return b"D" + _U64.pack(word & ((1 << 64) - 1))


def decode_wire_word(payload: bytes, pos: int) -> Tuple[object, int]:
    """Decode one word at ``pos``; returns ``(word, next_pos)``."""
    try:
        tag = payload[pos:pos + 1]
        if tag == b"D":
            return _U64.unpack_from(payload, pos + 1)[0], pos + 9
        if tag == b"P":
            path_len = payload[pos + 1]
            plid = _U64.unpack_from(payload, pos + 2)[0]
            path = tuple(payload[pos + 10:pos + 10 + path_len])
            if len(path) != path_len:
                raise ReplicationError("truncated path in reference word")
            return PlidRef(plid, path), pos + 10 + path_len
        if tag == b"I":
            width, span, count = payload[pos + 1:pos + 4]
            values = tuple(_U64.unpack_from(payload, pos + 4 + 8 * i)[0]
                           for i in range(count))
            return Inline(width=width, values=values, span=span), \
                pos + 4 + 8 * count
        raise ReplicationError("unknown word tag %r at %d" % (tag, pos))
    except (struct.error, IndexError, ValueError) as exc:
        raise ReplicationError("undecodable word at %d: %s"
                               % (pos, exc)) from exc


# ----------------------------------------------------------------------
# hot frames: LINE / SEED / ROOT_ADVANCE / ACK / FORGET

def encode_line_payload(plid: int, line: Line) -> bytes:
    """LINE: the leader's PLID plus the line's tagged words."""
    return (_LINE_HEAD.pack(plid, len(line))
            + b"".join(encode_wire_word(w) for w in line))


def decode_line_payload(payload: bytes) -> Tuple[int, Line]:
    try:
        plid, count = _LINE_HEAD.unpack_from(payload)
    except struct.error as exc:
        raise ReplicationError("truncated LINE frame") from exc
    pos = _LINE_HEAD.size
    words = []
    for _ in range(count):
        word, pos = decode_wire_word(payload, pos)
        words.append(word)
    if pos != len(payload):
        raise ReplicationError("%d trailing bytes after LINE words"
                               % (len(payload) - pos))
    return plid, tuple(words)


def encode_seed_payload(stream: int, plids: List[int]) -> bytes:
    """SEED: the leader's PLIDs in deterministic walk order."""
    return (_SEED_HEAD.pack(stream, len(plids))
            + b"".join(_U64.pack(p) for p in plids))


def decode_seed_payload(payload: bytes) -> Tuple[int, List[int]]:
    try:
        stream, count = _SEED_HEAD.unpack_from(payload)
        plids = [_U64.unpack_from(payload, _SEED_HEAD.size + 8 * i)[0]
                 for i in range(count)]
    except struct.error as exc:
        raise ReplicationError("truncated SEED frame") from exc
    return stream, plids


def encode_advance_payload(stream: int, seq: int, vsid: int, root,
                           height: int, length: int) -> bytes:
    """ROOT_ADVANCE: commit ``stream`` to a new version.

    ``root`` is the leader-side root entry (0 / Inline / PlidRef with
    leader PLIDs — the follower translates before applying).
    """
    return (_ADVANCE_HEAD.pack(stream, seq, vsid, height)
            + _encode_length(length)
            + encode_wire_word(0 if root == 0 else root))


def decode_advance_payload(payload: bytes):
    """Returns ``(stream, seq, vsid, height, length, root_entry)``."""
    try:
        stream, seq, vsid, height = _ADVANCE_HEAD.unpack_from(payload)
    except struct.error as exc:
        raise ReplicationError("truncated ROOT_ADVANCE frame") from exc
    length, pos = _decode_length(payload, _ADVANCE_HEAD.size)
    word, pos = decode_wire_word(payload, pos)
    if pos != len(payload):
        raise ReplicationError("trailing bytes after ROOT_ADVANCE root")
    return stream, seq, vsid, height, length, word


def encode_ack_payload(stream: int, seq: int) -> bytes:
    return _ACK_BODY.pack(stream, seq)


def decode_ack_payload(payload: bytes) -> Tuple[int, int]:
    try:
        return _ACK_BODY.unpack(payload)
    except struct.error as exc:
        raise ReplicationError("truncated ACK frame") from exc


def encode_forget_payload(plid: int) -> bytes:
    return _U64.pack(plid)


def decode_forget_payload(payload: bytes) -> int:
    try:
        return _U64.unpack(payload)[0]
    except struct.error as exc:
        raise ReplicationError("truncated FORGET frame") from exc


# ----------------------------------------------------------------------
# control frames: JSON payloads

def encode_json_payload(doc: Dict) -> bytes:
    return json.dumps(doc, sort_keys=True).encode()


def decode_json_payload(payload: bytes) -> Dict:
    try:
        doc = json.loads(payload)
    except ValueError as exc:
        raise ReplicationError("undecodable control frame: %s"
                               % exc) from exc
    if not isinstance(doc, dict):
        raise ReplicationError("control frame payload is not an object")
    return doc


def hello_doc(line_bytes: int, fanout: int,
              fingerprints: Dict[int, bytes]) -> Dict:
    """The follower's handshake: geometry + what it already holds."""
    return {
        "version": PROTOCOL_VERSION,
        "line_bytes": line_bytes,
        "fanout": fanout,
        "streams": {str(s): fp.hex() for s, fp in fingerprints.items()},
    }


def welcome_doc(line_bytes: int, fanout: int,
                streams: Dict[int, int]) -> Dict:
    """The leader's handshake reply: geometry + the stream table."""
    return {
        "version": PROTOCOL_VERSION,
        "line_bytes": line_bytes,
        "fanout": fanout,
        "streams": {str(s): vsid for s, vsid in streams.items()},
    }


def check_handshake(doc: Dict, line_bytes: int, fanout: int) -> None:
    """Reject version or geometry disagreement — lines are not portable
    across different line sizes or fan-outs."""
    if doc.get("version") != PROTOCOL_VERSION:
        raise ReplicationError(
            "protocol version %r, expected %d"
            % (doc.get("version"), PROTOCOL_VERSION))
    if doc.get("line_bytes") != line_bytes or doc.get("fanout") != fanout:
        raise ReplicationError(
            "geometry mismatch: peer %r/%r vs local %d/%d"
            % (doc.get("line_bytes"), doc.get("fanout"), line_bytes, fanout))
