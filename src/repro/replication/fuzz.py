"""Seeded fault-injection episodes over a faulty replication link.

One episode is: start a leader serving stack, attach a
:class:`~repro.replication.leader.ReplicationLeader` whose *link* runs
through a :class:`~repro.testing.faults.FaultInjector` (split reads,
injected resets mid-stream), connect a follower that reconnects through
the faults, drive a seeded write script at the leader's memcached port
— then **heal the link** and require the convergence property of the
PR's acceptance criteria:

* for every stream, the follower's segment fingerprint equals the
  leader's (the cross-machine analogue of the O(1) root compare);
* the follower machine passes the strict invariant audits
  (:func:`~repro.testing.auditors.audit_machine`) after the link is
  torn down — no leaked pins, refcounts exactly account for the
  replicated DAGs;
* so does the leader machine.

The write script and the fault plan are pure functions of the episode
seed (same contract as :mod:`repro.testing.fuzz`); the verdicts are
scheduling-independent on correct code, because any prefix of deltas the
faults let through is a consistent snapshot and the post-heal resync
repairs the rest.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.server import MemcachedServer
from repro.replication.follower import ReplicationFollower
from repro.replication.leader import ReplicationLeader
from repro.segments import dag
from repro.testing.auditors import audit_machine
from repro.testing.faults import (
    CONN_RESET,
    READ_SPLIT,
    FaultInjector,
    FaultPlan,
)

CRLF = b"\r\n"

#: Link-fault rates for a replication episode: frequent split reads and
#: resets torn into the delta stream itself.
EPISODE_RATES = {CONN_RESET: 0.08, READ_SPLIT: 0.3}

EPISODE_TIMEOUT = 60.0

#: How long the healed link gets to converge before the episode fails.
CONVERGE_TIMEOUT = 20.0


@dataclass
class ReplicationEpisodeConfig:
    """Shape of one faulty-link episode (all derived state is seeded)."""

    ops: int = 60
    key_space: int = 10
    value_pool: int = 5
    shards: int = 2
    lag_window: int = 8
    rates: Optional[Dict[str, float]] = None


def _derive(seed: int, label: str) -> int:
    digest = hashlib.blake2b(b"%d/%s" % (seed, label.encode()),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _build_script(seed: int,
                  cfg: ReplicationEpisodeConfig) -> List[Tuple[str, bytes, bytes]]:
    """The episode's write script: (kind, key, value) triples.

    Values come from a small pool, so overwrites frequently re-create
    content the follower already holds — exercising both the FORGET path
    (old trees die) and dedup-on-arrival (new trees share lines).
    """
    rng = random.Random(_derive(seed, "repl-script"))
    script: List[Tuple[str, bytes, bytes]] = []
    for _ in range(cfg.ops):
        key = b"rk%02d" % rng.randrange(cfg.key_space)
        if rng.random() < 0.85:
            value = b"pooled-value-%02d" % rng.randrange(cfg.value_pool)
            script.append(("set", key, value))
        else:
            script.append(("delete", key, b""))
    return script


def script_digest(script: List[Tuple[str, bytes, bytes]]) -> str:
    material = b";".join(b"%s %s %s" % (kind.encode(), key, value)
                         for kind, key, value in script)
    return hashlib.blake2b(material, digest_size=6).hexdigest()


async def _drive_script(host: str, port: int,
                        script: List[Tuple[str, bytes, bytes]]) -> List[str]:
    """Apply the write script over one connection; returns failures."""
    failures: List[str] = []
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for kind, key, value in script:
            if kind == "set":
                writer.write(b"set %s 0 0 %d\r\n%s\r\n"
                             % (key, len(value), value))
            else:
                writer.write(b"delete %s\r\n" % key)
            await writer.drain()
            line = await reader.readline()
            if kind == "set" and line != b"STORED" + CRLF:
                failures.append("set %r -> %r" % (key, line))
            elif kind == "delete" and line not in (b"DELETED" + CRLF,
                                                   b"NOT_FOUND" + CRLF):
                failures.append("delete %r -> %r" % (key, line))
        writer.write(b"quit\r\n")
        await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    return failures


def _fingerprints(leader: ReplicationLeader) -> Dict[int, bytes]:
    return {stream: dag.segment_fingerprint(leader.machine, vsid)
            for stream, vsid in leader.streams().items()}


async def _wait_converged(leader: ReplicationLeader,
                          follower: ReplicationFollower,
                          timeout: float) -> bool:
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if _fingerprints(leader) == follower.fingerprints():
            return True
        await asyncio.sleep(0.02)
    return False


@dataclass
class ReplicationEpisodeResult:
    seed: int
    ok: bool
    trace: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    #: debug data (timing-dependent under faults, never part of trace)
    leader_metrics: Dict = field(default_factory=dict)
    follower_metrics: Dict = field(default_factory=dict)


async def _run_episode(seed: int, cfg: ReplicationEpisodeConfig
                       ) -> ReplicationEpisodeResult:
    rates = dict(EPISODE_RATES)
    if cfg.rates:
        rates.update(cfg.rates)
    plan = FaultPlan(seed, rates)
    injector = FaultInjector(plan)
    script = _build_script(seed, cfg)

    trace = ["replication episode seed=%d ops=%d keys=%d pool=%d "
             "shards=%d lag_window=%d"
             % (seed, cfg.ops, cfg.key_space, cfg.value_pool,
                cfg.shards, cfg.lag_window)]
    trace.extend(plan.describe())
    trace.append("script=%s" % script_digest(script))

    failures: List[str] = []
    server = MemcachedServer(port=0, shard_count=cfg.shards)
    await server.start()
    leader = ReplicationLeader(server.router, lag_window=cfg.lag_window,
                               heartbeat_interval=None, injector=injector)
    await leader.start()
    follower = ReplicationFollower("127.0.0.1", leader.port,
                                   reconnect_delay=0.01)
    await follower.start()
    try:
        failures.extend(await asyncio.wait_for(
            _drive_script("127.0.0.1", server.port, script),
            timeout=EPISODE_TIMEOUT))
        await asyncio.wait_for(server.router.drain(),
                               timeout=EPISODE_TIMEOUT)
        # heal the link: faults stop firing for every later read/drain;
        # a broken session reconnects cleanly and resyncs
        leader.injector = None
        converged = await _wait_converged(follower=follower, leader=leader,
                                          timeout=CONVERGE_TIMEOUT)
        trace.append("converged=%s" % ("yes" if converged else "NO"))
        if not converged:
            failures.append(
                "follower never converged after heal: leader=%r follower=%r"
                % ({s: fp.hex() for s, fp in _fingerprints(leader).items()},
                   {s: fp.hex()
                    for s, fp in follower.fingerprints().items()}))
    except asyncio.TimeoutError:
        failures.append("episode timed out after %.0fs" % EPISODE_TIMEOUT)
        trace.append("converged=TIMEOUT")
    finally:
        await follower.stop()
        await leader.stop()
        await server.shutdown()

    audit = audit_machine(follower.machine, strict=True)
    failures.extend("follower audit: " + f for f in audit.failures)
    leader_audit = audit_machine(server.router.machine, strict=True)
    failures.extend("leader audit: " + f for f in leader_audit.failures)
    trace.append("audits=%s" % ("ok" if audit.ok and leader_audit.ok
                                else "FAILED"))

    ok = not failures
    trace.append("result=%s" % ("ok" if ok else "FAILED"))
    return ReplicationEpisodeResult(
        seed=seed, ok=ok, trace=trace, failures=failures,
        leader_metrics=leader.metrics.snapshot(),
        follower_metrics=follower.metrics.snapshot())


def episode_seed(seed: int, index: int) -> int:
    """Episode 0 replays from the run seed itself (same contract as
    :func:`repro.testing.fuzz.episode_seed`)."""
    return seed if index == 0 else _derive(seed, "repl-episode/%d" % index)


@dataclass
class ReplicationFuzzReport:
    """Outcome of a whole replication fuzz run."""

    episodes: List[ReplicationEpisodeResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.episodes)

    @property
    def failed_seeds(self) -> List[int]:
        return [e.seed for e in self.episodes if not e.ok]

    def render(self, verbose: bool = False) -> str:
        lines: List[str] = []
        for result in self.episodes:
            if verbose or not result.ok:
                lines.extend(result.trace)
                lines.extend("  " + f for f in result.failures)
            else:
                lines.append("%s %s" % (result.trace[0], result.trace[-1]))
        lines.append("replication fuzz episodes=%d ok=%d failed=%d"
                     % (len(self.episodes),
                        sum(1 for e in self.episodes if e.ok),
                        len(self.failed_seeds)))
        for seed in self.failed_seeds:
            lines.append("reproduce: repro fuzz --profile replication "
                         "--episodes 1 --seed %d" % seed)
        return "\n".join(lines)


def run_episode(seed: int, cfg: Optional[ReplicationEpisodeConfig] = None
                ) -> ReplicationEpisodeResult:
    """One episode, synchronously (test entry point)."""
    return asyncio.run(_run_episode(seed, cfg or ReplicationEpisodeConfig()))


def run_fuzz(episodes: int = 5, seed: int = 0,
             cfg: Optional[ReplicationEpisodeConfig] = None
             ) -> ReplicationFuzzReport:
    """Run ``episodes`` seeded faulty-link episodes."""
    cfg = cfg or ReplicationEpisodeConfig()
    report = ReplicationFuzzReport()
    for index in range(episodes):
        report.episodes.append(
            asyncio.run(_run_episode(episode_seed(seed, index), cfg)))
    return report
