"""Replication accounting: what dedup-aware shipping actually saved.

The interesting numbers mirror the paper's DRAM-traffic argument at the
wire level: a content-addressed replica only needs lines it has never
seen, so the ratio of shipped bytes to the logical bytes written is the
replication analogue of the dedup ratio — and ``lines_deduped_on_arrival``
counts the installs that found their content already present (re-sent
after a resync, or shared with another stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ReplicationMetrics:
    """Counters for one replication endpoint (leader or follower)."""

    # wire accounting
    bytes_sent: int = 0
    bytes_received: int = 0
    #: payload bytes of LINE frames (the delta content itself)
    line_bytes_shipped: int = 0
    #: logical bytes of the values whose commits were replicated — what a
    #: naive value-shipping protocol would have put on the wire
    logical_bytes: int = 0

    # line accounting
    lines_shipped: int = 0
    #: installs whose content was already present (follower side)
    lines_deduped_on_arrival: int = 0
    lines_installed: int = 0
    seed_lines: int = 0

    # protocol events
    root_advances: int = 0
    acks: int = 0
    full_syncs: int = 0
    resets: int = 0
    forgets: int = 0
    nacks: int = 0
    heartbeats: int = 0
    reconnects: int = 0

    # lag accounting (leader side): commits observed from the router vs
    # commits shipped/acknowledged, per stream
    commits_observed: int = 0
    commits_shipped: int = 0
    lag_by_stream: Dict[int, int] = field(default_factory=dict)

    def observe_lag(self, stream: int, lag: int) -> None:
        self.lag_by_stream[stream] = lag

    @property
    def max_lag(self) -> int:
        """Worst per-stream replication lag, in commits."""
        return max(self.lag_by_stream.values(), default=0)

    @property
    def dedup_ratio(self) -> float:
        """Fraction of arriving lines that were already present."""
        total = self.lines_installed
        return self.lines_deduped_on_arrival / total if total else 0.0

    def snapshot(self) -> Dict:
        """JSON-safe snapshot (CLI status output, fuzz traces, tests)."""
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "line_bytes_shipped": self.line_bytes_shipped,
            "logical_bytes": self.logical_bytes,
            "lines_shipped": self.lines_shipped,
            "lines_deduped_on_arrival": self.lines_deduped_on_arrival,
            "lines_installed": self.lines_installed,
            "seed_lines": self.seed_lines,
            "root_advances": self.root_advances,
            "acks": self.acks,
            "full_syncs": self.full_syncs,
            "resets": self.resets,
            "forgets": self.forgets,
            "nacks": self.nacks,
            "heartbeats": self.heartbeats,
            "reconnects": self.reconnects,
            "commits_observed": self.commits_observed,
            "commits_shipped": self.commits_shipped,
            "max_lag": self.max_lag,
            "lag_by_stream": {str(s): lag
                              for s, lag in self.lag_by_stream.items()},
        }
