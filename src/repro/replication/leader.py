"""The replication leader: tail committed roots, ship structural deltas.

The leader sits next to a :class:`~repro.net.router.ShardRouter` and
replicates each shard backend's key-value segment as one *stream*
(streams are keyed by shard index, not VSID — ``flush_all`` swaps the
backend's segment, and the stream follows the backend). It learns about
committed root advances through the router's ``commit_listeners`` hook,
so tailing costs one synchronous callback per applied batch; consecutive
commits to the same stream naturally coalesce, because a delta is always
computed against the stream's *latest* root.

Per follower session the leader keeps:

* ``known`` — leader PLIDs the follower holds. The invariant is
  *membership implies the follower holds (and pins) the line's entire
  subtree*: a line is only added after every line it references was
  shipped or already known, and the follower's install takes a counted
  reference. Deltas prune their reachability walk at known PLIDs.
* ``forgets`` — PLIDs the leader has deallocated since the last ship.
  A store ``dealloc_listener`` prunes ``known`` the moment a line dies,
  because its PLID can be *reused* for different content; the FORGET
  frames are flushed to the follower before the next delta so a reused
  PLID is never interpreted against a stale translation.
* lag bookkeeping — commits observed minus commits acknowledged, per
  stream. A follower farther behind than ``lag_window`` is resynced:
  RESET (the follower drops its translation map), then a full snapshot
  sync of every stream. The same fallback answers a NACK — a follower
  reporting a missing line is evidence the incremental state diverged,
  and a full sync against an empty known set repairs it.

Delta safety: the stream's root entry is retained for the duration of
compute-and-send, so a commit racing with the ship cannot deallocate a
line the delta references. Frames for one ship are serialized into a
single buffer synchronously — no event-loop yield between reading the
store and framing the bytes.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Set

from repro.errors import ReplicationError
from repro.net.router import ShardRouter
from repro.replication import wire
from repro.replication.delta import compute_delta
from repro.replication.metrics import ReplicationMetrics
from repro.segments import dag

READ_CHUNK = 1 << 16


class FollowerSession:
    """Per-connection replication state on the leader."""

    def __init__(self, leader: "ReplicationLeader", writer,
                 scope: int) -> None:
        self.leader = leader
        self.writer = writer
        self.scope = scope
        #: leader PLIDs the follower holds (whole pinned subtrees)
        self.known: Set[int] = set()
        #: deallocated PLIDs to flush as FORGET before the next delta
        self.forgets: List[int] = []
        self.acked_seq: Dict[int, int] = {}
        self.shipped_seq: Dict[int, int] = {}
        self.last_reset_seq: Dict[int, int] = {}
        #: streams with commits not yet shipped
        self.dirty: Set[int] = set()
        self.needs_resync = False
        self.wake = asyncio.Event()

    def mark_dirty(self, stream: int) -> None:
        self.dirty.add(stream)
        self.wake.set()

    def on_dealloc(self, plid: int) -> None:
        """Store callback: a line died; its PLID may be reused.

        Under epoch-deferred reclamation this fires at *drain* time,
        not when the count reaches zero — which is exactly what the
        FORGET protocol needs: a deferred-dead line's slot cannot be
        reused until it actually deallocates, so a PLID in ``known``
        either still names that content or has been FORGOTten here
        first. The router's ``drain()`` quiesces the reclaimer, so
        forgets are flushed before any checkpoint or teardown.
        """
        if plid in self.known:
            self.known.discard(plid)
            self.forgets.append(plid)

    def lag(self, stream: int) -> int:
        commit_seq = self.leader.commit_seq.get(stream, 0)
        return commit_seq - self.acked_seq.get(stream, 0)


class ReplicationLeader:
    """Serves the replication wire protocol next to a shard router."""

    def __init__(self, router: ShardRouter,
                 host: str = "127.0.0.1", port: int = 0,
                 lag_window: int = 256,
                 heartbeat_interval: Optional[float] = 1.0,
                 metrics: Optional[ReplicationMetrics] = None,
                 injector=None,
                 recorder=None) -> None:
        self.router = router
        self.machine = router.machine
        self.host = host
        self.port = port
        self.lag_window = max(1, lag_window)
        self.heartbeat_interval = heartbeat_interval
        self.metrics = metrics if metrics is not None \
            else ReplicationMetrics()
        #: trace recorder; defaults to the router's, so one trace holds
        #: request → commit batch → replication ship/advance spans
        self.recorder = recorder if recorder is not None \
            else router.recorder
        # the leader's wire accounting joins the router's registry, so
        # one exposition covers serving and replication together
        if "repro_replication_bytes_sent" not in router.registry:
            from repro.obs.adapters import register_replication_metrics
            register_replication_metrics(router.registry, self.metrics)
        #: optional :class:`repro.testing.faults.FaultInjector` applied
        #: to the replication link itself (split reads/writes, injected
        #: resets) — the faulty-link fuzz profile drives this.
        self.injector = injector
        #: commits applied per stream since leader start (ROOT_ADVANCE seq)
        self.commit_seq: Dict[int, int] = {}
        self._sessions: List[FollowerSession] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._session_tasks: set = set()

    # ------------------------------------------------------------------
    # lifecycle

    def streams(self) -> Dict[int, int]:
        """The stream table: shard index → current backend VSID."""
        out = {}
        for shard, server in enumerate(self.router.servers):
            kvp = getattr(server, "kvp", None)
            if kvp is not None:
                out[shard] = kvp.vsid
        return out

    async def start(self) -> None:
        """Hook the router, then accept followers.

        The commit listener is leader-wide (one callback per applied
        batch, fanned out to sessions); dealloc listeners are
        **per-session** — attached when a follower finishes its
        handshake, detached in the session's teardown path — so a fleet
        of reconnecting followers cannot accumulate dead callbacks on
        the store's hot dealloc path.
        """
        self.router.commit_listeners.append(self._on_commit)
        self._server = await asyncio.start_server(
            self._serve_follower, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close follower connections and unhook the router/store."""
        if self._server is not None:
            self._server.close()
        for task in list(self._session_tasks):
            task.cancel()
        if self._session_tasks:
            await asyncio.gather(*self._session_tasks,
                                 return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        listeners = self.router.commit_listeners
        if self._on_commit in listeners:
            listeners.remove(self._on_commit)
        # session teardown already detached these; sweep defensively so
        # stop() leaves the store clean even after an unwound handshake
        for session in list(self._sessions):
            self._detach_session(session)

    def _detach_session(self, session: "FollowerSession") -> None:
        """Deregister one session everywhere it was hooked in."""
        if session in self._sessions:
            self._sessions.remove(session)
        dealloc = self.machine.mem.store.dealloc_listeners
        if session.on_dealloc in dealloc:
            dealloc.remove(session.on_dealloc)

    # ------------------------------------------------------------------
    # router / store hooks (synchronous, never block)

    def _on_commit(self, shard: int, vsid: int, commits: int) -> None:
        self.commit_seq[shard] = self.commit_seq.get(shard, 0) + commits
        self.metrics.commits_observed += commits
        for session in self._sessions:
            session.mark_dirty(shard)

    # ------------------------------------------------------------------
    # follower connections

    async def _serve_follower(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._session_tasks.add(task)
        injector = self.injector
        scope = injector.next_connection() if injector is not None else -1
        session = FollowerSession(self, writer, scope)
        sender: Optional[asyncio.Task] = None
        try:
            decoder = wire.LengthPrefixedDecoder()
            hello = await self._read_hello(reader, decoder, scope)
            mem = self.machine.mem
            wire.check_handshake(hello, mem.line_bytes, mem.fanout)
            streams = self.streams()
            self._send(session, wire.WELCOME, wire.encode_json_payload(
                wire.welcome_doc(mem.line_bytes, mem.fanout, streams)))
            self._sessions.append(session)
            self.machine.mem.store.dealloc_listeners.append(
                session.on_dealloc)
            follower_fps = {int(s): bytes.fromhex(fp)
                            for s, fp in hello.get("streams", {}).items()}
            self._initial_sync(session, streams, follower_fps)
            await self._drain(session)
            sender = asyncio.ensure_future(self._sender(session))
            await self._receiver(session, reader, decoder, scope)
        except (ReplicationError, wire.FrameTooLargeError) as exc:
            try:
                self._send(session, wire.ERROR, wire.encode_json_payload(
                    {"error": str(exc)}))
                await self._drain(session)
            except (ConnectionError, OSError):
                pass
        except (asyncio.CancelledError, asyncio.IncompleteReadError,
                ConnectionError, OSError):
            pass
        finally:
            if sender is not None:
                sender.cancel()
                try:
                    await sender
                except (asyncio.CancelledError, ConnectionError, OSError):
                    pass
            self._detach_session(session)
            self._session_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_hello(self, reader, decoder, scope) -> Dict:
        while True:
            frames = decoder.feed(await self._read(reader, scope))
            if frames:
                ftype, payload = frames[0]
                if ftype != wire.HELLO:
                    raise ReplicationError(
                        "expected HELLO, got %s"
                        % wire.FRAME_NAMES.get(ftype, ftype))
                return wire.decode_json_payload(payload)

    async def _read(self, reader, scope: int) -> bytes:
        injector = self.injector
        if injector is not None:
            held = injector.held_bytes(scope)
            if held:
                return held
        data = await reader.read(READ_CHUNK)
        if not data:
            raise asyncio.IncompleteReadError(b"", None)
        if injector is not None:
            data = injector.on_read(scope, data)
        return data

    # ------------------------------------------------------------------
    # shipping

    def _send(self, session: FollowerSession, ftype: int,
              payload: bytes) -> None:
        frame = wire.encode_frame(ftype, payload)
        self.metrics.bytes_sent += len(frame)
        session.writer.write(frame)

    async def _drain(self, session: FollowerSession) -> None:
        injector = self.injector
        if injector is not None:
            # model a link drop: tear the connection down mid-stream
            injector.after_dispatch(session.scope, b"repl")
        await session.writer.drain()

    def _initial_sync(self, session: FollowerSession,
                      streams: Dict[int, int],
                      follower_fps: Dict[int, bytes]) -> None:
        """Seed streams the follower already holds; full-sync the rest."""
        store = self.machine.mem.store
        for stream in sorted(streams):
            vsid = streams[stream]
            entry = self.machine.segmap.entry(vsid)
            fp = follower_fps.get(stream)
            if fp is not None and fp == dag.segment_fingerprint(
                    self.machine, vsid):
                plids = [plid for plid, _ in
                         dag.walk_lines(store, entry.root)]
                self._send(session, wire.SEED,
                           wire.encode_seed_payload(stream, plids))
                session.known.update(plids)
                self.metrics.seed_lines += len(plids)
                seq = self.commit_seq.get(stream, 0)
                self._ship_advance(session, stream, vsid, entry, seq)
            else:
                self._ship_full_sync(session, stream, vsid)

    def _ship_full_sync(self, session: FollowerSession, stream: int,
                        vsid: int) -> None:
        self._send(session, wire.FULL_SYNC,
                   wire.encode_json_payload({"stream": stream}))
        self.metrics.full_syncs += 1
        self._ship_delta(session, stream, vsid)

    def _ship_delta(self, session: FollowerSession, stream: int,
                    vsid: int) -> None:
        """Frame FORGETs, the delta's lines, and the root advance."""
        recorder = self.recorder
        span = None
        if recorder.enabled:
            span = recorder.begin("ship_delta", stream=stream, vsid=vsid)
        self._flush_forgets(session)
        store = self.machine.mem.store
        entry = self.machine.segmap.entry(vsid)
        # retained across compute-and-frame: a racing commit cannot
        # deallocate anything this delta references
        dag.retain_entry(self.machine.mem, entry.root)
        lines = wire_bytes = 0
        try:
            delta = compute_delta(store, stream, vsid, entry.root,
                                  entry.height, entry.length, session.known)
            for plid, line in delta.lines:
                payload = wire.encode_line_payload(plid, line)
                self._send(session, wire.LINE, payload)
                session.known.add(plid)
                self.metrics.lines_shipped += 1
                self.metrics.line_bytes_shipped += len(payload)
                lines += 1
                wire_bytes += len(payload)
            seq = self.commit_seq.get(stream, 0)
            self._ship_advance(session, stream, vsid, entry, seq, span)
        finally:
            dag.release_entry(self.machine.mem, entry.root)
            if span is not None:
                recorder.end(span, lines=lines, wire_bytes=wire_bytes)

    def _ship_advance(self, session: FollowerSession, stream: int,
                      vsid: int, entry, seq: int,
                      parent: Optional[int] = None) -> None:
        recorder = self.recorder
        span = None
        if recorder.enabled:
            # correlate with commit_batch spans via (vsid, seq): the
            # batch span records the vsid it advanced, the leader
            # numbers those commits per stream
            span = recorder.begin("root_advance", parent=parent,
                                  stream=stream, seq=seq, vsid=vsid)
        self._send(session, wire.ROOT_ADVANCE, wire.encode_advance_payload(
            stream, seq, vsid, entry.root, entry.height, entry.length))
        session.shipped_seq[stream] = seq
        self.metrics.root_advances += 1
        self.metrics.commits_shipped = max(self.metrics.commits_shipped, seq)
        if span is not None:
            recorder.end(span)

    def _flush_forgets(self, session: FollowerSession) -> None:
        forgets, session.forgets = session.forgets, []
        for plid in forgets:
            self._send(session, wire.FORGET,
                       wire.encode_forget_payload(plid))
            self.metrics.forgets += 1

    def _resync(self, session: FollowerSession) -> None:
        """Correctness backstop: drop everything, ship full snapshots."""
        session.known.clear()
        session.forgets.clear()
        session.needs_resync = False
        self._send(session, wire.RESET,
                   wire.encode_json_payload({"reason": "resync"}))
        self.metrics.resets += 1
        for stream, vsid in sorted(self.streams().items()):
            session.last_reset_seq[stream] = self.commit_seq.get(stream, 0)
            self._ship_full_sync(session, stream, vsid)
        session.dirty.clear()

    # ------------------------------------------------------------------
    # per-session tasks

    async def _sender(self, session: FollowerSession) -> None:
        """Ship deltas when streams go dirty; heartbeat when idle."""
        try:
            while True:
                try:
                    if self.heartbeat_interval is None:
                        await session.wake.wait()
                    else:
                        await asyncio.wait_for(session.wake.wait(),
                                               self.heartbeat_interval)
                except asyncio.TimeoutError:
                    self._send(session, wire.HEARTBEAT,
                               wire.encode_json_payload(
                                   {"t": self.metrics.heartbeats}))
                    self.metrics.heartbeats += 1
                    await self._drain(session)
                    continue
                session.wake.clear()
                if session.needs_resync or self._too_far_behind(session):
                    self._resync(session)
                    await self._drain(session)
                    continue
                dirty, session.dirty = sorted(session.dirty), set()
                streams = self.streams()
                for stream in dirty:
                    if stream in streams:
                        self._ship_delta(session, stream, streams[stream])
                await self._drain(session)
        except (ConnectionError, OSError):
            # the link died under the sender (possibly an injected
            # reset). Abort the transport so the receiver side of this
            # session unwinds too — a half-dead session would otherwise
            # hold the follower on a silent, stale connection forever.
            transport = session.writer.transport
            if transport is not None:
                transport.abort()
            raise

    def _too_far_behind(self, session: FollowerSession) -> bool:
        for stream in self.commit_seq:
            lag = session.lag(stream)
            self.metrics.observe_lag(stream, lag)
            if lag > self.lag_window:
                # don't re-reset until the window has passed again
                since_reset = self.commit_seq.get(stream, 0) \
                    - session.last_reset_seq.get(stream, 0)
                if since_reset > self.lag_window:
                    return True
        return False

    async def _receiver(self, session: FollowerSession, reader,
                        decoder, scope: int) -> None:
        """Process ACK / NACK / HEARTBEAT frames from the follower."""
        while True:
            for ftype, payload in decoder.feed(
                    await self._read(reader, scope)):
                if ftype == wire.ACK:
                    stream, seq = wire.decode_ack_payload(payload)
                    session.acked_seq[stream] = max(
                        session.acked_seq.get(stream, 0), seq)
                    self.metrics.acks += 1
                    self.metrics.observe_lag(stream, session.lag(stream))
                elif ftype == wire.NACK:
                    wire.decode_json_payload(payload)
                    self.metrics.nacks += 1
                    session.needs_resync = True
                    session.wake.set()
                elif ftype == wire.HEARTBEAT:
                    self.metrics.heartbeats += 1
                elif ftype == wire.ERROR:
                    doc = wire.decode_json_payload(payload)
                    raise ReplicationError(
                        "follower error: %s" % doc.get("error"))
                else:
                    raise ReplicationError(
                        "unexpected frame %s from follower"
                        % wire.FRAME_NAMES.get(ftype, ftype))


__all__ = ["ReplicationLeader", "FollowerSession"]
