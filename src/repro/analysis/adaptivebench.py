"""`repro bench adaptive` — phase-shifting serving, every commit mode.

One deterministic loadgen profile shifts through three phases —
read-heavy snapshot traffic, a delete-churning write storm, then a
skewed hot-key read-modify-write mix — and runs end to end against
four otherwise-identical servers: the three static commit modes
(``cas``, ``merge``, ``bulk``) and ``adaptive`` (repro.net.adaptive).
The static modes are the before-picture: a server tuned for one phase
gives the storm away in another (per-op CAS pays a commit per set;
merge and static bulk split their runs at every read fence and
delete/cas gap, so the storm commits in dribbles). The adaptive server
detects the storm from its own window signals, enters bulk with the
storm-staging posture (wide batches, key-disjoint fences and writes
commuting around the staged run, reclaim deferred), then drops to
per-op CAS when the hot-key RMW mix arrives. It must beat the *best*
static mode end-to-end (``--check`` floors the ratio) while staying
within 0.9× of each phase's best static mode, and the report must
show at least one observed commit-mode switch per phase boundary —
the controller actually reacting to the shift, not a lucky static
choice.

Wall-clock throughput on a shared host is noisy (±10% between
identical runs), so every mode runs in its **own subprocess** (cold
allocator, symmetric warmup) and the reported result per mode is the
**median of ``reps`` runs** by end-to-end throughput.

Every run is checked for client-side consistency (the loadgen's
sequential oracle and shared-CAS legality); cross-mode *state*
identity is pinned separately by tests/test_adaptive_differential.py,
which replays identical schedules without racing CAS clients.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from typing import Dict, List

from repro.net.adaptive import AdaptiveConfig
from repro.net.loadgen import PhaseSpec, run_loadgen
from repro.net.server import MemcachedServer

DEFAULT_OUT = "benchmarks/out/adaptive.json"

#: The modes raced over the identical profile; adaptive must win.
MODES = ("cas", "merge", "bulk", "adaptive")

#: Workload geometry. The storm carries the largest op share because
#: ingest bursts are where commit strategy dominates wall time; the
#: hot-key phase is read-modify-write over a skewed key population
#: (``gets``+``cas`` pairs), the mix where batching machinery buys
#: nothing and per-op CAS is cheapest. Controller windows are short
#: relative to a phase so a shift is detected within a few batches
#: of the boundary.
FULL_GEOMETRY = dict(shards=4, clients=6, pipeline=48,
                     read_ops=800, storm_ops=3200, hot_ops=800,
                     key_space=192, value_bytes=128, storm_del=0.25,
                     storm_get=0.12, queue_depth=2048, batch_limit=16,
                     skew=5.0, window=3, dwell=2, seed=7, reps=3)
SMOKE_GEOMETRY = dict(shards=4, clients=4, pipeline=48,
                      read_ops=300, storm_ops=2000, hot_ops=600,
                      key_space=192, value_bytes=128, storm_del=0.25,
                      storm_get=0.12, queue_depth=2048, batch_limit=16,
                      skew=5.0, window=3, dwell=2, seed=7, reps=3)


def _phases(geo: Dict) -> List[PhaseSpec]:
    return [
        PhaseSpec("read-heavy", ops=geo["read_ops"], get_ratio=0.92,
                  set_bias=0.7, entropy=True),
        PhaseSpec("write-storm", ops=geo["storm_ops"],
                  get_ratio=geo["storm_get"],
                  set_bias=0.97, del_ratio=geo["storm_del"],
                  entropy=True),
        PhaseSpec("hot-key", ops=geo["hot_ops"], get_ratio=0.35,
                  set_bias=0.1, skew=geo["skew"], entropy=True),
    ]


async def _run_mode(mode: str, geo: Dict) -> Dict:
    server = MemcachedServer(
        port=0, shard_count=geo["shards"],
        queue_depth=geo["queue_depth"], batch_limit=geo["batch_limit"],
        commit_mode=mode,
        adaptive_config=AdaptiveConfig(window=geo["window"],
                                       dwell_epochs=geo["dwell"]))
    await server.start()
    try:
        report = await run_loadgen(
            "127.0.0.1", server.port, clients=geo["clients"],
            ops_per_client=0, pipeline_depth=geo["pipeline"],
            key_space=geo["key_space"], value_bytes=geo["value_bytes"],
            seed=geo["seed"], phases=_phases(geo))
        await server.router.drain()
        controller = server.router.controller
        out = {
            "mode": mode,
            "ops": report.ops,
            "wall_seconds": round(report.wall_seconds, 3),
            "ops_per_second": round(report.ops_per_second, 1),
            "consistent": report.consistent,
            "errors": report.errors,
            "phases": report.phases,
        }
        if mode == "adaptive":
            out["switches"] = list(controller.switch_log)
            out["controller"] = controller.snapshot()
        return out
    finally:
        await server.shutdown()


def run_mode_once(mode: str, geo: Dict) -> Dict:
    """One end-to-end run of ``mode``, cycle collection kept out of
    the timed window (symmetric across modes, like reclaimbench)."""
    import gc

    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return asyncio.run(_run_mode(mode, geo))
    finally:
        if gc_was_enabled:
            gc.enable()


def _run_mode_isolated(mode: str, geo: Dict, reps: int) -> Dict:
    """``reps`` subprocess runs of ``mode``; median by throughput.

    Each rep is a fresh interpreter: same cold allocator, content
    index and import state for every mode, and no cross-mode heap
    pollution — the difference that remains is the commit strategy.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in sys.path if p] +
        [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p])
    runs = []
    for _ in range(max(1, reps)):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.adaptivebench",
             "--one-mode", mode, "--geometry", json.dumps(geo)],
            capture_output=True, env=env)
        if proc.returncode != 0:
            raise RuntimeError(
                "adaptive bench subprocess (mode=%s) failed:\n%s"
                % (mode, proc.stderr.decode("utf-8", "replace")))
        runs.append(json.loads(proc.stdout.decode("utf-8")))
    runs.sort(key=lambda r: r["ops_per_second"])
    median = runs[len(runs) // 2]
    median["reps"] = len(runs)
    median["ops_per_second_runs"] = [r["ops_per_second"] for r in runs]
    # phase-level noise is worse than end-to-end noise (short phases):
    # report each phase's throughput as its own median across reps —
    # op counts and section structure are deterministic, so sections
    # stay comparable; only the timing fields are summarized
    for idx, section in enumerate(median["phases"]):
        speeds = sorted(r["phases"][idx]["ops_per_second"] for r in runs)
        section["ops_per_second"] = speeds[len(speeds) // 2]
    return median


def run_adaptive_bench(smoke: bool = False, reps: int = 0,
                       isolate: bool = True) -> Dict:
    """Race all four modes over the identical phase-shifting profile.

    ``reps`` overrides the geometry's median-of-N count (0 keeps it);
    ``isolate=False`` runs in-process (single rep) — test-suite use.
    """
    geo = dict(SMOKE_GEOMETRY if smoke else FULL_GEOMETRY)
    if reps:
        geo["reps"] = reps
    results = {}
    for mode in MODES:
        results[mode] = (_run_mode_isolated(mode, geo, geo["reps"])
                         if isolate else run_mode_once(mode, geo))

    statics = [m for m in MODES if m != "adaptive"]
    best_static = max(statics,
                      key=lambda m: results[m]["ops_per_second"])
    adaptive = results["adaptive"]
    end_to_end = round(
        adaptive["ops_per_second"]
        / max(1e-9, results[best_static]["ops_per_second"]), 3)

    per_phase = {}
    for idx, section in enumerate(adaptive["phases"]):
        best = max(results[m]["phases"][idx]["ops_per_second"]
                   for m in statics)
        per_phase[section["name"]] = {
            "adaptive_ops_per_second": section["ops_per_second"],
            "best_static_ops_per_second": best,
            "best_static_mode": max(
                statics,
                key=lambda m: results[m]["phases"][idx]["ops_per_second"]),
            "ratio": round(section["ops_per_second"] / max(1e-9, best), 3),
        }

    return {
        "bench": "adaptive",
        "tier": "smoke" if smoke else "full",
        "geometry": geo,
        "modes": results,
        "best_static": best_static,
        "end_to_end_ratio": end_to_end,
        "per_phase": per_phase,
        "boundary_switches": _boundary_switches(adaptive),
        "mode_sequence": [s["to"] for s in adaptive.get("switches", ())],
    }


def _boundary_switches(result: Dict) -> List[int]:
    """Observed mode switches per phase boundary: a switch belongs to
    boundary ``k`` when it fired after phase ``k`` began (controller
    and loadgen share one monotonic clock domain)."""
    phases = result["phases"]
    starts = [section["t_start"] for section in phases]
    counts = [0] * (len(phases) - 1)
    for switch in result.get("switches", ()):
        for k in range(len(phases) - 1, 0, -1):
            if switch["t"] >= starts[k]:
                counts[k - 1] += 1
                break
    return counts


def check_floor(report: Dict, floor: float) -> List[str]:
    """Floor violations (empty = pass): adaptive end-to-end throughput
    must clear ``floor``× the best static mode, no phase may fall below
    0.9× that phase's best static mode, every phase boundary must show
    at least one observed mode switch, and every mode's run must be
    client-consistent."""
    problems = []
    if report["end_to_end_ratio"] < floor:
        problems.append(
            "adaptive end-to-end %.3fx of best static (%s), below the "
            "%.2fx floor" % (report["end_to_end_ratio"],
                             report["best_static"], floor))
    for name, entry in report["per_phase"].items():
        if entry["ratio"] < 0.9:
            problems.append(
                "phase %s: adaptive at %.3fx of best static (%s), below "
                "0.9x" % (name, entry["ratio"],
                          entry["best_static_mode"]))
    for k, count in enumerate(report["boundary_switches"]):
        if count < 1:
            problems.append(
                "no mode switch observed at phase boundary %d" % (k + 1))
    for mode, result in report["modes"].items():
        if not result["consistent"]:
            problems.append("%s run failed consistency checks" % mode)
    return problems


def render(report: Dict) -> str:
    """Human-readable cross-mode table."""
    from repro.analysis.reporting import format_table

    phase_names = [s["name"] for s in report["modes"]["cas"]["phases"]]
    rows = []
    for mode in MODES:
        result = report["modes"][mode]
        row = [mode, result["ops_per_second"]]
        row.extend(result["phases"][i]["ops_per_second"]
                   for i in range(len(phase_names)))
        row.append("yes" if result["consistent"] else "NO")
        rows.append(row)
    rows.append(["adaptive/best static",
                 "%.2fx" % report["end_to_end_ratio"]]
                + ["%.2fx" % report["per_phase"][name]["ratio"]
                   for name in phase_names] + [""])
    rows.append(["switches at boundaries", ""]
                + [""] + [str(c) for c in report["boundary_switches"]]
                + [""])
    return format_table(
        ["mode", "ops/s"] + phase_names + ["consistent"], rows,
        title="adaptive serving (%s tier, best static: %s, modes %s)"
        % (report["tier"], report["best_static"],
           "->".join(["merge"] + report["mode_sequence"])))


if __name__ == "__main__":
    # subprocess entry point for per-mode isolation (see
    # _run_mode_isolated); prints the mode's result dict as JSON
    import argparse

    parser = argparse.ArgumentParser(prog="adaptivebench")
    parser.add_argument("--one-mode", required=True, choices=MODES)
    parser.add_argument("--geometry", required=True,
                        help="geometry dict as JSON")
    cli = parser.parse_args()
    print(json.dumps(run_mode_once(cli.one_mode,
                                   json.loads(cli.geometry))))
