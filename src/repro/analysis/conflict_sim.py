"""Empirical conflict measurement for the §5.1.1 analysis.

The closed-form model prices the probability that two sets overlap in
time. This module measures the *semantic* side on the real machinery:
N simulated clients issue a get/set mix against one KVP map through the
deterministic scheduler; every lost CAS (resolved by merge-update) is
counted. It also measures the sharded variant, reproducing the paper's
closing remark that splitting the map "would reduce probability of
conflict and re-execution even further".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import Machine, MachineConfig, MemoryConfig
from repro.concurrency import Scheduler
from repro.params import CacheGeometry
from repro.structures import HMap, ShardedHMap


@dataclass
class ConflictMeasurement:
    """Observed CAS behaviour of one concurrent run."""

    label: str
    n_clients: int
    n_ops: int
    cas_attempts: int
    cas_failures: int
    true_conflicts: int = 0

    @property
    def failure_rate(self) -> float:
        """Lost CAS races per attempt (each is one merge-update)."""
        return self.cas_failures / max(1, self.cas_attempts)


def _machine() -> Machine:
    return Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=16, num_buckets=1 << 13,
                            data_ways=12, overflow_lines=1 << 18),
        cache=CacheGeometry(size_bytes=128 * 1024, ways=8, line_bytes=16),
    ))


def run_conflict_storm(shard_bits: int = 0, n_clients: int = 8,
                       ops_per_client: int = 12, get_ratio: float = 0.9,
                       n_keys: int = 64, seed: int = 0) -> ConflictMeasurement:
    """N clients, a get:set mix, one (possibly sharded) map.

    Every client interleaves with the others between operations — a set
    whose snapshot went stale loses its CAS and merges, which is exactly
    the event the §5.1.1 probability prices.
    """
    machine = _machine()
    if shard_bits:
        kvp = ShardedHMap.create(machine, shard_bits=shard_bits)
    else:
        kvp = HMap.create(machine)
    keys = [b"key-%04d" % i for i in range(n_keys)]
    for key in keys:
        kvp.put(key, b"seed")
    attempts_before = machine.segmap.cas_attempts
    failures_before = machine.segmap.cas_failures
    true_conflicts = [0]

    def client(cid):
        rng = random.Random((seed << 8) | cid)
        for i in range(ops_per_client):
            key = keys[rng.randrange(n_keys)]
            if rng.random() < get_ratio:
                kvp.get(key)
                yield
            else:
                # a set's snapshot->commit window is interleavable, so
                # concurrent sets can race (and merge) realistically
                retries = yield from kvp.put_steps(
                    key, b"c%d-%d" % (cid, i))
                true_conflicts[0] += retries or 0

    sched = Scheduler(seed=seed)
    for cid in range(n_clients):
        sched.spawn("client-%d" % cid, client(cid))
    sched.run()
    return ConflictMeasurement(
        label="sharded-%d" % (1 << shard_bits) if shard_bits else "single",
        n_clients=n_clients,
        n_ops=n_clients * ops_per_client,
        cas_attempts=machine.segmap.cas_attempts - attempts_before,
        cas_failures=machine.segmap.cas_failures - failures_before,
        true_conflicts=true_conflicts[0],
    )
