"""The concurrent-performance model of section 5.1.1.

The paper analyzes a memcached deployment — 8 processors, 200K commands
per second, a 10:1 get:set ratio — and derives:

* map-update latency: reloading the iterator register costs
  ``log(N)`` DRAM reads to reach the leaf and the same again to
  regenerate the path, so ``2 * levels * t_DRAM``; for N = 10^6 KVPs,
  16-byte lines and t_DRAM = 50 ns that is 2 * 20 * 50 ns = 2 us;
* conflict probability: update time over the mean interval between
  sets — 2 us / 50 us = 0.04 (0.06 at N = 10^9);
* merge-update latency: geometric series over the diverging-path depth,
  2 * t_DRAM * (1 + 1/2 + 1/4 + ...) ~= 4 * t_DRAM = 200 ns.

:class:`ConcurrencyModel` reproduces those formulas;
:func:`simulate_conflicts` cross-checks them with a Monte Carlo
simulation of Poisson set arrivals, and the merge machinery itself is
cross-checked against :class:`repro.segments.merge.MergeStats` by the
benchmark harness.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass
class ConcurrencyModel:
    """Closed-form model with the paper's default parameters."""

    n_kvps: int = 1_000_000
    commands_per_second: float = 200_000.0
    get_to_set_ratio: float = 10.0
    dram_latency_ns: float = 50.0
    line_bytes: int = 16

    @property
    def set_interval_us(self) -> float:
        """Mean microseconds between set commands.

        The paper reads "10:1 get to set" as one set per ten commands
        ("one set command is executed every 50 microseconds" at 200K
        commands/s), so sets = commands / ratio.
        """
        sets_per_second = self.commands_per_second / self.get_to_set_ratio
        return 1e6 / sets_per_second

    @property
    def dag_levels(self) -> float:
        """Nodes from leaf to root of the KVP map.

        The paper counts ``log2(N)`` for 16-byte lines and says the count
        decreases proportionally for 32/64-byte lines.
        """
        base = math.log2(self.n_kvps)
        return base / (self.line_bytes / 16)

    @property
    def map_update_time_us(self) -> float:
        """2 * levels * t_DRAM: reload the path, regenerate the path."""
        return 2 * self.dag_levels * self.dram_latency_ns / 1000.0

    @property
    def conflict_probability(self) -> float:
        """Probability a set overlaps another set's map update window."""
        return self.map_update_time_us / self.set_interval_us

    @property
    def merge_latency_ns(self) -> float:
        """Average merge-update latency.

        With uniformly distributed updates the probability that the two
        versions diverge below level k halves per level, so the reloaded
        and regenerated nodes form a geometric series:
        2 * t_DRAM * (1 + 1/2 + 1/4 + ...) ~= 4 * t_DRAM.
        """
        return 4.0 * self.dram_latency_ns


def simulate_conflicts(model: ConcurrencyModel, n_sets: int = 200_000,
                       seed: int = 0) -> float:
    """Monte Carlo conflict rate under Poisson set arrivals.

    Each set occupies a ``map_update_time_us`` window; a conflict occurs
    when the previous set's window is still open at this set's CAS point.
    Returns the observed conflict fraction (should approach
    ``conflict_probability`` for small probabilities).
    """
    rng = random.Random(seed)
    window = model.map_update_time_us
    mean_gap = model.set_interval_us
    conflicts = 0
    for _ in range(n_sets):
        # the previous set's update window is still open if this set
        # arrives (and snapshots) less than `window` after it started
        gap = rng.expovariate(1.0 / mean_gap)
        if gap < window:
            conflicts += 1
    return conflicts / n_sets
