"""Plain-text rendering of the evaluation tables and figure series.

The benchmark harness prints every reproduced table/figure in a form
directly comparable with the paper: aligned columns for tables, and
``(x, y)`` series (with a crude log2 bar) for figures.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        str_rows.append([
            ("%.3f" % cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [max(len(r[i]) for r in str_rows) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(str_rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def ratio_series(points: Iterable[Tuple[float, float]], title: str = "",
                 x_label: str = "x", y_label: str = "ratio") -> str:
    """Render a figure's data series with a log2 bar per point.

    Mirrors Figure 7's presentation (log2 ratio on the ordinate): each
    line shows x, y, log2(y) and a bar of '#'/'.' left or right of the
    y = 1 axis.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append("%16s  %10s  %8s  %s" % (x_label, y_label, "log2", ""))
    for x, y in points:
        if y <= 0:
            bar = "?"
            log = float("-inf")
        else:
            log = math.log2(y)
            magnitude = min(20, int(round(abs(log) * 4)))
            bar = ("." * magnitude + "|") if log < 0 else ("|" + "#" * magnitude)
        lines.append("%16s  %10.3f  %8.2f  %s" % (x, y, log, bar))
    return "\n".join(lines)


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile; 0.0 on an empty population."""
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction out of [0, 1]")
    ordered = sorted(samples)
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def latency_summary(samples_ms: Sequence[float]) -> Dict[str, float]:
    """p50/p90/p99/max of a latency population, in milliseconds.

    The serving layer (`repro.net`) reports its request latencies and
    loadgen batch RTTs in this shape, so benchmark output and the
    ``stats`` command agree on definitions.
    """
    return {
        "p50_ms": round(percentile(samples_ms, 0.50), 3),
        "p90_ms": round(percentile(samples_ms, 0.90), 3),
        "p99_ms": round(percentile(samples_ms, 0.99), 3),
        "max_ms": round(max(samples_ms), 3) if samples_ms else 0.0,
    }


def summarize_ratios(values: Sequence[float]) -> Dict[str, float]:
    """Mean / geometric mean / min / max of a ratio population."""
    vals = [v for v in values if v > 0]
    if not vals:
        return {"mean": 0.0, "gmean": 0.0, "min": 0.0, "max": 0.0}
    gmean = math.exp(sum(math.log(v) for v in vals) / len(vals))
    return {
        "mean": sum(vals) / len(vals),
        "gmean": gmean,
        "min": min(vals),
        "max": max(vals),
    }
