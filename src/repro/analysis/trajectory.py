"""`repro bench aggregate` — one machine-readable perf trajectory.

Every bench target writes its own JSON (``BENCH_*.json`` at the repo
root, per-suite files under ``benchmarks/out/``). This module sweeps
them all into ``benchmarks/out/trajectory.json``: a single document the
reproduction scripts, CI artifacts and cross-PR comparisons can consume
without knowing each bench's layout. ``scripts/reproduce_all.sh`` runs
every target and finishes with this aggregation.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List

DEFAULT_OUT = "benchmarks/out/trajectory.json"

#: Glob patterns swept into the trajectory, relative to the repo root.
SOURCE_PATTERNS = ("BENCH_*.json", "benchmarks/out/*.json")


def collect_sources(root: str = ".") -> List[pathlib.Path]:
    """Bench JSON files under ``root``, trajectory output excluded."""
    base = pathlib.Path(root)
    out_name = pathlib.Path(DEFAULT_OUT).name
    found: List[pathlib.Path] = []
    for pattern in SOURCE_PATTERNS:
        found.extend(p for p in base.glob(pattern) if p.name != out_name)
    return sorted(set(found))


def aggregate(root: str = ".") -> Dict:
    """Merge every bench JSON into one document.

    Unreadable files are reported under ``"errors"`` instead of sinking
    the aggregation — a half-written bench must not hide the others.
    """
    benches: Dict[str, Dict] = {}
    errors: Dict[str, str] = {}
    sources: List[str] = []
    for path in collect_sources(root):
        rel = str(path.relative_to(root) if path.is_absolute()
                  else path)
        sources.append(rel)
        try:
            benches[path.stem] = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            errors[rel] = str(exc)
    doc: Dict = {
        "trajectory": 1,
        "sources": sources,
        "benches": benches,
    }
    if errors:
        doc["errors"] = errors
    return doc


def write_trajectory(root: str = ".", out: str = DEFAULT_OUT) -> Dict:
    """Aggregate and write; returns the document."""
    doc = aggregate(root)
    path = pathlib.Path(root) / out
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
