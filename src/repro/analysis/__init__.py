"""Analytical models and result rendering for the evaluation harness."""

from repro.analysis.concurrent_model import (
    ConcurrencyModel,
    simulate_conflicts,
)
from repro.analysis.reporting import format_table, ratio_series

__all__ = ["ConcurrencyModel", "simulate_conflicts", "format_table",
           "ratio_series"]
