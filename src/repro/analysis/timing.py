"""Latency estimation over the access-count simulator.

The paper's performance arguments (section 5.1.1) price operations as a
count of serial DRAM accesses times a 50 ns latency; everything on-chip
is treated as (nearly) free. :class:`TimingModel` applies the same
pricing to measured access counts, and
:func:`measure_map_update_latency` closes the loop: it runs real
key-value map updates on the simulator, prices them, and compares
against the closed-form 2·levels·t_DRAM estimate for the same map size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.memory.stats import DramStats


@dataclass(frozen=True)
class TimingModel:
    """Serial-access latency pricing (the paper's §5.1.1 convention)."""

    dram_ns: float = 50.0
    cache_hit_ns: float = 2.0

    def dram_time_ns(self, delta: DramStats) -> float:
        """Price a block of DRAM accesses as a serial sequence."""
        return delta.total() * self.dram_ns

    def op_time_ns(self, delta: DramStats, cache_hits: int = 0) -> float:
        """DRAM serial time plus on-chip hit time."""
        return self.dram_time_ns(delta) + cache_hits * self.cache_hit_ns


@dataclass
class MapUpdateLatency:
    """Measured vs analytical latency of one KVP-map update.

    The paper's 2·levels·t_DRAM estimate counts only the *critical path*:
    the path reload (data reads) plus one signature read per regenerated
    node — "signature read and compare are on the critical path of
    acquiring a PLID for new content, but other operations (updating
    signature line, etc.) are not and can be performed in parallel".
    ``total_*`` additionally includes that background traffic (candidate
    reads, signature writes, deallocation of the old path, RC spills).
    """

    n_items: int
    critical_accesses: float
    critical_ns: float
    total_accesses: float
    total_ns: float
    analytical_ns: float

    @property
    def ratio(self) -> float:
        """Critical-path measured over analytical (1.0 = the estimate)."""
        return self.critical_ns / self.analytical_ns


def measure_map_update_latency(n_items: int = 1024, probes: int = 32,
                               model: TimingModel = None) -> MapUpdateLatency:
    """Run real map updates and price them against the §5.1.1 formula.

    Uses the paper's configuration for this analysis: 16-byte lines with
    64-bit PLIDs (so levels ~ log2(N)) and a cache small enough that the
    update path misses, as the paper's worst-case estimate assumes.
    """
    from repro import Machine, MachineConfig, MemoryConfig
    from repro.params import CacheGeometry
    from repro.structures.hmap import HMap

    if model is None:
        model = TimingModel()
    machine = Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=16, num_buckets=1 << 14,
                            data_ways=12, overflow_lines=1 << 20,
                            plid_bytes=8),
        cache=CacheGeometry(size_bytes=8 * 1024, ways=4, line_bytes=16),
    ))
    kvp = HMap.create(machine)
    for i in range(n_items):
        kvp.put(b"key-%06d" % i, b"v")
    machine.drain()
    before = machine.dram.snapshot()
    allocs_before = machine.mem.store.counters.allocations
    for i in range(probes):
        kvp.put(b"key-%06d" % (i * (n_items // probes)), b"w%d" % i)
    machine.drain()
    delta = machine.dram.delta(before)
    allocations = machine.mem.store.counters.allocations - allocs_before
    # critical path: path-reload reads + one signature read per node
    # regenerated (i.e. per fresh allocation)
    critical = delta.reads + allocations
    critical_accesses = critical / probes
    critical_ns = critical * model.dram_ns / probes
    total_accesses = delta.total() / probes
    total_ns = model.dram_time_ns(delta) / probes
    # the paper's estimate: reload the path (levels reads) + regenerate
    # the path (levels signature reads), each a DRAM access
    levels = math.log2(max(2, n_items))
    analytical_ns = 2 * levels * model.dram_ns
    return MapUpdateLatency(n_items, critical_accesses, critical_ns,
                            total_accesses, total_ns, analytical_ns)
