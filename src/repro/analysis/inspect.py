"""Segment DAG inspection: structure dumps, sharing analysis, Graphviz.

Debugging a content-addressed memory means looking at DAGs: which lines
a segment touches, where path/data compaction kicked in, and what is
shared with what. These helpers render that:

* :func:`dump_entry` — an indented text tree of a subtree;
* :func:`segment_report` — per-segment line/compaction statistics;
* :func:`sharing_matrix` — pairwise line sharing between segments;
* :func:`to_dot` — a Graphviz document of one or more DAGs (shared
  lines appear once, with multiple parents — dedup made visible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.memory.line import Inline, PlidRef, ZERO_PLID
from repro.memory.system import MemorySystem
from repro.segments import dag
from repro.segments.dag import Entry


def _word_label(word) -> str:
    if isinstance(word, PlidRef):
        return "->%d%s" % (word.plid,
                           ("@" + "".join(map(str, word.path)))
                           if word.path else "")
    if isinstance(word, Inline):
        return "inl%d%r" % (word.width, list(word.values))
    return hex(word) if word > 9 else str(word)


def dump_entry(mem: MemorySystem, entry: Entry, level: int,
               max_depth: int = 6) -> str:
    """Indented text rendering of a subtree (down to ``max_depth``)."""
    lines: List[str] = []

    def visit(entry: Entry, level: int, indent: int) -> None:
        pad = "  " * indent
        if entry == 0:
            lines.append(pad + "(zero)")
            return
        if isinstance(entry, Inline):
            lines.append(pad + "inline w=%d values=%r"
                         % (entry.width, list(entry.values)))
            return
        path = ("path=%s " % (entry.path,)) if entry.path else ""
        lines.append(pad + "line %d %s(level %d)"
                     % (entry.plid, path, level - len(entry.path)))
        if indent >= max_depth:
            lines.append(pad + "  ...")
            return
        actual_level = level - len(entry.path)
        content = mem.store.peek(entry.plid)
        if actual_level == 0:
            lines.append(pad + "  [%s]"
                         % " ".join(_word_label(w) for w in content))
            return
        for child in content:
            visit(child, actual_level - 1, indent + 1)

    visit(entry, level, 0)
    return "\n".join(lines)


@dataclass
class SegmentReport:
    """Structural statistics of one segment DAG."""

    vsid: int
    length: int
    height: int
    total_lines: int = 0
    leaf_lines: int = 0
    interior_lines: int = 0
    inline_entries: int = 0
    compacted_paths: int = 0
    bytes: int = 0

    def as_text(self) -> str:
        """One-line summary."""
        return ("VSID %d: %d words, height %d, %d lines "
                "(%d leaves, %d interior), %d inline entries, "
                "%d compacted paths, %d bytes"
                % (self.vsid, self.length, self.height, self.total_lines,
                   self.leaf_lines, self.interior_lines,
                   self.inline_entries, self.compacted_paths, self.bytes))


def segment_report(machine, vsid: int) -> SegmentReport:
    """Walk a segment's DAG and collect structural statistics."""
    entry = machine.segmap.entry(vsid)
    mem = machine.mem
    report = SegmentReport(vsid=vsid, length=entry.length,
                           height=entry.height)
    seen: Set[int] = set()

    def visit(entry: Entry, level: int) -> None:
        if entry == 0:
            return
        if isinstance(entry, Inline):
            report.inline_entries += 1
            return
        if entry.path:
            report.compacted_paths += 1
        actual_level = level - len(entry.path)
        if entry.plid in seen:
            return
        seen.add(entry.plid)
        report.total_lines += 1
        if actual_level == 0:
            report.leaf_lines += 1
            return
        report.interior_lines += 1
        for child in mem.store.peek(entry.plid):
            visit(child, actual_level - 1)

    visit(entry.root, entry.height)
    report.bytes = report.total_lines * mem.line_bytes
    return report


def sharing_matrix(machine, vsids: Sequence[int]) -> Dict[Tuple[int, int], int]:
    """Pairwise count of lines shared between segments' DAGs."""
    line_sets: Dict[int, Set[int]] = {}
    for vsid in vsids:
        entry = machine.segmap.entry(vsid)
        seen: Set[int] = set()

        def visit(plid: int) -> None:
            if plid == ZERO_PLID or plid in seen:
                return
            seen.add(plid)
            for word in machine.mem.store.peek(plid):
                if isinstance(word, PlidRef):
                    visit(word.plid)

        if isinstance(entry.root, PlidRef):
            visit(entry.root.plid)
        line_sets[vsid] = seen
    out: Dict[Tuple[int, int], int] = {}
    for i, a in enumerate(vsids):
        for b in vsids[i + 1:]:
            out[(a, b)] = len(line_sets[a] & line_sets[b])
    return out


def to_dot(machine, vsids: Sequence[int], max_lines: int = 400) -> str:
    """Graphviz rendering of one or more segment DAGs.

    Deduplicated lines appear once with edges from all their parents —
    the sharing structure of Figure 1, ready for ``dot -Tsvg``.
    """
    mem = machine.mem
    emitted: Set[int] = set()
    lines: List[str] = ["digraph hicamp {", "  rankdir=TB;",
                        "  node [shape=record, fontsize=9];"]

    def visit(plid: int, level: int) -> None:
        if plid in emitted or len(emitted) >= max_lines:
            return
        emitted.add(plid)
        content = mem.store.peek(plid)
        label = "|".join(_word_label(w).replace("<", "(").replace(">", ")")
                         for w in content)
        shape = "leaf" if level == 0 else "node"
        lines.append('  L%d [label="{%d (%s)|{%s}}"];'
                     % (plid, plid, shape, label))
        if level > 0:
            for word in content:
                if isinstance(word, PlidRef) and word.plid != ZERO_PLID:
                    lines.append("  L%d -> L%d;" % (plid, word.plid))
                    visit(word.plid, level - 1 - len(word.path))

    for vsid in vsids:
        entry = machine.segmap.entry(vsid)
        lines.append('  V%d [shape=ellipse, label="VSID %d"];'
                     % (vsid, vsid))
        root = entry.root
        if isinstance(root, PlidRef):
            lines.append("  V%d -> L%d;" % (vsid, root.plid))
            visit(root.plid, entry.height - len(root.path))
    lines.append("}")
    return "\n".join(lines)
