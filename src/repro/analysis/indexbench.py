"""`repro bench dedup-index` — lookup-by-content at overflow scale.

Drives two :class:`~repro.memory.dedup_store.DedupStore` instances —
``index_kind="legacy"`` (paper Fig. 2: in-bucket signatures + linear
overflow-chain scan) and ``index_kind="cuckoo"`` (repro.memory.index) —
through identical seeded workloads holding ~10x the buckets' resident
capacity, exactly the regime the million-key scale scenario exposed.
Physical placement is index-independent, so both stores end with
bit-identical lines; only the *cost of finding them* differs.

Measured per kind:

* **populate**: install ``keys`` distinct lines (every one a miss that
  must prove absence before allocating — the regime where the legacy
  chain walk is O(resident lines / buckets) per op);
* **mixed**: an even hit/new-content mix with per-op wall timing,
  yielding DRAM ops/lookup and p50/p99/max latency;
* **hits**: re-lookups of resident content only.

The cuckoo store deliberately starts from a tiny initial table so the
run itself exercises several *online resizes* (reported in the JSON).
``--check`` floors the DRAM-ops-per-lookup ratio and the p99 ratio
(legacy/cuckoo, >1 means cuckoo wins); CI runs the smoke tier.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.memory.dedup_store import DedupStore
from repro.memory.line import make_leaf
from repro.params import MemoryConfig, WORD_MASK

DEFAULT_OUT = "benchmarks/out/dedup_index.json"

#: Store geometry: small bucket count so the key counts below land at
#: ~10x resident capacity (num_buckets * data_ways) without minutes of
#: pure-Python chain walking. DRAM ops per lookup depend only on this
#: ratio, so the result transfers to the full-size configuration.
FULL_GEOMETRY = dict(num_buckets=1 << 11, keys=240_000, measured=40_000)
SMOKE_GEOMETRY = dict(num_buckets=1 << 8, keys=30_000, measured=8_000)

#: Initial cuckoo buckets — tiny on purpose, so the bench itself drives
#: several online doublings (index_buckets * index_slots starting slots).
INITIAL_INDEX_BUCKETS = 1 << 8


def _content(i: int) -> tuple:
    """Distinct two-word leaf content for key ``i`` (deterministic)."""
    return make_leaf(((i + 1) & WORD_MASK,
                      (i * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
                      & WORD_MASK), 2)


def _store(kind: str, num_buckets: int) -> DedupStore:
    return DedupStore(MemoryConfig(
        num_buckets=num_buckets,
        overflow_lines=1 << 22,
        index_kind=kind,
        index_buckets=INITIAL_INDEX_BUCKETS))


def _percentile(sorted_us: List[float], q: float) -> float:
    if not sorted_us:
        return 0.0
    pos = min(len(sorted_us) - 1, int(q * (len(sorted_us) - 1)))
    return sorted_us[pos]


def _run_kind(kind: str, num_buckets: int, keys: int,
              measured: int) -> Dict:
    store = _store(kind, num_buckets)
    perf = time.perf_counter

    t0 = perf()
    dram0 = store.stats.total()
    for i in range(keys):
        store.lookup(_content(i))
    populate_s = perf() - t0
    populate_dram = store.stats.total() - dram0

    # mixed phase: alternate resident re-lookups with never-seen content
    # (the serving mix: dedup hits and fresh ingest), per-op timing
    latencies_us: List[float] = []
    dram0 = store.stats.total()
    lookups0 = store.counters.lookups
    fresh = keys
    for j in range(measured):
        if j % 2 == 0:
            line = _content((j * 2654435761) % keys)
        else:
            line = _content(fresh)
            fresh += 1
        t = perf()
        store.lookup(line)
        latencies_us.append((perf() - t) * 1e6)
    mixed_dram = store.stats.total() - dram0
    mixed_ops = store.counters.lookups - lookups0

    # hits-only phase: resident content, no allocation in the loop
    dram0 = store.stats.total()
    t0 = perf()
    for j in range(measured):
        store.lookup(_content((j * 48271 + 11) % keys))
    hits_s = perf() - t0
    hits_dram = store.stats.total() - dram0

    latencies_us.sort()
    result = {
        "kind": kind,
        "resident_lines": store.footprint_lines(),
        "capacity_multiple": round(
            store.footprint_lines() / float(
                num_buckets * store.config.data_ways), 2),
        "populate": {
            "keys": keys,
            "seconds": round(populate_s, 3),
            "ops_per_s": round(keys / populate_s, 1),
            "dram_ops_per_lookup": round(populate_dram / float(keys), 2),
        },
        "mixed": {
            "ops": mixed_ops,
            "dram_ops_per_lookup": round(mixed_dram / float(mixed_ops), 2),
            "p50_us": round(_percentile(latencies_us, 0.50), 2),
            "p99_us": round(_percentile(latencies_us, 0.99), 2),
            "max_us": round(latencies_us[-1], 2),
        },
        "hits": {
            "ops": measured,
            "dram_ops_per_lookup": round(hits_dram / float(measured), 2),
            "ops_per_s": round(measured / hits_s, 1),
        },
        "store": {
            "false_positive_scans": store.counters.false_positive_scans,
            "bucket_overflows": store.counters.bucket_overflows,
            "overflow_allocations": store.counters.overflow_allocations,
        },
    }
    if store.index is not None:
        result["index"] = store.index.snapshot()
    return result


def run_index_bench(smoke: bool = False, keys: int = 0) -> Dict:
    """Run both kinds; returns the cross-kind report."""
    geo = dict(SMOKE_GEOMETRY if smoke else FULL_GEOMETRY)
    if keys:
        geo["keys"] = keys
        geo["measured"] = min(geo["measured"], max(1000, keys // 6))
    legacy = _run_kind("legacy", geo["num_buckets"], geo["keys"],
                       geo["measured"])
    cuckoo = _run_kind("cuckoo", geo["num_buckets"], geo["keys"],
                       geo["measured"])
    if legacy["resident_lines"] != cuckoo["resident_lines"]:
        raise AssertionError(
            "index kinds diverged: %d vs %d resident lines"
            % (legacy["resident_lines"], cuckoo["resident_lines"]))
    ratios = {
        "mixed_dram_ops": round(
            legacy["mixed"]["dram_ops_per_lookup"]
            / max(cuckoo["mixed"]["dram_ops_per_lookup"], 1e-9), 2),
        "populate_dram_ops": round(
            legacy["populate"]["dram_ops_per_lookup"]
            / max(cuckoo["populate"]["dram_ops_per_lookup"], 1e-9), 2),
        "p99_latency": round(
            legacy["mixed"]["p99_us"]
            / max(cuckoo["mixed"]["p99_us"], 1e-9), 2),
        "populate_throughput": round(
            cuckoo["populate"]["ops_per_s"]
            / max(legacy["populate"]["ops_per_s"], 1e-9), 2),
    }
    return {
        "bench": "dedup_index",
        "tier": "smoke" if smoke else "full",
        "num_buckets": geo["num_buckets"],
        "keys": geo["keys"],
        "capacity_multiple": legacy["capacity_multiple"],
        "legacy": legacy,
        "cuckoo": cuckoo,
        "ratios_legacy_over_cuckoo": ratios,
    }


def check_floor(report: Dict, floor: float) -> List[str]:
    """Floor violations (empty = pass): DRAM-ratio and p99-ratio must
    both clear ``floor`` and the cuckoo run must have resized online."""
    ratios = report["ratios_legacy_over_cuckoo"]
    problems = []
    if ratios["mixed_dram_ops"] < floor:
        problems.append(
            "mixed DRAM ops/lookup ratio %.2fx below the %.2fx floor"
            % (ratios["mixed_dram_ops"], floor))
    if ratios["p99_latency"] < floor:
        problems.append(
            "p99 latency ratio %.2fx below the %.2fx floor"
            % (ratios["p99_latency"], floor))
    if report["cuckoo"]["index"]["resizes_completed"] < 1:
        problems.append("no online resize completed during the run")
    return problems


def render(report: Dict) -> str:
    """Human-readable table of the cross-kind report."""
    from repro.analysis.reporting import format_table

    rows = []
    for metric, path in (
            ("populate ops/s", ("populate", "ops_per_s")),
            ("populate DRAM ops/lookup", ("populate",
                                          "dram_ops_per_lookup")),
            ("mixed DRAM ops/lookup", ("mixed", "dram_ops_per_lookup")),
            ("mixed p50 us", ("mixed", "p50_us")),
            ("mixed p99 us", ("mixed", "p99_us")),
            ("hits DRAM ops/lookup", ("hits", "dram_ops_per_lookup"))):
        rows.append([metric,
                     report["legacy"][path[0]][path[1]],
                     report["cuckoo"][path[0]][path[1]]])
    ratios = report["ratios_legacy_over_cuckoo"]
    rows.append(["DRAM ratio (legacy/cuckoo)",
                 "", "%.2fx" % ratios["mixed_dram_ops"]])
    rows.append(["p99 ratio (legacy/cuckoo)",
                 "", "%.2fx" % ratios["p99_latency"]])
    idx = report["cuckoo"]["index"]
    rows.append(["online resizes completed", "", idx["resizes_completed"]])
    rows.append(["max displacement depth", "", idx["max_depth"]])
    return format_table(
        ["metric", "legacy", "cuckoo"], rows,
        title="dedup-index (%s tier, %d keys at %.1fx capacity)"
        % (report["tier"], report["keys"], report["capacity_multiple"]))
