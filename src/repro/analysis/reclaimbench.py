"""`repro bench reclaim` — commit-latency tails under churny frees.

Drives two machines — ``reclaim_kind="immediate"`` (the paper's inline
recursive dealloc) and ``reclaim_kind="epoch"`` (repro.memory.reclaim)
— through an identical deterministic workload: churny HMap overwrites
(every put frees the previous value's subtree) punctuated by *big-root
drops* (a freshly built multi-thousand-line anonymous segment dropped
to zero in one op — the ROADMAP item 3 latency-spike scenario). Every
put and every drop is a timed commit op; the epoch machine additionally
pays a bounded ``reclaim_advance`` between batches, accounted
separately as drain time exactly like the shard router's batch
boundary.

Under the immediate kind each big drop walks its whole subtree on the
commit path, so the drops *are* the p99/p999; under the epoch kind the
drop is O(1) and the subtree walk is amortized into the drains. Both
machines must converge: after a final quiesce the bench asserts equal
unique-line footprints, equal segment fingerprints, an equal
content→refcount digest, and clean strict machine audits — the
cross-kind identity ``--check`` refuses to pass without.
"""

from __future__ import annotations

import gc
import hashlib
import time
from typing import Dict, List

from repro.core.machine import Machine
from repro.params import MachineConfig, MemoryConfig, WORD_MASK
from repro.structures import HMap

DEFAULT_OUT = "benchmarks/out/reclaim.json"

#: Workload geometry. ``drop_every`` makes big-root drops ~3% of timed
#: ops — rare enough to be tail events, frequent enough that the p99
#: lands inside them under immediate reclamation. ``budget`` per
#: ``batch`` timed ops outpaces the per-cycle free rate (one big root
#: plus a cycle of overwrites), so the epoch queue stays bounded.
FULL_GEOMETRY = dict(keys=96, ops=6400, drop_every=32, big_words=12000,
                     batch=16, budget=6144)
SMOKE_GEOMETRY = dict(keys=48, ops=1600, drop_every=32, big_words=6000,
                      batch=16, budget=3072)


def _percentile(sorted_us: List[float], q: float) -> float:
    if not sorted_us:
        return 0.0
    pos = min(len(sorted_us) - 1, int(q * (len(sorted_us) - 1)))
    return sorted_us[pos]


def _state_digest(store) -> str:
    """Order-independent digest of the live refcount multiset.

    Raw line encodings cannot be compared across machines: interior
    lines embed child *PLIDs*, and free-list reuse legitimately places
    identical content at different physical addresses. The content
    graphs are isomorphic, so the refcount multiset (paired with the
    fingerprint and footprint checks in the report) is the
    address-independent invariant.
    """
    h = hashlib.blake2b(digest_size=16)
    for rc in sorted(store.refcount(plid) for plid in store._enc_by_plid):
        h.update(rc.to_bytes(8, "big"))
    return h.hexdigest()


def _run_kind(kind: str, geo: Dict) -> Dict:
    machine = Machine(MachineConfig(
        memory=MemoryConfig(reclaim_kind=kind)))
    store = machine.mem.store
    kvp = HMap.create(machine)
    perf = time.perf_counter

    latencies_us: List[float] = []
    drop_us: List[float] = []
    drain_s = 0.0
    drops = 0
    wall0 = perf()
    # cycle collection off for the timed loop (both kinds, symmetric):
    # a gen-2 pause landing inside one timed op would swamp the tail
    # this bench exists to measure; plain refcount frees still run
    gc_was_enabled = gc.isenabled()
    gc.disable()
    for op in range(geo["ops"]):
        if op % geo["drop_every"] == geo["drop_every"] - 1:
            # big-root drop: content unique per drop (no dedup against
            # anything live), built untimed — the *drop* is the commit
            # op whose latency the reclaimer is supposed to bound
            drops += 1
            words = [((drops << 32) | (i + 1)) & WORD_MASK
                     for i in range(geo["big_words"])]
            vsid = machine.create_segment(words)
            t = perf()
            machine.drop_segment(vsid)
            dt_us = (perf() - t) * 1e6
            latencies_us.append(dt_us)
            drop_us.append(dt_us)
        else:
            # churny overwrite: every value is fresh, so each put frees
            # the key's previous value subtree
            key = b"k%04d" % (op % geo["keys"])
            value = (b"value-%07d:" % op) * 4
            t = perf()
            kvp.put(key, value)
            latencies_us.append((perf() - t) * 1e6)
        if kind == "epoch" and op % geo["batch"] == geo["batch"] - 1:
            # the router's between-batches epoch advance, off the
            # per-op clock but on the wall clock (reported as drain)
            t = perf()
            store.reclaim_advance(geo["budget"])
            drain_s += perf() - t
    if gc_was_enabled:
        gc.enable()
    gc.collect()
    wall_s = perf() - wall0

    reclaim_snap = store.reclaim_snapshot()  # pre-quiesce: live behaviour
    t = perf()
    store.reclaim_quiesce()
    quiesce_s = perf() - t
    machine.drain()

    from repro.testing.auditors import audit_machine
    audit = audit_machine(machine, strict=True)

    latencies_us.sort()
    drop_us.sort()
    return {
        "kind": kind,
        "ops": len(latencies_us),
        "drops": drops,
        "p50_us": round(_percentile(latencies_us, 0.50), 2),
        "p99_us": round(_percentile(latencies_us, 0.99), 2),
        "p999_us": round(_percentile(latencies_us, 0.999), 2),
        "max_us": round(latencies_us[-1], 2),
        "drop_p50_us": round(_percentile(drop_us, 0.50), 2),
        "drop_max_us": round(drop_us[-1], 2),
        "wall_seconds": round(wall_s, 3),
        "drain_seconds": round(drain_s, 3),
        "quiesce_seconds": round(quiesce_s, 3),
        "footprint_lines": machine.footprint_lines(),
        "fingerprint": machine.segment_fingerprint(kvp.vsid).hex(),
        "state_digest": _state_digest(store),
        "audits_ok": audit.ok,
        "audit_failures": audit.failures[:5],
        "reclaim": reclaim_snap,
    }


def run_reclaim_bench(smoke: bool = False) -> Dict:
    """Run both kinds over the identical workload; cross-kind report."""
    geo = dict(SMOKE_GEOMETRY if smoke else FULL_GEOMETRY)
    immediate = _run_kind("immediate", geo)
    epoch = _run_kind("epoch", geo)
    identical = (
        immediate["footprint_lines"] == epoch["footprint_lines"]
        and immediate["fingerprint"] == epoch["fingerprint"]
        and immediate["state_digest"] == epoch["state_digest"])
    ratios = {
        "p99_latency": round(
            immediate["p99_us"] / max(epoch["p99_us"], 1e-9), 2),
        "p999_latency": round(
            immediate["p999_us"] / max(epoch["p999_us"], 1e-9), 2),
        "max_latency": round(
            immediate["max_us"] / max(epoch["max_us"], 1e-9), 2),
    }
    return {
        "bench": "reclaim",
        "tier": "smoke" if smoke else "full",
        "geometry": geo,
        "immediate": immediate,
        "epoch": epoch,
        "ratios_immediate_over_epoch": ratios,
        "identical_state": identical,
    }


def check_floor(report: Dict, floor: float) -> List[str]:
    """Floor violations (empty = pass): the p99 commit-latency ratio
    must clear ``floor``, post-quiesce state must be identical across
    kinds, and both strict audits must be clean."""
    problems = []
    ratio = report["ratios_immediate_over_epoch"]["p99_latency"]
    if ratio < floor:
        problems.append(
            "p99 commit-latency ratio %.2fx below the %.2fx floor"
            % (ratio, floor))
    if not report["identical_state"]:
        problems.append(
            "post-quiesce state diverged between reclaim kinds")
    for kind in ("immediate", "epoch"):
        if not report[kind]["audits_ok"]:
            problems.append("%s machine audit failed: %s"
                            % (kind, "; ".join(
                                report[kind]["audit_failures"])))
    return problems


def render(report: Dict) -> str:
    """Human-readable table of the cross-kind report."""
    from repro.analysis.reporting import format_table

    rows = []
    for metric, key in (("commit p50 us", "p50_us"),
                        ("commit p99 us", "p99_us"),
                        ("commit p999 us", "p999_us"),
                        ("commit max us", "max_us"),
                        ("big-root drop p50 us", "drop_p50_us"),
                        ("big-root drop max us", "drop_max_us"),
                        ("wall seconds", "wall_seconds"),
                        ("drain seconds", "drain_seconds"),
                        ("quiesce seconds", "quiesce_seconds")):
        rows.append([metric, report["immediate"][key],
                     report["epoch"][key]])
    ratios = report["ratios_immediate_over_epoch"]
    rows.append(["p99 ratio (immediate/epoch)", "",
                 "%.2fx" % ratios["p99_latency"]])
    rows.append(["p999 ratio (immediate/epoch)", "",
                 "%.2fx" % ratios["p999_latency"]])
    reclaim = report["epoch"]["reclaim"]
    rows.append(["deferred frees", "", reclaim["deferred_total"]])
    rows.append(["max pending", "", reclaim["max_pending"]])
    rows.append(["slot reuse (ways+overflow)", "",
                 reclaim["allocator"]["ways_reused"]
                 + reclaim["allocator"]["overflow_reused"]])
    rows.append(["identical post-quiesce state",
                 "", "yes" if report["identical_state"] else "NO"])
    return format_table(
        ["metric", "immediate", "epoch"], rows,
        title="reclaim (%s tier, %d commits, %d big-root drops)"
        % (report["tier"], report["immediate"]["ops"],
           report["immediate"]["drops"]))
