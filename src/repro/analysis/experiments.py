"""Self-contained runners for every reproduced experiment.

Each ``run_*`` function regenerates one of the paper's tables/figures
(or one of this repo's validation/ablation studies) and returns an
:class:`ExperimentResult` holding both the rendered text and the raw
data. The pytest benchmarks in ``benchmarks/`` call these and assert the
paper's shape claims on the data; the ``repro`` command-line tool calls
them directly.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.analysis.concurrent_model import ConcurrencyModel, simulate_conflicts
from repro.analysis.reporting import format_table, ratio_series, summarize_ratios


@dataclass
class ExperimentResult:
    """Rendered text plus raw data for one experiment."""

    name: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Table 1

TABLE1_LINE_SIZES = (16, 32, 64)
TABLE1_DATASETS = ("wikipedia", "facebook", "scripts", "images")


def run_table1(scale: int = 1) -> ExperimentResult:
    """Table 1 — memcached data compaction per dataset and line size."""
    from repro.apps.memcached.compaction import measure_compaction
    from repro.workloads.text import corpus_for_dataset

    rows = []
    by_dataset: Dict[str, List[float]] = {}
    for dataset in TABLE1_DATASETS:
        corpus = corpus_for_dataset(dataset, seed=1)
        if scale > 1:
            corpus = corpus_for_dataset(dataset, seed=1,
                                        n_items=corpus.spec.n_items * scale)
        cells = [measure_compaction(corpus, ls).compaction
                 for ls in TABLE1_LINE_SIZES]
        by_dataset[dataset] = cells
        rows.append([dataset, len(corpus.items), corpus.total_bytes]
                    + [round(c, 2) for c in cells])
    text = format_table(
        ["dataset", "items", "bytes", "LS=16", "LS=32", "LS=64"], rows,
        title="Table 1: memcached data compaction "
              "(conventional bytes / HICAMP bytes)")
    return ExperimentResult("table1", text, {"by_dataset": by_dataset})


# ----------------------------------------------------------------------
# Figure 6

FIGURE6_LINE_SIZES = (16, 32, 64)


def run_figure6(scale: int = 1) -> ExperimentResult:
    """Figure 6 — memcached DRAM accesses by architecture and line size."""
    from repro.apps.memcached.harness import figure6_row
    from repro.workloads.traces import generate_workload

    workload = generate_workload("facebook", n_requests=400 * scale,
                                 seed=3, n_items=80 * scale)
    results = {ls: figure6_row(workload, ls) for ls in FIGURE6_LINE_SIZES}
    rows = []
    ratios = []
    for ls in FIGURE6_LINE_SIZES:
        for arch in ("conventional", "hicamp"):
            d = results[ls][arch].dram
            rows.append([ls, arch, d.reads, d.writes, d.lookups, d.dealloc,
                         d.refcount, d.total()])
        conv = results[ls]["conventional"].dram.total()
        hic = results[ls]["hicamp"].dram.total()
        ratios.append((ls, hic / max(1, conv)))
    text = format_table(
        ["LS", "arch", "reads", "writes", "lookups", "dealloc", "RC",
         "total"], rows,
        title="Figure 6: memcached DRAM accesses per architecture/line size")
    text += "\n\nHICAMP/conventional total ratio: " + "  ".join(
        "LS=%d: %.2f" % (ls, r) for ls, r in ratios)
    return ExperimentResult("figure6", text,
                            {"results": results, "ratios": ratios})


# ----------------------------------------------------------------------
# Section 5.1.1

def measure_merge_depth(n_words: int = 4096, trials: int = 40, seed: int = 7):
    """Average diverging-path work of real merges of random single-word
    updates (cross-checks the geometric-series argument)."""
    from repro import Machine, MachineConfig, MemoryConfig
    from repro.params import CacheGeometry
    from repro.segments import dag
    from repro.segments.merge import MergeStats, merge_roots

    machine = Machine(MachineConfig(
        memory=MemoryConfig(line_bytes=16, num_buckets=1 << 14,
                            data_ways=12, overflow_lines=1 << 20,
                            plid_bytes=8),
        cache=CacheGeometry(size_bytes=1 << 19, ways=16, line_bytes=16),
    ))
    mem = machine.mem
    rng = random.Random(seed)
    base_words = [rng.getrandbits(62) | 1 for _ in range(n_words)]
    base, height = dag.build_segment(mem, base_words)
    total_levels = dag.height_for(mem, n_words)
    depths = []
    for _ in range(trials):
        i, j = rng.randrange(n_words), rng.randrange(n_words)
        mine = dag.write_words_bulk(
            mem, dag.retain_entry(mem, base) and base, height,
            {i: rng.getrandbits(62) | 1})
        theirs = dag.write_words_bulk(
            mem, dag.retain_entry(mem, base) and base, height,
            {j: rng.getrandbits(62) | 1})
        stats = MergeStats()
        merged, _ = merge_roots(mem, (base, height), (mine, height),
                                (theirs, height), stats=stats)
        depths.append(stats.levels_descended + stats.leaf_merges)
        for e in (mine, theirs, merged):
            dag.release_entry(mem, e)
    dag.release_entry(mem, base)
    return sum(depths) / len(depths), total_levels


def run_section511() -> ExperimentResult:
    """Section 5.1.1 — the concurrent-performance analysis."""
    rows = []
    for n_kvps, line_bytes in ((10**6, 16), (10**9, 16), (10**6, 32),
                               (10**6, 64)):
        model = ConcurrencyModel(n_kvps=n_kvps, line_bytes=line_bytes)
        simulated = simulate_conflicts(model, n_sets=100_000)
        rows.append(["%.0e" % n_kvps, line_bytes,
                     round(model.map_update_time_us, 2),
                     round(model.conflict_probability, 3),
                     round(simulated, 3),
                     round(model.merge_latency_ns, 1)])
    merge_depth, total_levels = measure_merge_depth()
    text = format_table(
        ["N KVPs", "LS", "update_us", "P(conflict)", "P(sim)", "merge_ns"],
        rows,
        title="Section 5.1.1: map-update latency, conflict probability, "
              "merge latency (t_DRAM = 50 ns)")
    text += ("\n\nMeasured merge work: %.1f diverging levels vs %d total "
             "DAG levels (geometric-series argument: merges touch a short "
             "path, not the whole update depth)" % (merge_depth, total_levels))
    from repro.analysis.timing import measure_map_update_latency
    latency = measure_map_update_latency(n_items=1024)
    text += ("\n\nEmpirical map-update latency at N=%d: critical path "
             "%.1f DRAM accesses = %.0f ns vs analytical 2*log2(N)*t = "
             "%.0f ns (ratio %.2f); with background traffic (sig writes, "
             "dealloc, RC): %.0f ns"
             % (latency.n_items, latency.critical_accesses,
                latency.critical_ns, latency.analytical_ns, latency.ratio,
                latency.total_ns))
    from repro.analysis.conflict_sim import run_conflict_storm
    storms = [run_conflict_storm(shard_bits=bits, n_clients=8,
                                 ops_per_client=12, get_ratio=0.5, seed=4)
              for bits in (0, 2, 4)]
    text += ("\n\nEmpirical conflict storm (8 clients, 50%% sets, "
             "interleaved update windows):")
    for m in storms:
        text += ("\n  %-10s  CAS failures %d/%d (%.0f%%), resolved by "
                 "merge-update; true conflicts needing app retry: %d"
                 % (m.label, m.cas_failures, m.cas_attempts,
                    100 * m.failure_rate, m.true_conflicts))
    text += ("\n(the paper's closing §5.1.1 point: sharding the map "
             "reduces conflicts further)")
    return ExperimentResult("section511", text, {
        "rows": rows, "merge_depth": merge_depth,
        "total_levels": total_levels, "latency": latency,
        "storms": storms,
    })


# ----------------------------------------------------------------------
# Figures 7/8 + Table 2

def run_figure7(scale: int = 1) -> ExperimentResult:
    """Figure 7 — SpMV off-chip accesses, HICAMP/conventional."""
    from repro.apps.spmv.kernels import spmv_comparison
    from repro.workloads.matrices import matrix_suite

    results = []
    for spec in matrix_suite(scale=1):
        hicamp, conventional = spmv_comparison(spec)
        ratio = hicamp.dram_accesses / max(1, conventional.dram_accesses)
        results.append((spec, hicamp, conventional, ratio))
    points = sorted(((spec.nnz, ratio) for spec, _, _, ratio in results))
    text = ratio_series(points,
                        title="Figure 7: SpMV off-chip accesses, "
                              "HICAMP/conventional (by matrix nnz)",
                        x_label="nnz", y_label="ratio")
    text += "\n\n" + "\n".join(
        "%-18s %-9s fmt=%-4s hicamp=%7d conv=%7d ratio=%.2f" % (
            spec.name, spec.category, h.fmt, h.dram_accesses,
            c.dram_accesses, ratio)
        for spec, h, c, ratio in results)
    stats = summarize_ratios([r for _, _, _, r in results])
    text += ("\n\nmean ratio=%.3f gmean=%.3f min=%.3f max=%.3f "
             "(paper: ~20%% average reduction excluding the extreme "
             "self-similar winner)" % (stats["mean"], stats["gmean"],
                                       stats["min"], stats["max"]))
    return ExperimentResult("figure7", text, {"results": results})


def run_table2_figure8(scale: int = 1) -> ExperimentResult:
    """Table 2 + Figure 8 — sparse matrix footprint vs CSR."""
    from repro.apps.spmv.kernels import best_hicamp_footprint
    from repro.workloads.matrices import matrix_suite

    per_matrix = []
    for spec in matrix_suite(scale=1):
        fmt, hicamp_bytes = best_hicamp_footprint(spec)
        csr_bytes = spec.csr_bytes()
        per_matrix.append((spec, fmt, hicamp_bytes, csr_bytes,
                           hicamp_bytes / csr_bytes))

    def agg(matrices):
        rs = [r for _, _, _, _, r in matrices]
        return (len(matrices), 100.0 * sum(rs) / len(rs),
                100.0 * (statistics.pstdev(rs) if len(rs) > 1 else 0.0))

    groups = {
        "All": per_matrix,
        "Non-symmetric": [m for m in per_matrix if not m[0].symmetric],
        "Symmetric": [m for m in per_matrix if m[0].symmetric],
        "FEMs": [m for m in per_matrix if m[0].category == "fem"],
        "LPs": [m for m in per_matrix if m[0].category == "lp"],
    }
    rows = []
    for name, matrices in groups.items():
        count, mean_pct, std_pct = agg(matrices)
        rows.append([name, count, round(mean_pct, 1), round(std_pct, 1)])
    text = format_table(
        ["category", "matrices", "HICAMP bytes per 100 (mean)", "std dev"],
        rows,
        title="Table 2: sparse matrix compaction by category "
              "(paper: All 62.7, Non-sym 58.5, Sym 76.9, FEM 70.7, LP 43.0)")
    points = sorted(((spec.nnz, ratio)
                     for spec, _, _, _, ratio in per_matrix))
    text += "\n\n" + ratio_series(
        points, title="Figure 8: per-matrix footprint ratio HICAMP/CSR",
        x_label="nnz", y_label="ratio")
    text += "\n\n" + "\n".join(
        "%-18s %-9s fmt=%-4s hicamp=%8d csr=%8d ratio=%.3f" % (
            spec.name, spec.category, fmt, hic, csr, ratio)
        for spec, fmt, hic, csr, ratio in per_matrix)
    return ExperimentResult("table2_figure8", text, {
        "per_matrix": per_matrix,
        "category_rows": rows,
        "ratios": {row[0]: row[2] for row in rows},
    })


# ----------------------------------------------------------------------
# Figures 9 / 10

VM_COUNTS = (1, 2, 4, 6, 8, 10)
TILE_COUNTS = (1, 2, 3, 4, 5, 6)


def run_figure9(seed: int = 2) -> ExperimentResult:
    """Figure 9 — per-role VM memory scaling."""
    from repro.apps.vmhost.study import measure_images
    from repro.workloads.vm_images import TILE_ROLES, scale_vms

    measurements = {}
    rows = []
    for role in TILE_ROLES:
        series = [measure_images(role, scale_vms(role, n, seed=seed))
                  for n in VM_COUNTS]
        measurements[role] = series
        for m in series:
            rows.append([role, m.n_vms, m.allocated_bytes // 1024,
                         m.page_sharing_bytes // 1024,
                         m.hicamp_bytes // 1024,
                         round(m.page_sharing_compaction, 2),
                         round(m.hicamp_compaction, 2)])
    text = format_table(
        ["role", "VMs", "allocKB", "pageshareKB", "hicampKB", "ps_x",
         "hicamp_x"], rows,
        title="Figure 9: per-role VM memory, allocated vs ideal page "
              "sharing vs HICAMP (64B lines)")
    return ExperimentResult("figure9", text, {"measurements": measurements})


def run_figure10(seed: int = 2) -> ExperimentResult:
    """Figure 10 — whole-tile VM memory scaling."""
    from repro.apps.vmhost.study import measure_images
    from repro.workloads.vm_images import TILE_ROLES, _Pools, vmmark_tile

    pools = _Pools(seed)
    images: list = []
    series = []
    for t in TILE_COUNTS:
        images.extend(vmmark_tile(t, pools, seed=seed))
        series.append(measure_images("tiles", list(images)))
    rows = [[len(TILE_ROLES) * (i + 1), m.allocated_bytes // 1024,
             m.page_sharing_bytes // 1024, m.hicamp_bytes // 1024,
             round(m.page_sharing_compaction, 2),
             round(m.hicamp_compaction, 2)]
            for i, m in enumerate(series)]
    text = format_table(
        ["VMs", "allocKB", "pageshareKB", "hicampKB", "ps_x", "hicamp_x"],
        rows,
        title="Figure 10: VMmark tile memory, allocated vs page sharing "
              "vs HICAMP (64B lines)")
    return ExperimentResult("figure10", text, {"series": series})


def run_serving(scale: int = 1) -> ExperimentResult:
    """Serving throughput — asyncio TCP server + pipelined loadgen."""
    import asyncio

    from repro.net.loadgen import run_loadgen
    from repro.net.server import MemcachedServer

    async def drive():
        server = MemcachedServer(port=0, shard_count=4)
        await server.start()
        report = await run_loadgen(
            "127.0.0.1", server.port, clients=4,
            ops_per_client=60 * scale, pipeline_depth=8,
            get_ratio=0.5, seed=3)
        snapshot = server.router.snapshot()
        await server.shutdown()
        snapshot["pending_at_shutdown"] = \
            server.metrics.pending_at_shutdown
        return report, snapshot

    report, snapshot = asyncio.run(drive())
    latency = report.latency()
    rows = [
        ["clients x ops", "%d x %d" % (report.clients,
                                       report.ops // report.clients)],
        ["ops/s (client-side)", round(report.ops_per_second, 1)],
        ["batch RTT p50/p99 ms", "%.2f / %.2f" % (latency["p50_ms"],
                                                  latency["p99_ms"])],
        ["pipelined requests", snapshot["pipelined_requests"]],
        ["commit batches", snapshot["commit_batches"]],
        ["merge commits (absorbed races)", snapshot["merge_commits"]],
        ["CAS retries (true conflicts)", snapshot["cas_retries"]],
        ["oracle mismatches", report.oracle_mismatches
         + report.shared_mismatches],
        ["pending at shutdown", snapshot["pending_at_shutdown"]],
    ]
    text = format_table(
        ["metric", "value"], rows,
        title="Serving layer: HICAMP memcached over TCP "
              "(4 shards, merge-update commit batching)")
    return ExperimentResult("serving", text, {
        "report": report.as_dict(),
        "server": snapshot,
        "ops": report.ops,
        "ops_per_second": report.ops_per_second,
        "merge_commits": snapshot["merge_commits"],
        "pipelined_requests": snapshot["pipelined_requests"],
        "oracle_mismatches": report.oracle_mismatches
        + report.shared_mismatches,
        "pending_at_shutdown": snapshot["pending_at_shutdown"],
    })


#: Registry used by the CLI and by documentation.
RUNNERS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "figure6": run_figure6,
    "section511": run_section511,
    "figure7": run_figure7,
    "table2_figure8": run_table2_figure8,
    "figure9": run_figure9,
    "figure10": run_figure10,
    "serving": run_serving,
}


def headline_metrics(result: ExperimentResult) -> Dict[str, Any]:
    """Flat, JSON-safe headline numbers for one experiment.

    Used by ``repro experiments --json`` so downstream tooling (plots,
    dashboards, regression tracking) can consume runs without parsing
    the rendered text.
    """
    name, data = result.name, result.data
    if name == "table1":
        return {"compaction_%s_ls%d" % (ds, ls): round(cells[i], 3)
                for ds, cells in data["by_dataset"].items()
                for i, ls in enumerate(TABLE1_LINE_SIZES)}
    if name == "figure6":
        out = {}
        for ls, ratio in data["ratios"]:
            out["hicamp_over_conventional_ls%d" % ls] = round(ratio, 3)
        return out
    if name == "section511":
        latency = data["latency"]
        out = {
            "merge_depth_levels": round(data["merge_depth"], 2),
            "total_dag_levels": data["total_levels"],
            "map_update_critical_ns": round(latency.critical_ns, 1),
            "map_update_analytical_ns": round(latency.analytical_ns, 1),
        }
        for storm in data.get("storms", []):
            out["cas_failure_rate_%s" % storm.label] = round(
                storm.failure_rate, 3)
        return out
    if name == "figure7":
        ratios = [r for _, _, _, r in data["results"]]
        stats = summarize_ratios(ratios)
        return {"mean_traffic_ratio": round(stats["mean"], 3),
                "gmean_traffic_ratio": round(stats["gmean"], 3),
                "min_traffic_ratio": round(stats["min"], 3),
                "max_traffic_ratio": round(stats["max"], 3)}
    if name == "table2_figure8":
        return {"bytes_per_100_%s" % key.lower().replace("-", "_"): value
                for key, value in data["ratios"].items()}
    if name == "figure9":
        return {"hicamp_x_%s_at_%d" % (role, series[-1].n_vms):
                round(series[-1].hicamp_compaction, 2)
                for role, series in data["measurements"].items()}
    if name == "figure10":
        last = data["series"][-1]
        return {"hicamp_x_tiles": round(last.hicamp_compaction, 2),
                "page_sharing_x_tiles": round(last.page_sharing_compaction,
                                              2)}
    if name == "serving":
        latency = data["report"]["batch_rtt"]
        return {
            "serving_ops_per_second": round(data["ops_per_second"], 1),
            "serving_batch_rtt_p99_ms": latency["p99_ms"],
            "serving_merge_commits": data["merge_commits"],
            "serving_pipelined_requests": data["pipelined_requests"],
            "serving_oracle_mismatches": data["oracle_mismatches"],
        }
    return {}
