"""Hot-path microbenchmarks for the structural memo (host-level).

Content-uniqueness makes canonical build, three-way merge and content
fingerprinting pure functions of line content, so the serving stack
memoizes them (:mod:`repro.memory.memo`). This module measures what that
buys: each benchmark runs the same steady-state workload on two fresh
machines — memo disabled (the modeled-stats-exact default) and memo
enabled (the serving configuration) — and reports wall-clock seconds and
the speedup. A fourth benchmark compares the router's two commit
strategies: N sequential map puts versus one :meth:`HMap.put_many`
bulk-ingest commit.

Both arms are *warmed* with one untimed pass first: the memo arm fills
its tables, the plain arm fills the dedup store, so the timed region
measures the steady-state per-operation cost a long-running cache
converges to — the regime the serving benchmarks operate in.

``repro bench hotpath`` runs this and writes
``benchmarks/out/hotpath_speedup.json``; CI runs it with a 1.2× floor.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.core.machine import Machine
from repro.segments import dag, merge
from repro.structures.anon import AnonSegment
from repro.structures.hmap import HMap


def _payloads(count: int, size: int = 256) -> List[bytes]:
    return [(b"hotpath-payload-%06d-" % i) * (size // 20 + 1)
            for i in range(count)][:count]


def _bench_build(machine: Machine, payloads: List[bytes],
                 rounds: int) -> float:
    """Steady-state cost of materializing repeated payloads as DAGs."""
    mem = machine.mem
    # warm pass doubles as the pin: live handles keep every root line
    # allocated, so deallocation never invalidates the warmed state
    pins = [AnonSegment.from_bytes(mem, p) for p in payloads]
    start = time.perf_counter()
    for _ in range(rounds):
        for payload in payloads:
            AnonSegment.from_bytes(mem, payload).release()
    elapsed = time.perf_counter() - start
    for seg in pins:
        seg.release()
    return elapsed


def _bench_merge(machine: Machine, words: int, pairs: int,
                 rounds: int) -> float:
    """Steady-state cost of re-folding recurring merge triples."""
    mem = machine.mem
    base, height = dag.build_segment(mem, list(range(1, words + 1)))
    sides: List[Tuple[object, object]] = []
    for i in range(pairs):
        mine = dag.write_word(mem, dag.retain_entry(mem, base), height,
                              2 * i, 10_000 + i)
        theirs = dag.write_word(mem, dag.retain_entry(mem, base), height,
                                words - 1 - 2 * i, 20_000 + i)
        sides.append((mine, theirs))
    # warm pass, pinning each merged result so its lines stay allocated
    pins = [merge.merge_entries(mem, base, m, t, height)
            for m, t in sides]
    start = time.perf_counter()
    for _ in range(rounds):
        for mine, theirs in sides:
            merged = merge.merge_entries(mem, base, mine, theirs, height)
            dag.release_entry(mem, merged)
    elapsed = time.perf_counter() - start
    for entry in pins:
        dag.release_entry(mem, entry)
    for mine, theirs in sides:
        dag.release_entry(mem, mine)
        dag.release_entry(mem, theirs)
    dag.release_entry(mem, base)
    return elapsed


def _bench_fingerprint(machine: Machine, words: int, rounds: int) -> float:
    """Steady-state cost of re-fingerprinting a stable segment."""
    vsid = machine.create_segment(list(range(1, words + 1)))
    dag.segment_fingerprint(machine, vsid)  # warm
    start = time.perf_counter()
    for _ in range(rounds):
        dag.segment_fingerprint(machine, vsid)
    elapsed = time.perf_counter() - start
    machine.drop_segment(vsid)
    return elapsed


def _bench_ingest(machine: Machine, items: List[Tuple[bytes, bytes]],
                  bulk: bool) -> float:
    """One batch of inserts: N commits versus one put_many commit."""
    kvp = HMap.create(machine)
    start = time.perf_counter()
    if bulk:
        kvp.put_many(items)
    else:
        for key, value in items:
            kvp.put(key, value)
    elapsed = time.perf_counter() - start
    kvp.drop()
    return elapsed


def _machine(memo: bool) -> Machine:
    machine = Machine()
    if memo:
        machine.mem.memo.enable()
    return machine


def _arm(off_seconds: float, on_seconds: float) -> Dict[str, float]:
    return {
        "seconds_off": round(off_seconds, 6),
        "seconds_on": round(on_seconds, 6),
        "speedup": round(off_seconds / max(on_seconds, 1e-9), 2),
    }


def run_hotpath(scale: int = 1) -> Dict:
    """Run all four hot-path benchmarks; returns a JSON-safe report.

    ``scale`` multiplies the repetition counts (CI uses 1; larger values
    tighten the timings at the cost of wall clock).
    """
    scale = max(1, scale)
    payloads = _payloads(64)
    build = [_bench_build(_machine(memo), payloads, rounds=8 * scale)
             for memo in (False, True)]
    merge_times = [_bench_merge(_machine(memo), words=256, pairs=8,
                                rounds=40 * scale)
                   for memo in (False, True)]
    fingerprint = [_bench_fingerprint(_machine(memo), words=2048,
                                      rounds=30 * scale)
                   for memo in (False, True)]
    items = [(b"bulk-key-%06d" % i, b"bulk-value-%06d-" % i * 4)
             for i in range(192 * scale)]
    seq_seconds = _bench_ingest(_machine(True), items, bulk=False)
    bulk_seconds = _bench_ingest(_machine(True), items, bulk=True)

    memo_machine = _machine(True)
    _bench_build(memo_machine, payloads, rounds=2)
    report = {
        "scale": scale,
        "build": _arm(build[0], build[1]),
        "merge": _arm(merge_times[0], merge_times[1]),
        "fingerprint": _arm(fingerprint[0], fingerprint[1]),
        "bulk_ingest": {
            "items": len(items),
            "seconds_sequential": round(seq_seconds, 6),
            "seconds_bulk": round(bulk_seconds, 6),
            "speedup": round(seq_seconds / max(bulk_seconds, 1e-9), 2),
        },
        "memo_tables": memo_machine.mem.memo.snapshot(),
    }
    report["min_memo_speedup"] = min(report[k]["speedup"]
                                     for k in ("build", "merge",
                                               "fingerprint"))
    return report
