"""Cuckoo-indexed lookup-by-content with adaptive fingerprints.

The paper's Figure-2 organization resolves lookup-by-content inside one
hash bucket: read the signature line, compare 8-bit signatures, read
candidate ways. That is exact and row-local — until a bucket fills and
lines spill into the shared overflow area, where the legacy path walks
the bucket's overflow chain *linearly*, one charged DRAM read per
resident line. PR 7's million-key run holds ~4.6x the resident capacity,
so every miss pays a ~40-line chain scan and populate throughput
collapses.

:class:`CuckooIndex` replaces that chain walk with a bounded-probe
index, independent of where lines physically live:

* **two candidate buckets** per content hash, the second derived by
  XOR'ing the first with a spread of the entry's 16-bit partial key
  (fingerprint), so displacement needs only ``(bucket, fingerprint)`` —
  the classic cuckoo-filter trick;
* **bounded-depth displacement**: inserts that find both candidates
  full run a BFS path search (depth- and node-capped) for a chain of
  entry moves ending at a free slot, charging one DRAM write per moved
  entry;
* **adaptive per-bucket fingerprint widths**: each bucket compares only
  ``fp_bits`` low bits of the stored fingerprint; the width is computed
  from the bucket's observed occupancy against a target
  false-positive full-line-compare rate (the density formula of the
  Cuckoo-Indexing reference implementation, grown monotonically from
  6 to 16 bits);
* **online resize**: when occupancy or displacement depth crosses its
  threshold, a doubled table is built *incrementally* — every public
  operation migrates at most ``migrate_step`` old buckets — while the
  old table keeps serving, so a live server never stalls. A tiny stash
  absorbs the (vanishingly rare) placements that fail mid-resize, so
  no operation is ever refused.

The index stores ``(key-hash, PLID)`` pairs and never inspects line
content itself: candidate verification is delegated to a ``match``
callback supplied by the caller (the dedup store charges one data-line
read per verification, and counts the mismatches as false-positive
scans). The index therefore stays an implementation detail that leaks
nothing into PLID assignment, canonical form, or segment fingerprints —
two stores populated through different indexes hold bit-identical state
(history independence of the index; see ``tests/test_index_hi.py``).

DRAM charging goes through the same :class:`~repro.memory.stats.
DramStats` ``lookups`` category and :class:`~repro.memory.stats.
RowBuffer` as the legacy path, so benchmark deltas are apples-to-apples.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["CuckooIndex", "CuckooIndexStats", "compute_fp_bits"]

#: Fingerprint width bounds (bits compared per slot). Widths start
#: narrow — one signature byte's worth minus headroom — and grow
#: per-bucket toward full 16-bit partial keys as density demands.
MIN_FP_BITS = 6
MAX_FP_BITS = 16

_FP_MASK = (1 << MAX_FP_BITS) - 1


def _key_of(encoded: bytes) -> int:
    """64-bit content key of a line's canonical encoding."""
    digest = hashlib.blake2b(encoded, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _fingerprint(key: int) -> int:
    """16-bit partial key (the stored/compared fingerprint material)."""
    return (key >> 48) & _FP_MASK


def _spread(fp: int) -> int:
    """Deterministic spread of a fingerprint for XOR displacement."""
    return (fp * 0x9E3779B1) & 0x7FFFFFFF


def compute_fp_bits(occupied: int, target_rate: float,
                    lo: int = MIN_FP_BITS, hi: int = MAX_FP_BITS) -> int:
    """Fingerprint bits needed to hold the false-positive scan rate.

    A negative probe of a bucket with ``occupied`` slots triggers an
    expected ``occupied / 2^bits`` spurious full-line compares; both
    candidate buckets are probed, doubling it. This is the density
    formula of the Cuckoo-Indexing reference (fingerprint bits computed
    from observed table density against a target scan rate), applied
    per-bucket.
    """
    bits = lo
    while bits < hi and 2.0 * occupied / (1 << bits) > target_rate:
        bits += 1
    return bits


@dataclass
class CuckooIndexStats:
    """Operation counters of one :class:`CuckooIndex` (diagnostics)."""

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    removes: int = 0
    false_positive_scans: int = 0
    displacements: int = 0          # entries moved by path execution
    max_depth: int = 0              # deepest displacement path executed
    fp_growth_events: int = 0       # per-bucket width increases
    resizes_started: int = 0
    resizes_completed: int = 0
    migrated_entries: int = 0
    stash_inserts: int = 0
    stash_high_watermark: int = 0
    #: displacement path length -> insert count (0 = direct placement)
    depth_hist: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        out = {name: getattr(self, name) for name in (
            "lookups", "hits", "inserts", "removes",
            "false_positive_scans", "displacements", "max_depth",
            "fp_growth_events", "resizes_started", "resizes_completed",
            "migrated_entries", "stash_inserts", "stash_high_watermark")}
        out["depth_hist"] = {str(d): n
                             for d, n in sorted(self.depth_hist.items())}
        return out


class _IndexBucket:
    """One index bucket: resident entries plus its fingerprint width."""

    __slots__ = ("entries", "fp_bits")

    def __init__(self) -> None:
        self.entries: List[Tuple[int, int]] = []  # (key hash, PLID)
        self.fp_bits = MIN_FP_BITS


class _Table:
    """One generation of the cuckoo table (sparse bucket array)."""

    __slots__ = ("num_buckets", "slots", "gen", "buckets", "entries")

    def __init__(self, num_buckets: int, slots: int, gen: int) -> None:
        self.num_buckets = num_buckets
        self.slots = slots
        self.gen = gen
        self.buckets: Dict[int, _IndexBucket] = {}
        self.entries = 0

    def bucket(self, index: int) -> _IndexBucket:
        bucket = self.buckets.get(index)
        if bucket is None:
            bucket = _IndexBucket()
            self.buckets[index] = bucket
        return bucket

    def pair(self, key: int) -> Tuple[int, int]:
        """The two candidate buckets of a key (XOR partial-key rule)."""
        mask = self.num_buckets - 1
        b1 = key & mask
        d = _spread(_fingerprint(key)) & mask
        return b1, b1 ^ (d if d else 1)

    def alt(self, bucket: int, key_hash: int) -> int:
        """The *other* candidate of an entry, from bucket+fingerprint."""
        mask = self.num_buckets - 1
        d = _spread(_fingerprint(key_hash)) & mask
        return bucket ^ (d if d else 1)


class CuckooIndex:
    """Content-hash -> PLID index with displacement and online resize."""

    def __init__(self, initial_buckets: int = 1 << 10,
                 slots_per_bucket: int = 4,
                 target_fp_rate: float = 0.02,
                 max_load: float = 0.85,
                 max_kick_depth: int = 8,
                 resize_depth_trigger: int = 4,
                 max_bfs_nodes: int = 128,
                 migrate_step: int = 8,
                 stats=None, rows=None) -> None:
        if initial_buckets < 2 or initial_buckets & (initial_buckets - 1):
            raise ValueError("initial_buckets must be a power of two >= 2")
        if not 1 <= slots_per_bucket <= 8:
            raise ValueError("slots_per_bucket must be 1..8")
        self.slots = slots_per_bucket
        self.target_fp_rate = target_fp_rate
        self.max_load = max_load
        self.max_kick_depth = max_kick_depth
        self.resize_depth_trigger = max(1, resize_depth_trigger)
        self.max_bfs_nodes = max_bfs_nodes
        self.migrate_step = max(1, migrate_step)
        #: DRAM counter block charged one ``lookups`` access per index
        #: bucket touched (None = uncharged standalone use)
        self._dram = stats
        #: open-row model shared with the store (index rows live in
        #: their own namespace so bucket locality is modelled honestly)
        self._rows = rows
        self.stats = CuckooIndexStats()
        self._active = _Table(initial_buckets, self.slots, gen=0)
        #: table being drained during an online resize (still serving)
        self._old: Optional[_Table] = None
        self._cursor = 0            # next old bucket to migrate
        #: bounded victim stash (on-chip model: scanned for free); only
        #: populated when a placement fails mid-resize, drained when the
        #: resize completes
        self._stash: List[Tuple[int, int]] = []
        #: callbacks fired with the new bucket count when an online
        #: resize completes (the store scales its RC cache here)
        self.resize_listeners: List = []

    # ------------------------------------------------------------------
    # geometry / introspection

    @staticmethod
    def key_of(encoded: bytes) -> int:
        """The 64-bit index key of a canonical line encoding."""
        return _key_of(encoded)

    def __len__(self) -> int:
        count = self._active.entries + len(self._stash)
        if self._old is not None:
            count += self._old.entries
        return count

    @property
    def num_buckets(self) -> int:
        """Buckets in the active table (doubles on each resize)."""
        return self._active.num_buckets

    @property
    def resizing(self) -> bool:
        """True while an incremental resize is draining the old table."""
        return self._old is not None

    def occupancy(self) -> float:
        """Fraction of active-table slots occupied."""
        return self._active.entries / float(
            self._active.num_buckets * self.slots)

    def bucket_width_counts(self) -> Dict[int, int]:
        """fp width (bits) -> number of active buckets at that width.

        Buckets never materialized (empty) are reported at the minimum
        width.
        """
        counts: Dict[int, int] = {}
        for bucket in self._active.buckets.values():
            counts[bucket.fp_bits] = counts.get(bucket.fp_bits, 0) + 1
        untouched = self._active.num_buckets - len(self._active.buckets)
        if untouched:
            counts[MIN_FP_BITS] = counts.get(MIN_FP_BITS, 0) + untouched
        return counts

    def snapshot(self) -> Dict:
        """JSON-safe state + counters (obs adapter / stats json)."""
        snap = self.stats.as_dict()
        snap.update({
            "entries": len(self),
            "buckets": self._active.num_buckets,
            "slots_per_bucket": self.slots,
            "occupancy": round(self.occupancy(), 4),
            "resizing": self.resizing,
            "stash": len(self._stash),
            "bucket_widths": {str(w): n for w, n in sorted(
                self.bucket_width_counts().items())},
        })
        return snap

    # ------------------------------------------------------------------
    # DRAM accounting

    def _charge(self, table: _Table, bucket: int, n: int = 1) -> None:
        """One index-row DRAM access (``lookups`` category)."""
        if self._dram is not None:
            self._dram.lookups += n
        if self._rows is not None:
            for _ in range(n):
                self._rows.access(("cidx", table.gen, bucket))

    # ------------------------------------------------------------------
    # fundamental operations

    def get(self, key: int,
            match: Callable[[int], bool]) -> Optional[int]:
        """Find the PLID indexed under ``key``, or None.

        ``match(plid)`` verifies a fingerprint-matching candidate by
        full content compare; the caller charges the data-line read and
        counts mismatches. Fingerprint filtering uses each bucket's own
        adaptive width.
        """
        self._migrate_some()
        self.stats.lookups += 1
        fp = _fingerprint(key)
        for kh, plid in self._stash:  # on-chip victim stash, uncharged
            if kh == key and match(plid):
                self.stats.hits += 1
                return plid
        for table in self._tables():
            b1, b2 = table.pair(key)
            if table is self._old and max(b1, b2) < self._cursor:
                continue  # both candidates already drained
            for b in (b1, b2) if b1 != b2 else (b1,):
                if table is self._old and b < self._cursor:
                    continue
                self._charge(table, b)
                bucket = table.buckets.get(b)
                if bucket is None:
                    continue
                mask = (1 << bucket.fp_bits) - 1
                for kh, plid in bucket.entries:
                    if (_fingerprint(kh) ^ fp) & mask:
                        continue
                    if match(plid):
                        self.stats.hits += 1
                        return plid
                    self.stats.false_positive_scans += 1
        return None

    def insert(self, key: int, plid: int) -> None:
        """Index ``plid`` under ``key`` (displacing entries as needed).

        Never fails: a placement that exhausts the displacement budget
        triggers (or rides out) a resize and falls back to the stash.
        """
        self._migrate_some()
        self.stats.inserts += 1
        self._place(self._active, key, plid, allow_resize=True)
        if self._old is None \
                and self.occupancy() > self.max_load:
            self._start_resize()

    def remove(self, key: int, plid: int) -> bool:
        """Drop the entry for ``(key, plid)``; True when it existed."""
        self._migrate_some()
        for table in self._tables():
            b1, b2 = table.pair(key)
            if table is self._old and max(b1, b2) < self._cursor:
                continue
            for b in (b1, b2) if b1 != b2 else (b1,):
                if table is self._old and b < self._cursor:
                    continue
                self._charge(table, b)
                bucket = table.buckets.get(b)
                if bucket is None:
                    continue
                for i, (kh, p) in enumerate(bucket.entries):
                    if kh == key and p == plid:
                        del bucket.entries[i]
                        table.entries -= 1
                        self._charge(table, b)  # bucket written back
                        self.stats.removes += 1
                        return True
        for i, (kh, p) in enumerate(self._stash):
            if kh == key and p == plid:
                del self._stash[i]
                self.stats.removes += 1
                return True
        return False

    # ------------------------------------------------------------------
    # placement

    def _tables(self):
        yield self._active
        if self._old is not None:
            yield self._old

    def _adapt_width(self, bucket: _IndexBucket) -> None:
        """Grow the bucket's compared width toward the target scan rate
        (monotone: stored fingerprints are rewritten wider, never
        truncated)."""
        needed = compute_fp_bits(len(bucket.entries), self.target_fp_rate)
        if needed > bucket.fp_bits:
            bucket.fp_bits = needed
            self.stats.fp_growth_events += 1

    def _append(self, table: _Table, b: int, entry: Tuple[int, int]) -> None:
        bucket = table.bucket(b)
        bucket.entries.append(entry)
        table.entries += 1
        self._adapt_width(bucket)
        self._charge(table, b)  # slot written back

    def _place(self, table: _Table, key: int, plid: int,
               allow_resize: bool) -> bool:
        """Place an entry in ``table``; displacement then stash."""
        b1, b2 = table.pair(key)
        for b in (b1, b2) if b1 != b2 else (b1,):
            if len(table.bucket(b).entries) < table.slots:
                self._append(table, b, (key, plid))
                self.stats.depth_hist[0] = \
                    self.stats.depth_hist.get(0, 0) + 1
                return True
        found = self._find_path(table, (b1, b2) if b1 != b2 else (b1,))
        if found is not None:
            free_bucket, path = found
            target = free_bucket
            for b, slot in reversed(path):
                moved = table.bucket(b).entries.pop(slot)
                table.entries -= 1
                self._append(table, target, moved)
                target = b
            self._append(table, target, (key, plid))
            depth = len(path)
            self.stats.displacements += depth
            self.stats.max_depth = max(self.stats.max_depth, depth)
            self.stats.depth_hist[depth] = \
                self.stats.depth_hist.get(depth, 0) + 1
            if allow_resize and self._old is None \
                    and depth >= self.resize_depth_trigger:
                self._start_resize()
            return True
        # displacement budget exhausted: resize (if we may) and retry in
        # the doubled table, else stash the victim — never refuse
        if allow_resize and self._old is None:
            self._start_resize()
            if self._place(self._active, key, plid, allow_resize=False):
                return True
        self._stash.append((key, plid))
        self.stats.stash_inserts += 1
        self.stats.stash_high_watermark = max(
            self.stats.stash_high_watermark, len(self._stash))
        return False

    def _find_path(self, table: _Table, roots) -> Optional[Tuple]:
        """BFS for a displacement path ending at a bucket with space.

        Returns ``(free bucket, [(bucket, slot), ...])`` where each
        listed entry moves to the next bucket in the chain (the last one
        into the free bucket), or None within the depth/node budget.
        The root buckets were just probed by the caller; every further
        bucket examined charges one read.
        """
        seen = set(roots)
        queue = deque((b, ()) for b in roots)
        expanded = 0
        while queue:
            b, path = queue.popleft()
            bucket = table.bucket(b)
            if path:
                self._charge(table, b)
            if len(bucket.entries) < table.slots:
                return b, list(path)
            if len(path) >= self.max_kick_depth:
                continue
            expanded += 1
            if expanded > self.max_bfs_nodes:
                return None
            for slot, (kh, _plid) in enumerate(bucket.entries):
                alt = table.alt(b, kh)
                if alt in seen:
                    continue
                seen.add(alt)
                queue.append((alt, path + ((b, slot),)))
        return None

    # ------------------------------------------------------------------
    # online resize

    def _start_resize(self) -> None:
        old = self._active
        self._active = _Table(old.num_buckets * 2, self.slots,
                              gen=old.gen + 1)
        self._old = old
        self._cursor = 0
        self.stats.resizes_started += 1

    def _migrate_some(self) -> None:
        """Bounded incremental migration (called by every public op)."""
        if self._old is None:
            return
        old = self._old
        moved = 0
        while self._cursor < old.num_buckets and moved < self.migrate_step:
            bucket = old.buckets.pop(self._cursor, None)
            if bucket is not None and bucket.entries:
                self._charge(old, self._cursor)  # drain read
                for entry in bucket.entries:
                    old.entries -= 1
                    self._place(self._active, entry[0], entry[1],
                                allow_resize=False)
                    self.stats.migrated_entries += 1
            self._cursor += 1
            moved += 1
        if self._cursor >= old.num_buckets:
            self._old = None
            self.stats.resizes_completed += 1
            self._drain_stash()
            # back-to-back growth under sustained ingest
            if self.occupancy() > self.max_load:
                self._start_resize()
            for listener in self.resize_listeners:
                listener(self._active.num_buckets)

    def _drain_stash(self) -> None:
        if not self._stash:
            return
        pending, self._stash = self._stash, []
        for key, plid in pending:
            self._place(self._active, key, plid, allow_resize=False)

    # ------------------------------------------------------------------
    # verification

    def audit(self, expected: Dict[int, int]) -> List[str]:
        """Check the index is exactly the map ``{key(content): plid}``.

        ``expected`` maps every live PLID to the key of its *actual*
        content — so a silently corrupted line (stored content no longer
        matching its indexed key) is reported, proving the index is
        reconstructible from live lines alone. Returns failure strings
        (empty = clean).
        """
        failures: List[str] = []
        located: Dict[int, int] = {}
        for table in self._tables():
            for b, bucket in table.buckets.items():
                for kh, plid in bucket.entries:
                    if plid in located:
                        failures.append(
                            "index: PLID %d indexed twice" % plid)
                    located[plid] = kh
                    if plid not in expected:
                        failures.append(
                            "index: stale entry for dead PLID %d" % plid)
                        continue
                    b1, b2 = table.pair(kh)
                    if b not in (b1, b2):
                        failures.append(
                            "index: PLID %d parked outside its candidate "
                            "buckets" % plid)
        for kh, plid in self._stash:
            if plid in located:
                failures.append("index: PLID %d indexed twice" % plid)
            located[plid] = kh
            if plid not in expected:
                failures.append(
                    "index: stale stash entry for dead PLID %d" % plid)
        for plid, key in expected.items():
            kh = located.get(plid)
            if kh is None:
                failures.append(
                    "index: live PLID %d is not indexed" % plid)
            elif kh != key:
                failures.append(
                    "index: PLID %d indexed under a key that does not "
                    "match its content" % plid)
        return failures
