"""Host-level structural memoization over content-unique lines.

HICAMP's content-uniqueness invariant (section 3.1) means a PLID *is*
its content: any pure function of line content — canonical DAG
construction, three-way merge, content fingerprinting — can be memoized
with no invalidation logic beyond deallocation. This module is the
shared memo state exploited by the hot paths:

* **line intern** — canonical line content → PLID, so rebuilding a
  subtree already materialized skips the find-or-allocate bucket walk
  entirely (:func:`repro.segments.dag._leaf_entry` /
  :func:`~repro.segments.dag._canonical_interior`);
* **segment memo** — raw bytes → ``(root, height, length)``, so
  :meth:`repro.structures.anon.AnonSegment.from_bytes` of a repeated
  payload is one dict probe instead of a full bottom-up build;
* **merge memo** — ``(base, mine, theirs, level)`` canonical keys →
  merged entry, accelerating the router's batched merge-update commits
  when the same divergence is folded repeatedly;
* **digest cache** — PLID → content fingerprint, promoting the per-call
  ``memo`` of :func:`repro.segments.dag.content_fingerprint` to machine
  level (replication delta pruning, fingerprint convergence checks).

Invalidation story: every table is keyed (directly or through a reverse
dependency map) on the PLIDs whose *reuse* could make an entry stale.
The memo holds **no references** — instead :meth:`StructuralMemo.on_dealloc`
is registered as a :class:`~repro.memory.dedup_store.DedupStore` dealloc
listener (the same hook the HICAMP cache and the replication leader's
FORGET path use), so an entry dies with the line it names. A line's
children cannot be deallocated while the line itself is alive (the line
holds counted references on them), so depending on the *top* PLID of a
memoized structure suffices.

Modeled-stats transparency: the memo is **disabled by default**. The
figure/table experiments construct plain machines and never see it, so
their DRAM/cache statistics are untouched; the serving stack and the
hotpath microbenchmarks opt in explicitly (a documented
``DramStats``-bypassing fast path — see ``docs/performance.md``).
Reference counts stay *exact* either way: every memo hit performs the
same incref the equivalent dedup-hit path would, so the refcount
auditors hold with the memo on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

#: distinguishes "not memoized" from a memoized zero entry
MISS = object()

#: table names, in the order reported by :meth:`StructuralMemo.snapshot`
TABLES = ("line", "segment", "merge", "digest")


@dataclass
class TableStats:
    """Per-table operation counters (surfaced through ``repro.obs``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0


class StructuralMemo:
    """Bounded, dealloc-invalidated memo tables over one line store.

    All tables are size-capped LRUs *and* invalidated through
    :meth:`on_dealloc`; either bound alone would suffice for safety
    (dealloc) or for memory (caps) — together they keep the memo both
    correct under PLID reuse and bounded under churn.
    """

    def __init__(self, max_lines: int = 1 << 16,
                 max_segments: int = 1 << 13,
                 max_merges: int = 1 << 13,
                 max_digests: int = 1 << 16) -> None:
        self.enabled = False
        self._max_lines = max(1, max_lines)
        self._max_segments = max(1, max_segments)
        self._max_merges = max(1, max_merges)
        self._max_digests = max(1, max_digests)
        self.stats: Dict[str, TableStats] = {t: TableStats() for t in TABLES}
        # line intern: canonical line tuple -> plid. One line content has
        # exactly one PLID, so the reverse map is one-to-one.
        self._lines: "OrderedDict[tuple, int]" = OrderedDict()
        self._line_rev: Dict[int, tuple] = {}
        # segment memo: raw bytes -> (root entry, height, length). Path
        # compaction lets distinct contents share a root PLID (with
        # different paths), so the reverse map holds key *sets*.
        self._segments: "OrderedDict[bytes, tuple]" = OrderedDict()
        self._seg_rev: Dict[int, Set[bytes]] = {}
        # merge memo: (entry_key x3, level) -> (result entry, dep plids)
        self._merges: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._merge_rev: Dict[int, Set[tuple]] = {}
        #: digest cache, used *directly* as the ``memo`` dict of
        #: :func:`repro.segments.dag.content_fingerprint` (the key is the
        #: PLID itself, so invalidation is a plain pop)
        self.digests: Dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # lifecycle

    def enable(self) -> "StructuralMemo":
        """Turn the memo on (serving stack / benchmarks opt in here)."""
        self.enabled = True
        return self

    def disable(self) -> None:
        """Turn the memo off and drop every table."""
        self.enabled = False
        self.clear()

    def clear(self) -> None:
        """Drop all memoized state (counters are kept)."""
        self._lines.clear()
        self._line_rev.clear()
        self._segments.clear()
        self._seg_rev.clear()
        self._merges.clear()
        self._merge_rev.clear()
        self.digests.clear()

    # ------------------------------------------------------------------
    # line intern

    def get_line(self, line: tuple) -> Optional[int]:
        """PLID previously interned for this canonical line, or None."""
        plid = self._lines.get(line)
        if plid is None:
            self.stats["line"].misses += 1
            return None
        self._lines.move_to_end(line)
        self.stats["line"].hits += 1
        return plid

    def put_line(self, line: tuple, plid: int) -> None:
        """Record a completed find-or-allocate for this line content."""
        if plid == 0:
            return
        self._lines[line] = plid
        self._line_rev[plid] = line
        if len(self._lines) > self._max_lines:
            victim, victim_plid = self._lines.popitem(last=False)
            self._line_rev.pop(victim_plid, None)
            self.stats["line"].evictions += 1

    # ------------------------------------------------------------------
    # segment memo

    def get_segment(self, data: bytes) -> Optional[tuple]:
        """Memoized ``(root, height, length)`` for raw bytes, or None."""
        triple = self._segments.get(data)
        if triple is None:
            self.stats["segment"].misses += 1
            return None
        self._segments.move_to_end(data)
        self.stats["segment"].hits += 1
        return triple

    def put_segment(self, data: bytes, root, height: int,
                    length: int) -> None:
        """Record a completed canonical build of ``data``."""
        self._segments[data] = (root, height, length)
        plid = getattr(root, "plid", None)
        if plid is not None:
            self._seg_rev.setdefault(plid, set()).add(data)
        if len(self._segments) > self._max_segments:
            victim, (vroot, _, _) = self._segments.popitem(last=False)
            self._drop_rev(self._seg_rev, getattr(vroot, "plid", None),
                           victim)
            self.stats["segment"].evictions += 1

    # ------------------------------------------------------------------
    # merge memo

    def get_merge(self, key: tuple):
        """Memoized merge result for a canonical triple, or :data:`MISS`."""
        cached = self._merges.get(key)
        if cached is None:
            self.stats["merge"].misses += 1
            return MISS
        self._merges.move_to_end(key)
        self.stats["merge"].hits += 1
        return cached[0]

    def put_merge(self, key: tuple, result, deps: tuple) -> None:
        """Record a completed merge; ``deps`` are the entries whose PLIDs
        (base/mine/theirs/result) the cached mapping depends on."""
        plids = tuple(sorted({e.plid for e in deps
                              if hasattr(e, "plid")}))
        self._merges[key] = (result, plids)
        for plid in plids:
            self._merge_rev.setdefault(plid, set()).add(key)
        if len(self._merges) > self._max_merges:
            victim, (_, vplids) = self._merges.popitem(last=False)
            for plid in vplids:
                self._drop_rev(self._merge_rev, plid, victim)
            self.stats["merge"].evictions += 1

    # ------------------------------------------------------------------
    # digest cache

    def note_digest(self, hit: bool) -> None:
        """Count a fingerprint probe against the digest cache."""
        if hit:
            self.stats["digest"].hits += 1
        else:
            self.stats["digest"].misses += 1

    def trim_digests(self) -> None:
        """Bound the digest cache (called after a fingerprint pass).

        ``content_fingerprint`` fills the dict directly for every line it
        walks, so the bound is enforced wholesale afterwards rather than
        per insert; a full reset is the simple correct policy because any
        subset would be rebuilt lazily anyway.
        """
        if len(self.digests) > self._max_digests:
            self.stats["digest"].evictions += len(self.digests)
            self.digests.clear()

    # ------------------------------------------------------------------
    # invalidation

    def on_dealloc(self, plid: int) -> None:
        """Dealloc listener: drop every entry whose meaning depends on
        ``plid`` (its number may be reused for different content)."""
        if self.digests.pop(plid, None) is not None:
            self.stats["digest"].invalidations += 1
        line = self._line_rev.pop(plid, None)
        if line is not None:
            self._lines.pop(line, None)
            self.stats["line"].invalidations += 1
        for key in self._seg_rev.pop(plid, ()):
            if self._segments.pop(key, None) is not None:
                self.stats["segment"].invalidations += 1
        for key in self._merge_rev.pop(plid, ()):
            cached = self._merges.pop(key, None)
            if cached is None:
                continue
            self.stats["merge"].invalidations += 1
            for dep in cached[1]:
                if dep != plid:
                    self._drop_rev(self._merge_rev, dep, key)

    @staticmethod
    def _drop_rev(rev: Dict[int, set], plid, key) -> None:
        if plid is None:
            return
        keys = rev.get(plid)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del rev[plid]

    # ------------------------------------------------------------------
    # inspection (the ``repro.obs`` adapter reads these)

    def sizes(self) -> Dict[str, int]:
        """Resident entries per table."""
        return {"line": len(self._lines), "segment": len(self._segments),
                "merge": len(self._merges), "digest": len(self.digests)}

    def ops(self) -> Dict[Tuple[str, str], int]:
        """``{(table, outcome): count}`` for the labeled obs counter."""
        out: Dict[Tuple[str, str], int] = {}
        for table, stats in self.stats.items():
            out[(table, "hit")] = stats.hits
            out[(table, "miss")] = stats.misses
            out[(table, "eviction")] = stats.evictions
            out[(table, "invalidation")] = stats.invalidations
        return out

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """JSON-safe per-table counters plus residency."""
        sizes = self.sizes()
        return {table: {"hits": s.hits, "misses": s.misses,
                        "evictions": s.evictions,
                        "invalidations": s.invalidations,
                        "entries": sizes[table]}
                for table, s in self.stats.items()}
