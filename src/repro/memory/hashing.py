"""Deterministic content hashing for the deduplicated store.

The store needs two independent hashes of a line's canonical encoding
(section 3.1):

* the **bucket hash**, selecting the DRAM row (hash bucket) the line must
  live in, and
* the **signature**, an 8-bit digest stored in the bucket's signature line
  and used to filter candidate ways before full content compares.

Both must be deterministic across processes (benchmarks compare footprints
between runs), so Python's randomized ``hash()`` is not used. CRC32 (a C
primitive) keeps the simulator fast.
"""

from __future__ import annotations

import zlib

from repro.memory.line import Line, encode_line

_SIGNATURE_SEED = b"hicamp-signature"
_BUCKET_SEED = b"hicamp-bucket"


def bucket_hash(encoded: bytes, num_buckets: int) -> int:
    """Map a line's canonical encoding to its hash bucket index."""
    return zlib.crc32(encoded, zlib.crc32(_BUCKET_SEED)) % num_buckets


def signature(encoded: bytes) -> int:
    """8-bit signature of a line's canonical encoding.

    Signatures are non-zero: the store uses a zero signature byte to mark
    an empty (or deallocated) way, so the 256 hash values are folded onto
    1..255.
    """
    h = zlib.crc32(encoded, zlib.crc32(_SIGNATURE_SEED)) & 0xFF
    return h if h != 0 else 1


def line_hashes(line: Line, num_buckets: int) -> "tuple[int, int, bytes]":
    """Convenience: (bucket, signature, canonical encoding) of a line."""
    enc = encode_line(line)
    return bucket_hash(enc, num_buckets), signature(enc), enc
