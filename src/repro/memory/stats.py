"""DRAM traffic accounting.

The evaluation's central metric is the number of off-chip DRAM accesses
(Figure 6 and Figure 7). :class:`DramStats` counts them in the categories
of Figure 6's legend:

* ``reads`` — data-line reads caused by cache misses;
* ``writes`` — data-line writes caused by cache writebacks;
* ``lookups`` — accesses performed by the lookup-by-content operation
  (signature-line reads/updates and candidate data-line reads,
  section 3.1);
* ``dealloc`` — accesses performed by line deallocation (signature
  zeroing, freed-line bookkeeping);
* ``refcount`` — reference-count line accesses that reach DRAM (RC values
  are cached and written back on eviction).

The conventional baseline uses only ``reads`` and ``writes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

CATEGORIES = ("reads", "writes", "lookups", "dealloc", "refcount")


@dataclass
class DramStats:
    """Mutable counter block for DRAM accesses, by category."""

    reads: int = 0
    writes: int = 0
    lookups: int = 0
    dealloc: int = 0
    refcount: int = 0

    def total(self) -> int:
        """Total DRAM accesses across all categories."""
        return self.reads + self.writes + self.lookups + self.dealloc + self.refcount

    def as_dict(self) -> Dict[str, int]:
        """Category → count mapping (ordered as Figure 6's legend)."""
        return {name: getattr(self, name) for name in CATEGORIES}

    def add(self, other: "DramStats") -> None:
        """Accumulate another counter block into this one."""
        for name in CATEGORIES:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def snapshot(self) -> "DramStats":
        """An independent copy of the current counts."""
        return DramStats(**self.as_dict())

    def delta(self, since: "DramStats") -> "DramStats":
        """Counts accumulated since an earlier :meth:`snapshot`."""
        return DramStats(
            **{n: getattr(self, n) - getattr(since, n) for n in CATEGORIES}
        )

    def reset(self) -> None:
        """Zero all counters."""
        for name in CATEGORIES:
            setattr(self, name, 0)

    def estimated_time_ns(self, dram_latency_ns: float) -> float:
        """Crude serial-latency estimate: every access pays full latency.

        Used only by the analytical model of section 5.1.1; the paper's
        headline metric is the access *count*.
        """
        return self.total() * dram_latency_ns


@dataclass
class RowBuffer:
    """Open-row DRAM model: consecutive accesses to the same row are row
    hits; a different row costs a precharge+activate (row miss).

    Supports the section 3.1 claim that all DRAM commands of one
    lookup-by-content land in one row (the hash bucket), minimizing
    command bandwidth, energy and latency.
    """

    last_row: int = -1
    hits: int = 0
    misses: int = 0

    #: rough DDR3-class energy figures (nanojoules)
    ACTIVATE_NJ = 2.5
    RW_NJ = 1.0

    def access(self, row: int) -> bool:
        """Record an access to ``row``; True when it was a row hit."""
        if row == self.last_row:
            self.hits += 1
            return True
        self.last_row = row
        self.misses += 1
        return False

    def hit_rate(self) -> float:
        """Fraction of DRAM accesses served from the open row."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def energy_nj(self) -> float:
        """Crude energy estimate: activates on misses + per-access R/W."""
        return (self.misses * self.ACTIVATE_NJ
                + (self.hits + self.misses) * self.RW_NJ)


@dataclass
class TrafficCounter:
    """Cache-level hit/miss accounting (diagnostics, not a paper metric)."""

    hits: int = 0
    misses: int = 0
    lookup_hits: int = 0
    lookup_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def hit_rate(self) -> float:
        """Read hit rate; 0.0 when no accesses were recorded."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
