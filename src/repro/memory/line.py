"""The HICAMP line model: fixed-size lines of tagged 64-bit words.

A memory line holds ``line_bytes / 8`` words. Each word is one of:

* a plain 64-bit **data word** (represented as a Python ``int``);
* a **PLID reference** (:class:`PlidRef`) — a tagged pointer to another
  line, optionally carrying a *path-compaction* suffix (Figure 4a): the
  sequence of intra-line positions that a chain of elided single-child
  interior nodes would have traversed;
* an **inline value pack** (:class:`Inline`) — the *data-compaction*
  encoding (Figure 4b): several narrow values packed into one word slot
  together with their element width.

The paper stores the tag distinguishing data from PLIDs in spare ECC bits;
here the distinction is carried by the Python type. Content-uniqueness and
hashing operate on a canonical byte encoding of the tagged words
(:func:`encode_line`), so two lines are duplicates exactly when their
tagged contents are identical.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple, Union

#: The reserved PLID of the all-zero line. Reading it at any level yields
#: zero content; looking up all-zero content returns it without allocation.
ZERO_PLID = 0

#: A plain 64-bit data word.
DataWord = int


@dataclass(frozen=True)
class PlidRef:
    """A tagged reference word pointing at line ``plid``.

    Attributes:
        plid: the referenced Physical Line ID.
        path: path-compaction suffix — intra-line way positions of the
            elided single-child interior nodes, ordered from the level just
            below this word down toward the target. Empty when no path
            compaction applies. The paper encodes this in unused high-order
            PLID bits; we keep it symbolic and charge its encoded size in
            :func:`encode_line`.
    """

    plid: int
    path: Tuple[int, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.path:
            return "PlidRef(%d, path=%r)" % (self.plid, self.path)
        return "PlidRef(%d)" % self.plid


@dataclass(frozen=True)
class Inline(object):
    """Data-compaction word: ``values`` packed at ``width`` bytes each.

    ``span`` records how many logical leaf words the packed values replace
    (trailing zero elements of the subtree may be omitted from ``values``).
    """

    width: int
    values: Tuple[int, ...]
    span: int

    def __post_init__(self) -> None:
        if self.width not in (1, 2, 4, 8):
            raise ValueError("inline width must be 1, 2, 4 or 8 bytes")
        if len(self.values) * self.width > 8:
            raise ValueError("inline pack exceeds one 64-bit word")
        limit = 1 << (8 * self.width)
        for v in self.values:
            if not 0 <= v < limit:
                raise ValueError("value %d does not fit in %d bytes" % (v, self.width))

    def expand(self) -> Tuple[int, ...]:
        """Return the logical leaf words this pack represents."""
        out = list(self.values) + [0] * (self.span - len(self.values))
        return tuple(out)


Word = Union[DataWord, PlidRef, Inline]

#: A line is an immutable tuple of words.
Line = Tuple[Word, ...]

_U64 = struct.Struct(">Q")


def zero_line(words_per_line: int) -> Line:
    """The all-zero line for the given geometry."""
    return (0,) * words_per_line


def make_leaf(words: Sequence[int], words_per_line: int) -> Line:
    """Build a leaf line from up to ``words_per_line`` data words,
    zero-padded on the right (canonical left-to-right fill, section 2.2)."""
    if len(words) > words_per_line:
        raise ValueError("too many words for one line")
    padded = tuple(int(w) for w in words) + (0,) * (words_per_line - len(words))
    return padded


def is_zero_line(line: Line) -> bool:
    """True when every word of the line is a zero data word."""
    return all(w == 0 for w in line)


def line_child_plids(line: Line) -> Iterator[int]:
    """Yield the PLIDs of every non-zero child referenced by this line.

    Used by hardware reference counting: when a line is allocated it takes
    a reference on each child; when deallocated those references are
    dropped (the recursive-deallocation state machine of section 3.1).
    """
    for w in line:
        if isinstance(w, PlidRef) and w.plid != ZERO_PLID:
            yield w.plid


def encode_word(word: Word) -> bytes:
    """Canonical byte encoding of one tagged word (for hashing)."""
    if isinstance(word, PlidRef):
        return b"P" + _U64.pack(word.plid) + bytes(word.path)
    if isinstance(word, Inline):
        return (
            b"I"
            + bytes((word.width, word.span, len(word.values)))
            + b"".join(_U64.pack(v) for v in word.values)
        )
    return b"D" + _U64.pack(word & ((1 << 64) - 1))


def encode_line(line: Line) -> bytes:
    """Canonical byte encoding of a line's tagged content.

    Two lines are content-duplicates iff their encodings are equal; the
    deduplicating store hashes this encoding to choose the hash bucket and
    the 8-bit signature.
    """
    return b"".join(encode_word(w) for w in line)


def pack_words(data: bytes) -> Tuple[int, ...]:
    """Pack a byte string into big-endian 64-bit data words (zero-padded)."""
    if len(data) % 8:
        data = data + b"\x00" * (8 - len(data) % 8)
    return tuple(_U64.unpack_from(data, i)[0] for i in range(0, len(data), 8))


def unpack_words(words: Sequence[int], length: int) -> bytes:
    """Inverse of :func:`pack_words`: recover ``length`` bytes."""
    raw = b"".join(_U64.pack(w) for w in words)
    return raw[:length]
