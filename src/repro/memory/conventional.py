"""Conventional-architecture baseline: a two-level write-back cache
hierarchy over a flat address space (the paper's DineroIV analogue).

The evaluation (section 5) compares DRAM access counts between HICAMP and
a conventional machine with a 4-way 32 KB L1 data cache and a 16-way 4 MB
L2, at 16/32/64-byte lines. This module consumes an address trace —
``load(addr, size)`` / ``store(addr, size)`` — and counts the DRAM reads
(L2 misses) and DRAM writes (dirty L2 writebacks) it induces.

A small bump allocator (:class:`Arena`) lets application models lay out
their software data structures (hash tables, item chains, socket buffers)
in the flat address space.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.memory.stats import DramStats, RowBuffer, TrafficCounter
from repro.params import CacheGeometry, ConventionalConfig


class CacheLevel:
    """One set-associative, write-back, write-allocate cache level."""

    def __init__(self, geometry: CacheGeometry, name: str = "L?") -> None:
        self.geometry = geometry
        self.name = name
        self.traffic = TrafficCounter()
        self._num_sets = geometry.num_sets
        self._ways = geometry.ways
        self._line = geometry.line_bytes
        # Per set: line address -> dirty flag, in LRU order.
        self._sets: "list[OrderedDict[int, bool]]" = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    def access(self, line_addr: int, is_write: bool):
        """Access one cache line.

        Returns ``(missed, writeback_addr)`` where ``writeback_addr`` is
        the address of a dirty victim evicted by this access (or None).
        """
        set_idx = (line_addr // self._line) % self._num_sets
        ways = self._sets[set_idx]
        if line_addr in ways:
            ways.move_to_end(line_addr)
            if is_write:
                ways[line_addr] = True
            self.traffic.hits += 1
            return False, None
        self.traffic.misses += 1
        ways[line_addr] = is_write
        ways.move_to_end(line_addr)
        writeback = None
        if len(ways) > self._ways:
            victim, dirty = ways.popitem(last=False)
            self.traffic.evictions += 1
            if dirty:
                self.traffic.writebacks += 1
                writeback = victim
        return True, writeback

    def flush(self):
        """Evict all lines; yields addresses of dirty lines."""
        dirty_addrs = []
        for ways in self._sets:
            for addr, dirty in ways.items():
                if dirty:
                    dirty_addrs.append(addr)
            ways.clear()
        return dirty_addrs


class ConventionalMemory:
    """Flat memory behind L1+L2; counts DRAM reads and writebacks."""

    #: DRAM row size for the open-row model (a typical 8 KB row)
    ROW_BYTES = 8192

    def __init__(self, config: Optional[ConventionalConfig] = None) -> None:
        self.config = config or ConventionalConfig()
        self.dram = DramStats()
        self.rows = RowBuffer()
        self.l1 = CacheLevel(self.config.l1, "L1")
        self.l2 = CacheLevel(self.config.l2, "L2")
        self._line = self.config.line_bytes

    def _access_line(self, line_addr: int, is_write: bool) -> None:
        missed, wb1 = self.l1.access(line_addr, is_write)
        if wb1 is not None:
            # L1 dirty victim lands in L2 (write-back hierarchy).
            m2, wb2 = self.l2.access(wb1, True)
            if m2:
                self.dram.reads += 1  # allocate-on-writeback fill
                self.rows.access(wb1 // self.ROW_BYTES)
            if wb2 is not None:
                self.dram.writes += 1
                self.rows.access(wb2 // self.ROW_BYTES)
        if missed:
            m2, wb2 = self.l2.access(line_addr, False)
            if m2:
                self.dram.reads += 1
                self.rows.access(line_addr // self.ROW_BYTES)
            if wb2 is not None:
                self.dram.writes += 1
                self.rows.access(wb2 // self.ROW_BYTES)

    def access(self, addr: int, size: int, is_write: bool) -> None:
        """Access ``size`` bytes at ``addr``, touching each spanned line."""
        if size <= 0:
            return
        first = addr - (addr % self._line)
        last = addr + size - 1
        last -= last % self._line
        for line_addr in range(first, last + 1, self._line):
            self._access_line(line_addr, is_write)

    def load(self, addr: int, size: int = 8) -> None:
        """Record a load of ``size`` bytes at ``addr``."""
        self.access(addr, size, False)

    def store(self, addr: int, size: int = 8) -> None:
        """Record a store of ``size`` bytes at ``addr``."""
        self.access(addr, size, True)

    def drain(self) -> None:
        """Flush both levels so dirty data reaches the DRAM counters."""
        for addr in self.l1.flush():
            m2, wb2 = self.l2.access(addr, True)
            if m2:
                self.dram.reads += 1
                self.rows.access(addr // self.ROW_BYTES)
            if wb2 is not None:
                self.dram.writes += 1
                self.rows.access(wb2 // self.ROW_BYTES)
        for addr in self.l2.flush():
            self.dram.writes += 1
            self.rows.access(addr // self.ROW_BYTES)


class Arena:
    """Bump allocator laying software structures out in the flat space.

    Application models use it to assign addresses to hash-table buckets,
    item records and I/O buffers so their access traces have realistic
    locality structure.
    """

    def __init__(self, base: int = 0x10000, align: int = 16) -> None:
        self._next = base
        self._align = align

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the base address."""
        addr = self._next
        bump = size + (-size % self._align)
        self._next += bump
        return addr

    @property
    def used(self) -> int:
        """Total bytes allocated so far (including alignment padding)."""
        return self._next
