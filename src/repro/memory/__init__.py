"""Memory substrate: deduplicated content-addressable DRAM, HICAMP cache,
and a conventional cache-hierarchy baseline.

The public entry point is :class:`repro.memory.system.MemorySystem`, which
composes the deduplicating store (:mod:`repro.memory.dedup_store`) with the
HICAMP cache (:mod:`repro.memory.cache`) and exposes the two fundamental
operations of the architecture: ``read`` (by PLID) and ``lookup`` (by
content), plus hardware reference counting.
"""

from repro.memory.line import (
    DataWord,
    Inline,
    Line,
    PlidRef,
    ZERO_PLID,
    encode_line,
    is_zero_line,
    line_child_plids,
    make_leaf,
    zero_line,
)
from repro.memory.stats import DramStats, TrafficCounter
from repro.memory.dedup_store import DedupStore
from repro.memory.index import CuckooIndex, CuckooIndexStats, compute_fp_bits
from repro.memory.reclaim import EpochReclaimer, ReclaimStats, SlotAllocator
from repro.memory.cache import HicampCache
from repro.memory.system import MemorySystem
from repro.memory.conventional import CacheLevel, ConventionalMemory

__all__ = [
    "DataWord",
    "Inline",
    "Line",
    "PlidRef",
    "ZERO_PLID",
    "encode_line",
    "is_zero_line",
    "line_child_plids",
    "make_leaf",
    "zero_line",
    "DramStats",
    "TrafficCounter",
    "DedupStore",
    "CuckooIndex",
    "CuckooIndexStats",
    "compute_fp_bits",
    "EpochReclaimer",
    "ReclaimStats",
    "SlotAllocator",
    "HicampCache",
    "MemorySystem",
    "CacheLevel",
    "ConventionalMemory",
]
