"""The composed HICAMP memory system: deduplicating DRAM behind the
HICAMP cache.

This is the interface the rest of the simulator programs against. It
exposes the architecture's two fundamental operations plus hardware
reference counting:

* :meth:`MemorySystem.read` — line by PLID;
* :meth:`MemorySystem.lookup` — find-or-allocate by content (the returned
  reference is counted);
* :meth:`MemorySystem.incref` / :meth:`MemorySystem.decref` — reference
  management, with recursive deallocation handled by the store.
"""

from __future__ import annotations

from typing import Optional

from repro.memory.cache import HicampCache
from repro.memory.dedup_store import DedupStore
from repro.memory.line import Line, zero_line
from repro.memory.stats import DramStats
from repro.params import MachineConfig


class MemorySystem:
    """Deduplicated DRAM + HICAMP cache, with unified traffic accounting."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        self.store = DedupStore(self.config.memory,
                                verify_reads=self.config.memory.verify_reads)
        self.cache = HicampCache(self.store, self.config.cache)
        self._zero = zero_line(self.config.memory.words_per_line)

    # ------------------------------------------------------------------

    @property
    def words_per_line(self) -> int:
        """Data words per leaf line."""
        return self.config.memory.words_per_line

    @property
    def fanout(self) -> int:
        """Child entries per interior line (the DAG fan-out)."""
        return self.config.memory.fanout

    @property
    def line_bytes(self) -> int:
        """Line size in bytes."""
        return self.config.memory.line_bytes

    @property
    def dram(self) -> DramStats:
        """Off-chip DRAM access counters (the paper's headline metric)."""
        return self.store.stats

    @property
    def memo(self):
        """The store's structural memo (:mod:`repro.memory.memo`).

        Disabled by default so modeled statistics are untouched; the
        serving stack enables it for host-level speed.
        """
        return self.store.memo

    def dram_probe(self):
        """Context manager capturing the DRAM-access delta of a block.

        The observability layer's attribution primitive::

            with mem.dram_probe() as probe:
                kvp.put(key, value)
            probe.delta  # a DramStats of just this operation's traffic

        Deferred traffic (cache writebacks, RC evictions) lands when it
        reaches DRAM, not necessarily inside the probed block — call
        :meth:`drain` first for exact per-operation attribution.
        """
        from repro.obs.trace import DramProbe
        return DramProbe(self.dram)

    def read(self, plid: int) -> Line:
        """Read a line by PLID through the cache."""
        return self.cache.read(plid)

    def lookup(self, line: Line) -> int:
        """Find-or-allocate a line by content; the reference is counted."""
        return self.cache.lookup(line)

    def incref(self, plid: int, count: int = 1) -> None:
        """Add references to a line (a PLID value was copied/stored)."""
        self.store.incref(plid, count)

    def decref(self, plid: int, count: int = 1) -> None:
        """Drop references; lines reaching zero are recursively freed."""
        self.store.decref(plid, count)

    def refcount(self, plid: int) -> int:
        """Current reference count of a line."""
        return self.store.refcount(plid)

    def zero(self) -> Line:
        """The all-zero line for this geometry."""
        return self._zero

    # ------------------------------------------------------------------
    # replication surface

    def has_line(self, plid: int) -> bool:
        """True when ``plid`` names an allocated line (known-PLID test)."""
        return self.store.is_allocated(plid)

    def export_line(self, plid: int) -> Line:
        """A line's content for shipping to another machine (uncharged)."""
        return self.store.export_line(plid)

    def install_line(self, line: Line) -> "tuple[int, bool]":
        """Install a received line by content; returns ``(plid, created)``.

        Idempotent: already-present content dedups to its existing PLID.
        The returned reference is counted and owned by the caller.
        """
        return self.store.install_line(line)

    # ------------------------------------------------------------------

    def footprint_lines(self) -> int:
        """Unique allocated lines in DRAM."""
        return self.store.footprint_lines()

    def footprint_bytes(self) -> int:
        """Bytes of DRAM consumed by unique lines."""
        return self.store.footprint_bytes()

    def drain(self) -> None:
        """Flush caches so all deferred traffic reaches the DRAM counters.

        Call at the end of a measured run before reading :attr:`dram`.
        Quiesces the epoch reclaimer first (a no-op under ``immediate``
        reclamation), so every observer that drains before looking —
        machine auditors, HI fingerprints, persistence images — sees
        quiesced, immediate-equivalent state. The quiesce runs before
        the cache flush so dealloc listeners can invalidate cached
        copies of freed lines before they would be written back.
        """
        self.store.reclaim_quiesce()
        self.cache.flush()
        self.store.flush_rc_cache()
