"""The deduplicated main memory (section 3.1, Figure 2).

DRAM is divided into hash buckets, each modelling one DRAM row. A bucket
holds a *signature line* (one 8-bit signature per data way), a
*reference-count line*, and a number of data ways. A line lives in the
bucket selected by the hash of its content; its PLID is the concatenation
of its way number and its bucket number. When a bucket is full, lines
spill into a shared overflow area reached through the bucket's overflow
pointer.

The two fundamental operations are:

* :meth:`DedupStore.read_dram` — fetch a line by PLID (one DRAM read);
* :meth:`DedupStore.lookup` — find-or-allocate a line by content: read the
  signature line, compare signatures, read candidate data lines on
  signature match, and on a miss claim an empty way and update the
  signature line. The new line's data write is *deferred*: it is charged
  only when the cache eventually writes it back
  (:meth:`DedupStore.writeback`), matching section 3.1.

Reference counts are maintained exactly — incremented by content lookups
that match and by stores of a PLID into another line or a segment-map
entry, decremented when such a reference is dropped — and deallocation is
recursive over a line's tagged child PLIDs (the paper's hardware state
machine). RC traffic is filtered through a modelled RC cache so only
spills/fills reach the DRAM counters, as in the paper.

Under ``MemoryConfig.reclaim_kind="epoch"`` the recursive walk moves off
the release site: a line reaching zero is deferred (O(1)) to an
:class:`repro.memory.reclaim.EpochReclaimer` and freed later by bounded
drains between commit batches; slot reuse in either kind goes through a
:class:`repro.memory.reclaim.SlotAllocator` free list that reproduces
the legacy lowest-free-way / LIFO-overflow placement exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import BadPlidError, IntegrityError, MemoryExhaustedError
from repro.memory import hashing
from repro.memory.index import CuckooIndex
from repro.memory.line import (
    Line,
    ZERO_PLID,
    encode_line,
    is_zero_line,
    line_child_plids,
    zero_line,
)
from repro.memory.memo import StructuralMemo
from repro.memory.reclaim import EpochReclaimer, SlotAllocator
from repro.memory.stats import DramStats, RowBuffer
from repro.params import MemoryConfig


@dataclass
class _Bucket:
    """One hash bucket (DRAM row): signatures plus resident way → PLID."""

    signatures: List[int]
    by_encoding: Dict[bytes, int] = field(default_factory=dict)
    overflow: List[int] = field(default_factory=list)


@dataclass
class StoreCounters:
    """Operation-level counters (diagnostics beyond the DRAM categories)."""

    lookups: int = 0
    lookup_hits: int = 0
    allocations: int = 0
    deallocations: int = 0
    overflow_allocations: int = 0
    signature_false_positives: int = 0
    #: full-line compares performed against non-matching content (legacy:
    #: signature collisions + overflow-chain reads past other lines;
    #: cuckoo: fingerprint collisions) — the honest cross-index baseline
    false_positive_scans: int = 0
    #: lookups that had to walk a non-empty overflow chain (legacy only)
    bucket_overflows: int = 0


class _RcCache:
    """LRU model of reference-count caching (section 3.1).

    A newly allocated line's RC is created directly in the cache and
    propagated to DRAM only on eviction; RC updates for uncached lines
    first fill from DRAM. Only fills and dirty evictions are charged.
    """

    def __init__(self, capacity: int, stats: DramStats, rows: RowBuffer,
                 row_of) -> None:
        self._capacity = max(1, capacity)
        self._stats = stats
        self._rows = rows
        self._row_of = row_of
        self._entries: "OrderedDict[int, bool]" = OrderedDict()  # plid -> dirty
        self.hits = 0    # touches that found a cached RC entry
        self.fills = 0   # charged fills from DRAM
        self.spills = 0  # charged dirty evictions to DRAM

    @property
    def capacity(self) -> int:
        """Current entry capacity (resize-aware, see :meth:`resize`)."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def touch(self, plid: int, creating: bool = False) -> None:
        """Record an RC update to ``plid``, charging DRAM on fill/spill."""
        if plid in self._entries:
            self.hits += 1
            self._entries.move_to_end(plid)
            self._entries[plid] = True
            return
        if not creating:
            self._stats.refcount += 1  # fill the RC entry from DRAM
            self._rows.access(self._row_of(plid))
            self.fills += 1
        self._entries[plid] = True
        if len(self._entries) > self._capacity:
            victim, dirty = self._entries.popitem(last=False)
            if dirty:
                self._stats.refcount += 1  # spill dirty RC entry to DRAM
                self._rows.access(self._row_of(victim))
                self.spills += 1

    def resize(self, capacity: int) -> None:
        """Change capacity, spilling LRU overflow when shrinking.

        The store scales the RC cache with the cuckoo index's bucket
        count after an online resize (the resident-line population the
        index grew to hold is the RC working set too).
        """
        self._capacity = max(1, capacity)
        while len(self._entries) > self._capacity:
            victim, dirty = self._entries.popitem(last=False)
            if dirty:
                self._stats.refcount += 1
                self._rows.access(self._row_of(victim))
                self.spills += 1

    def drop(self, plid: int) -> None:
        """Discard the entry for a deallocated line (no writeback)."""
        self._entries.pop(plid, None)

    def flush(self) -> None:
        """Write back every dirty entry (end-of-run accounting)."""
        for _, dirty in self._entries.items():
            if dirty:
                self._stats.refcount += 1
        self._entries.clear()


class DedupStore:
    """Deduplicated, reference-counted, content-addressable line store."""

    def __init__(self, config: Optional[MemoryConfig] = None,
                 rc_cache_entries: int = 1 << 16,
                 verify_reads: bool = False) -> None:
        self.config = config or MemoryConfig()
        #: recompute content hashes on every DRAM read (section 3.1's
        #: extra error-detection; off by default for speed)
        self.verify_reads = verify_reads
        self.stats = DramStats()
        self.counters = StoreCounters()
        self._num_buckets = self.config.num_buckets
        self._data_ways = self.config.data_ways
        self._overflow_base = (self._data_ways + 1) * self._num_buckets
        self._next_overflow = self._overflow_base
        #: free-list allocator over bucket ways and overflow slots;
        #: placement decisions are byte-identical to the original scans
        self._slots = SlotAllocator(self._data_ways)
        self._buckets: Dict[int, _Bucket] = {}
        self._lines: Dict[int, Line] = {}
        self._refcounts: Dict[int, int] = {}
        self._pending_write: Set[int] = set()
        self._overflow_bucket: Dict[int, int] = {}
        #: open-row DRAM model (hash bucket == DRAM row, section 3.1)
        self.rows = RowBuffer()
        self._rc_base_entries = rc_cache_entries
        self._rc_cache = _RcCache(rc_cache_entries, self.stats, self.rows,
                                  self._row_of)
        self._zero = zero_line(self.config.words_per_line)
        #: canonical encoding of each live line, captured at allocation so
        #: deallocation (and dealloc-time index maintenance) never has to
        #: re-derive it
        self._enc_by_plid: Dict[int, bytes] = {}
        #: callbacks invoked with a PLID just before it is deallocated
        #: (the cache registers here to invalidate its copy).
        self.dealloc_listeners: List = []
        #: host-level structural memo (disabled by default; the serving
        #: stack and hotpath benchmarks enable it — see memo.py)
        self.memo = StructuralMemo()
        self.dealloc_listeners.append(self.memo.on_dealloc)
        #: opt-in cuckoo lookup-by-content path (index.py). Physical
        #: placement (_allocate) is identical under both kinds; only the
        #: way a lookup *finds* resident content differs, so PLIDs,
        #: refcounts and fingerprints never depend on the index kind.
        self._index: Optional[CuckooIndex] = None
        if self.config.index_kind == "cuckoo":
            self._index = CuckooIndex(
                initial_buckets=self.config.index_buckets,
                slots_per_bucket=self.config.index_slots,
                target_fp_rate=self.config.index_target_fp_rate,
                stats=self.stats, rows=self.rows)
            # resize-aware RC-cache sizing: an online index resize means
            # the resident-line population outgrew the startup estimate,
            # so the RC working set did too
            self._index.resize_listeners.append(self._on_index_resize)
        #: opt-in epoch-deferred reclamation (reclaim.py). ``immediate``
        #: keeps the paper's inline recursive dealloc byte-identical.
        self._reclaimer: Optional[EpochReclaimer] = None
        if self.config.reclaim_kind == "epoch":
            self._reclaimer = EpochReclaimer(self)

    def _on_index_resize(self, num_buckets: int) -> None:
        """Scale the RC cache with the index's post-resize capacity."""
        self._rc_cache.resize(
            max(self._rc_base_entries, num_buckets * self._index.slots))

    # ------------------------------------------------------------------
    # geometry helpers

    @property
    def words_per_line(self) -> int:
        """Words per line (DAG fan-out)."""
        return self.config.words_per_line

    def _row_of(self, plid: int) -> int:
        """DRAM row of a line: its hash bucket, or an overflow-area row."""
        if plid >= self._overflow_base:
            return self._num_buckets + (plid - self._overflow_base) // 64
        return plid % self._num_buckets

    def bucket_of(self, plid: int) -> int:
        """Hash-bucket index of a PLID (the cache indexes on these bits)."""
        if plid >= self._overflow_base:
            return self._overflow_bucket.get(plid, plid % self._num_buckets)
        return plid % self._num_buckets

    def is_allocated(self, plid: int) -> bool:
        """True when ``plid`` names a live line (the zero line is always live)."""
        return plid == ZERO_PLID or plid in self._lines

    # ------------------------------------------------------------------
    # fundamental operations

    def read_dram(self, plid: int) -> Line:
        """Read a line from DRAM by PLID, charging one DRAM read.

        The zero PLID is recognized without a memory access. When
        ``verify_reads`` is enabled, the content hash is recomputed and
        compared to the hash bucket the line lives in — the intrinsic
        error-detection capability of section 3.1.
        """
        if plid == ZERO_PLID:
            return self._zero
        try:
            line = self._lines[plid]
        except KeyError:
            raise BadPlidError("read of unallocated PLID %d" % plid)
        self.stats.reads += 1
        self.rows.access(self._row_of(plid))
        if self.verify_reads:
            self.verify_line(plid, line)
        return line

    def verify_line(self, plid: int, line: Optional[Line] = None) -> None:
        """Check a line's content hash against its bucket (section 3.1).

        Overflow-resident lines carry no hash constraint (they were
        placed by capacity, not content); for bucket-resident lines a
        mismatch raises :class:`IntegrityError`.
        """
        if plid == ZERO_PLID:
            return
        if line is None:
            line = self.peek(plid)
        if plid >= self._overflow_base:
            return
        expected = hashing.bucket_hash(encode_line(line), self._num_buckets)
        if expected != plid % self._num_buckets:
            raise IntegrityError(
                "PLID %d content hashes to bucket %d but lives in bucket %d"
                % (plid, expected, plid % self._num_buckets))

    def corrupt_line_for_test(self, plid: int, line: Line) -> None:
        """Fault injection: silently replace a line's stored content.

        Test-only hook for exercising :meth:`verify_line` — bypasses the
        content indexes on purpose, exactly like a DRAM bit flip would.
        """
        if plid not in self._lines:
            raise BadPlidError("cannot corrupt unallocated PLID %d" % plid)
        self._lines[plid] = line
        for listener in self.dealloc_listeners:
            listener(plid)  # drop any clean cached copy

    def peek(self, plid: int) -> Line:
        """Read a line without charging DRAM traffic (used by the cache
        after it has accounted the access itself, and by test assertions)."""
        if plid == ZERO_PLID:
            return self._zero
        try:
            return self._lines[plid]
        except KeyError:
            raise BadPlidError("read of unallocated PLID %d" % plid)

    def export_line(self, plid: int) -> Line:
        """A line's content for shipping to another machine.

        The replication sender walks a segment DAG and exports each line
        once; like :meth:`peek` this charges no DRAM traffic (a real
        controller would stream lines over a side channel, and the wire
        accounting lives in the replication layer's own metrics).
        """
        return self.peek(plid)

    def install_line(self, line: Line,
                     enc: Optional[bytes] = None) -> Tuple[int, bool]:
        """Install a line received from another machine.

        Exactly :meth:`lookup` — lookup-by-content is what makes
        replication installs idempotent: a re-sent or already-present
        line dedups to the existing PLID (``created=False``) instead of
        occupying new DRAM. The returned reference is counted and owned
        by the caller. Any tagged child PLIDs in ``line`` must already
        be allocated in *this* store (the wire protocol's
        children-before-parents order guarantees it).
        """
        for child in line_child_plids(line):
            if child != ZERO_PLID and child not in self._lines:
                raise BadPlidError(
                    "install references unallocated child PLID %d" % child)
        return self.lookup(line, enc)

    def lookup(self, line: Line,
               enc: Optional[bytes] = None) -> Tuple[int, bool]:
        """Find-or-allocate ``line`` by content.

        Returns ``(plid, created)``. The returned reference is counted: a
        matching lookup increments the line's reference count; a fresh
        allocation starts it at one (section 3.1).

        ``enc`` is the line's canonical encoding when the caller already
        derived it (the HICAMP cache computes it for its own set index);
        passing it avoids re-encoding on this hot path.

        DRAM charging follows the paper's step list: one signature-line
        read; one data-line read per signature match (false positives cost
        extra reads); on allocation, one signature-line write. The data
        line itself is written back later by the cache.
        """
        if is_zero_line(line):
            return ZERO_PLID, False
        if enc is None:
            enc = encode_line(line)
        if self._index is not None:
            return self._lookup_cuckoo(line, enc)
        bucket_idx = hashing.bucket_hash(enc, self._num_buckets)
        sig = hashing.signature(enc)
        bucket = self._buckets.get(bucket_idx)
        if bucket is None:
            bucket = _Bucket(signatures=[0] * (self._data_ways + 1))
            self._buckets[bucket_idx] = bucket

        self.counters.lookups += 1
        self.stats.lookups += 1  # signature line read
        self.rows.access(bucket_idx)

        matches = sum(1 for s in bucket.signatures if s == sig)
        existing = bucket.by_encoding.get(enc)
        if existing is not None:
            # Read each candidate data line with a matching signature —
            # all within the same DRAM row as the signature line.
            self.stats.lookups += max(1, matches)
            for _ in range(max(1, matches)):
                self.rows.access(bucket_idx)
            self.counters.signature_false_positives += max(0, matches - 1)
            self.counters.false_positive_scans += max(0, matches - 1)
            self.counters.lookup_hits += 1
            self._refcounts[existing] += 1
            self._rc_cache.touch(existing)
            return existing, False
        if matches:
            # Signature collisions with different content: candidate reads.
            self.stats.lookups += matches
            for _ in range(matches):
                self.rows.access(bucket_idx)
            self.counters.signature_false_positives += matches
            self.counters.false_positive_scans += matches
        # Check the overflow chain for this bucket.
        if bucket.overflow:
            self.counters.bucket_overflows += 1
        for plid in bucket.overflow:
            self.stats.lookups += 1
            self.rows.access(self._row_of(plid))
            if self._lines[plid] == line:
                self.counters.lookup_hits += 1
                self._refcounts[plid] += 1
                self._rc_cache.touch(plid)
                return plid, False
            self.counters.false_positive_scans += 1

        plid = self._allocate(line, enc, bucket_idx, sig, bucket)
        return plid, True

    def _lookup_cuckoo(self, line: Line, enc: bytes) -> Tuple[int, bool]:
        """Find-or-allocate through the cuckoo index.

        The index narrows candidates by adaptive-width fingerprint; each
        surviving candidate costs one charged data-line read for the
        full content compare (a mismatch is a false-positive scan).
        Physical allocation is byte-identical to the legacy path.
        """
        self.counters.lookups += 1
        key = CuckooIndex.key_of(enc)

        def match(plid: int) -> bool:
            self.stats.lookups += 1  # candidate data-line read
            self.rows.access(self._row_of(plid))
            if self._enc_by_plid.get(plid) == enc:
                return True
            self.counters.false_positive_scans += 1
            return False

        found = self._index.get(key, match)
        if found is not None:
            self.counters.lookup_hits += 1
            self._refcounts[found] += 1
            self._rc_cache.touch(found)
            return found, False
        bucket_idx = hashing.bucket_hash(enc, self._num_buckets)
        sig = hashing.signature(enc)
        bucket = self._buckets.get(bucket_idx)
        if bucket is None:
            bucket = _Bucket(signatures=[0] * (self._data_ways + 1))
            self._buckets[bucket_idx] = bucket
        plid = self._allocate(line, enc, bucket_idx, sig, bucket)
        self._index.insert(key, plid)
        return plid, True

    def _allocate(self, line: Line, enc: bytes, bucket_idx: int, sig: int,
                  bucket: _Bucket) -> int:
        """Claim a way (or an overflow slot) for new content.

        Slot choice goes through the :class:`SlotAllocator` free lists;
        the claimed way/overflow PLID — and all DRAM charging — are
        byte-identical to the original inline scans.
        """
        way = self._slots.claim_way(bucket_idx, bucket.signatures)
        if way is not None:
            plid = way * self._num_buckets + bucket_idx
            bucket.signatures[way] = sig
            self.stats.lookups += 1  # signature line written back
            self.rows.access(bucket_idx)
        else:
            plid = self._slots.claim_overflow()
            if plid is None:
                plid = self._next_overflow
                self._next_overflow += 1
                if plid - self._overflow_base >= self.config.overflow_lines:
                    raise MemoryExhaustedError(
                        "overflow area exhausted (%d lines)"
                        % self.config.overflow_lines
                    )
            bucket.overflow.append(plid)
            self._overflow_bucket[plid] = bucket_idx
            self.counters.overflow_allocations += 1
            self.stats.lookups += 1  # overflow pointer update
            self.rows.access(bucket_idx)
        bucket.by_encoding[enc] = plid
        self._lines[plid] = line
        self._enc_by_plid[plid] = enc
        self._refcounts[plid] = 1
        self._pending_write.add(plid)
        self._rc_cache.touch(plid, creating=True)
        self.counters.allocations += 1
        # A new line takes one reference on each child PLID it stores
        # (hardware tracks sharing through the per-word tags).
        for child in line_child_plids(line):
            self._refcounts[child] += 1
            self._rc_cache.touch(child)
        return plid

    def writeback(self, plid: int) -> None:
        """Charge the deferred DRAM write of a newly created line.

        Called by the cache when a dirty (never-yet-written) line is
        evicted. A line deallocated before eviction is never written.
        """
        if plid in self._pending_write and plid in self._lines:
            self._pending_write.discard(plid)
            self.stats.writes += 1
            self.rows.access(self._row_of(plid))

    # ------------------------------------------------------------------
    # reference counting

    def refcount(self, plid: int) -> int:
        """Current reference count of a line (0 for the zero line)."""
        if plid == ZERO_PLID:
            return 0
        return self._refcounts.get(plid, 0)

    def incref(self, plid: int, count: int = 1) -> None:
        """Add references to a line (a PLID was stored somewhere)."""
        if plid == ZERO_PLID or count == 0:
            return
        if plid not in self._refcounts:
            raise BadPlidError("incref of unallocated PLID %d" % plid)
        self._refcounts[plid] += count
        self._rc_cache.touch(plid)

    def decref(self, plid: int, count: int = 1) -> None:
        """Drop references to a line, deallocating (recursively) at zero."""
        if plid == ZERO_PLID or count == 0:
            return
        # Iterative worklist: recursive deallocation may cascade deeply
        # (the paper handles this with a hardware state machine).
        work: List[Tuple[int, int]] = [(plid, count)]
        while work:
            p, c = work.pop()
            if p == ZERO_PLID:
                continue
            rc = self._refcounts.get(p)
            if rc is None:
                raise BadPlidError("decref of unallocated PLID %d" % p)
            rc -= c
            if rc > 0:
                self._refcounts[p] = rc
                self._rc_cache.touch(p)
                continue
            if rc < 0:
                raise BadPlidError("refcount underflow on PLID %d" % p)
            if self._reclaimer is not None:
                # O(1) hot-path free: the line stays resident at count
                # zero (resurrectable by content lookup); the subtree
                # walk and the dealloc listeners run at drain time.
                self._refcounts[p] = 0
                self._rc_cache.touch(p)
                self._reclaimer.on_zero(p)
                continue
            for child in line_child_plids(self._lines[p]):
                work.append((child, 1))
            self._deallocate(p)

    def _reclaim_one(self, plid: int) -> None:
        """Drain-time free of one deferred line.

        Children-first by deferral: each child loses its reference
        through the normal decref path, so a child reaching zero is
        itself deferred rather than freed inline — one call does
        O(fanout) work. Only then is the line deallocated (listeners,
        index removal, slot release)."""
        for child in line_child_plids(self._lines[plid]):
            self.decref(child, 1)
        self._deallocate(plid)

    def _deallocate(self, plid: int) -> None:
        """Free a line: zero its signature and release its way."""
        for listener in self.dealloc_listeners:
            listener(plid)
        line = self._lines.pop(plid)
        enc = self._enc_by_plid.pop(plid, None)
        if enc is None:
            enc = encode_line(line)
        if self._index is not None:
            # keyed off the *stored* encoding, so a silently corrupted
            # line still unindexes cleanly (the audit flags it instead)
            self._index.remove(CuckooIndex.key_of(enc), plid)
        bucket_idx = self.bucket_of(plid)
        bucket = self._buckets[bucket_idx]
        bucket.by_encoding.pop(enc, None)
        if plid >= self._overflow_base:
            bucket.overflow.remove(plid)
            self._overflow_bucket.pop(plid, None)
            self._slots.release_overflow(plid)
        else:
            way = plid // self._num_buckets
            bucket.signatures[way] = 0
            self._slots.release_way(bucket_idx, way)
        del self._refcounts[plid]
        self._pending_write.discard(plid)
        self._rc_cache.drop(plid)
        self.counters.deallocations += 1
        # Zeroing the signature is one DRAM access; a line deallocated
        # before its deferred write never reaches DRAM at all.
        self.stats.dealloc += 1
        self.rows.access(self._row_of(plid))

    # ------------------------------------------------------------------
    # accounting / inspection

    def footprint_lines(self) -> int:
        """Number of allocated (unique) lines, excluding the zero line.

        Under epoch reclamation this includes deferred-dead lines until
        they drain; quiesce first for immediate-equivalent numbers."""
        return len(self._lines)

    def footprint_bytes(self) -> int:
        """Bytes of DRAM consumed by allocated data lines."""
        return len(self._lines) * self.config.line_bytes

    def flush_rc_cache(self) -> None:
        """Spill all dirty cached reference counts (end-of-run accounting)."""
        self._rc_cache.flush()

    def live_plids(self) -> List[int]:
        """All allocated PLIDs (test/diagnostic helper)."""
        return list(self._lines)

    def check_refcounts(self) -> None:
        """Verify stored refcounts equal actual in-memory references.

        Counts references from line words only; callers owning root
        references (segment maps, iterator registers, Python handles) must
        account for them separately. Raises ``AssertionError`` on drift.
        Test/diagnostic helper — O(lines).
        """
        internal: Dict[int, int] = {}
        for line in self._lines.values():
            for child in line_child_plids(line):
                internal[child] = internal.get(child, 0) + 1
        for plid, rc in self._refcounts.items():
            inside = internal.get(plid, 0)
            if rc < inside:
                raise AssertionError(
                    "PLID %d refcount %d below internal references %d"
                    % (plid, rc, inside)
                )

    # ------------------------------------------------------------------
    # reclamation

    @property
    def reclaimer(self) -> Optional[EpochReclaimer]:
        """The epoch reclaimer, or None under ``immediate`` reclamation."""
        return self._reclaimer

    @property
    def slots(self) -> SlotAllocator:
        """The free-list slot allocator (persistence serializes its
        overflow stack)."""
        return self._slots

    def reclaim_advance(self, budget: Optional[int] = None) -> int:
        """Advance the reclamation epoch and drain up to ``budget``
        deferred lines; a no-op (0) under ``immediate`` reclamation.
        The shard router calls this between commit batches."""
        if self._reclaimer is None:
            return 0
        return self._reclaimer.advance(budget)

    def reclaim_quiesce(self) -> int:
        """Synchronously drain *all* deferred reclamation (no-op under
        ``immediate``). After this, state is byte-identical to an
        immediate-kind store that ran the same workload — the contract
        audits, persistence images and fingerprint observers rely on."""
        if self._reclaimer is None:
            return 0
        return self._reclaimer.quiesce()

    def reclaim_snapshot(self) -> Dict:
        """JSON-safe view of reclamation state (stats json; schema-safe:
        every key is present under both kinds)."""
        snap: Dict = {
            "kind": self.config.reclaim_kind,
            "free_slots": self._slots.free_slots(),
            "allocator": self._slots.snapshot(),
        }
        if self._reclaimer is not None:
            snap.update(self._reclaimer.snapshot())
        else:
            snap.update({
                "epoch": 0, "pending_lines": 0, "deferred_total": 0,
                "drained_freed": 0, "drained_resurrected": 0,
                "drained_stale": 0, "epochs_advanced": 0, "quiesces": 0,
                "max_pending": 0,
            })
        return snap

    # ------------------------------------------------------------------
    # lookup-by-content index

    @property
    def index(self) -> Optional[CuckooIndex]:
        """The cuckoo index, or None under the legacy path."""
        return self._index

    def index_snapshot(self) -> Dict:
        """JSON-safe view of the lookup-by-content path (stats json)."""
        snap: Dict = {"kind": self.config.index_kind}
        snap["false_positive_scans"] = self.counters.false_positive_scans
        snap["bucket_overflows"] = self.counters.bucket_overflows
        snap["signature_false_positives"] = \
            self.counters.signature_false_positives
        if self._index is not None:
            snap["cuckoo"] = self._index.snapshot()
        return snap

    def reindex(self) -> None:
        """Rebuild derived lookup state from the stored lines.

        Used after :func:`repro.core.persistence.restore_machine`
        repopulates ``_lines``/``_buckets`` directly: recaptures the
        canonical encoding of every live line and, under the cuckoo
        kind, rebuilds the index table from scratch. Charges no DRAM
        (restore is out-of-band, like replication's export path).
        """
        if self._index is not None:
            self._index = CuckooIndex(
                initial_buckets=self.config.index_buckets,
                slots_per_bucket=self.config.index_slots,
                target_fp_rate=self.config.index_target_fp_rate,
                stats=None, rows=None)
            self._index.resize_listeners.append(self._on_index_resize)
        for plid, line in self._lines.items():
            enc = self._enc_by_plid.get(plid)
            if enc is None:
                enc = encode_line(line)
                self._enc_by_plid[plid] = enc
            if self._index is not None:
                self._index.insert(CuckooIndex.key_of(enc), plid)
        if self._index is not None:
            # rebuilt uncharged; live operation from here on is charged
            self._index._dram = self.stats
            self._index._rows = self.rows

    def index_failures(self) -> List[str]:
        """Prove the index is exactly reconstructible from live lines.

        Keys are derived from each line's *actual stored content* (not
        the captured allocation-time encoding), so a silently corrupted
        line surfaces as an index mismatch here as well as in the
        canonical-form audit. Returns failure strings; empty = clean.
        """
        failures: List[str] = []
        if self._index is not None:
            expected = {
                plid: CuckooIndex.key_of(encode_line(line))
                for plid, line in self._lines.items()
            }
            failures.extend(self._index.audit(expected))
            return failures
        # Legacy: the per-bucket by_encoding maps must exactly cover the
        # live lines, each reachable under its current content hash.
        total = sum(len(b.by_encoding) for b in self._buckets.values())
        if total != len(self._lines):
            failures.append(
                "index: %d by_encoding entries for %d live lines"
                % (total, len(self._lines)))
        for plid, line in self._lines.items():
            enc = encode_line(line)
            bucket = self._buckets.get(
                hashing.bucket_hash(enc, self._num_buckets))
            if bucket is None or bucket.by_encoding.get(enc) != plid:
                failures.append(
                    "index: live PLID %d is not reachable by its content"
                    % plid)
        return failures
