"""Epoch-deferred reclamation and free-list slot allocation.

HICAMP's recursive refcount deallocation (the paper's hardware state
machine behind :meth:`~repro.memory.dedup_store.DedupStore.decref`) is
the last unbounded hot-path operation in the reproduction: dropping a
big root to zero cascades decrements through the whole subtree,
stalling the commit that dropped it. Following the constant-time
allocate/free line of work (Blelloch & Wei) and immediate-reclamation
hardware primitives (Singh/Brown/Spear) referenced in PAPERS.md, this
module splits that work off the commit site:

* :class:`EpochReclaimer` — the store calls :meth:`EpochReclaimer.
  on_zero` when a line's count reaches zero under
  ``reclaim_kind="epoch"``. The hot path only appends the PLID to a
  per-epoch deferral queue (O(1)); the line stays resident at count
  zero. :meth:`EpochReclaimer.drain` then walks deferred subtrees
  incrementally under a budget — freeing a line decrements its
  children, and any child that reaches zero is *re-deferred* to the
  tail of the queue, so one call never does more than
  ``budget * fanout`` decrements. :meth:`EpochReclaimer.advance` is
  wired into the shard router between commit batches;
  :meth:`EpochReclaimer.quiesce` drains everything synchronously for
  audits, persistence images and replication FORGET flushing.

* :class:`SlotAllocator` — a free-list over line slots (per-bucket way
  bitmasks plus the overflow-area stack) so
  :meth:`~repro.memory.dedup_store.DedupStore._allocate` reuses slots
  released by drained epochs in O(1) instead of growing the PLID
  space under churn. Way selection stays *lowest-free-way* and
  overflow reuse stays LIFO, byte-identical to the legacy scan, so
  PLID assignment — and therefore machine images and modeled paper
  statistics — does not depend on this module.

Two consequences of deferral are deliberate:

* **dealloc listeners fire at drain time**, not at release time. The
  memo invalidation, index unindex, RC-cache drop and replication
  FORGET hooks all key off a PLID that is about to be *reused* — and a
  deferred line's slot is not reusable until it is actually freed, so
  firing late is not just safe but required for the FORGET protocol's
  "a known PLID is never silently reused" invariant.
* **deferred-dead lines can resurrect**: the content indexes still map
  their content, so a lookup landing on a count-zero line simply
  increments it back to one (a dedup hit). The drain recognizes the
  resurrection (count > 0) and skips the queue entry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple


@dataclass
class SlotAllocatorStats:
    """Free-list maintenance counters (diagnostics)."""

    ways_reused: int = 0        # bucket ways claimed off a free mask
    overflow_reused: int = 0    # overflow slots claimed off the stack
    mask_builds: int = 0        # lazy mask constructions from signatures


class SlotAllocator:
    """Free-list over line slots: bucket ways and overflow PLIDs.

    Per-bucket free ways are tracked as a bitmask (bit ``w`` set = way
    ``w`` free), built lazily from the bucket's signature line the
    first time the bucket allocates and kept in sync on every release —
    claiming the lowest set bit reproduces the legacy lowest-free-way
    scan exactly, in O(1). The overflow free list is a LIFO stack,
    identical to the store's original behaviour.
    """

    def __init__(self, data_ways: int) -> None:
        self.data_ways = data_ways
        self.stats = SlotAllocatorStats()
        self._way_masks: Dict[int, int] = {}
        #: recycled overflow-area PLIDs (LIFO); persistence serializes
        #: this list verbatim under the image's ``free_overflow`` key
        self.free_overflow: List[int] = []

    # ------------------------------------------------------------------
    # bucket ways

    def claim_way(self, bucket_idx: int, signatures: List[int]
                  ) -> Optional[int]:
        """Lowest free way of a bucket, or None when the bucket is full."""
        mask = self._way_masks.get(bucket_idx)
        if mask is None:
            mask = 0
            for w in range(1, self.data_ways + 1):
                if signatures[w] == 0:
                    mask |= 1 << w
            self.stats.mask_builds += 1
        if not mask:
            self._way_masks[bucket_idx] = 0
            return None
        low = mask & -mask
        self._way_masks[bucket_idx] = mask ^ low
        self.stats.ways_reused += 1
        return low.bit_length() - 1

    def release_way(self, bucket_idx: int, way: int) -> None:
        """Return a way to its bucket's free mask (if one is built)."""
        mask = self._way_masks.get(bucket_idx)
        if mask is not None:
            self._way_masks[bucket_idx] = mask | (1 << way)
        # no mask yet: the lazy build will see the zeroed signature

    # ------------------------------------------------------------------
    # overflow slots

    def claim_overflow(self) -> Optional[int]:
        """Pop a recycled overflow PLID, or None when the stack is empty."""
        if self.free_overflow:
            self.stats.overflow_reused += 1
            return self.free_overflow.pop()
        return None

    def release_overflow(self, plid: int) -> None:
        """Push a freed overflow PLID for reuse."""
        self.free_overflow.append(plid)

    # ------------------------------------------------------------------
    # accounting

    def free_slots(self) -> int:
        """Tracked free-list occupancy: free ways in built masks plus
        recycled overflow slots (the obs free-list gauge)."""
        ways = sum(bin(mask).count("1")
                   for mask in self._way_masks.values())
        return ways + len(self.free_overflow)

    def snapshot(self) -> Dict:
        """JSON-safe free-list state and maintenance counters."""
        return {
            "free_ways": self.free_slots() - len(self.free_overflow),
            "free_overflow": len(self.free_overflow),
            "ways_reused": self.stats.ways_reused,
            "overflow_reused": self.stats.overflow_reused,
            "mask_builds": self.stats.mask_builds,
        }


@dataclass
class ReclaimStats:
    """Lifecycle counters of the epoch reclaimer."""

    deferred_total: int = 0       # release-to-zero pushes (O(1) frees)
    drained_freed: int = 0        # deferred lines actually deallocated
    drained_resurrected: int = 0  # entries skipped: content re-looked-up
    drained_stale: int = 0        # entries skipped: already freed
    epochs_advanced: int = 0
    quiesces: int = 0
    max_pending: int = 0          # deepest the deferral queue has been


class EpochReclaimer:
    """Per-epoch deferral queue with bounded incremental drain.

    Owned by a :class:`~repro.memory.dedup_store.DedupStore` running
    under ``reclaim_kind="epoch"``; the store routes every
    release-to-zero through :meth:`on_zero` and performs the actual
    per-line free when the drain calls back into
    ``DedupStore._reclaim_one``.
    """

    kind = "epoch"

    def __init__(self, store) -> None:
        self._store = store
        #: (epoch sealed in, plid) in deferral order; children freed by
        #: the drain re-defer to the tail, keeping any single drain
        #: step O(fanout)
        self._pending: Deque[Tuple[int, int]] = deque()
        self.epoch = 0
        self.stats = ReclaimStats()

    # ------------------------------------------------------------------
    # hot path

    def on_zero(self, plid: int) -> None:
        """Defer a released-to-zero line — O(1), no subtree walk."""
        self._pending.append((self.epoch, plid))
        self.stats.deferred_total += 1
        if len(self._pending) > self.stats.max_pending:
            self.stats.max_pending = len(self._pending)

    # ------------------------------------------------------------------
    # drains

    def pending(self) -> int:
        """Deferred lines awaiting reclamation."""
        return len(self._pending)

    def drain(self, budget: Optional[int] = None) -> int:
        """Free up to ``budget`` deferred lines (all of them if None).

        Children-first in effect: freeing a line decrements its
        children through the store's normal decref, and any child
        reaching zero re-defers to the tail of this same queue — so an
        unbudgeted drain reclaims whole subtrees and a budgeted one
        makes monotonic progress without ever exceeding
        ``budget * fanout`` decrements. Returns the lines freed.
        """
        store = self._store
        freed = 0
        while self._pending and (budget is None or freed < budget):
            _, plid = self._pending.popleft()
            if plid not in store._lines:
                # freed by an earlier queue entry for the same PLID
                self.stats.drained_stale += 1
                continue
            if store._refcounts.get(plid, 0) > 0:
                # resurrected: a content lookup found the dead line and
                # revived it (dedup hit); it is live again, skip
                self.stats.drained_resurrected += 1
                continue
            store._reclaim_one(plid)
            self.stats.drained_freed += 1
            freed += 1
        return freed

    def advance(self, budget: Optional[int] = None) -> int:
        """Seal the current epoch and drain up to ``budget`` lines.

        The shard router calls this between commit batches: frees
        deferred by one batch are reclaimed — bounded — before the
        next batch commits. Returns the lines freed.
        """
        self.epoch += 1
        self.stats.epochs_advanced += 1
        return self.drain(budget)

    def quiesce(self) -> int:
        """Drain *everything* synchronously; returns the lines freed.

        The contract point for every observer of exact state: machine
        audits, history-independence fingerprints, persistence images
        and replication FORGET flushing all quiesce first (wired
        through :meth:`repro.memory.system.MemorySystem.drain`), after
        which the store is byte-identical to an
        ``reclaim_kind="immediate"`` store that ran the same workload.
        """
        self.stats.quiesces += 1
        self.epoch += 1
        self.stats.epochs_advanced += 1
        return self.drain(None)

    # ------------------------------------------------------------------
    # accounting

    def snapshot(self) -> Dict:
        """JSON-safe view (obs adapter / ``stats json``)."""
        return {
            "epoch": self.epoch,
            "pending_lines": len(self._pending),
            "deferred_total": self.stats.deferred_total,
            "drained_freed": self.stats.drained_freed,
            "drained_resurrected": self.stats.drained_resurrected,
            "drained_stale": self.stats.drained_stale,
            "epochs_advanced": self.stats.epochs_advanced,
            "quiesces": self.stats.quiesces,
            "max_pending": self.stats.max_pending,
        }
