"""Per-processor transient memory (section 3.3 and footnote 2).

Two of the paper's mechanisms live outside the deduplicated region:

* *transient lines* — the iterator register buffers stores in "a
  pre-defined, per-processor area of the memory that operates outside of
  the normal duplicate-suppressed region", converted to content-unique
  lines only at commit;
* *conventional-mode memory* — "a portion of the memory can operate in a
  conventional, non-deduplicated mode for memory regions that are
  expected to be modified frequently, such as thread stacks".

:class:`TransientRegion` models one such per-processor area: a small,
reused buffer whose accesses run through a conventional cache (so a
register's working set of uncommitted lines is cheap, while overflowing
the region spills real conventional DRAM traffic). Transient lines need
no coherence — they are private until converted (footnote 7).
"""

from __future__ import annotations

from typing import Dict

from repro.memory.conventional import ConventionalMemory
from repro.memory.stats import DramStats
from repro.params import CacheGeometry, ConventionalConfig


class TransientRegion:
    """A reusable per-processor scratch area in conventional mode."""

    def __init__(self, size_bytes: int = 64 * 1024,
                 line_bytes: int = 64) -> None:
        self.size_bytes = size_bytes
        # a small private cache in front of the region: reused transient
        # buffers mostly stay on chip
        self._mem = ConventionalMemory(ConventionalConfig(
            line_bytes=line_bytes,
            l1=CacheGeometry(size_bytes=min(8 * 1024, size_bytes), ways=4,
                             line_bytes=line_bytes),
            l2=CacheGeometry(size_bytes=min(32 * 1024, size_bytes), ways=8,
                             line_bytes=line_bytes),
        ))
        self._slots: Dict[object, int] = {}  # logical slot -> address
        self._next = 0

    # ------------------------------------------------------------------

    def _address(self, slot) -> int:
        addr = self._slots.get(slot)
        if addr is None:
            addr = (self._next * 8) % self.size_bytes  # region wraps (reuse)
            self._slots[slot] = addr
            self._next += 1
        return addr

    def write_word(self, slot) -> None:
        """Charge one word store into the region."""
        self._mem.store(self._address(slot), 8)

    def read_word(self, slot) -> None:
        """Charge one word load from the region."""
        self._mem.load(self._address(slot), 8)

    def reset(self) -> None:
        """Recycle the region (commit/abort released the buffer)."""
        self._slots.clear()
        self._next = 0

    # ------------------------------------------------------------------

    @property
    def dram(self) -> DramStats:
        """Conventional DRAM traffic caused by the region (spills only;
        a resident working set costs nothing off-chip)."""
        return self._mem.dram

    def drain(self) -> None:
        """Flush the region's cache (end-of-run accounting)."""
        self._mem.drain()

    def live_words(self) -> int:
        """Distinct transient words currently tracked."""
        return len(self._slots)
