"""The HICAMP cache (section 3.1, Figure 3).

Like the main memory, the cache supports both fundamental operations:

* **read** by PLID — a conventional set-associative probe, except the
  index is taken from the PLID's hash-bucket bits;
* **lookup-by-content** — because each main-memory hash bucket maps to
  exactly one cache set (the cache is indexed by a subset of the content
  hash bits carried in the PLID), a content lookup needs to search only a
  single set: hash the content, probe that one set, compare contents, and
  on a hit recompose the PLID from the matching way's tag.

Data lines are immutable, so there is no coherence problem and no dirty
state in the conventional sense; the only writeback is the *deferred
allocation write* of a newly created line, charged to the store when the
line is evicted (or never, if it was deallocated first).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.memory import hashing
from repro.memory.dedup_store import DedupStore
from repro.memory.line import Line, ZERO_PLID, encode_line, is_zero_line
from repro.memory.stats import TrafficCounter
from repro.params import CacheGeometry


class HicampCache:
    """Set-associative cache over a :class:`DedupStore`, hash-indexed."""

    def __init__(self, store: DedupStore, geometry: Optional[CacheGeometry] = None) -> None:
        if geometry is None:
            geometry = CacheGeometry(
                size_bytes=4 * 1024 * 1024,
                ways=16,
                line_bytes=store.config.line_bytes,
            )
        if geometry.line_bytes != store.config.line_bytes:
            raise ValueError("cache line size must match memory line size")
        self.store = store
        self.geometry = geometry
        self.traffic = TrafficCounter()
        self._num_sets = geometry.num_sets
        self._ways = geometry.ways
        # Per set: PLID -> Line in LRU order. Content search scans one set.
        self._sets: "list[OrderedDict[int, Line]]" = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self._where: "dict[int, int]" = {}  # plid -> set index (for invalidate)
        store.dealloc_listeners.append(self.invalidate)

    # ------------------------------------------------------------------

    def _set_index_for_plid(self, plid: int) -> int:
        return self.store.bucket_of(plid) % self._num_sets

    def _insert(self, set_idx: int, plid: int, line: Line) -> None:
        ways = self._sets[set_idx]
        ways[plid] = line
        ways.move_to_end(plid)
        self._where[plid] = set_idx
        if len(ways) > self._ways:
            victim, _ = ways.popitem(last=False)
            self._where.pop(victim, None)
            self.traffic.evictions += 1
            # Deferred allocation write of a never-written line.
            self.store.writeback(victim)

    # ------------------------------------------------------------------

    def read(self, plid: int) -> Line:
        """Read a line through the cache (PLID-indexed probe)."""
        if plid == ZERO_PLID:
            return self.store.peek(ZERO_PLID)
        set_idx = self._set_index_for_plid(plid)
        ways = self._sets[set_idx]
        line = ways.get(plid)
        if line is not None:
            ways.move_to_end(plid)
            self.traffic.hits += 1
            return line
        self.traffic.misses += 1
        line = self.store.read_dram(plid)
        self._insert(set_idx, plid, line)
        return line

    def lookup(self, line: Line) -> int:
        """Find-or-allocate by content through the cache.

        A cache hit recomposes the PLID without any DRAM access (the
        reference count is still bumped, in the RC cache); a miss performs
        the full DRAM lookup of section 3.1 and installs the line.
        """
        if is_zero_line(line):
            return ZERO_PLID
        enc = encode_line(line)
        bucket = hashing.bucket_hash(enc, self.store.config.num_buckets)
        set_idx = bucket % self._num_sets
        ways = self._sets[set_idx]
        # Single-set content search: compare against resident lines.
        for plid, resident in ways.items():
            if resident == line:
                ways.move_to_end(plid)
                self.traffic.lookup_hits += 1
                self.store.incref(plid)
                return plid
        self.traffic.lookup_misses += 1
        # thread the encoding through: the store would otherwise re-derive
        # the same bytes for its bucket hash and signature
        plid, _created = self.store.lookup(line, enc)
        self._insert(set_idx, plid, line)
        return plid

    def invalidate(self, plid: int) -> None:
        """Drop a (deallocated) line from the cache."""
        set_idx = self._where.pop(plid, None)
        if set_idx is not None:
            self._sets[set_idx].pop(plid, None)

    def flush(self) -> None:
        """Evict everything, charging deferred allocation writes."""
        for ways in self._sets:
            for plid in list(ways):
                self.store.writeback(plid)
            ways.clear()
        self._where.clear()

    def resident_lines(self) -> int:
        """Number of lines currently cached (diagnostics)."""
        return len(self._where)
