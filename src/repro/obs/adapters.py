"""Registry adapters for the three pre-existing metrics silos.

:class:`~repro.net.metrics.ServerMetrics`,
:class:`~repro.replication.metrics.ReplicationMetrics` and
:class:`~repro.memory.stats.DramStats` predate the registry and are hot
enough that their layout (plain dataclass fields bumped inline) must not
change. Each adapter therefore registers *callback-backed* instruments
that read the live silo at collection time — the silo is the single
source of truth, the registry is a view, and the legacy ``stats`` /
``stats json`` output stays byte-identical.

Each adapter has an inverse (``legacy_*_snapshot``) that rebuilds the
silo's own snapshot dict purely from registry reads; the test suite
asserts the round trip is exact, so a silo field added without its
registry registration fails loudly.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import latency_summary
from repro.obs.registry import MetricsRegistry

__all__ = [
    "register_server_metrics",
    "register_replication_metrics",
    "register_dram_stats",
    "register_router",
    "register_index",
    "register_reclaim",
    "register_adaptive",
    "register_memo",
    "register_cluster",
    "register_eviction",
    "register_tenants",
    "legacy_server_snapshot",
    "legacy_replication_snapshot",
    "legacy_dram_dict",
    "legacy_eviction_snapshot",
]

# ServerMetrics scalar fields, split by Prometheus kind. Keep in sync
# with ServerMetrics.snapshot(); legacy_server_snapshot() reconstructs
# that snapshot from these lists, and tests assert the round trip.
SERVER_COUNTER_FIELDS = (
    "ops_total", "bytes_in", "bytes_out",
    "connections_opened", "connections_closed", "read_timeouts",
    "frames_decoded", "pipelined_requests",
    "protocol_errors", "server_errors",
    "commit_batches", "merge_commits", "cas_retries",
)
SERVER_GAUGE_FIELDS = (
    "max_pipeline_depth", "queue_high_watermark", "pending_at_shutdown",
)

REPLICATION_COUNTER_FIELDS = (
    "bytes_sent", "bytes_received", "line_bytes_shipped", "logical_bytes",
    "lines_shipped", "lines_deduped_on_arrival", "lines_installed",
    "seed_lines", "root_advances", "acks", "full_syncs", "resets",
    "forgets", "nacks", "heartbeats", "reconnects",
    "commits_observed", "commits_shipped",
)

SERVER_PREFIX = "repro_server_"
REPLICATION_PREFIX = "repro_replication_"
DRAM_METRIC = "repro_dram_accesses_total"


def _field_reader(obj, name):
    return lambda: getattr(obj, name)


def register_server_metrics(registry: MetricsRegistry, metrics,
                            prefix: str = SERVER_PREFIX) -> None:
    """Expose a live :class:`ServerMetrics` through ``registry``."""
    for name in SERVER_COUNTER_FIELDS:
        registry.counter(prefix + name, "server %s" % name,
                         fn=_field_reader(metrics, name))
    for name in SERVER_GAUGE_FIELDS:
        registry.gauge(prefix + name, "server %s" % name,
                       fn=_field_reader(metrics, name))
    registry.gauge(prefix + "uptime_seconds", "seconds since start",
                   fn=lambda: round(metrics.uptime_seconds, 3))
    registry.gauge(prefix + "ops_per_second", "request throughput",
                   fn=lambda: round(metrics.ops_per_second, 1))
    registry.counter(prefix + "ops_by_command", "requests by command",
                     labels=("command",),
                     fn=lambda: dict(metrics.ops_by_command))
    registry.counter(prefix + "commits_by_vsid",
                     "committed root advances by segment",
                     labels=("vsid",),
                     fn=lambda: {str(v): n for v, n
                                 in metrics.commits_by_vsid.items()})
    registry.gauge(prefix + "latency_ms",
                   "request latency quantiles (reservoir)",
                   labels=("quantile",),
                   fn=lambda: latency_summary(metrics.latency_ms()))


def legacy_server_snapshot(registry: MetricsRegistry,
                           prefix: str = SERVER_PREFIX) -> Dict:
    """Rebuild ``ServerMetrics.snapshot()`` from registry reads."""
    snap: Dict = {}
    for name in SERVER_COUNTER_FIELDS + SERVER_GAUGE_FIELDS + (
            "uptime_seconds", "ops_per_second"):
        snap[name] = registry.get(prefix + name).snapshot_value()
    snap["ops_by_command"] = dict(
        registry.get(prefix + "ops_by_command").snapshot_value())
    snap["commits_by_vsid"] = dict(
        registry.get(prefix + "commits_by_vsid").snapshot_value())
    snap["latency"] = dict(
        registry.get(prefix + "latency_ms").snapshot_value())
    return snap


def register_replication_metrics(registry: MetricsRegistry, metrics,
                                 prefix: str = REPLICATION_PREFIX
                                 ) -> None:
    """Expose a live :class:`ReplicationMetrics` through ``registry``."""
    for name in REPLICATION_COUNTER_FIELDS:
        registry.counter(prefix + name, "replication %s" % name,
                         fn=_field_reader(metrics, name))
    registry.gauge(prefix + "max_lag",
                   "worst per-stream replication lag, in commits",
                   fn=lambda: metrics.max_lag)
    registry.gauge(prefix + "dedup_ratio",
                   "fraction of arriving lines already present",
                   fn=lambda: metrics.dedup_ratio)
    registry.gauge(prefix + "lag_by_stream",
                   "replication lag per stream, in commits",
                   labels=("stream",),
                   fn=lambda: {str(s): lag for s, lag
                               in metrics.lag_by_stream.items()})


def legacy_replication_snapshot(registry: MetricsRegistry,
                                prefix: str = REPLICATION_PREFIX
                                ) -> Dict:
    """Rebuild ``ReplicationMetrics.snapshot()`` from registry reads."""
    snap: Dict = {}
    for name in REPLICATION_COUNTER_FIELDS:
        snap[name] = registry.get(prefix + name).snapshot_value()
    snap["max_lag"] = registry.get(prefix + "max_lag").snapshot_value()
    snap["lag_by_stream"] = dict(
        registry.get(prefix + "lag_by_stream").snapshot_value())
    return snap


def register_dram_stats(registry: MetricsRegistry, dram,
                        name: str = DRAM_METRIC) -> None:
    """Expose a live :class:`DramStats` as one labeled counter —
    Figure 6's categories, straight off the store."""
    registry.counter(name, "off-chip DRAM accesses by category",
                     labels=("category",), fn=dram.as_dict)


def legacy_dram_dict(registry: MetricsRegistry,
                     name: str = DRAM_METRIC) -> Dict[str, int]:
    """Rebuild ``DramStats.as_dict()`` from the registry."""
    return dict(registry.get(name).snapshot_value())


def register_memo(registry: MetricsRegistry, memo,
                  prefix: str = "repro_memo_") -> None:
    """Expose a live :class:`~repro.memory.memo.StructuralMemo`.

    One labeled counter covers every table's hit/miss/eviction/
    invalidation flow; a gauge tracks the live (bounded) table sizes.
    """
    registry.counter(prefix + "ops_total",
                     "structural memo probes and maintenance by table",
                     labels=("table", "outcome"), fn=memo.ops)
    registry.gauge(prefix + "entries", "live memo entries per table",
                   labels=("table",), fn=memo.sizes)
    registry.gauge(prefix + "enabled", "1 when the memo serves hits",
                   fn=lambda: int(memo.enabled))


CLUSTER_COUNTER_FIELDS = (
    "promotions", "repairs_failed", "probes", "probe_failures",
    "reparents", "moved_total",
)

CLUSTER_PREFIX = "repro_cluster_"


def register_cluster(registry: MetricsRegistry, cluster,
                     prefix: str = CLUSTER_PREFIX) -> None:
    """Expose a live :class:`~repro.cluster.cluster.Cluster` (via its
    :class:`~repro.cluster.metrics.ClusterMetrics`) through ``registry``.

    Same callback-instrument idiom as the other silos: the metrics
    dataclass stays the single source of truth the harness and topology
    manager bump inline; the registry reads it live at collection time.
    """
    metrics = cluster.metrics
    registry.gauge(prefix + "epoch", "committed topology epoch",
                   fn=lambda: metrics.epoch)
    for name in CLUSTER_COUNTER_FIELDS:
        registry.counter(prefix + name + "_total", "cluster %s" % name,
                         fn=_field_reader(metrics, name))
    registry.gauge(prefix + "last_recovery_seconds",
                   "wall time of the most recent committed repair",
                   fn=lambda: round(metrics.last_recovery_seconds, 6))
    registry.gauge(prefix + "node_lag",
                   "follower lag behind its leader, in commits",
                   labels=("node",),
                   fn=lambda: dict(sorted(metrics.node_lag.items())))
    registry.gauge(prefix + "live_leaders", "leaders currently serving",
                   fn=lambda: len(cluster.leaders))
    registry.gauge(prefix + "live_followers",
                   "followers currently serving",
                   fn=lambda: len(cluster.followers))
    registry.gauge(prefix + "dead_nodes", "crash-stopped leaders",
                   fn=lambda: len(cluster.dead))


# EvictionStats scalar fields; legacy_eviction_snapshot() reconstructs
# ``dataclasses.asdict(stats)`` from these, and tests assert the round
# trip — a field added to EvictionStats without its registration here
# fails loudly, same contract as the other silos.
EVICTION_COUNTER_FIELDS = ("expired", "evicted", "eviction_passes")

EVICTION_PREFIX = "repro_eviction_"


def register_eviction(registry: MetricsRegistry, stats,
                      prefix: str = EVICTION_PREFIX) -> None:
    """Expose live :class:`~repro.apps.memcached.eviction.EvictionStats`.

    ``stats`` is one silo or a per-shard list; each field becomes one
    shard-labeled counter read off the live dataclass at collection
    time (the eviction hot path keeps bumping plain fields inline).
    """
    silos = list(stats) if isinstance(stats, (list, tuple)) else [stats]
    for name in EVICTION_COUNTER_FIELDS:
        registry.counter(
            prefix + name + "_total", "eviction %s" % name,
            labels=("shard",),
            fn=lambda silos=silos, name=name: {
                str(i): getattr(s, name) for i, s in enumerate(silos)})


def legacy_eviction_snapshot(registry: MetricsRegistry, shard: int = 0,
                             prefix: str = EVICTION_PREFIX) -> Dict:
    """Rebuild one shard's ``dataclasses.asdict(EvictionStats)`` from
    registry reads."""
    return {name: registry.get(prefix + name + "_total")
            .snapshot_value()[str(shard)]
            for name in EVICTION_COUNTER_FIELDS}


def register_tenants(registry: MetricsRegistry, servers,
                     prefix: str = "repro_tenant_") -> None:
    """Expose per-tenant namespaces of
    :class:`~repro.apps.memcached.tenants.TenantMemcached` backends.

    ``servers`` is one backend or the router's per-shard list; counts
    are summed across shards per tenant, read live at collection time.
    """
    backends = list(servers) if isinstance(servers, (list, tuple)) \
        else [servers]

    def _sum(field):
        totals: Dict[str, int] = {}
        for server in backends:
            for tenant, tstats in server.tenant_stats.items():
                label = tenant.decode("ascii", "replace")
                totals[label] = totals.get(label, 0) \
                    + getattr(tstats, field)
        return totals

    def _items():
        totals: Dict[str, int] = {}
        for server in backends:
            for tenant, count in server.items_by_tenant().items():
                label = tenant.decode("ascii", "replace")
                totals[label] = totals.get(label, 0) + count
        return totals

    registry.gauge(prefix + "items", "stored items per tenant namespace",
                   labels=("tenant",), fn=_items)
    registry.gauge(prefix + "namespaces", "distinct tenant namespaces",
                   fn=lambda: len({t for s in backends
                                   for t in s.tenants}))
    for field in ("gets", "get_hits", "sets", "deletes"):
        registry.counter(prefix + field + "_total",
                         "tenant %s" % field, labels=("tenant",),
                         fn=lambda field=field: _sum(field))


INDEX_PREFIX = "repro_index_"

# StoreCounters fields exposed for the lookup-by-content path (the
# legacy baseline reports the same counters, so scan-rate regressions
# are comparable across index kinds).
INDEX_STORE_FIELDS = (
    "lookups", "lookup_hits", "false_positive_scans", "bucket_overflows",
    "signature_false_positives", "overflow_allocations",
)

# Scalar CuckooIndexStats counters exposed as one event-labeled counter.
INDEX_CUCKOO_EVENTS = (
    "lookups", "hits", "inserts", "removes", "false_positive_scans",
    "displacements", "fp_growth_events", "resizes_started",
    "resizes_completed", "migrated_entries", "stash_inserts",
)


def register_index(registry: MetricsRegistry, store,
                   prefix: str = INDEX_PREFIX) -> None:
    """Expose a :class:`DedupStore`'s lookup-by-content path.

    Same callback idiom as the other silos: `StoreCounters` /
    `CuckooIndexStats` stay plain inline-bumped dataclasses; the
    registry reads them live. Under the cuckoo kind this additionally
    publishes the displacement-depth histogram, per-width bucket
    counts, occupancy and resize progress.
    """
    registry.gauge(prefix + "kind_info",
                   "active lookup-by-content index kind",
                   labels=("kind",),
                   fn=lambda: {store.config.index_kind: 1})
    registry.counter(
        prefix + "store_ops_total",
        "store-level lookup path events",
        labels=("event",),
        fn=lambda: {name: getattr(store.counters, name)
                    for name in INDEX_STORE_FIELDS})
    index = store.index
    if index is None:
        return
    stats = index.stats
    registry.counter(
        prefix + "cuckoo_events_total", "cuckoo index events",
        labels=("event",),
        fn=lambda: {name: getattr(stats, name)
                    for name in INDEX_CUCKOO_EVENTS})
    registry.counter(
        prefix + "displacement_depth_total",
        "inserts by displacement path length (0 = direct)",
        labels=("depth",),
        fn=lambda: {str(d): n
                    for d, n in sorted(stats.depth_hist.items())})
    registry.gauge(
        prefix + "buckets_by_fp_bits",
        "active-table buckets per adaptive fingerprint width",
        labels=("bits",),
        fn=lambda: {str(w): n for w, n in
                    sorted(index.bucket_width_counts().items())})
    registry.gauge(prefix + "entries", "entries indexed",
                   fn=lambda: len(index))
    registry.gauge(prefix + "buckets", "active-table buckets",
                   fn=lambda: index.num_buckets)
    registry.gauge(prefix + "occupancy",
                   "active-table slot occupancy fraction",
                   fn=lambda: round(index.occupancy(), 4))
    registry.gauge(prefix + "resizing",
                   "1 while an incremental resize is draining",
                   fn=lambda: int(index.resizing))


RECLAIM_PREFIX = "repro_reclaim_"

#: drain outcomes exposed as one reason-labeled counter; keys match the
#: ``drained_*`` fields of :class:`repro.memory.reclaim.ReclaimStats`
RECLAIM_DRAIN_REASONS = ("freed", "resurrected", "stale")


def register_reclaim(registry: MetricsRegistry, store,
                     prefix: str = RECLAIM_PREFIX) -> None:
    """Expose a :class:`DedupStore`'s reclamation state.

    Registered for both kinds — under ``immediate`` the reclaimer
    gauges read zero and only the free-list occupancy moves — so the
    exposition schema never depends on the configured kind.
    """
    registry.gauge(prefix + "kind_info", "active reclamation kind",
                   labels=("kind",),
                   fn=lambda: {store.config.reclaim_kind: 1})
    registry.gauge(prefix + "pending_lines",
                   "deferred-dead lines awaiting drain",
                   fn=lambda: store.reclaimer.pending()
                   if store.reclaimer is not None else 0)
    registry.gauge(prefix + "epoch", "current reclamation epoch",
                   fn=lambda: store.reclaimer.epoch
                   if store.reclaimer is not None else 0)
    registry.counter(
        prefix + "drained_total",
        "deferral-queue entries processed, by drain outcome",
        labels=("reason",),
        fn=lambda: {
            reason: getattr(store.reclaimer.stats, "drained_" + reason)
            for reason in RECLAIM_DRAIN_REASONS
        } if store.reclaimer is not None else
        {reason: 0 for reason in RECLAIM_DRAIN_REASONS})
    registry.counter(prefix + "deferred_total",
                     "release-to-zero events deferred (O(1) frees)",
                     fn=lambda: store.reclaimer.stats.deferred_total
                     if store.reclaimer is not None else 0)
    registry.counter(prefix + "epochs_total",
                     "epoch advancements (router batch boundaries)",
                     fn=lambda: store.reclaimer.stats.epochs_advanced
                     if store.reclaimer is not None else 0)
    registry.counter(prefix + "quiesces_total",
                     "synchronous full drains",
                     fn=lambda: store.reclaimer.stats.quiesces
                     if store.reclaimer is not None else 0)
    registry.gauge(prefix + "free_slots",
                   "free-list occupancy: recyclable ways + overflow slots",
                   fn=lambda: store.slots.free_slots())
    registry.gauge(prefix + "free_overflow_slots",
                   "recycled overflow-area PLIDs awaiting reuse",
                   fn=lambda: len(store.slots.free_overflow))


#: metric namespace for the adaptive commit controller
ADAPTIVE_PREFIX = "repro_adaptive_"


def register_adaptive(registry: MetricsRegistry, controller,
                      prefix: str = ADAPTIVE_PREFIX) -> None:
    """Expose a :class:`~repro.net.adaptive.CommitController`.

    Registered under static commit modes too — the controller always
    samples, so the raw policy inputs (per-shard commit-queue depth,
    CAS retries, merge-commit rate, batch RTT histogram) are visible
    through ``stats prom``/``stats json`` even when adaptation is off;
    only the mode/switch series move once ``commit_mode="adaptive"``.
    """
    registry.gauge(prefix + "enabled",
                   "1 when online mode switching is active",
                   fn=lambda: 1 if controller.adaptive else 0)
    registry.gauge(prefix + "mode_info",
                   "current commit mode per shard (1 = active)",
                   labels=("shard", "mode"), fn=controller.mode_counts)
    registry.counter(prefix + "mode_switches_total",
                     "commit-mode transitions per shard",
                     labels=("shard",),
                     fn=lambda: controller.per_shard("switches"))
    registry.gauge(prefix + "batch_limit",
                   "coalescing limit the controller set per shard",
                   labels=("shard",),
                   fn=lambda: controller.per_shard("batch_limit"))
    registry.gauge(prefix + "reclaim_budget",
                   "per-batch reclaim drain budget per shard",
                   labels=("shard",),
                   fn=lambda: controller.per_shard("reclaim_budget"))
    registry.gauge(prefix + "queue_depth",
                   "commit-queue depth after the last drain, per shard",
                   labels=("shard",),
                   fn=lambda: controller.per_shard("queue_depth"))
    registry.counter(prefix + "writes_total",
                     "write frames committed per shard",
                     labels=("shard",),
                     fn=lambda: controller.per_shard("writes"))
    registry.counter(prefix + "reads_total",
                     "inline snapshot reads served per shard",
                     labels=("shard",),
                     fn=lambda: controller.per_shard("reads"))
    registry.counter(prefix + "dup_sets_total",
                     "sets whose key repeated within a batch (hot keys)",
                     labels=("shard",),
                     fn=lambda: controller.per_shard("dup_sets"))
    registry.counter(prefix + "cas_retries_total",
                     "true-conflict retries attributed per shard",
                     labels=("shard",),
                     fn=lambda: controller.per_shard("cas_retries"))
    registry.counter(prefix + "merge_commits_total",
                     "merge-absorbed lost CASes attributed per shard",
                     labels=("shard",),
                     fn=lambda: controller.per_shard("merge_commits"))
    registry.counter(prefix + "batch_rtt_ms_bucket",
                     "batch apply RTT histogram (cumulative, ms bounds)",
                     labels=("shard", "le"),
                     fn=controller.rtt_bucket_counts)
    registry.counter(prefix + "epochs_total",
                     "closed evaluation windows per shard",
                     labels=("shard",),
                     fn=lambda: controller.per_shard("epochs"))


def register_router(registry: MetricsRegistry, router) -> None:
    """Cache-wide state a :class:`ShardRouter` adds on top of its
    :class:`ServerMetrics` (the extra keys of ``stats json``)."""
    registry.gauge("repro_server_shards", "shard backends",
                   fn=lambda: len(router.servers))
    registry.gauge("repro_server_pending_commits",
                   "writes enqueued but not yet applied",
                   fn=router.pending_commits)
    registry.gauge("repro_machine_footprint_bytes",
                   "bytes of DRAM consumed by unique lines",
                   fn=router.machine.footprint_bytes)
    registry.counter("repro_cache_ops_total",
                     "backend operations by kind, summed across shards",
                     labels=("op",),
                     fn=lambda: {k: v for k, v
                                 in router.aggregate_server_stats().items()
                                 if k != "curr_items"})
    registry.gauge("repro_cache_curr_items", "items across all shards",
                   fn=lambda:
                   router.aggregate_server_stats()["curr_items"])
