"""Unified observability: metrics registry, trace spans, DRAM
attribution.

The evaluation of the source paper is a telemetry exercise — DRAM
accesses by category (Figures 6–7), merge-resolved CAS races (§5.1.1) —
and this package makes the whole serving stack observable with the same
rigor:

* :mod:`repro.obs.registry` — labeled counters, gauges and fixed-bucket
  histograms with Prometheus text exposition and a JSON snapshot;
* :mod:`repro.obs.adapters` — callback-backed registration of the three
  legacy silos (``ServerMetrics``, ``ReplicationMetrics``,
  ``DramStats``) so one registry exposes everything without changing
  the silos' own output;
* :mod:`repro.obs.trace` — spans with an injectable monotonic clock,
  propagated request → commit-queue batch → merge-update → replication
  root advance, exportable as JSONL and Chrome ``trace_event``; DRAM
  deltas attach to the enclosing span (``DramProbe``).

Tracing is off by default (:data:`~repro.obs.trace.NULL_RECORDER` is a
no-op) and deterministic under a testing clock, so fuzz traces stay
bit-reproducible. See ``docs/observability.md``.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from repro.obs.trace import (
    NULL_RECORDER,
    DramProbe,
    NullRecorder,
    Span,
    StepClock,
    TraceRecorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_exposition",
    "NULL_RECORDER",
    "DramProbe",
    "NullRecorder",
    "Span",
    "StepClock",
    "TraceRecorder",
]
